# Empty compiler generated dependencies file for rem_mobility.
# This may be replaced when dependencies are built.
