file(REMOVE_RECURSE
  "CMakeFiles/rem_mobility.dir/conflict.cpp.o"
  "CMakeFiles/rem_mobility.dir/conflict.cpp.o.d"
  "CMakeFiles/rem_mobility.dir/events.cpp.o"
  "CMakeFiles/rem_mobility.dir/events.cpp.o.d"
  "CMakeFiles/rem_mobility.dir/measurement.cpp.o"
  "CMakeFiles/rem_mobility.dir/measurement.cpp.o.d"
  "CMakeFiles/rem_mobility.dir/policy.cpp.o"
  "CMakeFiles/rem_mobility.dir/policy.cpp.o.d"
  "CMakeFiles/rem_mobility.dir/simplify.cpp.o"
  "CMakeFiles/rem_mobility.dir/simplify.cpp.o.d"
  "librem_mobility.a"
  "librem_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
