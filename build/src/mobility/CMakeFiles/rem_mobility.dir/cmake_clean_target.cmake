file(REMOVE_RECURSE
  "librem_mobility.a"
)
