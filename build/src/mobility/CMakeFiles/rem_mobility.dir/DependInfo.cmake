
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/conflict.cpp" "src/mobility/CMakeFiles/rem_mobility.dir/conflict.cpp.o" "gcc" "src/mobility/CMakeFiles/rem_mobility.dir/conflict.cpp.o.d"
  "/root/repo/src/mobility/events.cpp" "src/mobility/CMakeFiles/rem_mobility.dir/events.cpp.o" "gcc" "src/mobility/CMakeFiles/rem_mobility.dir/events.cpp.o.d"
  "/root/repo/src/mobility/measurement.cpp" "src/mobility/CMakeFiles/rem_mobility.dir/measurement.cpp.o" "gcc" "src/mobility/CMakeFiles/rem_mobility.dir/measurement.cpp.o.d"
  "/root/repo/src/mobility/policy.cpp" "src/mobility/CMakeFiles/rem_mobility.dir/policy.cpp.o" "gcc" "src/mobility/CMakeFiles/rem_mobility.dir/policy.cpp.o.d"
  "/root/repo/src/mobility/simplify.cpp" "src/mobility/CMakeFiles/rem_mobility.dir/simplify.cpp.o" "gcc" "src/mobility/CMakeFiles/rem_mobility.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
