# Empty compiler generated dependencies file for rem_phy.
# This may be replaced when dependencies are built.
