
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/bler_model.cpp" "src/phy/CMakeFiles/rem_phy.dir/bler_model.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/bler_model.cpp.o.d"
  "/root/repo/src/phy/channel_est.cpp" "src/phy/CMakeFiles/rem_phy.dir/channel_est.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/channel_est.cpp.o.d"
  "/root/repo/src/phy/coding.cpp" "src/phy/CMakeFiles/rem_phy.dir/coding.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/coding.cpp.o.d"
  "/root/repo/src/phy/embedded_pilot.cpp" "src/phy/CMakeFiles/rem_phy.dir/embedded_pilot.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/embedded_pilot.cpp.o.d"
  "/root/repo/src/phy/link.cpp" "src/phy/CMakeFiles/rem_phy.dir/link.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/link.cpp.o.d"
  "/root/repo/src/phy/mp_detector.cpp" "src/phy/CMakeFiles/rem_phy.dir/mp_detector.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/mp_detector.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/rem_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/otfs.cpp" "src/phy/CMakeFiles/rem_phy.dir/otfs.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/otfs.cpp.o.d"
  "/root/repo/src/phy/qam.cpp" "src/phy/CMakeFiles/rem_phy.dir/qam.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/qam.cpp.o.d"
  "/root/repo/src/phy/scheduler.cpp" "src/phy/CMakeFiles/rem_phy.dir/scheduler.cpp.o" "gcc" "src/phy/CMakeFiles/rem_phy.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rem_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rem_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
