file(REMOVE_RECURSE
  "CMakeFiles/rem_phy.dir/bler_model.cpp.o"
  "CMakeFiles/rem_phy.dir/bler_model.cpp.o.d"
  "CMakeFiles/rem_phy.dir/channel_est.cpp.o"
  "CMakeFiles/rem_phy.dir/channel_est.cpp.o.d"
  "CMakeFiles/rem_phy.dir/coding.cpp.o"
  "CMakeFiles/rem_phy.dir/coding.cpp.o.d"
  "CMakeFiles/rem_phy.dir/embedded_pilot.cpp.o"
  "CMakeFiles/rem_phy.dir/embedded_pilot.cpp.o.d"
  "CMakeFiles/rem_phy.dir/link.cpp.o"
  "CMakeFiles/rem_phy.dir/link.cpp.o.d"
  "CMakeFiles/rem_phy.dir/mp_detector.cpp.o"
  "CMakeFiles/rem_phy.dir/mp_detector.cpp.o.d"
  "CMakeFiles/rem_phy.dir/ofdm.cpp.o"
  "CMakeFiles/rem_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/rem_phy.dir/otfs.cpp.o"
  "CMakeFiles/rem_phy.dir/otfs.cpp.o.d"
  "CMakeFiles/rem_phy.dir/qam.cpp.o"
  "CMakeFiles/rem_phy.dir/qam.cpp.o.d"
  "CMakeFiles/rem_phy.dir/scheduler.cpp.o"
  "CMakeFiles/rem_phy.dir/scheduler.cpp.o.d"
  "librem_phy.a"
  "librem_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
