file(REMOVE_RECURSE
  "librem_phy.a"
)
