# Empty dependencies file for rem_dsp.
# This may be replaced when dependencies are built.
