
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/rem_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/rem_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/matrix.cpp" "src/dsp/CMakeFiles/rem_dsp.dir/matrix.cpp.o" "gcc" "src/dsp/CMakeFiles/rem_dsp.dir/matrix.cpp.o.d"
  "/root/repo/src/dsp/prony.cpp" "src/dsp/CMakeFiles/rem_dsp.dir/prony.cpp.o" "gcc" "src/dsp/CMakeFiles/rem_dsp.dir/prony.cpp.o.d"
  "/root/repo/src/dsp/svd.cpp" "src/dsp/CMakeFiles/rem_dsp.dir/svd.cpp.o" "gcc" "src/dsp/CMakeFiles/rem_dsp.dir/svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
