file(REMOVE_RECURSE
  "librem_dsp.a"
)
