file(REMOVE_RECURSE
  "CMakeFiles/rem_dsp.dir/fft.cpp.o"
  "CMakeFiles/rem_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/rem_dsp.dir/matrix.cpp.o"
  "CMakeFiles/rem_dsp.dir/matrix.cpp.o.d"
  "CMakeFiles/rem_dsp.dir/prony.cpp.o"
  "CMakeFiles/rem_dsp.dir/prony.cpp.o.d"
  "CMakeFiles/rem_dsp.dir/svd.cpp.o"
  "CMakeFiles/rem_dsp.dir/svd.cpp.o.d"
  "librem_dsp.a"
  "librem_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
