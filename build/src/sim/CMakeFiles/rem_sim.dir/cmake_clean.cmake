file(REMOVE_RECURSE
  "CMakeFiles/rem_sim.dir/radio_env.cpp.o"
  "CMakeFiles/rem_sim.dir/radio_env.cpp.o.d"
  "CMakeFiles/rem_sim.dir/simulator.cpp.o"
  "CMakeFiles/rem_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/rem_sim.dir/tcp.cpp.o"
  "CMakeFiles/rem_sim.dir/tcp.cpp.o.d"
  "librem_sim.a"
  "librem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
