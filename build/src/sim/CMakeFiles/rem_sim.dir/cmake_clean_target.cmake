file(REMOVE_RECURSE
  "librem_sim.a"
)
