# Empty compiler generated dependencies file for rem_sim.
# This may be replaced when dependencies are built.
