file(REMOVE_RECURSE
  "librem_channel.a"
)
