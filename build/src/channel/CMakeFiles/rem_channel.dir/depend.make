# Empty dependencies file for rem_channel.
# This may be replaced when dependencies are built.
