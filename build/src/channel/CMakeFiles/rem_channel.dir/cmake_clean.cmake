file(REMOVE_RECURSE
  "CMakeFiles/rem_channel.dir/geometry.cpp.o"
  "CMakeFiles/rem_channel.dir/geometry.cpp.o.d"
  "CMakeFiles/rem_channel.dir/multipath.cpp.o"
  "CMakeFiles/rem_channel.dir/multipath.cpp.o.d"
  "CMakeFiles/rem_channel.dir/profiles.cpp.o"
  "CMakeFiles/rem_channel.dir/profiles.cpp.o.d"
  "librem_channel.a"
  "librem_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
