# Empty dependencies file for rem_trace.
# This may be replaced when dependencies are built.
