file(REMOVE_RECURSE
  "CMakeFiles/rem_trace.dir/eventlog.cpp.o"
  "CMakeFiles/rem_trace.dir/eventlog.cpp.o.d"
  "CMakeFiles/rem_trace.dir/scenario.cpp.o"
  "CMakeFiles/rem_trace.dir/scenario.cpp.o.d"
  "librem_trace.a"
  "librem_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
