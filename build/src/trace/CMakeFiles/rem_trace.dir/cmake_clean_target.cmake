file(REMOVE_RECURSE
  "librem_trace.a"
)
