# Empty dependencies file for rem_common.
# This may be replaced when dependencies are built.
