file(REMOVE_RECURSE
  "librem_common.a"
)
