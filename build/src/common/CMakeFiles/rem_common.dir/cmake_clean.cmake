file(REMOVE_RECURSE
  "CMakeFiles/rem_common.dir/logging.cpp.o"
  "CMakeFiles/rem_common.dir/logging.cpp.o.d"
  "CMakeFiles/rem_common.dir/stats.cpp.o"
  "CMakeFiles/rem_common.dir/stats.cpp.o.d"
  "CMakeFiles/rem_common.dir/units.cpp.o"
  "CMakeFiles/rem_common.dir/units.cpp.o.d"
  "librem_common.a"
  "librem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
