
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crossband/metrics.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/metrics.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/metrics.cpp.o.d"
  "/root/repo/src/crossband/mimo.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/mimo.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/mimo.cpp.o.d"
  "/root/repo/src/crossband/movement.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/movement.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/movement.cpp.o.d"
  "/root/repo/src/crossband/nls.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/nls.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/nls.cpp.o.d"
  "/root/repo/src/crossband/optml.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/optml.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/optml.cpp.o.d"
  "/root/repo/src/crossband/r2f2.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/r2f2.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/r2f2.cpp.o.d"
  "/root/repo/src/crossband/rem_svd.cpp" "src/crossband/CMakeFiles/rem_crossband.dir/rem_svd.cpp.o" "gcc" "src/crossband/CMakeFiles/rem_crossband.dir/rem_svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rem_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rem_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/rem_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
