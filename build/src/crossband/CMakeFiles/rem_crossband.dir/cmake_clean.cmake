file(REMOVE_RECURSE
  "CMakeFiles/rem_crossband.dir/metrics.cpp.o"
  "CMakeFiles/rem_crossband.dir/metrics.cpp.o.d"
  "CMakeFiles/rem_crossband.dir/mimo.cpp.o"
  "CMakeFiles/rem_crossband.dir/mimo.cpp.o.d"
  "CMakeFiles/rem_crossband.dir/movement.cpp.o"
  "CMakeFiles/rem_crossband.dir/movement.cpp.o.d"
  "CMakeFiles/rem_crossband.dir/nls.cpp.o"
  "CMakeFiles/rem_crossband.dir/nls.cpp.o.d"
  "CMakeFiles/rem_crossband.dir/optml.cpp.o"
  "CMakeFiles/rem_crossband.dir/optml.cpp.o.d"
  "CMakeFiles/rem_crossband.dir/r2f2.cpp.o"
  "CMakeFiles/rem_crossband.dir/r2f2.cpp.o.d"
  "CMakeFiles/rem_crossband.dir/rem_svd.cpp.o"
  "CMakeFiles/rem_crossband.dir/rem_svd.cpp.o.d"
  "librem_crossband.a"
  "librem_crossband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_crossband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
