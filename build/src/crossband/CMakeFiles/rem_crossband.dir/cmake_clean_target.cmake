file(REMOVE_RECURSE
  "librem_crossband.a"
)
