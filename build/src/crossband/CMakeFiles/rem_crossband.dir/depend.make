# Empty dependencies file for rem_crossband.
# This may be replaced when dependencies are built.
