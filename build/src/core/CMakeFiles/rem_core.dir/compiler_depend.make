# Empty compiler generated dependencies file for rem_core.
# This may be replaced when dependencies are built.
