
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/legacy_manager.cpp" "src/core/CMakeFiles/rem_core.dir/legacy_manager.cpp.o" "gcc" "src/core/CMakeFiles/rem_core.dir/legacy_manager.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/rem_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/rem_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/rem_manager.cpp" "src/core/CMakeFiles/rem_core.dir/rem_manager.cpp.o" "gcc" "src/core/CMakeFiles/rem_core.dir/rem_manager.cpp.o.d"
  "/root/repo/src/core/rrc_codec.cpp" "src/core/CMakeFiles/rem_core.dir/rrc_codec.cpp.o" "gcc" "src/core/CMakeFiles/rem_core.dir/rrc_codec.cpp.o.d"
  "/root/repo/src/core/rrc_session.cpp" "src/core/CMakeFiles/rem_core.dir/rrc_session.cpp.o" "gcc" "src/core/CMakeFiles/rem_core.dir/rrc_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/rem_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/rem_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/crossband/CMakeFiles/rem_crossband.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rem_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rem_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
