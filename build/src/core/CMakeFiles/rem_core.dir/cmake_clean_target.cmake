file(REMOVE_RECURSE
  "librem_core.a"
)
