file(REMOVE_RECURSE
  "CMakeFiles/rem_core.dir/legacy_manager.cpp.o"
  "CMakeFiles/rem_core.dir/legacy_manager.cpp.o.d"
  "CMakeFiles/rem_core.dir/overlay.cpp.o"
  "CMakeFiles/rem_core.dir/overlay.cpp.o.d"
  "CMakeFiles/rem_core.dir/rem_manager.cpp.o"
  "CMakeFiles/rem_core.dir/rem_manager.cpp.o.d"
  "CMakeFiles/rem_core.dir/rrc_codec.cpp.o"
  "CMakeFiles/rem_core.dir/rrc_codec.cpp.o.d"
  "CMakeFiles/rem_core.dir/rrc_session.cpp.o"
  "CMakeFiles/rem_core.dir/rrc_session.cpp.o.d"
  "librem_core.a"
  "librem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
