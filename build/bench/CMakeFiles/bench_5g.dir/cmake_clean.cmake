file(REMOVE_RECURSE
  "CMakeFiles/bench_5g.dir/bench_5g.cpp.o"
  "CMakeFiles/bench_5g.dir/bench_5g.cpp.o.d"
  "bench_5g"
  "bench_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
