# Empty compiler generated dependencies file for bench_5g.
# This may be replaced when dependencies are built.
