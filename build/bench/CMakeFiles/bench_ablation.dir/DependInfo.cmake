
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rem_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/crossband/CMakeFiles/rem_crossband.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/rem_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/rem_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rem_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rem_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
