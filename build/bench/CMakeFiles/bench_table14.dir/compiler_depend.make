# Empty compiler generated dependencies file for bench_table14.
# This may be replaced when dependencies are built.
