file(REMOVE_RECURSE
  "CMakeFiles/bench_table14.dir/bench_table14.cpp.o"
  "CMakeFiles/bench_table14.dir/bench_table14.cpp.o.d"
  "bench_table14"
  "bench_table14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
