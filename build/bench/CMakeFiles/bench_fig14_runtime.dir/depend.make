# Empty dependencies file for bench_fig14_runtime.
# This may be replaced when dependencies are built.
