file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34.dir/bench_fig34.cpp.o"
  "CMakeFiles/bench_fig34.dir/bench_fig34.cpp.o.d"
  "bench_fig34"
  "bench_fig34.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
