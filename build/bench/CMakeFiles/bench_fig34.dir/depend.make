# Empty dependencies file for bench_fig34.
# This may be replaced when dependencies are built.
