# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_svd[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_qam[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_ofdm_otfs[1]_include.cmake")
include("/root/repo/build/tests/test_channel_est[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_crossband[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_prony[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_rrc_codec[1]_include.cmake")
include("/root/repo/build/tests/test_mp_detector[1]_include.cmake")
include("/root/repo/build/tests/test_rrc_session[1]_include.cmake")
include("/root/repo/build/tests/test_embedded_pilot[1]_include.cmake")
include("/root/repo/build/tests/test_bler_model[1]_include.cmake")
