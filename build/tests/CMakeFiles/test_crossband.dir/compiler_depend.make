# Empty compiler generated dependencies file for test_crossband.
# This may be replaced when dependencies are built.
