file(REMOVE_RECURSE
  "CMakeFiles/test_crossband.dir/test_crossband.cpp.o"
  "CMakeFiles/test_crossband.dir/test_crossband.cpp.o.d"
  "test_crossband"
  "test_crossband.pdb"
  "test_crossband[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
