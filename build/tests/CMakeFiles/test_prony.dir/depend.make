# Empty dependencies file for test_prony.
# This may be replaced when dependencies are built.
