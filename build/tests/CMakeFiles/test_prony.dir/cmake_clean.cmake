file(REMOVE_RECURSE
  "CMakeFiles/test_prony.dir/test_prony.cpp.o"
  "CMakeFiles/test_prony.dir/test_prony.cpp.o.d"
  "test_prony"
  "test_prony.pdb"
  "test_prony[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
