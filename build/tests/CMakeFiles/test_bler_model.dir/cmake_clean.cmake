file(REMOVE_RECURSE
  "CMakeFiles/test_bler_model.dir/test_bler_model.cpp.o"
  "CMakeFiles/test_bler_model.dir/test_bler_model.cpp.o.d"
  "test_bler_model"
  "test_bler_model.pdb"
  "test_bler_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bler_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
