# Empty dependencies file for test_bler_model.
# This may be replaced when dependencies are built.
