file(REMOVE_RECURSE
  "CMakeFiles/test_qam.dir/test_qam.cpp.o"
  "CMakeFiles/test_qam.dir/test_qam.cpp.o.d"
  "test_qam"
  "test_qam.pdb"
  "test_qam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
