# Empty compiler generated dependencies file for test_qam.
# This may be replaced when dependencies are built.
