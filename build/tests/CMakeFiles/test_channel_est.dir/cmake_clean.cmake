file(REMOVE_RECURSE
  "CMakeFiles/test_channel_est.dir/test_channel_est.cpp.o"
  "CMakeFiles/test_channel_est.dir/test_channel_est.cpp.o.d"
  "test_channel_est"
  "test_channel_est.pdb"
  "test_channel_est[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
