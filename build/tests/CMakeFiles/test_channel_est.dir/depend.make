# Empty dependencies file for test_channel_est.
# This may be replaced when dependencies are built.
