file(REMOVE_RECURSE
  "CMakeFiles/test_ofdm_otfs.dir/test_ofdm_otfs.cpp.o"
  "CMakeFiles/test_ofdm_otfs.dir/test_ofdm_otfs.cpp.o.d"
  "test_ofdm_otfs"
  "test_ofdm_otfs.pdb"
  "test_ofdm_otfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ofdm_otfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
