
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ofdm_otfs.cpp" "tests/CMakeFiles/test_ofdm_otfs.dir/test_ofdm_otfs.cpp.o" "gcc" "tests/CMakeFiles/test_ofdm_otfs.dir/test_ofdm_otfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/rem_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rem_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rem_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
