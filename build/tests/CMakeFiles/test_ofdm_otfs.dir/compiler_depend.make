# Empty compiler generated dependencies file for test_ofdm_otfs.
# This may be replaced when dependencies are built.
