# Empty dependencies file for test_rrc_session.
# This may be replaced when dependencies are built.
