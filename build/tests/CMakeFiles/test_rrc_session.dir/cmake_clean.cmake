file(REMOVE_RECURSE
  "CMakeFiles/test_rrc_session.dir/test_rrc_session.cpp.o"
  "CMakeFiles/test_rrc_session.dir/test_rrc_session.cpp.o.d"
  "test_rrc_session"
  "test_rrc_session.pdb"
  "test_rrc_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrc_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
