# Empty compiler generated dependencies file for test_mp_detector.
# This may be replaced when dependencies are built.
