file(REMOVE_RECURSE
  "CMakeFiles/test_mp_detector.dir/test_mp_detector.cpp.o"
  "CMakeFiles/test_mp_detector.dir/test_mp_detector.cpp.o.d"
  "test_mp_detector"
  "test_mp_detector.pdb"
  "test_mp_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
