# Empty dependencies file for test_rrc_codec.
# This may be replaced when dependencies are built.
