file(REMOVE_RECURSE
  "CMakeFiles/test_rrc_codec.dir/test_rrc_codec.cpp.o"
  "CMakeFiles/test_rrc_codec.dir/test_rrc_codec.cpp.o.d"
  "test_rrc_codec"
  "test_rrc_codec.pdb"
  "test_rrc_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
