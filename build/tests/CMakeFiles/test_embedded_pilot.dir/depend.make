# Empty dependencies file for test_embedded_pilot.
# This may be replaced when dependencies are built.
