file(REMOVE_RECURSE
  "CMakeFiles/test_embedded_pilot.dir/test_embedded_pilot.cpp.o"
  "CMakeFiles/test_embedded_pilot.dir/test_embedded_pilot.cpp.o.d"
  "test_embedded_pilot"
  "test_embedded_pilot.pdb"
  "test_embedded_pilot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedded_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
