# Empty dependencies file for test_matrix_svd.
# This may be replaced when dependencies are built.
