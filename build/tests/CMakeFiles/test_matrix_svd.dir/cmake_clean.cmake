file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_svd.dir/test_matrix_svd.cpp.o"
  "CMakeFiles/test_matrix_svd.dir/test_matrix_svd.cpp.o.d"
  "test_matrix_svd"
  "test_matrix_svd.pdb"
  "test_matrix_svd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
