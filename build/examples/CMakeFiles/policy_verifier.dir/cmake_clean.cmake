file(REMOVE_RECURSE
  "CMakeFiles/policy_verifier.dir/policy_verifier.cpp.o"
  "CMakeFiles/policy_verifier.dir/policy_verifier.cpp.o.d"
  "policy_verifier"
  "policy_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
