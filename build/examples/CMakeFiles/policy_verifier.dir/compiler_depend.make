# Empty compiler generated dependencies file for policy_verifier.
# This may be replaced when dependencies are built.
