file(REMOVE_RECURSE
  "CMakeFiles/movement_tracking.dir/movement_tracking.cpp.o"
  "CMakeFiles/movement_tracking.dir/movement_tracking.cpp.o.d"
  "movement_tracking"
  "movement_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movement_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
