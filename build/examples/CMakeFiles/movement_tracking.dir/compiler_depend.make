# Empty compiler generated dependencies file for movement_tracking.
# This may be replaced when dependencies are built.
