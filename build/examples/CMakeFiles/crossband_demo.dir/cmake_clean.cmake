file(REMOVE_RECURSE
  "CMakeFiles/crossband_demo.dir/crossband_demo.cpp.o"
  "CMakeFiles/crossband_demo.dir/crossband_demo.cpp.o.d"
  "crossband_demo"
  "crossband_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossband_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
