# Empty compiler generated dependencies file for crossband_demo.
# This may be replaced when dependencies are built.
