# Empty compiler generated dependencies file for hsr_handover.
# This may be replaced when dependencies are built.
