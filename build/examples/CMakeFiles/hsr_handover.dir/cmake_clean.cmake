file(REMOVE_RECURSE
  "CMakeFiles/hsr_handover.dir/hsr_handover.cpp.o"
  "CMakeFiles/hsr_handover.dir/hsr_handover.cpp.o.d"
  "hsr_handover"
  "hsr_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
