# Empty compiler generated dependencies file for rem_sim_cli.
# This may be replaced when dependencies are built.
