file(REMOVE_RECURSE
  "CMakeFiles/rem_sim_cli.dir/rem_sim_cli.cpp.o"
  "CMakeFiles/rem_sim_cli.dir/rem_sim_cli.cpp.o.d"
  "rem_sim_cli"
  "rem_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
