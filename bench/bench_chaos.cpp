// Chaos sweep: run REM and legacy management under each registered
// FaultInjector class — the radio classes (burst signaling loss, pilot
// outage, processing stall, coverage blackout, command duplication), a
// backhaul sweep (frame loss at 1/5/10%, one-way delay spikes, full
// partitions), and the BS robustness classes (control-plane overload,
// crash-restart) — and record per-fault recovery-time / failure-ratio /
// downtime deltas against the no-fault baseline into BENCH_CHAOS.json.
// The sweep doubles as the robustness acceptance check: every run must
// complete without exceptions or invariant violations, REM's
// degraded-mode fallback must be observable under a pilot outage, REM
// must ride out backhaul loss up to 10% and bounded delay spikes with
// zero handover failures (prep retries absorb them), partitions must
// degrade gracefully (fallbacks/failures observed, retry budgets
// respected, recovery bounded), and legacy must degrade measurably where
// REM does not. Under bs_overload the asymmetry inverts roles: legacy's
// network-side decision path queues and sheds (observable bs_queue_shed)
// while REM's client-side prediction keeps deciding, so REM's failure
// ratio stays within kMaxRemOverloadFailureRatio while legacy degrades by
// at least kMinLegacyOverloadDegradation over its baseline. Under
// bs_crash_restart every scripted window must actually kill a BS, and
// service recovery after each crash (first re-establishment or completed
// handover) must land within kMaxCrashRecoveryS — crash window plus
// post-restart re-attachment, the explicit recovery bound. A sweep whose
// class list does not cover every registered FaultKind fails: new kinds
// cannot ship without chaos coverage.
//
// Every run also carries a rem::obs::SpanTracer, so the sweep additionally
// emits <output>_metrics.json (one rem-metrics-v1 snapshot merged over
// baseline + fault classes x seeds x managers, in that order — the sweep is
// serial, so the merge is deterministic) and <output>_trace.jsonl (one span
// per line, stamped with fault class, seed, and manager). Each run's trace
// is reconciled against its SimStats; any mismatch aborts the sweep.
//
// Usage: bench_chaos [--smoke] [output.json]
//   --smoke: tiny duration / single seed, for wiring into ctest so the
//   chaos path cannot rot; writes BENCH_CHAOS_smoke.json by default.
#include "common/stats.hpp"
#include "fleet_runner.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "scenario/scenario.hpp"
#include "scenario_runner.hpp"
#include "sim/observer.hpp"
#include "testkit/invariants.hpp"
#include "trace/eventlog.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using rem::sim::FaultConfig;
using rem::sim::FaultKind;
using rem::sim::FaultWindow;

/// Periodic scripted windows: one fault class, `period_s` apart.
FaultConfig periodic(FaultKind kind, double first_s, double period_s,
                     double duration_s, double magnitude, double horizon_s) {
  FaultConfig cfg;
  for (double t = first_s; t < horizon_s; t += period_s)
    cfg.windows.push_back({kind, t, duration_s, magnitude});
  return cfg;
}

struct ManagerMetrics {
  int handovers = 0;
  int failures = 0;
  double failure_ratio = 0.0;
  double mean_recovery_s = 0.0;  ///< mean outage duration (RLF -> camp)
  double p95_recovery_s = 0.0;
  double downtime_fraction = 0.0;
  int report_retransmits = 0;
  int t304_expiries = 0;
  int t304_fallback_success = 0;
  int duplicate_commands = 0;
  int degraded_enters = 0;
  double degraded_time_s = 0.0;
  // Backhaul preparation accounting (zero when the transport is disabled).
  int prep_requests = 0;
  int prep_retries = 0;
  int prep_acks = 0;
  int prep_rejects = 0;
  int prep_fallbacks = 0;
  int prep_failures = 0;
  int context_fetch_failures = 0;
  double mean_prep_rtt_s = 0.0;
  std::uint64_t backhaul_sent = 0;
  std::uint64_t backhaul_delivered = 0;
  std::uint64_t backhaul_dropped = 0;  ///< loss + partition + queue
  // BS capacity / crash accounting (zero when the model is disabled).
  int bs_jobs_submitted = 0;
  int bs_jobs_served = 0;
  int bs_queue_shed = 0;
  int bs_jobs_flushed = 0;
  int admission_rejects = 0;
  int admission_backoff_retries = 0;
  int bs_crashes = 0;
  int bs_crash_dropped_msgs = 0;
  int stale_context_responses = 0;
  double mean_bs_queue_wait_s = 0.0;
  /// Worst gap from a BS crash opening to the first subsequent
  /// re-establishment or completed handover (whichever comes first);
  /// covers the crash window itself plus post-restart re-attachment.
  double max_crash_recovery_s = 0.0;
  // Correlated-fault / cascade-resilience accounting (zero unless the
  // scenario schedules region_outage / cascade_overload or arms the
  // resilience knobs).
  int cascade_activations = 0;
  int cascade_jobs_injected = 0;
  int breaker_trips = 0;
  int breaker_probes = 0;
  int breaker_closes = 0;
  int breaker_skips = 0;
  int load_ads_received = 0;
  int storm_jitter_applied = 0;
  int loop_episodes = 0;
  int loop_handovers = 0;
  /// Worst RLF-to-re-establishment gap across every UE's own event stream
  /// (an outage still open at the horizon counts the full remainder) —
  /// the fleet-safe service-recovery bound, unlike max_crash_recovery_s
  /// which pairs a crash with the *next* mobility event and so only means
  /// something in single-UE logs.
  double max_outage_s = 0.0;
};

struct ClassResult {
  std::string name;
  std::size_t windows = 0;
  ManagerMetrics legacy, rem;
};

/// Per-seed run of both managers with events recorded, mirroring
/// bench::run_seed but keeping the per-run event logs so fault/recovery
/// events are observable. Each run carries a SpanTracer (attaching it
/// draws no randomness, so results are bit-identical to a bare run); the
/// tracer's metrics merge into `metrics_out` and its spans append to
/// `trace_os` stamped with `ctx` plus the manager name. Throws
/// std::logic_error when a trace fails to reconcile with its SimStats.
void run_one(rem::trace::Route route, double speed_kmh, double duration_s,
             std::uint64_t seed, const FaultConfig& faults,
             const rem::phy::BlerModel& bler, rem::sim::SimStats& legacy_out,
             rem::sim::SimStats& rem_out, const std::string& ctx,
             std::ostream& trace_os, rem::obs::MetricsSnapshot& metrics_out) {
  auto sc = rem::trace::make_scenario(route, speed_kmh, duration_s);
  sc.sim.faults = faults;
  sc.sim.record_events = true;
  rem::common::Rng rng(seed);
  auto cells = rem::sim::make_rail_deployment(sc.deployment, rng);
  auto holes = rem::sim::make_hole_segments(sc.deployment, rng);
  rem::sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = rem::trace::synthesize_policies(cells, sc.policy_mix, rng);

  const auto observed_run = [&](rem::sim::MobilityManager& m,
                                rem::common::Rng run_rng, const char* label) {
    rem::obs::Registry registry;
    rem::obs::SpanTracer tracer(&registry);
    rem::testkit::CheckerConfig ccfg;
    ccfg.sim = sc.sim;
    ccfg.num_cells = cells.size();
    ccfg.faults_expected = !faults.empty();
    ccfg.expect_no_degraded = std::string(label) == "legacy";
    rem::testkit::InvariantChecker checker(ccfg);
    rem::sim::ObserverFanout fanout;
    fanout.add(&checker);
    fanout.add(&tracer);
    rem::sim::SimConfig cfg = sc.sim;
    cfg.observer = &fanout;
    rem::sim::Simulator s(env, cfg, bler, std::move(run_rng));
    auto stats = s.run(m);
    if (checker.violation_count() > 0)
      throw std::logic_error("invariant violations in " + std::string(label) +
                             " run {" + ctx + "}:\n" + checker.report());
    const auto mismatches = tracer.reconcile(stats);
    if (!mismatches.empty()) {
      std::string msg = "trace/stats reconcile mismatches in " +
                        std::string(label) + " run {" + ctx + "}";
      for (const auto& line : mismatches) msg += "\n  " + line;
      throw std::logic_error(msg);
    }
    tracer.write_trace_jsonl(
        trace_os, ctx + ", \"manager\": \"" + std::string(label) + "\"");
    metrics_out.merge(registry.snapshot());
    return stats;
  };

  rem::core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  rem::core::LegacyManager legacy(lc);
  legacy_out = observed_run(legacy, rng.fork(), "legacy");

  rem::core::RemManager remm(rem::core::RemConfig{}, rng.fork());
  rem_out = observed_run(remm, rng.fork(), "rem");
}

/// Worst crash-to-recovery gap in one run's event log: for every kBsCrash
/// the first later kReestablished/kHandoverComplete closes the gap; a
/// crash with no recovery before the horizon counts the full remainder
/// (so an unrecovered crash cannot pass a recovery gate by omission).
double worst_crash_recovery_s(const rem::sim::EventLog& events,
                              double horizon_s) {
  double worst = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind != rem::sim::EventKind::kBsCrash) continue;
    double recovered_at = horizon_s;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].kind == rem::sim::EventKind::kReestablished ||
          events[j].kind == rem::sim::EventKind::kHandoverComplete) {
        recovered_at = events[j].t_s;
        break;
      }
    }
    worst = std::max(worst, recovered_at - events[i].t_s);
  }
  return worst;
}

/// Worst radio-link-failure-to-re-establishment gap, per owning UE: for
/// each kRadioLinkFailure the first later kReestablished *of the same UE*
/// closes the gap, so the helper is exact on fleet-merged event logs too;
/// an outage still open at the horizon counts the full remainder.
double worst_outage_s(const rem::sim::EventLog& events, double horizon_s) {
  double worst = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind != rem::sim::EventKind::kRadioLinkFailure) continue;
    double recovered_at = horizon_s;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].ue != events[i].ue) continue;
      if (events[j].kind == rem::sim::EventKind::kReestablished) {
        recovered_at = events[j].t_s;
        break;
      }
    }
    worst = std::max(worst, recovered_at - events[i].t_s);
  }
  return worst;
}

ManagerMetrics fold(const std::vector<rem::sim::SimStats>& runs,
                    double horizon_s) {
  ManagerMetrics m;
  rem::common::Summary recovery;
  for (const auto& s : runs) {
    m.handovers += s.handovers;
    m.failures += s.failures;
    recovery.add_all(s.outage_durations_s);
    m.downtime_fraction += s.downtime_fraction / runs.size();
    m.report_retransmits += s.report_retransmits;
    m.t304_expiries += s.t304_expiries;
    m.t304_fallback_success += s.t304_fallback_success;
    m.duplicate_commands += s.duplicate_commands;
    m.degraded_enters += s.degraded_enters;
    m.degraded_time_s += s.degraded_time_s;
    m.prep_requests += s.prep_requests;
    m.prep_retries += s.prep_retries;
    m.prep_acks += s.prep_acks;
    m.prep_rejects += s.prep_rejects;
    m.prep_fallbacks += s.prep_fallbacks;
    m.prep_failures += s.prep_failures;
    m.context_fetch_failures += s.context_fetch_failures;
    m.mean_prep_rtt_s += s.prep_rtt_sum_s;  // normalized below
    m.backhaul_sent += s.backhaul_sent;
    m.backhaul_delivered += s.backhaul_delivered;
    m.backhaul_dropped += s.backhaul_dropped_loss +
                          s.backhaul_dropped_partition +
                          s.backhaul_dropped_queue;
    m.bs_jobs_submitted += s.bs_jobs_submitted;
    m.bs_jobs_served += s.bs_jobs_served;
    m.bs_queue_shed += s.bs_queue_shed;
    m.bs_jobs_flushed += s.bs_jobs_flushed;
    m.admission_rejects += s.admission_rejects;
    m.admission_backoff_retries += s.admission_backoff_retries;
    m.bs_crashes += s.bs_crashes;
    m.bs_crash_dropped_msgs += s.bs_crash_dropped_msgs;
    m.stale_context_responses += s.stale_context_responses;
    m.mean_bs_queue_wait_s += s.bs_queue_wait_sum_s;  // normalized below
    m.max_crash_recovery_s = std::max(
        m.max_crash_recovery_s, worst_crash_recovery_s(s.events, horizon_s));
    m.cascade_activations += s.cascade_activations;
    m.cascade_jobs_injected += s.cascade_jobs_injected;
    m.breaker_trips += s.breaker_trips;
    m.breaker_probes += s.breaker_probes;
    m.breaker_closes += s.breaker_closes;
    m.breaker_skips += s.breaker_skips;
    m.load_ads_received += s.load_ads_received;
    m.storm_jitter_applied += s.storm_jitter_applied;
    m.loop_episodes += s.loop_episodes;
    m.loop_handovers += s.loop_handovers;
    m.max_outage_s =
        std::max(m.max_outage_s, worst_outage_s(s.events, horizon_s));
  }
  const int den = m.handovers + m.failures;
  m.failure_ratio = den > 0 ? static_cast<double>(m.failures) / den : 0.0;
  if (recovery.count() > 0) {
    m.mean_recovery_s = recovery.mean();
    m.p95_recovery_s = recovery.percentile(95.0);
  }
  m.mean_prep_rtt_s = m.prep_acks > 0 ? m.mean_prep_rtt_s / m.prep_acks : 0.0;
  m.mean_bs_queue_wait_s =
      m.bs_jobs_served > 0 ? m.mean_bs_queue_wait_s / m.bs_jobs_served : 0.0;
  return m;
}

void print_metrics(const char* label, const ManagerMetrics& m,
                   const ManagerMetrics& base) {
  std::printf(
      "  %-7s failure %5.1f%% (base %4.1f%%)  recovery mean %5.2f s "
      "p95 %5.2f s  downtime %5.2f%%  rtx %3d  t304 %2d (fb %2d)  dup %2d  "
      "degraded %5.1f s (%d)\n",
      label, 100.0 * m.failure_ratio, 100.0 * base.failure_ratio,
      m.mean_recovery_s, m.p95_recovery_s, 100.0 * m.downtime_fraction,
      m.report_retransmits, m.t304_expiries, m.t304_fallback_success,
      m.duplicate_commands, m.degraded_time_s, m.degraded_enters);
  if (m.prep_requests > 0)
    std::printf(
        "          prep %4d req %3d retry %4d ack %2d rej %2d fb %2d fail  "
        "rtt %4.1f ms  ctx-fail %d  frames %llu/%llu (drop %llu)\n",
        m.prep_requests, m.prep_retries, m.prep_acks, m.prep_rejects,
        m.prep_fallbacks, m.prep_failures, 1e3 * m.mean_prep_rtt_s,
        m.context_fetch_failures,
        static_cast<unsigned long long>(m.backhaul_delivered),
        static_cast<unsigned long long>(m.backhaul_sent),
        static_cast<unsigned long long>(m.backhaul_dropped));
  if (m.bs_jobs_submitted > 0 || m.bs_crashes > 0)
    std::printf(
        "          bs %5d jobs %4d shed %3d flushed  wait %5.1f ms  "
        "adm-rej %3d (retry %3d)  crash %2d (drop %3d, stale-ctx %2d)  "
        "crash-recovery %4.1f s\n",
        m.bs_jobs_submitted, m.bs_queue_shed, m.bs_jobs_flushed,
        1e3 * m.mean_bs_queue_wait_s, m.admission_rejects,
        m.admission_backoff_retries, m.bs_crashes, m.bs_crash_dropped_msgs,
        m.stale_context_responses, m.max_crash_recovery_s);
  if (m.cascade_activations > 0 || m.breaker_trips > 0 ||
      m.load_ads_received > 0 || m.storm_jitter_applied > 0)
    std::printf(
        "          cascade %3d inj (%4d jobs)  breaker %3d trip %3d probe "
        "%3d close %4d skip  load-ads %5d  jitter %4d  loops %d ep / %d ho  "
        "outage max %5.2f s\n",
        m.cascade_activations, m.cascade_jobs_injected, m.breaker_trips,
        m.breaker_probes, m.breaker_closes, m.breaker_skips,
        m.load_ads_received, m.storm_jitter_applied, m.loop_episodes,
        m.loop_handovers, m.max_outage_s);
}

void write_metrics_json(std::ofstream& js, const ManagerMetrics& m,
                        const ManagerMetrics& base) {
  js << "{\"handovers\": " << m.handovers << ", \"failures\": " << m.failures
     << ", \"failure_ratio\": " << m.failure_ratio
     << ", \"delta_failure_ratio\": " << m.failure_ratio - base.failure_ratio
     << ", \"mean_recovery_s\": " << m.mean_recovery_s
     << ", \"delta_mean_recovery_s\": "
     << m.mean_recovery_s - base.mean_recovery_s
     << ", \"p95_recovery_s\": " << m.p95_recovery_s
     << ", \"downtime_fraction\": " << m.downtime_fraction
     << ", \"report_retransmits\": " << m.report_retransmits
     << ", \"t304_expiries\": " << m.t304_expiries
     << ", \"t304_fallback_success\": " << m.t304_fallback_success
     << ", \"duplicate_commands\": " << m.duplicate_commands
     << ", \"degraded_enters\": " << m.degraded_enters
     << ", \"degraded_time_s\": " << m.degraded_time_s
     << ", \"prep_requests\": " << m.prep_requests
     << ", \"prep_retries\": " << m.prep_retries
     << ", \"prep_acks\": " << m.prep_acks
     << ", \"prep_rejects\": " << m.prep_rejects
     << ", \"prep_fallbacks\": " << m.prep_fallbacks
     << ", \"prep_failures\": " << m.prep_failures
     << ", \"context_fetch_failures\": " << m.context_fetch_failures
     << ", \"mean_prep_rtt_s\": " << m.mean_prep_rtt_s
     << ", \"backhaul_sent\": " << m.backhaul_sent
     << ", \"backhaul_delivered\": " << m.backhaul_delivered
     << ", \"backhaul_dropped\": " << m.backhaul_dropped
     << ", \"bs_jobs_submitted\": " << m.bs_jobs_submitted
     << ", \"bs_jobs_served\": " << m.bs_jobs_served
     << ", \"bs_queue_shed\": " << m.bs_queue_shed
     << ", \"bs_jobs_flushed\": " << m.bs_jobs_flushed
     << ", \"mean_bs_queue_wait_s\": " << m.mean_bs_queue_wait_s
     << ", \"admission_rejects\": " << m.admission_rejects
     << ", \"admission_backoff_retries\": " << m.admission_backoff_retries
     << ", \"bs_crashes\": " << m.bs_crashes
     << ", \"bs_crash_dropped_msgs\": " << m.bs_crash_dropped_msgs
     << ", \"stale_context_responses\": " << m.stale_context_responses
     << ", \"max_crash_recovery_s\": " << m.max_crash_recovery_s
     << ", \"cascade_activations\": " << m.cascade_activations
     << ", \"cascade_jobs_injected\": " << m.cascade_jobs_injected
     << ", \"breaker_trips\": " << m.breaker_trips
     << ", \"breaker_probes\": " << m.breaker_probes
     << ", \"breaker_closes\": " << m.breaker_closes
     << ", \"breaker_skips\": " << m.breaker_skips
     << ", \"load_ads_received\": " << m.load_ads_received
     << ", \"storm_jitter_applied\": " << m.storm_jitter_applied
     << ", \"loop_episodes\": " << m.loop_episodes
     << ", \"loop_handovers\": " << m.loop_handovers
     << ", \"max_outage_s\": " << m.max_outage_s << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }
  if (out_path.empty())
    out_path = smoke ? "BENCH_CHAOS_smoke.json" : "BENCH_CHAOS.json";

  const auto route = rem::trace::Route::kBeijingShanghai;
  const double speed_kmh = 300.0;
  const double duration_s = smoke ? 80.0 : 400.0;
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1}
            : std::vector<std::uint64_t>{1, 2, 3};
  rem::phy::LogisticBlerModel bler;

  // Fault schedules: the first window opens early so the smoke run
  // exercises every class too. Magnitudes are per-kind (see FaultWindow).
  struct ClassSpec {
    FaultKind kind;
    double first_s, period_s, duration_s, magnitude;
  };
  const std::vector<ClassSpec> classes = {
      {FaultKind::kSignalingLoss, 15.0, 60.0, 5.0, 1.0},
      {FaultKind::kPilotOutage, 15.0, 60.0, 8.0, 4.0},
      {FaultKind::kProcessingStall, 15.0, 60.0, 12.0, 0.6},
      {FaultKind::kCoverageBlackout, 15.0, 60.0, 4.0, 60.0},
      {FaultKind::kCommandDuplication, 10.0, 60.0, 25.0, 1.0},
      // u = 1.0 fills every station to slots + queue, so legacy's RRC
      // decision jobs shed outright while REM (client-driven) never
      // submits one; admission busy-rejects hit both managers' preps.
      // 14 s windows outlast legacy's decision-to-link-death margin (a
      // shed decision then turns into an RLF) but stay inside REM's
      // prediction lead, which is the degraded-mode asymmetry the gates
      // below pin down.
      {FaultKind::kBsOverload, 15.0, 60.0, 14.0, 1.0},
      // magnitude 1.0 < 2 picks the serving BS as victim at window open.
      {FaultKind::kBsCrashRestart, 20.0, 60.0, 5.0, 1.0},
  };

  // Backhaul sweep: sustained loss at the 1/5/10% points (one window over
  // nearly the whole horizon; period > horizon keeps it single), periodic
  // one-way delay spikes that push the prep RTT past its first timeout,
  // and periodic full partitions long enough to exhaust the retry budget.
  struct BackhaulSpec {
    std::string label;
    FaultKind kind;
    double first_s, period_s, duration_s, magnitude;
  };
  const std::vector<BackhaulSpec> backhaul_classes = {
      {"backhaul_loss_1", FaultKind::kBackhaulLoss, 5.0, 1e9,
       duration_s - 10.0, 0.01},
      {"backhaul_loss_5", FaultKind::kBackhaulLoss, 5.0, 1e9,
       duration_s - 10.0, 0.05},
      {"backhaul_loss_10", FaultKind::kBackhaulLoss, 5.0, 1e9,
       duration_s - 10.0, 0.10},
      {"backhaul_delay_spike", FaultKind::kBackhaulDelay, 15.0, 60.0, 10.0,
       0.025},
      {"backhaul_partition", FaultKind::kBackhaulPartition, 15.0, 60.0, 2.5,
       1.0},
  };

  // Side-channel observability outputs, next to the main JSON.
  const std::string stem = out_path.size() > 5 && out_path.ends_with(".json")
                               ? out_path.substr(0, out_path.size() - 5)
                               : out_path;
  const std::string metrics_path = stem + "_metrics.json";
  const std::string trace_path = stem + "_trace.jsonl";
  std::ofstream trace_js(trace_path);
  rem::obs::MetricsSnapshot metrics;

  const auto run_config = [&](const std::string& fault_label,
                              const FaultConfig& faults, ManagerMetrics& lg,
                              ManagerMetrics& rm) {
    std::vector<rem::sim::SimStats> legacy_runs, rem_runs;
    for (const auto seed : seeds) {
      rem::sim::SimStats ls, rs;
      const std::string ctx = "\"fault\": \"" + fault_label +
                              "\", \"seed\": \"" + std::to_string(seed) +
                              "\"";
      run_one(route, speed_kmh, duration_s, seed, faults, bler, ls, rs, ctx,
              trace_js, metrics);
      legacy_runs.push_back(std::move(ls));
      rem_runs.push_back(std::move(rs));
    }
    lg = fold(legacy_runs, duration_s);
    rm = fold(rem_runs, duration_s);
  };

  std::printf("chaos sweep: %s, %.0f km/h, %.0f s x %zu seeds%s\n",
              rem::trace::route_name(route).c_str(), speed_kmh, duration_s,
              seeds.size(), smoke ? " [smoke]" : "");

  ManagerMetrics base_legacy, base_rem;
  run_config("baseline", {}, base_legacy, base_rem);
  std::printf("baseline (no faults)\n");
  print_metrics("legacy", base_legacy, base_legacy);
  print_metrics("REM", base_rem, base_rem);

  std::vector<ClassResult> results;
  for (const auto& c : classes) {
    const auto faults = periodic(c.kind, c.first_s, c.period_s, c.duration_s,
                                 c.magnitude, duration_s);
    ClassResult r;
    r.name = rem::sim::fault_kind_name(c.kind);
    r.windows = faults.windows.size();
    run_config(r.name, faults, r.legacy, r.rem);
    std::printf("%s (%zu windows of %.0f s, magnitude %g)\n", r.name.c_str(),
                r.windows, c.duration_s, c.magnitude);
    print_metrics("legacy", r.legacy, base_legacy);
    print_metrics("REM", r.rem, base_rem);
    results.push_back(std::move(r));
  }

  std::vector<ClassResult> backhaul_results;
  for (const auto& c : backhaul_classes) {
    const auto faults = periodic(c.kind, c.first_s, c.period_s, c.duration_s,
                                 c.magnitude, duration_s);
    ClassResult r;
    r.name = c.label;
    r.windows = faults.windows.size();
    run_config(r.name, faults, r.legacy, r.rem);
    std::printf("%s (%zu windows of %.1f s, magnitude %g)\n", r.name.c_str(),
                r.windows, c.duration_s, c.magnitude);
    print_metrics("legacy", r.legacy, base_legacy);
    print_metrics("REM", r.rem, base_rem);
    backhaul_results.push_back(std::move(r));
  }

  // Fleet sweep: N UEs genuinely contending for BS slots and backhaul
  // capacity under the library's rail_overload_fleet scenario (the same
  // periodic bs_overload schedule as the single-UE class), compiled by
  // rem::scenario with the sweep's duration and fleet size as overrides.
  // Each fleet runs with one InvariantChecker per UE (run_fleet_scenario
  // throws on violations); per-seed aggregates fold in seed order, so the
  // section is deterministic at any thread count.
  const int fleet_size = smoke ? 6 : 12;
  const auto fleet_spec =
      rem::scenario::load_scenario(REM_SCENARIO_DIR, "rail_overload_fleet");
  rem::scenario::CompileOverrides fleet_ov;
  fleet_ov.duration_s = duration_s;
  fleet_ov.ue_count = fleet_size;
  const auto fleet_compiled = rem::scenario::compile(fleet_spec, fleet_ov);
  ManagerMetrics fleet_legacy, fleet_rem;
  {
    std::vector<rem::sim::SimStats> lg_runs, rm_runs;
    for (const auto seed : seeds) {
      rem::bench::FleetScenarioRunOptions fopts;
      fopts.context = "the chaos fleet scenario 'rail_overload_fleet' "
                      "(seed " + std::to_string(seed) + ")";
      fopts.use_rem = false;
      lg_runs.push_back(rem::bench::run_fleet_scenario(
                            fleet_compiled.scenario, seed, bler, fopts)
                            .aggregate);
      fopts.use_rem = true;
      rm_runs.push_back(rem::bench::run_fleet_scenario(
                            fleet_compiled.scenario, seed, bler, fopts)
                            .aggregate);
    }
    fleet_legacy = fold(lg_runs, duration_s);
    fleet_rem = fold(rm_runs, duration_s);
  }
  std::printf("fleet bs_overload (%d UEs)\n", fleet_size);
  print_metrics("legacy", fleet_legacy, base_legacy);
  print_metrics("REM", fleet_rem, base_rem);

  // Cascade section: the two correlated-fault library scenarios —
  // rail_region_outage (staggered domain blackouts with load ads,
  // breakers, and storm damping armed) and dense_cascade_storm (a crash
  // whose load floods the surviving neighbors while breakers contain the
  // retry stampede) — run as full fleets with per-UE invariant checkers
  // (run_fleet_scenario throws on any breaker-legality or load-ad
  // staleness violation, so those invariants are machine-checked on every
  // bench run). Events stay recorded so the per-UE outage bound below is
  // computable on the merged logs.
  struct CascadeResult {
    std::string name;
    int fleet_size = 0;
    std::size_t windows = 0;
    bool region_outage = false;
    bool cascade_overload = false;
    ManagerMetrics legacy, rem;
  };
  std::vector<CascadeResult> cascade_results;
  std::set<int> cascade_kinds;
  for (const char* scen_cstr : {"rail_region_outage", "dense_cascade_storm"}) {
    const std::string scen_name = scen_cstr;
    const auto spec =
        rem::scenario::load_scenario(REM_SCENARIO_DIR, scen_name);
    rem::scenario::CompileOverrides ov;
    if (smoke) ov.duration_s = duration_s;  // shrink to the smoke horizon
    const auto compiled = rem::scenario::compile(spec, ov);
    const double horizon = compiled.scenario.sim.duration_s;
    CascadeResult r;
    r.name = scen_name;
    r.fleet_size = compiled.scenario.sim.fleet_size;
    r.windows = compiled.scenario.sim.faults.windows.size();
    for (const auto& w : compiled.scenario.sim.faults.windows) {
      cascade_kinds.insert(static_cast<int>(w.kind));
      if (w.kind == FaultKind::kRegionOutage) r.region_outage = true;
      if (w.kind == FaultKind::kCascadeOverload) r.cascade_overload = true;
    }
    std::vector<rem::sim::SimStats> lg_runs, rm_runs;
    for (const auto seed : seeds) {
      rem::bench::FleetScenarioRunOptions fopts;
      fopts.context = "the chaos cascade scenario '" + scen_name +
                      "' (seed " + std::to_string(seed) + ")";
      fopts.record_events = true;
      fopts.use_rem = false;
      lg_runs.push_back(rem::bench::run_fleet_scenario(
                            compiled.scenario, seed, bler, fopts)
                            .aggregate);
      fopts.use_rem = true;
      rm_runs.push_back(rem::bench::run_fleet_scenario(
                            compiled.scenario, seed, bler, fopts)
                            .aggregate);
    }
    r.legacy = fold(lg_runs, horizon);
    r.rem = fold(rm_runs, horizon);
    std::printf("cascade %s (%d UEs, %zu windows, %.0f s)\n",
                r.name.c_str(), r.fleet_size, r.windows, horizon);
    print_metrics("legacy", r.legacy, base_legacy);
    print_metrics("REM", r.rem, base_rem);
    cascade_results.push_back(std::move(r));
  }

  std::ofstream js(out_path);
  js << "{\n";
  js << "  \"route\": \"" << rem::trace::route_name(route) << "\",\n";
  js << "  \"speed_kmh\": " << speed_kmh << ",\n";
  js << "  \"duration_s\": " << duration_s << ",\n";
  js << "  \"seeds\": " << seeds.size() << ",\n";
  js << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  js << "  \"baseline\": {\"legacy\": ";
  write_metrics_json(js, base_legacy, base_legacy);
  js << ", \"rem\": ";
  write_metrics_json(js, base_rem, base_rem);
  js << "},\n";
  js << "  \"faults\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    js << "    \"" << r.name << "\": {\"windows\": " << r.windows
       << ", \"legacy\": ";
    write_metrics_json(js, r.legacy, base_legacy);
    js << ", \"rem\": ";
    write_metrics_json(js, r.rem, base_rem);
    js << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  js << "  },\n";
  js << "  \"backhaul\": {\n";
  for (std::size_t i = 0; i < backhaul_results.size(); ++i) {
    const auto& r = backhaul_results[i];
    js << "    \"" << r.name << "\": {\"windows\": " << r.windows
       << ", \"legacy\": ";
    write_metrics_json(js, r.legacy, base_legacy);
    js << ", \"rem\": ";
    write_metrics_json(js, r.rem, base_rem);
    js << "}" << (i + 1 < backhaul_results.size() ? "," : "") << "\n";
  }
  js << "  },\n";
  js << "  \"fleet\": {\n";
  js << "    \"bs_overload\": {\"scenario\": \"" << fleet_compiled.name
     << "\", \"fleet_size\": " << fleet_size << ", \"windows\": "
     << fleet_compiled.scenario.sim.faults.windows.size()
     << ", \"legacy\": ";
  write_metrics_json(js, fleet_legacy, base_legacy);
  js << ", \"rem\": ";
  write_metrics_json(js, fleet_rem, base_rem);
  js << "}\n";
  js << "  },\n";
  js << "  \"cascade\": {\n";
  for (std::size_t i = 0; i < cascade_results.size(); ++i) {
    const auto& r = cascade_results[i];
    js << "    \"" << r.name << "\": {\"fleet_size\": " << r.fleet_size
       << ", \"windows\": " << r.windows << ", \"legacy\": ";
    write_metrics_json(js, r.legacy, base_legacy);
    js << ", \"rem\": ";
    write_metrics_json(js, r.rem, base_rem);
    js << "}" << (i + 1 < cascade_results.size() ? "," : "") << "\n";
  }
  js << "  }\n";
  js << "}\n";
  rem::obs::write_metrics_json_file(metrics, metrics_path);
  trace_js.close();
  std::printf("wrote %s, %s, %s\n", out_path.c_str(), metrics_path.c_str(),
              trace_path.c_str());

  // Acceptance gates: the degraded-mode fallback must actually fire under
  // a pilot outage, and the blackout class must produce observable
  // recoveries; a chaos sweep that cannot provoke its faults is rot.
  // REM must keep its failure ratio essentially flat under BS overload
  // (client-side prediction sidesteps the shed decision queue) while
  // legacy degrades by a visible margin; crash recovery is bounded by an
  // explicit constant so "restart re-establishes state" is a checked
  // claim, not prose.
  constexpr double kMaxRemOverloadFailureRatio = 0.01;
  constexpr double kMinLegacyOverloadDegradation = 0.05;
  constexpr double kMaxCrashRecoveryS = 10.0;
  bool ok = true;
  for (const auto& r : results) {
    if (r.name == "pilot_outage" && r.rem.degraded_enters == 0) {
      std::printf("FAIL: REM never entered degraded mode under %s\n",
                  r.name.c_str());
      ok = false;
    }
    if (r.name == "coverage_blackout" &&
        r.legacy.failures + r.rem.failures == 0) {
      std::printf("FAIL: no failures observed under %s\n", r.name.c_str());
      ok = false;
    }
    if (r.name == "bs_overload") {
      if (r.legacy.bs_queue_shed == 0) {
        std::printf("FAIL: legacy never shed a BS job under %s\n",
                    r.name.c_str());
        ok = false;
      }
      if (r.rem.failure_ratio > kMaxRemOverloadFailureRatio) {
        std::printf("FAIL: REM failure ratio %.2f%% under %s (max %.2f%%)\n",
                    100.0 * r.rem.failure_ratio, r.name.c_str(),
                    100.0 * kMaxRemOverloadFailureRatio);
        ok = false;
      }
      if (!smoke && r.legacy.failure_ratio <
                        base_legacy.failure_ratio +
                            kMinLegacyOverloadDegradation) {
        std::printf("FAIL: legacy failure ratio %.2f%% under %s did not "
                    "degrade >= %.0f points over baseline %.2f%%\n",
                    100.0 * r.legacy.failure_ratio, r.name.c_str(),
                    100.0 * kMinLegacyOverloadDegradation,
                    100.0 * base_legacy.failure_ratio);
        ok = false;
      }
      if (r.rem.admission_rejects + r.rem.admission_backoff_retries == 0) {
        std::printf("FAIL: admission control never fired for REM under %s\n",
                    r.name.c_str());
        ok = false;
      }
    }
    if (r.name == "bs_crash_restart") {
      // Every scripted window must actually kill a BS — for both managers
      // (the schedule is deterministic: windows x seeds crashes each).
      const int expected =
          static_cast<int>(r.windows) * static_cast<int>(seeds.size());
      for (const auto* m : {&r.legacy, &r.rem}) {
        if (m->bs_crashes != expected) {
          std::printf("FAIL: %d BS crashes under %s (expected %d)\n",
                      m->bs_crashes, r.name.c_str(), expected);
          ok = false;
        }
      }
      if (r.rem.max_crash_recovery_s > kMaxCrashRecoveryS) {
        std::printf("FAIL: REM crash recovery %.1f s under %s (bound %.1f "
                    "s)\n",
                    r.rem.max_crash_recovery_s, r.name.c_str(),
                    kMaxCrashRecoveryS);
        ok = false;
      }
    }
  }

  // Chaos coverage: the sweep's class lists must exercise every
  // registered FaultKind, so a new kind cannot land without a window
  // here. Also bound the smoke run's deterministic sim-time budget so
  // wiring it into ctest stays cheap.
  std::set<int> covered;
  for (const auto& c : classes) covered.insert(static_cast<int>(c.kind));
  for (const auto& c : backhaul_classes)
    covered.insert(static_cast<int>(c.kind));
  covered.insert(cascade_kinds.begin(), cascade_kinds.end());
  if (covered.size() != rem::sim::kNumFaultKinds) {
    std::printf("FAIL: chaos sweep covers %zu of %zu FaultKinds\n",
                covered.size(), rem::sim::kNumFaultKinds);
    ok = false;
  }
  if (smoke) {
    for (const auto& c : classes)
      if (c.first_s + c.duration_s >= duration_s) {
        std::printf("FAIL: smoke horizon misses a %s window\n",
                    rem::sim::fault_kind_name(c.kind).c_str());
        ok = false;
      }
    for (const auto& c : backhaul_classes)
      if (c.first_s >= duration_s) {
        std::printf("FAIL: smoke horizon misses a %s window\n",
                    c.label.c_str());
        ok = false;
      }
    constexpr double kMaxSmokeSimSeconds = 2600.0;
    const double sim_seconds =
        duration_s * static_cast<double>(seeds.size()) *
        static_cast<double>(1 + classes.size() + backhaul_classes.size()) *
        2.0;  // two managers per config
    if (sim_seconds > kMaxSmokeSimSeconds) {
      std::printf("FAIL: smoke budget %.0f sim-seconds exceeds %.0f\n",
                  sim_seconds, kMaxSmokeSimSeconds);
      ok = false;
    }
  }

  // Backhaul gates. Loss up to 10% and bounded delay spikes must be fully
  // absorbed by the prep retry/backoff budget: REM keeps the paper's zero
  // failure ratio. Partitions may fail handovers, but only gracefully —
  // the fallback/failure paths fire, retries stay inside the per-attempt
  // budget (no storms), every outage recovers within the horizon, and
  // legacy visibly degrades where it shares the same faulty links.
  for (const auto& r : backhaul_results) {
    const bool loss_or_delay = r.name.rfind("backhaul_loss", 0) == 0 ||
                               r.name.rfind("backhaul_delay", 0) == 0;
    if (loss_or_delay && r.rem.failures > 0) {
      std::printf("FAIL: REM failure ratio %.2f%% under %s (expected 0)\n",
                  100.0 * r.rem.failure_ratio, r.name.c_str());
      ok = false;
    }
    for (const auto* m : {&r.legacy, &r.rem}) {
      const long long budget = static_cast<long long>(m->prep_requests) *
                               rem::sim::SimConfig{}.prep_max_retries;
      if (m->prep_retries > budget) {
        std::printf("FAIL: retry storm under %s (%d retries for %d "
                    "requests)\n",
                    r.name.c_str(), m->prep_retries, m->prep_requests);
        ok = false;
      }
    }
    if (r.name == "backhaul_partition") {
      if (r.rem.prep_fallbacks + r.rem.prep_failures == 0) {
        std::printf("FAIL: partitions never exercised the fallback/failure "
                    "path under %s\n",
                    r.name.c_str());
        ok = false;
      }
      // "Measurably degrades": either the radio failure ratio rises above
      // the fault-free baseline, or preparations visibly fail/fall back on
      // the partitioned links (the only signal in short smoke horizons
      // where recovery masks the radio impact).
      const bool legacy_degraded =
          r.legacy.failure_ratio > base_legacy.failure_ratio ||
          r.legacy.prep_failures + r.legacy.prep_fallbacks > 0;
      if (!legacy_degraded) {
        std::printf("FAIL: legacy did not degrade under %s (%.2f%% vs "
                    "baseline %.2f%%, no prep failures/fallbacks)\n",
                    r.name.c_str(), 100.0 * r.legacy.failure_ratio,
                    100.0 * base_legacy.failure_ratio);
        ok = false;
      }
      if (r.rem.downtime_fraction > 0.25) {
        std::printf("FAIL: REM downtime %.1f%% under %s (recovery not "
                    "bounded)\n",
                    100.0 * r.rem.downtime_fraction, r.name.c_str());
        ok = false;
      }
    }
  }

  // Fleet gate: with N UEs genuinely contending for control-plane slots
  // under BS overload, REM's client-driven decisions must keep the fleet
  // failure ratio strictly below legacy's — the paper's asymmetry must
  // survive contention, not just the single-UE benches.
  if (!(fleet_rem.failure_ratio < fleet_legacy.failure_ratio)) {
    std::printf("FAIL: fleet (%d UEs) REM failure ratio %.2f%% not strictly "
                "below legacy %.2f%% under bs_overload\n",
                fleet_size, 100.0 * fleet_rem.failure_ratio,
                100.0 * fleet_legacy.failure_ratio);
    ok = false;
  }
  if (fleet_legacy.bs_queue_shed == 0) {
    std::printf("FAIL: legacy fleet never shed a BS job under overload "
                "contention\n");
    ok = false;
  }

  // Cascade gates. Under correlated regional faults REM's fleet failure
  // ratio must sit strictly below legacy's (load-aware steering + breakers
  // must buy something real, not just not hurt); service recovery after
  // the faults clear is bounded by the same explicit constant as crash
  // recovery, measured as the worst per-UE RLF-to-re-establishment gap;
  // storms must leave zero *persistent* ping-pong (a loop episode holding
  // two or more loop handovers — a single flap back is transient, a
  // sustained oscillation is a steering failure); and each scenario must
  // actually provoke its machinery (region kills, cascade injections,
  // breaker trips, load advertisements) — a cascade sweep that cannot
  // trigger its faults is rot.
  for (const auto& r : cascade_results) {
    if (r.region_outage) {
      if (r.legacy.bs_crashes == 0 || r.rem.bs_crashes == 0) {
        std::printf("FAIL: %s never killed a BS (legacy %d, rem %d)\n",
                    r.name.c_str(), r.legacy.bs_crashes, r.rem.bs_crashes);
        ok = false;
      }
      if (!(r.rem.failure_ratio < r.legacy.failure_ratio)) {
        std::printf("FAIL: %s REM fleet failure ratio %.2f%% not strictly "
                    "below legacy %.2f%%\n",
                    r.name.c_str(), 100.0 * r.rem.failure_ratio,
                    100.0 * r.legacy.failure_ratio);
        ok = false;
      }
      if (r.rem.load_ads_received == 0) {
        std::printf("FAIL: %s REM fleet never applied a load "
                    "advertisement\n",
                    r.name.c_str());
        ok = false;
      }
    }
    if (r.cascade_overload) {
      if (r.legacy.cascade_activations + r.rem.cascade_activations == 0 ||
          r.legacy.cascade_jobs_injected + r.rem.cascade_jobs_injected ==
              0) {
        std::printf("FAIL: %s never injected a cascade job\n",
                    r.name.c_str());
        ok = false;
      }
      if (r.legacy.breaker_trips + r.rem.breaker_trips == 0) {
        std::printf("FAIL: %s never tripped a circuit breaker\n",
                    r.name.c_str());
        ok = false;
      }
      if (r.rem.loop_handovers > r.rem.loop_episodes) {
        std::printf("FAIL: %s REM shows persistent ping-pong (%d loop "
                    "handovers over %d episodes)\n",
                    r.name.c_str(), r.rem.loop_handovers,
                    r.rem.loop_episodes);
        ok = false;
      }
    }
    if (r.rem.max_outage_s > kMaxCrashRecoveryS) {
      std::printf("FAIL: %s REM worst outage %.1f s (recovery bound %.1f "
                  "s)\n",
                  r.name.c_str(), r.rem.max_outage_s, kMaxCrashRecoveryS);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
