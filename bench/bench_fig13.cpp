// Fig. 13: cross-band estimation on the HSR channel — REM vs the R2F2 and
// OptML baselines (SNR error CDF and handover decision precision). OptML
// trains on an 80% split of channels drawn from the same statistics.
#include "common/stats.hpp"
#include "common/units.hpp"
#include "crossband/metrics.hpp"
#include "crossband/optml.hpp"
#include "crossband/r2f2.hpp"
#include "crossband/rem_svd.hpp"

#include <cstdio>

using namespace rem;

int main() {
  crossband::EvalConfig cfg;
  cfg.draw.profile = channel::Profile::kHST350;
  cfg.draw.speed_mps = common::kmh_to_mps(350.0);
  cfg.draw.carrier_hz = 1.88e9;
  cfg.num.num_subcarriers = 64;
  cfg.num.num_symbols = 16;
  cfg.num.cp_len = 16;
  cfg.f1_hz = 1.88e9;
  cfg.f2_hz = 2.6e9;
  cfg.trials = 150;

  common::Rng rng(13);

  crossband::RemSvdEstimator rem_est;
  const auto r_rem = crossband::evaluate_estimator(rem_est, cfg, rng);

  crossband::OptMlEstimator optml;
  crossband::train_optml(optml, cfg, 600, rng);  // 80/20 split
  const auto r_optml = crossband::evaluate_estimator(optml, cfg, rng);

  crossband::R2f2Estimator r2f2;  // default slow cold-start config
  const auto r_r2f2 = crossband::evaluate_estimator(r2f2, cfg, rng);

  std::printf("Fig. 13: cross-band estimation on the HSR channel\n");
  std::printf("  %-8s %10s %10s %11s %10s\n", "method", "mean err",
              "p90 err", "precision", "runtime");
  const auto row = [](const char* name,
                      const crossband::EvalResult& r) {
    std::printf("  %-8s %8.2fdB %8.2fdB %11.2f %8.1fms\n", name,
                r.mean_snr_error_db, r.p90_snr_error_db,
                r.decision_precision, r.mean_runtime_ms);
  };
  row("REM", r_rem);
  row("OptML", r_optml);
  row("R2F2", r_r2f2);

  std::printf("\n  SNR-error CDF (dB -> fraction):\n");
  std::printf("  %6s %8s %8s %8s\n", "err", "REM", "OptML", "R2F2");
  common::Summary s_rem, s_opt, s_r2;
  s_rem.add_all(r_rem.snr_error_db);
  s_opt.add_all(r_optml.snr_error_db);
  s_r2.add_all(r_r2f2.snr_error_db);
  for (double e = 0.0; e <= 15.0; e += 1.5)
    std::printf("  %6.1f %8.2f %8.2f %8.2f\n", e, s_rem.cdf_at(e),
                s_opt.cdf_at(e), s_r2.cdf_at(e));
  std::printf(
      "\nPaper reference (Fig. 13): REM 86.8%% lower mean error than R2F2 "
      "and 51.9%% lower\nthan OptML; precision 0.95 vs 0.65 vs 0.11.\n");
  return 0;
}
