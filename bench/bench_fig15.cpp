// Fig. 15: failures without aggressive (proactive) policies.
//
// Operators configure conflict-prone proactive policies to mitigate
// failures; REM removes them (Theorem-2-coordinated offsets) without
// paying a failure penalty. Compares, per speed bucket:
//   * legacy with the operators' proactive mix (baseline);
//   * legacy with Theorem-2-repaired (non-proactive) offsets;
//   * REM (conflict-free by construction).
#include "mobility/simplify.hpp"
#include "scenario_runner.hpp"

#include <cstdio>

using namespace rem;

namespace {

sim::SimStats run_legacy_repaired(trace::Route route, double speed_kmh,
                                  double duration_s, std::uint64_t seed) {
  const auto sc = trace::make_scenario(route, speed_kmh, duration_s);
  common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

  // Theorem-2 repair of the A3 offsets (lifts the proactive negatives).
  auto pcs = trace::to_policy_cells(cells, policies);
  mobility::coordinate_offsets(pcs);
  for (const auto& pc : pcs) policies[pc.id.cell] = pc.policy;

  phy::LogisticBlerModel bler;
  core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  core::LegacyManager mgr(lc);
  sim::Simulator s(env, sc.sim, bler, rng.fork());
  return s.run(mgr);
}

}  // namespace

int main() {
  std::printf("Fig. 15: failure ratio w/o coverage holes, with and without "
              "aggressive policies\n");
  std::printf("  %-14s %14s %15s %10s\n", "speed", "OFDM proactive",
              "OFDM repaired", "REM");
  const struct {
    const char* label;
    double speed;
  } buckets[] = {{"<200 km/h", 150.0},
                 {"200-300 km/h", 250.0},
                 {"300-350 km/h", 330.0}};
  const std::vector<std::uint64_t> seeds = {41, 42};
  for (const auto& b : buckets) {
    const auto base = bench::run_route(trace::Route::kBeijingShanghai,
                                       b.speed, 1500.0, seeds);
    bench::AggregateStats repaired;
    for (const auto seed : seeds)
      repaired.add(run_legacy_repaired(trace::Route::kBeijingShanghai,
                                       b.speed, 1500.0, seed));
    std::printf("  %-14s %13.2f%% %14.2f%% %9.2f%%\n", b.label,
                bench::pct(base.legacy.failure_ratio_excluding_holes()),
                bench::pct(repaired.failure_ratio_excluding_holes()),
                bench::pct(base.rem.failure_ratio_excluding_holes()));
  }
  std::printf(
      "\nPaper reference (Fig. 15): removing the conflict-prone proactive "
      "policies does not\nraise REM's failures — fast feedback and OTFS "
      "signaling replace the proactive gamble.\n");
  return 0;
}
