// DSP/runner performance trajectory: times the FFT plan cache against the
// pre-cache implementation (re-deriving twiddles and Bluestein kernels per
// call, as fft.cpp did before the plan cache), the in-place strided
// SFFT/ISFFT against the old copy-per-row/column version, the batched SoA
// estimator (estimate_batch) against a loop of estimate() calls, and the
// seed-parallel scenario runner against the serial one. Results go to
// BENCH_DSP.json (or argv[1]) so future PRs can track the numbers.
//
// Exit-code gates: run_route parallel/serial and metrics on/off statistics
// must be bit-identical; the batched estimator must match the singles loop
// within a relative 1e-10, make zero steady-state heap allocations, and (full runs
// only) clear a >= 4x estimates/sec speedup at batch 64 single-threaded.
//
// Usage: bench_perf [--smoke] [output.json]   (run from the repo root so
// the JSON lands next to README.md). --smoke shrinks every workload to a
// few seconds for ctest (label `perf`) and skips the wall-clock speedup
// gates — correctness/allocation gates still apply.
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "crossband/rem_svd.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "phy/otfs.hpp"
#include "scenario_runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <numbers>
#include <string>
#include <vector>

namespace baseline {

// The seed-tree FFT, verbatim: per-call twiddle recurrence and per-call
// Bluestein chirp/kernel construction. Kept here as the timing baseline.
using rem::dsp::cd;
using rem::dsp::CVec;

constexpr double kPi = std::numbers::pi;

void fft_pow2(CVec& a, bool invert) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (invert ? 1.0 : -1.0);
    const cd wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cd w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = a[i + k];
        const cd v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_bluestein(CVec& a, bool invert) {
  const std::size_t n = a.size();
  const double sign = invert ? 1.0 : -1.0;
  CVec w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = sign * kPi * static_cast<double>(k2) /
                       static_cast<double>(n);
    w[k] = cd(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = next_pow2(2 * n - 1);
  CVec fa(m, cd(0, 0)), fb(m, cd(0, 0));
  for (std::size_t k = 0; k < n; ++k) fa[k] = a[k] * w[k];
  fb[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k)
    fb[k] = fb[m - k] = std::conj(w[k]);
  fft_pow2(fa, false);
  fft_pow2(fb, false);
  for (std::size_t k = 0; k < m; ++k) fa[k] *= fb[k];
  fft_pow2(fa, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = fa[k] * inv_m * w[k];
}

void fft(CVec& a) {
  if (a.empty()) return;
  if (rem::dsp::is_pow2(a.size()))
    fft_pow2(a, false);
  else
    fft_bluestein(a, false);
}

void ifft(CVec& a) {
  if (a.empty()) return;
  if (rem::dsp::is_pow2(a.size()))
    fft_pow2(a, true);
  else
    fft_bluestein(a, true);
  const double inv_n = 1.0 / static_cast<double>(a.size());
  for (auto& x : a) x *= inv_n;
}

// The old copy-based SFFT: a fresh CVec per row and per column.
void dft_rows(rem::dsp::Matrix& m, bool invert) {
  const double scale = invert ? std::sqrt(static_cast<double>(m.cols()))
                              : 1.0 / std::sqrt(static_cast<double>(m.cols()));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    CVec row = m.row(r);
    if (invert)
      ifft(row);
    else
      fft(row);
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = row[c] * scale;
  }
}

void dft_cols(rem::dsp::Matrix& m, bool invert) {
  const double scale = invert ? std::sqrt(static_cast<double>(m.rows()))
                              : 1.0 / std::sqrt(static_cast<double>(m.rows()));
  for (std::size_t c = 0; c < m.cols(); ++c) {
    CVec col = m.col(c);
    if (invert)
      ifft(col);
    else
      fft(col);
    for (std::size_t r = 0; r < m.rows(); ++r) m(r, c) = col[r] * scale;
  }
}

rem::dsp::Matrix sfft(const rem::dsp::Matrix& dd_grid) {
  rem::dsp::Matrix tf = dd_grid;
  dft_cols(tf, false);
  dft_rows(tf, true);
  return tf;
}

}  // namespace baseline

namespace {

using Clock = std::chrono::steady_clock;

double time_ns_per_op(std::size_t iters, const std::function<void()>& fn) {
  fn();  // warm-up (also primes the plan cache for the cached variants)
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

rem::dsp::CVec random_vec(std::size_t n, rem::common::Rng& rng) {
  rem::dsp::CVec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

rem::dsp::Matrix random_grid(std::size_t m, std::size_t n,
                             rem::common::Rng& rng) {
  rem::dsp::Matrix g(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.complex_gaussian(1.0);
  return g;
}

struct Entry {
  std::string name;
  double baseline_ns;
  double cached_ns;
  double speedup() const { return baseline_ns / cached_ns; }
};

// One shape's estimates/sec measurement (singles loop vs estimate_batch).
struct EstResult {
  std::string name;
  double singles_eps = 0.0;   ///< estimates/sec, loop of estimate()
  double batched_eps = 0.0;   ///< estimates/sec, estimate_batch, 1 thread
  double max_abs_diff = 0.0;  ///< worst |h2 - h2_batch| entry across batch
  double max_rel_diff = 0.0;  ///< max_abs_diff / max |h2| entry (singles)
  std::size_t steady_allocs = 0;  ///< arena growths across the timed calls
  double speedup() const { return batched_eps / singles_eps; }
};

EstResult bench_estimates(const std::string& name, std::size_t m,
                          std::size_t n, std::size_t batch, std::size_t reps,
                          rem::common::Rng& rng) {
  std::vector<rem::crossband::CrossbandInput> inputs(batch);
  for (auto& in : inputs) {
    in.h1_dd = random_grid(m, n, rng);
    in.h1_tf = rem::dsp::Matrix(m, n);
    in.num = rem::phy::Numerology::lte(m, n);
    in.f1_hz = 1.88e9;
    in.f2_hz = 2.6e9;
  }

  EstResult r;
  r.name = name;

  rem::crossband::RemSvdEstimator singles;
  std::vector<rem::crossband::CrossbandOutput> singles_out(batch);
  const double singles_ns = time_ns_per_op(reps, [&] {
    for (std::size_t i = 0; i < batch; ++i)
      singles_out[i] = singles.estimate(inputs[i]);
  });

  rem::crossband::RemSvdEstimator batched;  // batch_threads defaults to 1
  std::vector<rem::crossband::CrossbandOutput> batched_out(batch);
  // Two warm calls: the first grows the arena chunk by chunk, the second's
  // reset() coalesces to the high-water chunk. From then on the arena
  // grow count must stay flat — that delta is the zero-allocation gate.
  batched.estimate_batch(inputs, batched_out);
  batched.estimate_batch(inputs, batched_out);
  const std::size_t grows_before = batched.arena_grows();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < reps; ++i)
    batched.estimate_batch(inputs, batched_out);
  const auto t1 = Clock::now();
  const double batched_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(reps);
  r.steady_allocs = batched.arena_grows() - grows_before;

  // Match is gated on the diff relative to the largest singles |h2| entry:
  // the entries themselves are O(gain), so an absolute 1e-10 bar would
  // tighten or loosen with the random channel draw.
  double max_entry = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    r.max_abs_diff =
        std::max(r.max_abs_diff, rem::dsp::Matrix::max_abs_diff(
                                     singles_out[i].h2, batched_out[i].h2));
    for (const auto& x : singles_out[i].h2.data())
      max_entry = std::max(max_entry, std::abs(x));
  }
  r.max_rel_diff = r.max_abs_diff / (max_entry + 1e-300);
  r.singles_eps = 1e9 * static_cast<double>(batch) / singles_ns;
  r.batched_eps = 1e9 * static_cast<double>(batch) / batched_ns;
  return r;
}

bool runs_equal(const rem::bench::ScenarioRun& a,
                const rem::bench::ScenarioRun& b) {
  return a.legacy.handovers == b.legacy.handovers &&
         a.legacy.failures == b.legacy.failures &&
         a.rem.handovers == b.rem.handovers &&
         a.rem.failures == b.rem.failures &&
         a.legacy.by_cause == b.legacy.by_cause &&
         a.rem.by_cause == b.rem.by_cause &&
         a.legacy.feedback_delay_s.samples() ==
             b.legacy.feedback_delay_s.samples() &&
         a.rem.feedback_delay_s.samples() ==
             b.rem.feedback_delay_s.samples() &&
         a.conflict_histogram == b.conflict_histogram &&
         a.total_conflicts == b.total_conflicts;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      out_path = argv[i];
  }
  if (out_path.empty())
    out_path = smoke ? "BENCH_DSP.smoke.json" : "BENCH_DSP.json";
  // Every timing below is scaled down by --smoke so a full run of the
  // binary fits in a ctest slot; wall-clock gates are skipped in smoke
  // mode (bit-identity / match / allocation gates are not).
  const std::size_t iter_div = smoke ? 10 : 1;
  rem::common::Rng rng(7);
  std::vector<Entry> entries;

  // --- FFT: cached plan vs per-call rebuild -------------------------------
  struct FftCase {
    std::string name;
    std::size_t n;
    std::size_t iters;
  };
  const std::vector<FftCase> cases = {
      {"fft_pow2_2048", 2048, 2000},
      {"fft_pow2_65536", 65536, 50},
      {"fft_bluestein_1200", 1200, 300},
      {"fft_bluestein_1499_prime", 1499, 200},
      {"fft_bluestein_600", 600, 500},
  };
  for (const auto& c : cases) {
    const auto x = random_vec(c.n, rng);
    const std::size_t iters = std::max<std::size_t>(1, c.iters / iter_div);
    const double base_ns = time_ns_per_op(iters, [&] {
      rem::dsp::CVec v = x;
      baseline::fft(v);
    });
    const double cached_ns = time_ns_per_op(iters, [&] {
      rem::dsp::CVec v = x;
      rem::dsp::fft(v);
    });
    entries.push_back({c.name, base_ns, cached_ns});
    std::printf("%-28s baseline %10.0f ns  cached %10.0f ns  %5.2fx\n",
                c.name.c_str(), base_ns, cached_ns,
                base_ns / cached_ns);
  }

  // --- SFFT: in-place strided vs copy-per-row/column ----------------------
  struct GridCase {
    std::string name;
    std::size_t m, n, iters;
  };
  const std::vector<GridCase> grids = {
      {"sfft_64x16", 64, 16, 400},
      {"sfft_600x14", 600, 14, 60},
      {"sfft_1200x14_lte", 1200, 14, 30},
  };
  for (const auto& g : grids) {
    const auto grid = random_grid(g.m, g.n, rng);
    const std::size_t iters = std::max<std::size_t>(1, g.iters / iter_div);
    const double base_ns = time_ns_per_op(iters, [&] {
      auto tf = baseline::sfft(grid);
      (void)tf;
    });
    const double cached_ns = time_ns_per_op(iters, [&] {
      auto tf = rem::phy::sfft(grid);
      (void)tf;
    });
    entries.push_back({g.name, base_ns, cached_ns});
    std::printf("%-28s baseline %10.0f ns  cached %10.0f ns  %5.2fx\n",
                g.name.c_str(), base_ns, cached_ns, base_ns / cached_ns);
  }

  // --- Batched estimator: estimate_batch vs loop of estimate() ------------
  // The tentpole gate: at batch 64, single-threaded, the SoA pipeline
  // (BatchMatrix pack + svd_batch + split-plane extraction, zero steady
  // allocations) must clear kEstGate x the throughput of looping the
  // scalar estimator, with matching results.
  constexpr double kEstGate = 4.0;
  struct EstCase {
    std::string name;
    std::size_t m, n, reps;
  };
  const std::vector<EstCase> est_cases = {
      {"est_12x14", 12, 14, 40},
      {"est_64x16", 64, 16, 6},
      {"est_128x64", 128, 64, 2},
  };
  const std::size_t est_batch = smoke ? 8 : 64;
  std::vector<EstResult> est_results;
  bool est_match_ok = true;
  bool est_alloc_ok = true;
  bool est_gate_ok = true;
  for (const auto& c : est_cases) {
    const std::size_t reps = std::max<std::size_t>(1, c.reps / iter_div);
    const auto r = bench_estimates(c.name, c.m, c.n, est_batch, reps, rng);
    est_match_ok = est_match_ok && r.max_rel_diff <= 1e-10;
    est_alloc_ok = est_alloc_ok && r.steady_allocs == 0;
    if (!smoke) est_gate_ok = est_gate_ok && r.speedup() >= kEstGate;
    std::printf(
        "%-28s singles %9.1f est/s  batched %9.1f est/s  %5.2fx  "
        "reldiff %.2e  steady allocs %zu\n",
        r.name.c_str(), r.singles_eps, r.batched_eps, r.speedup(),
        r.max_rel_diff, r.steady_allocs);
    est_results.push_back(r);
  }

  // --- Scenario runner: serial vs seed-parallel ---------------------------
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1, 2}
            : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8};
  const double duration_s = smoke ? 20.0 : 150.0;
  const std::size_t hw_threads = rem::common::ThreadPool::default_threads();
  // On a 1-core container the 4-thread run measures contention, not
  // speedup — the bit-identity gate still holds, but the wall-clock
  // comparison is annotated as invalid instead of read as a regression.
  const bool parallel_cmp_valid = hw_threads > 1;
  const auto t0 = Clock::now();
  const auto serial = rem::bench::run_route(
      rem::trace::Route::kBeijingShanghai, 300.0, duration_s, seeds);
  const auto t1 = Clock::now();
  const auto par = rem::bench::run_route_parallel(
      rem::trace::Route::kBeijingShanghai, 300.0, duration_s, seeds, true, 4);
  const auto t2 = Clock::now();
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double par_s = std::chrono::duration<double>(t2 - t1).count();
  const bool identical = runs_equal(serial, par);
  std::printf(
      "run_route %zu seeds: serial %.2f s, 4 threads %.2f s (%.2fx%s), "
      "identical=%s, hw threads=%zu\n",
      seeds.size(), serial_s, par_s, serial_s / par_s,
      parallel_cmp_valid ? "" : ", invalid on 1 hw thread",
      identical ? "true" : "false", hw_threads);

  // --- Metrics overhead: run_route with the obs layer on vs off -----------
  // Collecting metrics attaches a SpanTracer + per-seed Registry to every
  // simulation and reconciles trace vs stats; the acceptance bar is <= 1%
  // wall-clock overhead, reported here (timing is advisory, not an exit
  // gate — the statistics must still be bit-identical, which is gated).
  rem::bench::SeedRunOptions metrics_opts;
  metrics_opts.collect_metrics = false;
  const auto t3 = Clock::now();
  const auto metrics_off = rem::bench::run_route(
      rem::trace::Route::kBeijingShanghai, 300.0, duration_s, seeds, true,
      metrics_opts);
  const auto t4 = Clock::now();
  metrics_opts.collect_metrics = true;
  const auto metrics_on = rem::bench::run_route(
      rem::trace::Route::kBeijingShanghai, 300.0, duration_s, seeds, true,
      metrics_opts);
  const auto t5 = Clock::now();
  const double off_s = std::chrono::duration<double>(t4 - t3).count();
  const double on_s = std::chrono::duration<double>(t5 - t4).count();
  const double overhead_pct = 100.0 * (on_s - off_s) / off_s;
  const bool metrics_identical = runs_equal(metrics_off, metrics_on);
  const auto* latency =
      metrics_on.rem_metrics.find_histogram("sim.handover_latency_s");
  std::printf(
      "run_route metrics: off %.2f s, on %.2f s (overhead %+.2f%%), "
      "identical=%s, rem latency samples=%llu\n",
      off_s, on_s, overhead_pct, metrics_identical ? "true" : "false",
      latency != nullptr
          ? static_cast<unsigned long long>(latency->total_count())
          : 0ull);

  // --- JSON ---------------------------------------------------------------
  // Every timed section carries its own hardware_threads so a reader can
  // tell which numbers came from a 1-core container.
  std::ofstream js(out_path);
  js << "{\n";
  js << "  \"hardware_threads\": " << hw_threads << ",\n";
  js << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  js << "  \"fft\": {\n";
  js << "    \"hardware_threads\": " << hw_threads << ",\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    js << "    \"" << e.name << "\": {\"baseline_ns\": " << e.baseline_ns
       << ", \"cached_ns\": " << e.cached_ns
       << ", \"speedup\": " << e.speedup() << "}"
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  js << "  },\n";
  js << "  \"estimates_per_sec\": {\n";
  js << "    \"hardware_threads\": " << hw_threads << ",\n";
  js << "    \"batch\": " << est_batch << ",\n";
  js << "    \"batch_threads\": 1,\n";
  js << "    \"gate_min_speedup\": " << kEstGate << ",\n";
  js << "    \"gate_enforced\": " << (smoke ? "false" : "true") << ",\n";
  for (const auto& r : est_results) {
    js << "    \"" << r.name << "\": {\"singles_eps\": " << r.singles_eps
       << ", \"batched_eps\": " << r.batched_eps
       << ", \"speedup\": " << r.speedup()
       << ", \"max_abs_diff\": " << r.max_abs_diff
       << ", \"max_rel_diff\": " << r.max_rel_diff
       << ", \"steady_state_allocs\": " << r.steady_allocs << "},\n";
  }
  js << "    \"match_rel_1e10\": " << (est_match_ok ? "true" : "false")
     << ",\n";
  js << "    \"zero_alloc\": " << (est_alloc_ok ? "true" : "false") << ",\n";
  js << "    \"gate_passed\": " << (est_gate_ok ? "true" : "false") << "\n";
  js << "  },\n";
  js << "  \"run_route\": {\"hardware_threads\": " << hw_threads
     << ", \"seeds\": " << seeds.size()
     << ", \"duration_s\": " << duration_s
     << ", \"serial_wall_s\": " << serial_s
     << ", \"parallel4_wall_s\": " << par_s
     << ", \"speedup\": " << serial_s / par_s
     << ", \"parallel_comparison_valid\": "
     << (parallel_cmp_valid ? "true" : "false")
     << ", \"bit_identical\": " << (identical ? "true" : "false") << "},\n";
  js << "  \"metrics_overhead\": {\"hardware_threads\": " << hw_threads
     << ", \"off_wall_s\": " << off_s
     << ", \"on_wall_s\": " << on_s
     << ", \"overhead_pct\": " << overhead_pct
     << ", \"stats_bit_identical\": "
     << (metrics_identical ? "true" : "false") << "}\n";
  js << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  const bool ok = identical && metrics_identical && est_match_ok &&
                  est_alloc_ok && est_gate_ok;
  if (!ok)
    std::printf(
        "GATE FAILED: run_route_identical=%d metrics_identical=%d "
        "est_match=%d est_zero_alloc=%d est_speedup_gate=%d\n",
        identical, metrics_identical, est_match_ok, est_alloc_ok,
        est_gate_ok);
  return ok ? 0 : 1;
}
