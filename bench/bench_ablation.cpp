// Ablation study: which of REM's three mechanisms buys what.
//
// DESIGN.md calls out three design choices: (1) OTFS-carried signaling,
// (2) SVD cross-band estimation, (3) the Theorem-2 conflict-free policy.
// This bench disables each one in turn on the Beijing-Shanghai 300 km/h
// scenario and reports failures, conflict loops, feedback delay, and the
// §8 data-plane metrics (mean Shannon throughput, downtime).
#include "scenario_runner.hpp"

#include <cstdio>

using namespace rem;

namespace {

bench::AggregateStats run_variant(const core::RemConfig& rem_cfg,
                                  const std::vector<std::uint64_t>& seeds) {
  bench::AggregateStats agg;
  phy::LogisticBlerModel bler;
  for (const auto seed : seeds) {
    const auto sc = trace::make_scenario(trace::Route::kBeijingShanghai,
                                         300.0, 1500.0);
    common::Rng rng(seed);
    auto cells = sim::make_rail_deployment(sc.deployment, rng);
    auto holes = sim::make_hole_segments(sc.deployment, rng);
    sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
    trace::synthesize_policies(cells, sc.policy_mix, rng);  // keep rng in sync
    core::RemManager mgr(rem_cfg, rng.fork());
    sim::Simulator s(env, sc.sim, bler, rng.fork());
    // A proactive (negative-offset) REM variant *can* loop; attribute its
    // ping-pongs as conflicts when the uniform offsets violate Theorem 2.
    const bool violates = 2.0 * rem_cfg.a3_offset_db < 0.0;
    agg.add(s.run(mgr, [violates](int, int) { return violates; }));
  }
  return agg;
}

void print_row(const char* name, const bench::AggregateStats& a) {
  std::printf("  %-24s %8.2f%% %11.2f%% %10d %11.0fms %10.1f %9.2f%%\n",
              name, bench::pct(a.failure_ratio()),
              bench::pct(a.failure_ratio_excluding_holes()),
              a.conflict_loop_episodes,
              a.feedback_delay_s.empty()
                  ? 0.0
                  : 1e3 * a.feedback_delay_s.mean(),
              a.throughput_bps.empty()
                  ? 0.0
                  : a.throughput_bps.mean() / 1e6,
              a.downtime_fraction.empty()
                  ? 0.0
                  : 100.0 * a.downtime_fraction.mean());
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> seeds = {61, 62, 63};
  std::printf("Ablation: Beijing-Shanghai @ 300 km/h, three REM mechanisms "
              "toggled\n");
  std::printf("  %-24s %9s %12s %10s %12s %10s %10s\n", "variant", "fail%",
              "fail% w/o hole", "conf.loops", "fdbk delay", "thpt Mbps",
              "downtime");

  // Legacy baseline for reference.
  const auto base = bench::run_route(trace::Route::kBeijingShanghai, 300.0,
                                     1500.0, seeds);
  print_row("Legacy 4G/5G", base.legacy);

  core::RemConfig full;
  print_row("REM (full)", run_variant(full, seeds));

  core::RemConfig no_otfs = full;
  no_otfs.use_otfs_signaling = false;
  print_row("REM - OTFS signaling", run_variant(no_otfs, seeds));

  core::RemConfig no_xband = full;
  no_xband.use_crossband = false;
  print_row("REM - cross-band est.", run_variant(no_xband, seeds));

  core::RemConfig proactive = full;
  proactive.a3_offset_db = -2.0;  // violates Theorem 2 (sum -4 < 0)
  print_row("REM - conflict-free pol.", run_variant(proactive, seeds));

  core::RemConfig capacity = full;
  capacity.capacity_selection = true;
  print_row("REM + capacity select", run_variant(capacity, seeds));

  std::printf(
      "\nExpected shape: dropping OTFS gives back signaling-loss failures; "
      "dropping cross-band\ntriples the feedback delay; dropping the "
      "Theorem-2 offsets floods the run with conflict\nloops. REM's "
      "data-plane benefit (§8) shows as ~1.5x legacy throughput; capacity "
      "selection\nis near-neutral here because the wide corridor layer "
      "already dominates cell choice.\n");
  return 0;
}
