// Fig. 11: stabilized delay-Doppler domain — delivered signaling SNR over
// time. Legacy signaling occupies a narrowband slice whose gain rides the
// fading process; REM's OTFS overlay spreads every signaling symbol over
// the full grid, so it sees the grid-average gain.
#include "channel/profiles.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

#include <cmath>
#include <cstdio>

using namespace rem;

namespace {

void trace_snr(const char* label, channel::Profile profile,
               double speed_kmh, std::uint64_t seed) {
  common::Rng rng(seed);
  channel::ChannelDrawConfig draw;
  draw.profile = profile;
  draw.speed_mps = common::kmh_to_mps(speed_kmh);
  draw.carrier_hz = 2.0e9;
  const auto ch = channel::draw_channel(draw, rng);

  const double df = 15e3;
  const double symbol_t = 1.0 / df;
  const double base_snr_db = 18.0;
  const std::size_t m = 1200;  // 20 MHz grid: full frequency diversity
  const std::size_t per_subframe = 14;

  std::printf("\nFig. 11 (%s): delivered signaling SNR over 1 s\n", label);
  std::printf("  %7s %12s %12s\n", "t(s)", "Legacy(dB)", "REM/OTFS(dB)");
  common::Summary legacy_s, rem_s;
  for (std::size_t sf = 0; sf < 100; ++sf) {
    const double t0 = static_cast<double>(sf * per_subframe) * symbol_t;
    const double g_leg = std::norm(ch.tf_response(t0, 5.0 * df));
    double g_avg = 0.0;
    for (std::size_t mm = 0; mm < m; mm += 100)
      for (std::size_t nn = 0; nn < per_subframe; ++nn)
        g_avg += std::norm(ch.tf_response(
            t0 + static_cast<double>(nn) * symbol_t,
            static_cast<double>(mm) * df));
    g_avg /= static_cast<double>((m / 100) * per_subframe);
    const double leg_db =
        base_snr_db + 10.0 * std::log10(std::max(g_leg, 1e-9));
    const double rem_db =
        base_snr_db + 10.0 * std::log10(std::max(g_avg, 1e-9));
    legacy_s.add(leg_db);
    rem_s.add(rem_db);
    if (sf % 10 == 0)
      std::printf("  %7.2f %12.1f %12.1f\n", t0, leg_db, rem_db);
  }
  std::printf("  std dev: legacy %.2f dB vs REM %.2f dB\n",
              legacy_s.stddev(), rem_s.stddev());
}

}  // namespace

int main() {
  std::printf("Fig. 11: SNR stability, legacy narrowband vs REM overlay\n");
  trace_snr("a: high-speed rails, 350 km/h", channel::Profile::kHST350,
            350.0, 3);
  trace_snr("b: low mobility, EVA", channel::Profile::kEVA, 60.0, 4);
  std::printf(
      "\nPaper reference (Fig. 11): legacy OFDM SNR swings by several dB "
      "while REM's\ndelay-Doppler SNR stays nearly flat in both regimes.\n");
  return 0;
}
