// Table 1 (trigger criteria) and Table 4 (dataset overview).
//
// Table 1 is definitional — printed as an executable self-check of the
// event engine against each criterion. Table 4 characterizes the datasets;
// here the synthetic equivalents are generated and summarized the same way
// (cells/sites, signaling message counts, feedback counts, handovers),
// using the simulator's recorded event logs.
#include "core/legacy_manager.hpp"
#include "mobility/events.hpp"
#include "phy/bler_model.hpp"
#include "trace/eventlog.hpp"
#include "trace/scenario.hpp"

#include <cstdio>

using namespace rem;
namespace rm = rem::mobility;

namespace {

void table1() {
  std::printf("Table 1: wireless triggering criteria (executable check)\n");
  struct Row {
    const char* name;
    rm::EventConfig cfg;
    double rs, rn;
    bool expect;
    const char* text;
  };
  const Row rows[] = {
      {"A1", {rm::EventType::kA1, -100, 0, 0, 0, 0}, -95, 0, true,
       "serving better than threshold"},
      {"A2", {rm::EventType::kA2, -100, 0, 0, 0, 0}, -105, 0, true,
       "serving worse than threshold"},
      {"A3", {rm::EventType::kA3, 0, 0, 3, 0, 0}, -100, -96, true,
       "neighbor offset-better than serving"},
      {"A4", {rm::EventType::kA4, -103, 0, 0, 0, 0}, -120, -100, true,
       "neighbor better than threshold"},
      {"A5", {rm::EventType::kA5, -110, -108, 0, 0, 0}, -115, -105, true,
       "serving worse AND neighbor better than thresholds"},
  };
  for (const auto& r : rows) {
    const bool got = rm::event_condition(r.cfg, r.rs, r.rn);
    std::printf("  %-3s %-48s %s\n", r.name, r.text,
                got == r.expect ? "OK" : "MISMATCH");
  }
}

void table4_route(const char* label, trace::Route route, double speed,
                  std::uint64_t seed) {
  const auto sc = trace::make_scenario(route, speed, 1500.0);
  common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

  int sites = 0;
  for (const auto& c : cells)
    sites = std::max(sites, c.id.base_station + 1);
  std::size_t policy_rules = 0;
  for (const auto& [id, p] : policies) policy_rules += p.rules.size();

  phy::LogisticBlerModel bler;
  core::LegacyConfig lc;
  lc.policies = policies;
  core::LegacyManager mgr(lc);
  auto sim_cfg = sc.sim;
  sim_cfg.record_events = true;
  sim::Simulator s(env, sim_cfg, bler, rng.fork());
  const auto stats = s.run(mgr);
  const auto summary = trace::summarize_event_log(stats.events);

  std::size_t feedback = 0;
  for (const auto& e : stats.events)
    feedback += e.kind == sim::EventKind::kReportDelivered;

  std::printf("\n  %-22s %s at %.0f km/h\n", label, "synthetic", speed);
  std::printf("    route length          %8.0f km\n",
              sc.deployment.route_len_m / 1000.0);
  std::printf("    # cells (sites)       %8zu (%d)\n", cells.size(), sites);
  std::printf("    # policy configs      %8zu rules\n", policy_rules);
  std::printf("    # signaling messages  %8zu\n", stats.events.size());
  std::printf("    # feedback delivered  %8zu\n", feedback);
  std::printf("    # handovers           %8zu (every %.1f s)\n",
              summary.handovers, summary.mean_handover_interval_s);
  std::printf("    carriers              ");
  for (const auto& [ch, fc] : sc.deployment.channels)
    std::printf("%.1f MHz  ", fc / 1e6);
  std::printf("\n");
}

}  // namespace

int main() {
  table1();
  std::printf("\nTable 4: synthetic dataset overview (per seed; the paper "
              "aggregates full routes)\n");
  table4_route("Low mobility (LA)", trace::Route::kLowMobilityLA, 60.0, 3);
  table4_route("Beijing-Taiyuan", trace::Route::kBeijingTaiyuan, 250.0, 5);
  table4_route("Beijing-Shanghai", trace::Route::kBeijingShanghai, 300.0,
               7);
  std::printf(
      "\nPaper reference (Table 4): 932-3139 cells over 619-51367 km with "
      "46.8k-601.7k\nsignaling messages; the synthetic routes reproduce the "
      "per-km densities.\n");
  return 0;
}
