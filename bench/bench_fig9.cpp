// Fig. 9: REM's benefit for TCP.
//  (a) TCP stall time per radio failure, legacy vs REM, at 200 and 300 km/h;
//  (b) one annotated failure timeline showing RTO amplification.
#include "scenario_runner.hpp"
#include "sim/tcp.hpp"

#include <cstdio>

using namespace rem;

namespace {

common::Summary stalls_for(const std::vector<double>& outages,
                           common::Rng& rng) {
  std::vector<double> phases;
  phases.reserve(outages.size());
  for (std::size_t i = 0; i < outages.size(); ++i)
    phases.push_back(rng.uniform(0.0, 1.0));
  common::Summary s;
  s.add_all(sim::tcp_stalls(outages, phases));
  return s;
}

}  // namespace

int main() {
  std::printf("Fig. 9a: TCP stall time per radio failure (s)\n");
  std::printf("  %-10s %10s %10s\n", "speed", "Legacy", "REM");
  common::Rng rng(17);
  for (double speed : {200.0, 300.0}) {
    const auto run = bench::run_route_parallel(trace::Route::kBeijingShanghai,
                                               speed, 2000.0, {21, 22, 23});
    const auto lg = stalls_for(run.legacy.outage_durations_s, rng);
    const auto rm = stalls_for(run.rem.outage_durations_s, rng);
    std::printf("  %-10.0f %9.1fs %9.1fs   (outages: %zu vs %zu)\n", speed,
                lg.empty() ? 0.0 : lg.mean(), rm.empty() ? 0.0 : rm.mean(),
                run.legacy.outage_durations_s.size(),
                run.rem.outage_durations_s.size());
  }

  // ---- (b) one annotated failure ----
  std::printf("\nFig. 9b: TCP timeline through one handover failure\n");
  const double outage = 2.3;  // radio connectivity gap (fail + re-establish)
  sim::TcpConfig tcp;
  const double stall = sim::tcp_stall_for_outage(outage, tcp, 0.25);
  std::printf("  t=0.00s  handover fails, radio link lost\n");
  std::printf("  t=%.2fs  TCP retransmissions backing off (RTO doubling "
              "from %.2fs)\n",
              tcp.base_rto_s, tcp.base_rto_s);
  std::printf("  t=%.2fs  radio connection re-established\n", outage);
  std::printf("  t=%.2fs  next TCP retransmission fires, throughput "
              "recovers\n",
              stall);
  std::printf("  -> %.1fs radio outage amplified to %.1fs TCP stall\n",
              outage, stall);
  std::printf(
      "\nPaper reference (Fig. 9): average stall 7.9 -> 4.2 s at 200 km/h "
      "and 6.6 -> 4.5 s at\n300 km/h; a ~2 s radio gap stalls TCP for ~9 s "
      "via RTO backoff.\n");
  return 0;
}
