// Table 3: Two-cell policy conflicts by type in the HSR policy sets.
//
// Synthesizes the per-route operator policy mixes and runs the exact
// pairwise conflict analyzer; prints the Table 3 histogram (counts and
// percentages per event-type pair, split intra/inter-frequency).
#include "mobility/conflict.hpp"
#include "trace/scenario.hpp"

#include <cstdio>

using namespace rem;

namespace {

void analyze(const char* label, trace::Route route, double speed_kmh,
             std::uint64_t seed) {
  const auto sc = trace::make_scenario(route, speed_kmh, 4000.0);
  common::Rng rng(seed);
  const auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);
  const auto pcs = trace::to_policy_cells(cells, policies);
  // Only cells covering the same area can loop a client between them
  // (Table 3 counts neighbors, not the whole route).
  const double reach = 2.0 * sc.deployment.site_spacing_mean_m;
  const auto neighbors = [&](std::size_t i, std::size_t j) {
    return std::abs(cells[i].site_pos_m - cells[j].site_pos_m) <= reach;
  };
  const auto conflicts =
      mobility::find_two_cell_conflicts(pcs, {}, neighbors);

  int intra = 0;
  for (const auto& c : conflicts) intra += c.inter_frequency ? 0 : 1;

  std::printf("\n%s: %zu cells, %zu two-cell conflicts (%d intra-, %d "
              "inter-frequency)\n",
              label, cells.size(), conflicts.size(), intra,
              static_cast<int>(conflicts.size()) - intra);
  std::printf("  %-8s %-16s %8s %8s\n", "Type", "Frequency", "count", "%");
  const auto hist = mobility::conflict_histogram(conflicts);
  for (const auto& [type, count] : hist) {
    // Determine the dominant frequency relationship for this type.
    int type_intra = 0, type_total = 0;
    for (const auto& c : conflicts) {
      if (mobility::conflict_type_label(c.event_i, c.event_j) != type)
        continue;
      ++type_total;
      type_intra += c.inter_frequency ? 0 : 1;
    }
    std::printf("  %-8s %-16s %8d %7.1f%%\n", type.c_str(),
                type_intra * 2 > type_total ? "intra-frequency"
                                            : "inter-frequency",
                count,
                conflicts.empty()
                    ? 0.0
                    : 100.0 * count / static_cast<double>(conflicts.size()));
  }
}

}  // namespace

int main() {
  std::printf("Table 3: Two-cell policy conflicts in HSR policy sets\n");
  analyze("Beijing-Taiyuan", trace::Route::kBeijingTaiyuan, 250.0, 7);
  analyze("Beijing-Shanghai", trace::Route::kBeijingShanghai, 300.0, 9);
  std::printf(
      "\nPaper reference (Table 3): A3-A3 dominates (92.8%% / 55.9%%), with "
      "A3-A4 and A4-A4\ninter-frequency conflicts the next largest classes "
      "on Beijing-Shanghai.\n");
  return 0;
}
