// Fig. 14a: feedback delay reduction — CDF of measurement feedback latency
// under legacy sequential measurement vs REM cross-band estimation, from
// the full network simulation plus the analytic measurement model.
#include "mobility/measurement.hpp"
#include "scenario_runner.hpp"

#include <cstdio>

using namespace rem;

int main() {
  // ---- From the full simulator ----
  const auto run = bench::run_route(trace::Route::kBeijingShanghai, 300.0,
                                    2000.0, {31, 32, 33});
  std::printf("Fig. 14a: measurement feedback latency (network sim, "
              "300 km/h)\n");
  std::printf("  %-8s %10s %10s %10s\n", "", "mean", "p50", "p90");
  const auto& lg = run.legacy.feedback_delay_s;
  const auto& rm = run.rem.feedback_delay_s;
  std::printf("  %-8s %8.1fms %8.1fms %8.1fms\n", "Legacy",
              1e3 * lg.mean(), 1e3 * lg.percentile(50),
              1e3 * lg.percentile(90));
  std::printf("  %-8s %8.1fms %8.1fms %8.1fms\n", "REM", 1e3 * rm.mean(),
              1e3 * rm.percentile(50), 1e3 * rm.percentile(90));

  std::printf("\n  delay CDF:\n  %8s %8s %8s\n", "delay(s)", "Legacy",
              "REM");
  for (double d = 0.0; d <= 3.0; d += 0.25)
    std::printf("  %8.2f %8.2f %8.2f\n", d, lg.cdf_at(d), rm.cdf_at(d));

  // ---- Analytic model across neighbor-set sizes ----
  std::printf("\n  analytic model (sites on the route, half with a second "
              "co-located cell):\n");
  std::printf("  %6s %12s %12s\n", "sites", "Legacy", "REM");
  mobility::MeasurementConfig mc;
  mc.crossband_runtime_s = 0.020;
  for (int sites = 1; sites <= 6; ++sites) {
    std::vector<mobility::MeasureTask> tasks;
    for (int s = 0; s < sites; ++s) {
      tasks.push_back({{s * 2, s, 10}, true});
      if (s % 2 == 0) tasks.push_back({{s * 2 + 1, s, 20}, false});
    }
    std::printf("  %6d %10.1fms %10.1fms\n", sites,
                1e3 * mobility::legacy_feedback_delay_s(tasks, mc, 1),
                1e3 * mobility::rem_feedback_delay_s(tasks, mc));
  }
  std::printf(
      "\nPaper reference (Fig. 14a): average feedback latency drops from "
      "802.5 ms to 242.4 ms.\n");
  return 0;
}
