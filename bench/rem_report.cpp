// rem_report: human-readable summary of the observability artifacts the
// benches emit — a rem-metrics-v1 snapshot (counters/gauges tables,
// ASCII-bar histograms with p50/p90/p99) and optionally a span trace
// (outcome counts per span kind). See OBSERVABILITY.md for the artifact
// formats and metric catalogue.
//
// Usage:
//   rem_report <metrics.json> [trace.jsonl]
//   rem_report --selftest     (round-trips a synthetic snapshot through a
//                              temp file and exercises the trace
//                              summarizer's accept/reject paths; wired
//                              into ctest as tier1)
//
// Malformed inputs — unreadable metrics JSON, or trace lines that are not
// one span object with a known kind and an outcome — exit non-zero with
// the offending file/line named on stderr.
#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

using rem::obs::HistogramSnapshot;
using rem::obs::MetricsSnapshot;

void print_histogram(const HistogramSnapshot& h) {
  const std::uint64_t total = h.total_count();
  std::printf("  %s  (%llu samples, sum %.6g)\n", h.name.c_str(),
              static_cast<unsigned long long>(total), h.sum);
  if (total == 0) return;
  const std::uint64_t peak =
      *std::max_element(h.counts.begin(), h.counts.end());
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    const int bar = peak > 0
                        ? static_cast<int>(40 * h.counts[i] / peak)
                        : 0;
    char label[64];
    if (i < h.edges.size())
      std::snprintf(label, sizeof(label), "<= %-10.4g", h.edges[i]);
    else
      std::snprintf(label, sizeof(label), " > %-10.4g", h.edges.back());
    std::printf("    %s %8llu |%.*s\n", label,
                static_cast<unsigned long long>(h.counts[i]), bar,
                "########################################");
  }
  std::printf("    p50 %.6g  p90 %.6g  p99 %.6g\n", h.quantile(0.50),
              h.quantile(0.90), h.quantile(0.99));
}

void print_snapshot(const MetricsSnapshot& snap) {
  if (!snap.counters.empty()) {
    std::printf("counters:\n");
    for (const auto& c : snap.counters)
      std::printf("  %-42s %12llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
  }
  if (!snap.gauges.empty()) {
    std::printf("gauges:\n");
    for (const auto& g : snap.gauges)
      std::printf("  %-42s %12.6g\n", g.name.c_str(), g.value);
  }
  if (!snap.histograms.empty()) {
    std::printf("histograms:\n");
    for (const auto& h : snap.histograms) print_histogram(h);
  }
  if (snap.empty()) std::printf("(empty snapshot)\n");
}

// Minimal field scraper for our own trace emitter (one object per line,
// `"key": "value"` with a space after the colon).
std::string extract_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

int summarize_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "rem_report: cannot open %s\n", path.c_str());
    return 1;
  }
  // Each non-empty line must be one span object carrying a known kind and
  // a non-empty outcome; anything else is rejected with the offending line
  // rather than silently folded into a bogus "/" bucket.
  std::map<std::string, std::uint64_t> outcomes;
  std::uint64_t spans = 0;
  std::string line;
  std::uint64_t line_no = 0;
  const auto reject = [&](const char* why) {
    std::fprintf(stderr, "rem_report: %s line %llu: %s in '%.120s'\n",
                 path.c_str(), static_cast<unsigned long long>(line_no), why,
                 line.c_str());
    return 1;
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}')
      return reject("expected one JSON object per line");
    const std::string kind = extract_field(line, "kind");
    const std::string outcome = extract_field(line, "outcome");
    if (kind.empty()) return reject("missing or empty 'kind' field");
    if (kind != "handover" && kind != "outage")
      return reject("unknown span kind");
    if (outcome.empty()) return reject("missing or empty 'outcome' field");
    ++spans;
    ++outcomes[kind + "/" + outcome];
  }
  std::printf("trace: %llu spans (%s)\n",
              static_cast<unsigned long long>(spans), path.c_str());
  for (const auto& [key, n] : outcomes)
    std::printf("  %-42s %12llu\n", key.c_str(),
                static_cast<unsigned long long>(n));
  return 0;
}

// Round-trip a synthetic snapshot through the JSON codec and re-summarize
// it, so ctest exercises the reader, the quantile math, and the printer
// without needing a prior bench run.
int selftest() {
  rem::obs::Registry registry;
  registry.counter("selftest.events")->add(42);
  registry.gauge("selftest.peak")->set(2.5);
  auto* h = registry.histogram("selftest.latency_s",
                               rem::obs::handover_latency_buckets_s());
  for (int i = 1; i <= 100; ++i) h->record(0.01 * i);
  const auto snap = registry.snapshot();

  const std::string path = "rem_report_selftest.json";
  rem::obs::write_metrics_json_file(snap, path);
  const auto back = rem::obs::read_metrics_json_file(path);
  std::remove(path.c_str());

  const auto* c = back.find_counter("selftest.events");
  const auto* g = back.find_gauge("selftest.peak");
  const auto* hist = back.find_histogram("selftest.latency_s");
  if (c == nullptr || c->value != 42 || g == nullptr || g->value != 2.5 ||
      hist == nullptr || hist->total_count() != 100 ||
      hist->sum != snap.histograms.front().sum) {
    std::fprintf(stderr, "rem_report --selftest: round trip mismatch\n");
    return 1;
  }
  const double p50 = hist->quantile(0.50);
  if (p50 < 0.3 || p50 > 0.7) {
    std::fprintf(stderr, "rem_report --selftest: implausible p50 %g\n", p50);
    return 1;
  }
  print_snapshot(back);

  // Trace summarizer: a well-formed trace summarizes cleanly, and each
  // malformed shape (bad framing, missing kind, unknown kind, missing
  // outcome) is rejected with a non-zero exit.
  const std::string trace_path = "rem_report_selftest_trace.jsonl";
  const auto write_trace = [&](const char* body) {
    std::ofstream os(trace_path);
    os << body;
  };
  write_trace(
      "{\"kind\": \"handover\", \"outcome\": \"complete\"}\n"
      "\n"
      "{\"kind\": \"outage\", \"outcome\": \"reestablished\"}\n");
  if (summarize_trace(trace_path) != 0) {
    std::fprintf(stderr,
                 "rem_report --selftest: valid trace was rejected\n");
    std::remove(trace_path.c_str());
    return 1;
  }
  const char* malformed[] = {
      "not json\n",
      "{\"outcome\": \"complete\"}\n",
      "{\"kind\": \"mystery\", \"outcome\": \"complete\"}\n",
      "{\"kind\": \"handover\"}\n",
  };
  for (const char* body : malformed) {
    write_trace(body);
    if (summarize_trace(trace_path) == 0) {
      std::fprintf(stderr,
                   "rem_report --selftest: malformed trace accepted: %s",
                   body);
      std::remove(trace_path.c_str());
      return 1;
    }
  }
  std::remove(trace_path.c_str());
  std::printf("selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--selftest") return selftest();
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: rem_report <metrics.json> [trace.jsonl]\n"
                 "       rem_report --selftest\n");
    return 2;
  }
  MetricsSnapshot snap;
  try {
    snap = rem::obs::read_metrics_json_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rem_report: %s\n", e.what());
    return 1;
  }
  std::printf("metrics: %s\n", argv[1]);
  print_snapshot(snap);
  if (argc == 3) return summarize_trace(argv[2]);
  return 0;
}
