// Named-scenario fleet sweep: compile every scenarios/*.json through the
// rem::scenario compiler, run REM and legacy fleets over each compiled
// world, and enforce each scenario's own acceptance gates.
//
// Modes:
//   (default)    full sweep at the scenarios' authored durations; writes
//                BENCH_FLEET.json + BENCH_FLEET_metrics.json.
//   --smoke      same sweep with extra time compression so every compiled
//                horizon fits in kSmokeHorizon_s. Compression (not
//                truncation) keeps every authored fault window inside the
//                run; writes BENCH_FLEET_smoke.json. Wired into ctest as
//                bench_fleet_smoke (label: chaos).
//   --validate   compile every scenario at authored parameters (the real
//                configs are what must validate), then run only the
//                shortest one end-to-end — extra-compressed, invariant
//                checkers attached — as the check_tier1.sh --scenarios
//                step. No JSON artifacts.
//   --list       print the scenario catalogue — name, fleet size, horizon,
//                fault kinds exercised, and acceptance gates — without
//                running anything. Wired into ctest as bench_fleet_list.
//   --dir <d>    read scenarios from <d> instead of the baked-in
//                REM_SCENARIO_DIR.
//
// Determinism: each scenario runs at its own seed through the fixed
// fleet construction order (bench/fleet_runner.hpp); invariant checkers
// ride every UE of every run, so a sweep that passes also certifies the
// per-UE protocol invariants under each scenario's fault schedule.
//
// EXPERIMENTS.md documents the output schema; SCENARIOS.md catalogues the
// library and the per-scenario gate rationale.
#include "fleet_runner.hpp"
#include "obs/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#ifndef REM_SCENARIO_DIR
#define REM_SCENARIO_DIR "scenarios"
#endif

namespace {

/// Smoke/validate horizon cap: the sweep stays CI-sized on one core.
constexpr double kSmokeHorizon_s = 45.0;
constexpr double kValidateHorizon_s = 30.0;

/// Extra time compression that brings a spec's compiled horizon at or
/// under `cap_s` (1.0 when it already fits). Integral factors keep the
/// compressed fault schedules easy to reason about in logs.
double extra_compression_for(const rem::scenario::ScenarioSpec& spec,
                             double cap_s) {
  const double compiled = spec.duration_s / spec.time_compression;
  if (compiled <= cap_s) return 1.0;
  return std::ceil(compiled / cap_s);
}

struct FleetMetrics {
  int handovers = 0;
  int failures = 0;
  double failure_ratio = 0.0;
  double downtime_fraction = 0.0;
  int degraded_enters = 0;
  int prep_failures = 0;
  int bs_queue_shed = 0;
  int admission_rejects = 0;
  int bs_crashes = 0;
  std::uint64_t backhaul_dropped = 0;
};

FleetMetrics summarize(const rem::sim::SimStats& s) {
  FleetMetrics m;
  m.handovers = s.handovers;
  m.failures = s.failures;
  m.failure_ratio =
      s.handovers > 0 ? static_cast<double>(s.failures) / s.handovers
                      : (s.failures > 0 ? 1.0 : 0.0);
  m.downtime_fraction = s.downtime_fraction;
  m.degraded_enters = s.degraded_enters;
  m.prep_failures = s.prep_failures;
  m.bs_queue_shed = s.bs_queue_shed;
  m.admission_rejects = s.admission_rejects;
  m.bs_crashes = s.bs_crashes;
  m.backhaul_dropped = s.backhaul_dropped_loss + s.backhaul_dropped_partition +
                       s.backhaul_dropped_queue;
  return m;
}

struct ScenarioResult {
  std::string name;
  double duration_s = 0.0;
  int fleet_size = 0;
  std::size_t fault_windows = 0;
  rem::scenario::ScenarioGates gates;
  FleetMetrics legacy, rem;
  std::vector<std::string> gate_failures;

  bool pass() const { return gate_failures.empty(); }
};

/// Run both managers over one compiled scenario and evaluate its gates.
ScenarioResult run_scenario(const rem::scenario::CompiledScenario& c,
                            const rem::phy::BlerModel& bler,
                            rem::obs::Registry& registry) {
  ScenarioResult r;
  r.name = c.name;
  r.duration_s = c.scenario.sim.duration_s;
  r.fleet_size = c.scenario.sim.fleet_size;
  r.fault_windows = c.scenario.sim.faults.windows.size();
  r.gates = c.gates;

  const auto run = [&](bool use_rem) {
    rem::bench::FleetScenarioRunOptions opts;
    opts.use_rem = use_rem;
    opts.context = "scenario '" + c.name + "' (seed " +
                   std::to_string(c.seed) + ", " +
                   std::string(use_rem ? "REM" : "legacy") + ")";
    return rem::bench::run_fleet_scenario(c.scenario, c.seed, bler, opts)
        .aggregate;
  };
  r.legacy = summarize(run(false));
  r.rem = summarize(run(true));

  // Per-scenario metric labels (OBSERVABILITY.md): every counter the
  // sweep emits is prefixed scenario.<name>.<manager>.
  const auto record = [&](const char* mgr, const FleetMetrics& m) {
    const std::string p = "scenario." + r.name + "." + mgr + ".";
    registry.counter(p + "handovers")->add(static_cast<std::uint64_t>(m.handovers));
    registry.counter(p + "failures")->add(static_cast<std::uint64_t>(m.failures));
    registry.counter(p + "prep_failures")
        ->add(static_cast<std::uint64_t>(m.prep_failures));
    registry.counter(p + "bs_queue_shed")
        ->add(static_cast<std::uint64_t>(m.bs_queue_shed));
    registry.counter(p + "admission_rejects")
        ->add(static_cast<std::uint64_t>(m.admission_rejects));
    registry.counter(p + "backhaul_dropped")->add(m.backhaul_dropped);
    registry.gauge(p + "failure_ratio")->set(m.failure_ratio);
    registry.gauge(p + "downtime_fraction")->set(m.downtime_fraction);
  };
  record("legacy", r.legacy);
  record("rem", r.rem);

  char buf[256];
  if (r.legacy.handovers < r.gates.min_legacy_handovers) {
    std::snprintf(buf, sizeof(buf),
                  "legacy handovers %d below gate.min_legacy_handovers %d "
                  "(scenario provokes too little mobility)",
                  r.legacy.handovers, r.gates.min_legacy_handovers);
    r.gate_failures.push_back(buf);
  }
  if (r.rem.failure_ratio > r.gates.max_rem_failure_ratio) {
    std::snprintf(buf, sizeof(buf),
                  "REM failure ratio %.4f above gate.max_rem_failure_ratio "
                  "%.4f",
                  r.rem.failure_ratio, r.gates.max_rem_failure_ratio);
    r.gate_failures.push_back(buf);
  }
  if (r.gates.rem_le_legacy && r.rem.failure_ratio > r.legacy.failure_ratio) {
    std::snprintf(buf, sizeof(buf),
                  "REM failure ratio %.4f exceeds legacy %.4f "
                  "(gate.rem_le_legacy)",
                  r.rem.failure_ratio, r.legacy.failure_ratio);
    r.gate_failures.push_back(buf);
  }
  return r;
}

void write_manager_json(std::ostream& os, const FleetMetrics& m) {
  os << "{\"handovers\": " << m.handovers << ", \"failures\": " << m.failures
     << ", \"failure_ratio\": " << m.failure_ratio
     << ", \"downtime_fraction\": " << m.downtime_fraction
     << ", \"degraded_enters\": " << m.degraded_enters
     << ", \"prep_failures\": " << m.prep_failures
     << ", \"bs_queue_shed\": " << m.bs_queue_shed
     << ", \"admission_rejects\": " << m.admission_rejects
     << ", \"bs_crashes\": " << m.bs_crashes
     << ", \"backhaul_dropped\": " << m.backhaul_dropped << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, validate = false, list = false;
  std::string dir = REM_SCENARIO_DIR;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      out_path = arg;
    }
  }
  if (out_path.empty())
    out_path = smoke ? "BENCH_FLEET_smoke.json" : "BENCH_FLEET.json";

  try {
    const auto names = rem::scenario::list_scenario_names(dir);
    if (names.empty()) {
      std::printf("FAIL: no scenarios found in %s\n", dir.c_str());
      return 1;
    }
    std::printf("fleet sweep: %zu scenarios from %s%s%s\n", names.size(),
                dir.c_str(), smoke ? " [smoke]" : "",
                validate ? " [validate]" : "");

    rem::phy::LogisticBlerModel bler;

    if (list) {
      // Catalogue mode: name, world size, fault kinds exercised (scripted
      // windows plus random specs, deduplicated in enum order), and the
      // scenario's own acceptance gates. Compiling (rather than just
      // parsing) keeps the listing honest: a scenario that no longer
      // validates cannot appear in the catalogue.
      for (const auto& name : names) {
        const auto spec = rem::scenario::load_scenario(dir, name);
        const auto c = rem::scenario::compile(spec);
        std::set<rem::sim::FaultKind> kinds;
        for (const auto& w : c.scenario.sim.faults.windows)
          kinds.insert(w.kind);
        for (const auto& rf : c.scenario.sim.faults.random)
          kinds.insert(rf.kind);
        std::string kind_list;
        for (const auto k : kinds) {
          if (!kind_list.empty()) kind_list += ", ";
          kind_list += rem::sim::fault_kind_name(k);
        }
        if (kind_list.empty()) kind_list = "none";
        std::printf("%-28s %2d UEs %6.1f s  faults: %s\n", name.c_str(),
                    c.scenario.sim.fleet_size, c.scenario.sim.duration_s,
                    kind_list.c_str());
        std::printf("    %s\n", c.description.c_str());
        std::printf("    gates: max_rem_failure_ratio %.2f, rem_le_legacy "
                    "%s, min_legacy_handovers %d\n",
                    c.gates.max_rem_failure_ratio,
                    c.gates.rem_le_legacy ? "true" : "false",
                    c.gates.min_legacy_handovers);
      }
      std::printf("PASS: %zu scenarios listed\n", names.size());
      return 0;
    }

    if (validate) {
      // Compile everything at authored parameters — this is the
      // check_tier1 --scenarios step, so the configs that must hold are
      // the committed ones, not compressed variants.
      std::string shortest;
      double shortest_s = 0.0;
      for (const auto& name : names) {
        const auto spec = rem::scenario::load_scenario(dir, name);
        const auto c = rem::scenario::compile(spec);
        std::printf("  compiled %-28s %6.1f s, %2d UEs, %zu fault windows\n",
                    name.c_str(), c.scenario.sim.duration_s,
                    c.scenario.sim.fleet_size,
                    c.scenario.sim.faults.windows.size());
        if (shortest.empty() || c.scenario.sim.duration_s < shortest_s) {
          shortest = name;
          shortest_s = c.scenario.sim.duration_s;
        }
      }
      // End-to-end sanity on the shortest scenario, recompressed to stay
      // CI-sized; run_scenario attaches an InvariantChecker to every UE.
      const auto spec = rem::scenario::load_scenario(dir, shortest);
      rem::scenario::CompileOverrides ov;
      ov.extra_time_compression = extra_compression_for(spec,
                                                        kValidateHorizon_s);
      const auto c = rem::scenario::compile(spec, ov);
      rem::obs::Registry registry;
      const auto r = run_scenario(c, bler, registry);
      std::printf("  ran %s end-to-end: legacy %d HOs / %d failures, REM %d "
                  "HOs / %d failures\n",
                  shortest.c_str(), r.legacy.handovers, r.legacy.failures,
                  r.rem.handovers, r.rem.failures);
      std::printf("PASS: %zu scenarios compiled, '%s' ran clean\n",
                  names.size(), shortest.c_str());
      return 0;
    }

    rem::obs::Registry registry;
    std::vector<ScenarioResult> results;
    bool ok = true;
    for (const auto& name : names) {
      const auto spec = rem::scenario::load_scenario(dir, name);
      rem::scenario::CompileOverrides ov;
      if (smoke)
        ov.extra_time_compression = extra_compression_for(spec,
                                                          kSmokeHorizon_s);
      const auto c = rem::scenario::compile(spec, ov);
      auto r = run_scenario(c, bler, registry);
      std::printf("%-28s %6.1f s %2d UEs | legacy %4d HO %3d fail (%.3f) | "
                  "REM %4d HO %3d fail (%.3f) | %s\n",
                  r.name.c_str(), r.duration_s, r.fleet_size,
                  r.legacy.handovers, r.legacy.failures,
                  r.legacy.failure_ratio, r.rem.handovers, r.rem.failures,
                  r.rem.failure_ratio, r.pass() ? "pass" : "FAIL");
      for (const auto& g : r.gate_failures)
        std::printf("  FAIL: %s\n", g.c_str());
      ok = ok && r.pass();
      results.push_back(std::move(r));
    }

    std::ofstream js(out_path);
    js << "{\n";
    js << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    js << "  \"scenario_dir\": \"" << dir << "\",\n";
    js << "  \"scenarios\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      js << "    \"" << r.name << "\": {\"duration_s\": " << r.duration_s
         << ", \"fleet_size\": " << r.fleet_size
         << ", \"fault_windows\": " << r.fault_windows << ",\n";
      js << "      \"legacy\": ";
      write_manager_json(js, r.legacy);
      js << ",\n      \"rem\": ";
      write_manager_json(js, r.rem);
      js << ",\n      \"gates\": {\"max_rem_failure_ratio\": "
         << r.gates.max_rem_failure_ratio << ", \"rem_le_legacy\": "
         << (r.gates.rem_le_legacy ? "true" : "false")
         << ", \"min_legacy_handovers\": " << r.gates.min_legacy_handovers
         << ", \"pass\": " << (r.pass() ? "true" : "false") << "}}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    js << "  },\n";
    js << "  \"pass\": " << (ok ? "true" : "false") << "\n";
    js << "}\n";

    const std::string stem = out_path.size() > 5 && out_path.substr(
                                 out_path.size() - 5) == ".json"
                                 ? out_path.substr(0, out_path.size() - 5)
                                 : out_path;
    rem::obs::write_metrics_json_file(registry.snapshot(),
                                      stem + "_metrics.json");

    std::printf("%s: %zu scenarios -> %s\n", ok ? "PASS" : "FAIL",
                results.size(), out_path.c_str());
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::printf("FAIL: %s\n", e.what());
    return 1;
  }
}
