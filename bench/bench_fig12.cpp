// Fig. 12: viability of REM's cross-band estimation — SNR estimation error
// CDF and handover decision precision over three channel regimes (a
// USRP-like static lab channel, the HSR channel, and driving).
#include "common/stats.hpp"
#include "common/units.hpp"
#include "crossband/metrics.hpp"
#include "crossband/rem_svd.hpp"

#include <cstdio>

using namespace rem;

namespace {

crossband::EvalConfig make_cfg(channel::Profile profile, double speed_kmh,
                               std::size_t trials) {
  crossband::EvalConfig cfg;
  cfg.draw.profile = profile;
  cfg.draw.speed_mps = common::kmh_to_mps(speed_kmh);
  cfg.draw.carrier_hz = 1.88e9;
  cfg.num.num_subcarriers = 64;
  cfg.num.num_symbols = 16;
  cfg.num.cp_len = 16;
  cfg.f1_hz = 1.88e9;
  cfg.f2_hz = 2.6e9;
  cfg.trials = trials;
  return cfg;
}

}  // namespace

int main() {
  struct Case {
    const char* label;
    channel::Profile profile;
    double speed_kmh;
  };
  const Case cases[] = {
      {"USRP (static lab)", channel::Profile::kEPA, 3.0},
      {"HSR (350 km/h)", channel::Profile::kHST350, 350.0},
      {"Driving (60 km/h)", channel::Profile::kEVA, 60.0},
  };

  std::printf("Fig. 12: REM cross-band estimation accuracy\n");
  std::printf("  %-20s %10s %10s %10s %10s\n", "scenario", "mean err",
              "p90 err", "precision", "agreement");
  common::Rng rng(11);
  for (const auto& c : cases) {
    crossband::RemSvdEstimator est;
    const auto cfg = make_cfg(c.profile, c.speed_kmh, 150);
    const auto res = crossband::evaluate_estimator(est, cfg, rng);
    std::printf("  %-20s %8.2fdB %8.2fdB %9.2f %10.2f\n", c.label,
                res.mean_snr_error_db, res.p90_snr_error_db,
                res.decision_precision, res.decision_agreement);
  }

  // Error CDF for the HSR case.
  crossband::RemSvdEstimator est;
  const auto res = crossband::evaluate_estimator(
      est, make_cfg(channel::Profile::kHST350, 350.0, 200), rng);
  const auto cdf = common::empirical_cdf(res.snr_error_db, 10);
  std::printf("\n  HSR SNR-error CDF:\n  err(dB)  CDF\n");
  for (const auto& p : cdf)
    std::printf("  %7.2f  %4.2f\n", p.value, p.fraction);
  std::printf(
      "\nPaper reference (Fig. 12): <= 2 dB error for >= 90%% of "
      "measurements; >= 0.93\ndecision precision in all three regimes.\n");
  return 0;
}
