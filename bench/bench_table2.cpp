// Table 2: Network reliability in extreme mobility (legacy 4G/5G).
//
// Reproduces the failure-ratio / cause-breakdown / loop-statistics rows of
// the paper's Table 2 across the four speed buckets, using synthetic
// scenarios calibrated to the datasets (see DESIGN.md).
#include "scenario_runner.hpp"

#include <cstdio>

using namespace rem;

int main() {
  struct Bucket {
    const char* label;
    trace::Route route;
    double speed_kmh;
  };
  const Bucket buckets[] = {
      {"0-100 km/h (low mobility)", trace::Route::kLowMobilityLA, 60.0},
      {"100-200 km/h (HSR)", trace::Route::kBeijingShanghai, 150.0},
      {"200-300 km/h (HSR)", trace::Route::kBeijingShanghai, 250.0},
      {"300-350 km/h (HSR)", trace::Route::kBeijingShanghai, 330.0},
  };

  std::printf("Table 2: Network reliability in extreme mobility (legacy)\n");
  std::printf("%-28s %10s %10s %10s %10s %10s %10s %12s %10s %10s\n",
              "Speed bucket", "HO intvl", "fail%", "fdbk%", "missed%",
              "cmd%", "hole%", "loop freq", "HO/loop", "intra%");

  for (const auto& b : buckets) {
    const auto run =
        bench::run_route_parallel(b.route, b.speed_kmh, 1500.0, {1, 2, 3},
                                  /*run_rem=*/false);
    const auto& lg = run.legacy;
    const double loop_freq =
        lg.loop_episodes > 0 ? lg.sim_time_s / lg.loop_episodes : 0.0;
    const double ho_per_loop =
        lg.loop_episodes > 0
            ? static_cast<double>(lg.loop_handovers) / lg.loop_episodes
            : 0.0;
    const double intra_pct =
        lg.conflict_loop_episodes > 0
            ? 100.0 * lg.intra_freq_conflict_loops /
                  lg.conflict_loop_episodes
            : 0.0;
    std::printf(
        "%-28s %9.1fs %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% %11.0fs "
        "%10.1f %9.0f%%\n",
        b.label, lg.handover_interval_s.empty()
                     ? 0.0
                     : lg.handover_interval_s.mean(),
        bench::pct(lg.failure_ratio()),
        bench::pct(lg.cause_ratio(sim::FailureCause::kFeedbackDelayLoss)),
        bench::pct(lg.cause_ratio(sim::FailureCause::kMissedCell)),
        bench::pct(lg.cause_ratio(sim::FailureCause::kHoCommandLoss)),
        bench::pct(lg.cause_ratio(sim::FailureCause::kCoverageHole)),
        loop_freq, ho_per_loop, intra_pct);
  }
  std::printf(
      "\nPaper reference (Table 2): fail%% 4.3 / 5.2 / 10.6 / 12.5 rising "
      "with speed;\nfeedback delay/loss dominates on HSR; loops far more "
      "frequent than low mobility.\n");
  return 0;
}
