// Shared helper for fleet-scale benches and tests: build one scenario and
// run a multi-UE fleet through Simulator::run_fleet with a per-UE
// invariant checker demuxed over the observer stream.
//
// Construction order is fixed and documented because tests pin bit-exact
// reproducibility against it:
//   common::Rng rng(seed)
//     -> make_rail_deployment(rng) -> make_hole_segments(rng)
//     -> RadioEnv(cells, propagation, rng.fork(), holes)
//     -> synthesize_policies(cells, mix, rng)
//     -> manager master stream  = rng.fork()   (one fork per UE, in order)
//     -> simulation stream      = rng.fork()
// The manager master stream is forked *before* the simulation stream so
// that per-UE manager construction (REM managers fork once per UE) never
// interleaves with the simulator's own draw order: a fleet of one built
// this way is bit-identical to a single-UE Simulator::run over the same
// streams, whatever fleet_size later runs use.
//
// Entry points:
//   run_fleet_scenario — run a fully specified trace::Scenario (the
//     sim config carries fleet size, faults, transports); this is what
//     compiled rem::scenario worlds execute through.
//   run_fleet_seed     — legacy convenience: assemble the scenario from
//     (route, speed, duration) + option overrides, then delegate.
//
// Like run_seed, a fleet run is deterministic in (scenario, seed,
// options): per-seed results merged in seed order are bit-identical for
// any thread count (tests/test_fleet.cpp pins 1/2/8 threads).
#pragma once

#include "scenario_runner.hpp"
#include "sim/fleet.hpp"

#include <memory>
#include <utility>

namespace rem::bench {

struct FleetScenarioRunOptions {
  /// Manager family for every UE: REM (client-driven, cross-band) when
  /// true, legacy 4G/5G policies otherwise.
  bool use_rem = true;
  bool record_events = false;
  /// Attach one testkit::InvariantChecker per UE (via sim::UeObserverDemux)
  /// plus the post-run fleet_invariant_report, throwing std::logic_error on
  /// any violation. Honors the REM_CHECK_INVARIANTS=0 kill switch.
  bool check_invariants = true;
  /// Human context for violation messages, completing the sentence
  /// "invariant violations in UE k of <context>".
  std::string context = "a fleet run";
};

/// Run one fleet over a fully specified scenario: `sc.sim` already
/// carries fleet_size, fleet derivation, faults, backhaul, and BS
/// capacity (a compiled rem::scenario world, or hand assembly). Returns
/// per-UE stats indexed by UE id plus the UE-order aggregate
/// (sim/fleet.hpp).
inline sim::FleetResult run_fleet_scenario(const trace::Scenario& sc,
                                           std::uint64_t seed,
                                           const phy::BlerModel& bler,
                                           const FleetScenarioRunOptions& opts) {
  common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

  core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;

  common::Rng mgr_rng = rng.fork();  // manager master stream (see header)
  common::Rng sim_rng = rng.fork();  // simulation stream

  const int fleet_size = sc.sim.fleet_size;
  const bool check = opts.check_invariants && testkit::invariants_enabled();
  sim::UeObserverDemux demux;
  std::vector<std::unique_ptr<testkit::InvariantChecker>> checkers;
  sim::SimConfig run_cfg = sc.sim;
  run_cfg.record_events = run_cfg.record_events || opts.record_events;
  run_cfg.engine = sim::SimEngine::kEventQueue;
  if (check) {
    testkit::CheckerConfig ccfg;
    ccfg.sim = run_cfg;
    ccfg.num_cells = cells.size();
    ccfg.faults_expected = !run_cfg.faults.empty();
    if (opts.use_rem)
      ccfg.staleness_bound_s = core::RemConfig{}.estimate_staleness_s;
    else
      ccfg.expect_no_degraded = true;  // legacy has no fallback mode
    checkers.reserve(static_cast<std::size_t>(fleet_size));
    for (int k = 0; k < fleet_size; ++k) {
      checkers.push_back(std::make_unique<testkit::InvariantChecker>(ccfg));
      demux.add(checkers.back().get());
    }
    run_cfg.observer = &demux;
  }

  sim::Simulator s(env, run_cfg, bler, std::move(sim_rng));
  auto result = s.run_fleet([&](int) -> std::unique_ptr<sim::MobilityManager> {
    if (opts.use_rem)
      return std::make_unique<core::RemManager>(core::RemConfig{},
                                                mgr_rng.fork());
    return std::make_unique<core::LegacyManager>(lc);
  });

  if (check) {
    for (int k = 0; k < fleet_size; ++k) {
      const auto& checker = *checkers[static_cast<std::size_t>(k)];
      if (checker.violation_count() > 0)
        throw std::logic_error("invariant violations in UE " +
                               std::to_string(k) + " of " + opts.context +
                               ":\n" + checker.report());
    }
    const auto fleet_violations = testkit::fleet_invariant_report(result);
    if (!fleet_violations.empty()) {
      std::string msg =
          "fleet invariant violations in the aggregate of " + opts.context;
      for (const auto& line : fleet_violations) msg += "\n  " + line;
      throw std::logic_error(msg);
    }
  }
  return result;
}

struct FleetRunOptions {
  /// Number of UEs; UE 0 rides the scenario's exact single-UE parameters.
  int fleet_size = 8;
  /// Manager family for every UE: REM (client-driven, cross-band) when
  /// true, legacy 4G/5G policies otherwise.
  bool use_rem = true;
  sim::FaultConfig faults;
  bool record_events = false;
  /// Attach one testkit::InvariantChecker per UE (via sim::UeObserverDemux)
  /// plus the post-run fleet_invariant_report, throwing std::logic_error on
  /// any violation. Honors the REM_CHECK_INVARIANTS=0 kill switch.
  bool check_invariants = true;
  std::optional<net::BackhaulConfig> backhaul;
  std::optional<sim::BsCapacityConfig> bs_capacity;
  /// Per-UE speed/start derivation; scenario default when unset.
  std::optional<sim::FleetConfig> fleet;
  /// Cascade-resilience knobs (defaults mirror sim::SimConfig: everything
  /// off, so leaving them alone changes nothing).
  double load_ad_staleness_s = 0.0;
  int breaker_trip_k = 0;
  double breaker_cooldown_s = 2.0;
  double storm_jitter_frac = 0.0;
};

/// Run one fleet over the scenario named by (route, speed, duration) with
/// deterministic per-UE RNG derivation from `seed`. Assembles the
/// trace::Scenario from the options and delegates to run_fleet_scenario.
inline sim::FleetResult run_fleet_seed(trace::Route route, double speed_kmh,
                                       double duration_s, std::uint64_t seed,
                                       const phy::BlerModel& bler,
                                       const FleetRunOptions& opts) {
  auto sc = trace::make_scenario(route, speed_kmh, duration_s);
  sc.sim.faults = opts.faults;
  sc.sim.record_events = sc.sim.record_events || opts.record_events;
  if (opts.backhaul) sc.sim.backhaul = *opts.backhaul;
  if (opts.bs_capacity) sc.sim.bs_capacity = *opts.bs_capacity;
  if (opts.fleet) sc.sim.fleet = *opts.fleet;
  sc.sim.fleet_size = opts.fleet_size;
  sc.sim.engine = sim::SimEngine::kEventQueue;
  sc.sim.load_ad_staleness_s = opts.load_ad_staleness_s;
  sc.sim.breaker_trip_k = opts.breaker_trip_k;
  sc.sim.breaker_cooldown_s = opts.breaker_cooldown_s;
  sc.sim.storm_jitter_frac = opts.storm_jitter_frac;

  FleetScenarioRunOptions so;
  so.use_rem = opts.use_rem;
  so.record_events = opts.record_events;
  so.check_invariants = opts.check_invariants;
  so.context = "a " + std::to_string(opts.fleet_size) +
               "-UE fleet (route " + trace::route_name(route) + ", " +
               std::to_string(speed_kmh) + " km/h, seed " +
               std::to_string(seed) + ")";
  return run_fleet_scenario(sc, seed, bler, so);
}

}  // namespace rem::bench
