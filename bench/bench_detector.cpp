// Supplementary ablation: OTFS receiver choice. REM's overlay uses a
// low-complexity TF-domain MMSE path (LinkSimulator); the literature's
// reference detector is delay-Doppler message passing [21]. Compares
// uncoded symbol error rates on the HST-350 channel.
#include "channel/noise.hpp"
#include "channel/profiles.hpp"
#include "common/units.hpp"
#include "phy/link.hpp"
#include "phy/mp_detector.hpp"
#include "phy/otfs.hpp"

#include <cstdio>

using namespace rem;
using dsp::Matrix;
using dsp::cd;

namespace {

// Uncoded OTFS symbol error rate with the MP detector.
double mp_ser(double snr_db, std::size_t trials, common::Rng& rng) {
  phy::Numerology num;
  num.num_subcarriers = 16;
  num.num_symbols = 8;
  num.cp_len = 4;
  channel::ChannelDrawConfig draw;
  draw.profile = channel::Profile::kHST350;
  draw.speed_mps = common::kmh_to_mps(350.0);
  draw.carrier_hz = 2.0e9;

  std::size_t errors = 0, total = 0;
  const auto& constel = phy::constellation(phy::Modulation::kQPSK);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto ch = channel::draw_channel(draw, rng);
    const std::size_t m = num.num_subcarriers, n = num.num_symbols;
    std::vector<std::uint8_t> bits(m * n * 2);
    for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
    const auto syms = phy::qam_modulate(bits, phy::Modulation::kQPSK);
    Matrix dd(m, n);
    std::size_t idx = 0;
    for (std::size_t col = 0; col < n; ++col)
      for (std::size_t row = 0; row < m; ++row) dd(row, col) = syms[idx++];
    phy::OtfsModem modem(num);
    auto rx = ch.apply_to_signal(modem.modulate(dd), num.sample_rate_hz());
    channel::add_awgn(rx, channel::noise_power_for_snr_db(snr_db), rng);
    const Matrix y = modem.demodulate(rx);
    const auto taps = phy::extract_dd_taps(
        ch.dd_matrix(m, n, num.subcarrier_spacing_hz,
                     num.symbol_duration_s(), num.cp_len));
    const auto res = phy::mp_detect(y, taps, phy::Modulation::kQPSK,
                                    channel::noise_power_for_snr_db(snr_db));
    for (std::size_t i = 0; i < syms.size(); ++i) {
      std::size_t best = 0;
      double bd = 1e18;
      for (std::size_t s = 0; s < constel.size(); ++s) {
        const double d = std::norm(res.symbols[i] - constel[s]);
        if (d < bd) {
          bd = d;
          best = s;
        }
      }
      errors += std::abs(constel[best] - syms[i]) > 1e-9;
      ++total;
    }
  }
  return static_cast<double>(errors) / static_cast<double>(total);
}

// Uncoded symbol error rate of the TF-MMSE path, via the coded link's
// per-slot machinery: reuse LinkSimulator at rate-1/2 coded BLER as the
// comparable "system" metric instead (coded BLER).
double mmse_bler(double snr_db, std::size_t trials, common::Rng& rng) {
  phy::LinkConfig cfg;
  cfg.num.num_subcarriers = 16;
  cfg.num.num_symbols = 8;
  cfg.num.cp_len = 4;
  cfg.waveform = phy::Waveform::kOTFS;
  cfg.snr_db = snr_db;
  channel::ChannelDrawConfig draw;
  draw.profile = channel::Profile::kHST350;
  draw.speed_mps = common::kmh_to_mps(350.0);
  draw.carrier_hz = 2.0e9;
  return phy::LinkSimulator(cfg).measure_bler(draw, trials, rng).bler;
}

}  // namespace

int main() {
  std::printf("Detector ablation on HST-350 (16x8 OTFS grid, QPSK)\n");
  std::printf("  %8s %18s %22s\n", "SNR(dB)", "MP uncoded SER",
              "TF-MMSE coded BLER");
  common::Rng rng(9);
  for (double snr : {4.0, 8.0, 12.0, 16.0, 20.0}) {
    const double ser = mp_ser(snr, 30, rng);
    const double bler = mmse_bler(snr, 60, rng);
    std::printf("  %8.0f %17.2f%% %21.2f%%\n", snr, 100.0 * ser,
                100.0 * bler);
  }
  std::printf(
      "\nThe DD message-passing detector [21] holds low uncoded SER "
      "through Doppler where the\nlow-complexity TF-MMSE path leans on "
      "the convolutional code — both converge at high SNR.\n");
  return 0;
}
