// Fig. 14b: cross-band estimation runtime — google-benchmark timing of
// REM's SVD estimation vs the R2F2 nonlinear fit and OptML inference on
// the same measurement grid.
#include "common/units.hpp"
#include "crossband/metrics.hpp"
#include "crossband/optml.hpp"
#include "crossband/r2f2.hpp"
#include "crossband/rem_svd.hpp"
#include "phy/channel_est.hpp"

#include <benchmark/benchmark.h>

using namespace rem;

namespace {

crossband::CrossbandInput make_input(std::uint64_t seed) {
  common::Rng rng(seed);
  channel::ChannelDrawConfig draw;
  draw.profile = channel::Profile::kHST350;
  draw.speed_mps = common::kmh_to_mps(350.0);
  draw.carrier_hz = 1.88e9;
  const auto ch = channel::draw_channel(draw, rng);

  crossband::CrossbandInput in;
  in.num.num_subcarriers = 64;
  in.num.num_symbols = 16;
  in.num.cp_len = 16;
  in.f1_hz = 1.88e9;
  in.f2_hz = 2.6e9;
  phy::DdChannelEstimator dd(in.num);
  in.h1_dd = dd.estimate(ch, 20.0, rng).h;
  in.h1_tf = crossband::measure_tf(ch, in.num, 20.0, rng);
  return in;
}

void BM_RemSvd(benchmark::State& state) {
  const auto in = make_input(1);
  crossband::RemSvdEstimator est;
  for (auto _ : state) benchmark::DoNotOptimize(est.estimate(in));
}
BENCHMARK(BM_RemSvd)->Unit(benchmark::kMillisecond);

void BM_R2f2(benchmark::State& state) {
  const auto in = make_input(2);
  crossband::R2f2Estimator est;  // default slow cold-start config
  for (auto _ : state) benchmark::DoNotOptimize(est.estimate(in));
}
BENCHMARK(BM_R2f2)->Unit(benchmark::kMillisecond);

void BM_OptMl(benchmark::State& state) {
  const auto in = make_input(3);
  crossband::OptMlEstimator est;
  crossband::EvalConfig cfg;
  cfg.draw.profile = channel::Profile::kHST350;
  cfg.draw.speed_mps = common::kmh_to_mps(350.0);
  cfg.num = in.num;
  common::Rng rng(4);
  crossband::train_optml(est, cfg, 600, rng);
  for (auto _ : state) benchmark::DoNotOptimize(est.estimate(in));
}
BENCHMARK(BM_OptMl)->Unit(benchmark::kMillisecond);

// The delay-Doppler pilot processing itself (SFFT/ISFFT + grid handling).
void BM_DdChannelEstimation(benchmark::State& state) {
  common::Rng rng(5);
  channel::ChannelDrawConfig draw;
  draw.profile = channel::Profile::kHST350;
  draw.speed_mps = common::kmh_to_mps(350.0);
  const auto ch = channel::draw_channel(draw, rng);
  phy::Numerology num;
  num.num_subcarriers = 64;
  num.num_symbols = 16;
  num.cp_len = 16;
  phy::DdChannelEstimator est(num);
  for (auto _ : state)
    benchmark::DoNotOptimize(est.estimate(ch, 20.0, rng));
}
BENCHMARK(BM_DdChannelEstimation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
