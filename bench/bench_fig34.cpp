// Fig. 3 & 4: two-cell policy-conflict oscillations.
//  Fig. 3: load balancing (A4 vs A5) between a 5 MHz and a 20 MHz cell.
//  Fig. 4: failure-induced proactive A3-A3 conflict.
// Each micro-scenario replays a 10-15 s RSRP window inside the conflict
// region with the legacy manager and reports the resulting ping-pong.
#include "core/legacy_manager.hpp"
#include "mobility/conflict.hpp"
#include "phy/bler_model.hpp"

#include <cstdio>

using namespace rem;

namespace {

struct TwoCellReplay {
  mobility::CellPolicy policy1, policy2;
  mobility::CellId id1{1, 1, 10}, id2{2, 2, 20};
  // RSRP processes: slowly varying around the conflict region.
  double base1, base2, wobble;
};

int replay_handovers(const TwoCellReplay& r, double duration_s,
                     std::uint64_t seed) {
  core::LegacyConfig cfg;
  cfg.policies[r.id1.cell] = r.policy1;
  cfg.policies[r.id2.cell] = r.policy2;
  cfg.measurement.inter_ttt_s = 0.128;  // operator-shortened
  core::LegacyManager mgr(cfg);

  common::Rng rng(seed);
  int serving = 1;
  mgr.on_serving_changed(0.0, 0);
  int handovers = 0;
  double pending_until = -1.0;
  int pending_target = -1;

  for (double t = 0.0; t < duration_s; t += 0.01) {
    const double r1 = r.base1 + r.wobble * std::sin(t * 0.7) +
                      rng.gaussian(0, 0.5);
    const double r2 = r.base2 + r.wobble * std::cos(t * 0.5) +
                      rng.gaussian(0, 0.5);
    if (pending_until >= 0.0 && t >= pending_until) {
      serving = pending_target;
      ++handovers;
      mgr.on_serving_changed(t, serving == 1 ? 0 : 1);
      pending_until = -1.0;
    }
    if (pending_until >= 0.0) continue;

    sim::ServingState sv;
    sv.cell_idx = serving == 1 ? 0 : 1;
    sv.id = serving == 1 ? r.id1 : r.id2;
    sv.rsrp_dbm = serving == 1 ? r1 : r2;
    sv.dd_snr_db = sv.rsrp_dbm + 101.0;
    sv.snr_db = sv.dd_snr_db;
    sim::Observation o;
    o.cell_idx = serving == 1 ? 1 : 0;
    o.id = serving == 1 ? r.id2 : r.id1;
    o.rsrp_dbm = serving == 1 ? r2 : r1;
    o.dd_snr_db = o.rsrp_dbm + 101.0;
    const auto d = mgr.update(t, sv, {o});
    if (d) {
      pending_target = serving == 1 ? 2 : 1;
      pending_until = t + 0.10;  // report + command + execution
    }
  }
  return handovers;
}

}  // namespace

int main() {
  // ---- Fig. 3: load-balancing A4/A5 conflict ----
  TwoCellReplay fig3;
  {
    // Cell 1 (5 MHz) pushes to cell 2 (20 MHz) when RSRP2 > -110 (A4).
    mobility::PolicyRule r1;
    r1.event = {mobility::EventType::kA4, -110, 0, 0, 0, 0.128};
    r1.channel = 20;
    fig3.policy1.rules.push_back(r1);
    // Cell 2 pushes back when RSRP2 < -95 and RSRP1 > -100 (A5).
    mobility::PolicyRule r2;
    r2.event = {mobility::EventType::kA5, -95, -100, 0, 0, 0.128};
    r2.channel = 10;
    fig3.policy2.rules.push_back(r2);
    fig3.base1 = -96.0;   // RSRP1 > -100
    fig3.base2 = -102.0;  // RSRP2 in (-110, -95): both triggers armed
    fig3.wobble = 1.5;
  }
  // Confirm the analyzer flags the pair, then replay.
  {
    std::vector<mobility::PolicyCell> pcs(2);
    pcs[0].id = fig3.id1;
    pcs[0].policy = fig3.policy1;
    pcs[1].id = fig3.id2;
    pcs[1].policy = fig3.policy2;
    const auto conflicts = mobility::find_two_cell_conflicts(pcs);
    std::printf("Fig. 3: load-balancing conflict (5 MHz vs 20 MHz cell)\n");
    std::printf("  analyzer: %s (witness RSRP1=%.1f, RSRP2=%.1f)\n",
                conflicts.empty() ? "NO conflict" : "conflict detected",
                conflicts.empty() ? 0.0 : conflicts[0].witness_ri,
                conflicts.empty() ? 0.0 : conflicts[0].witness_rj);
    const int hos = replay_handovers(fig3, 15.0, 5);
    std::printf("  replay: %d handovers in 15 s (paper: 8 in 15 s)\n\n",
                hos);
  }

  // ---- Fig. 4: proactive A3-A3 conflict ----
  TwoCellReplay fig4;
  {
    fig4.id1 = {3, 3, 15};
    fig4.id2 = {4, 4, 15};  // same channel: intra-frequency
    mobility::PolicyRule r1;
    r1.event = {mobility::EventType::kA3, 0, 0, -3.0, 0, 0.040};
    fig4.policy1.rules.push_back(r1);
    mobility::PolicyRule r2;
    r2.event = {mobility::EventType::kA3, 0, 0, -1.0, 0, 0.040};
    fig4.policy2.rules.push_back(r2);
    fig4.base1 = -91.0;
    fig4.base2 = -92.0;  // inside the (-3, +1) dB conflict window
    fig4.wobble = 1.0;
  }
  {
    std::vector<mobility::PolicyCell> pcs(2);
    pcs[0].id = fig4.id1;
    pcs[0].policy = fig4.policy1;
    pcs[1].id = fig4.id2;
    pcs[1].policy = fig4.policy2;
    const auto conflicts = mobility::find_two_cell_conflicts(pcs);
    std::printf("Fig. 4: failure-induced proactive A3-A3 conflict\n");
    std::printf("  analyzer: %s, Delta sum = -4 dB < 0 violates Theorem 2\n",
                conflicts.empty() ? "NO conflict" : "conflict detected");
    const int hos = replay_handovers(fig4, 10.0, 7);
    std::printf("  replay: %d handovers in 10 s\n", hos);
    // Repair per Theorem 2 and replay again.
    auto repaired = mobility::repair_theorem2({{0, -3}, {-1, 0}});
    TwoCellReplay fixed = fig4;
    fixed.policy1.rules[0].event.offset = repaired[0][1];
    fixed.policy2.rules[0].event.offset = repaired[1][0];
    const int hos_fixed = replay_handovers(fixed, 10.0, 7);
    std::printf("  after Theorem-2 repair (offsets %.1f / %.1f): %d "
                "handovers in 10 s\n",
                repaired[0][1], repaired[1][0], hos_fixed);
  }
  std::printf(
      "\nPaper reference: both conflicts produce sustained ping-pong "
      "(e.g. 8 handovers/15 s)\nuntil the thresholds satisfy Theorem 2.\n");
  return 0;
}
