// Shared helper for the table/figure benches: build a scenario, run both
// managers over several seeds, aggregate statistics.
//
// Seeds are independent by construction — every stochastic component draws
// from common::Rng(seed) forks — so `run_route_parallel` farms one seed per
// thread-pool job and then merges the per-seed results *in seed order*. The
// serial and parallel paths share run_seed() and merge_seed_results(), so
// their output is bit-identical for the same seed list regardless of thread
// count.
#pragma once

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/legacy_manager.hpp"
#include "core/rem_manager.hpp"
#include "mobility/conflict.hpp"
#include "net/backhaul.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "phy/bler_model.hpp"
#include "sim/observer.hpp"
#include "testkit/invariants.hpp"
#include "testkit/seeds.hpp"
#include "trace/scenario.hpp"

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace rem::bench {

struct AggregateStats {
  int handovers = 0;
  int failures = 0;
  std::map<sim::FailureCause, int> by_cause;
  int loop_episodes = 0;
  int loop_handovers = 0;
  int conflict_loop_episodes = 0;
  int conflict_loop_handovers = 0;
  int intra_freq_conflict_loops = 0;
  double sim_time_s = 0.0;
  common::Summary handover_interval_s;
  common::Summary feedback_delay_s;
  std::vector<double> outage_durations_s;
  std::vector<double> pre_failure_snrs_db;
  common::Summary throughput_bps;
  common::Summary downtime_fraction;
  // Recovery-path accounting (fault injection / hardened FSM).
  int report_retransmits = 0;
  int t304_expiries = 0;
  int t304_fallback_success = 0;
  int duplicate_commands = 0;
  int degraded_enters = 0;
  double degraded_time_s = 0.0;
  // Backhaul preparation + transport accounting (rem::net runs).
  int prep_requests = 0;
  int prep_retries = 0;
  int prep_acks = 0;
  int prep_rejects = 0;
  int prep_fallbacks = 0;
  int prep_failures = 0;
  double prep_rtt_sum_s = 0.0;
  int context_fetch_failures = 0;
  std::uint64_t backhaul_sent = 0;
  std::uint64_t backhaul_delivered = 0;
  std::uint64_t backhaul_dropped_loss = 0;
  std::uint64_t backhaul_dropped_partition = 0;
  std::uint64_t backhaul_dropped_queue = 0;
  std::uint64_t backhaul_dropped_crash = 0;
  std::uint64_t backhaul_duplicated = 0;
  std::uint64_t backhaul_reordered = 0;
  double backhaul_latency_sum_s = 0.0;
  // BS capacity / crash-restart accounting (sim::BsCapacityConfig runs).
  int bs_jobs_submitted = 0;
  int bs_jobs_served = 0;
  int bs_jobs_queued = 0;
  int bs_queue_shed = 0;
  int bs_jobs_flushed = 0;
  int bs_jobs_inflight_end = 0;
  double bs_queue_wait_sum_s = 0.0;
  int admission_rejects = 0;
  int admission_backoff_retries = 0;
  int bs_crashes = 0;
  int bs_crash_dropped_msgs = 0;
  int stale_context_responses = 0;

  void add(const sim::SimStats& s) {
    pre_failure_snrs_db.insert(pre_failure_snrs_db.end(),
                               s.pre_failure_snrs_db.begin(),
                               s.pre_failure_snrs_db.end());
    throughput_bps.add(s.mean_throughput_bps);
    downtime_fraction.add(s.downtime_fraction);
    handovers += s.handovers;
    failures += s.failures;
    for (const auto& [c, n] : s.failures_by_cause) by_cause[c] += n;
    loop_episodes += s.loop_episodes;
    loop_handovers += s.loop_handovers;
    conflict_loop_episodes += s.conflict_loop_episodes;
    conflict_loop_handovers += s.conflict_loop_handovers;
    intra_freq_conflict_loops += s.intra_freq_conflict_loops;
    sim_time_s += s.sim_time_s;
    report_retransmits += s.report_retransmits;
    t304_expiries += s.t304_expiries;
    t304_fallback_success += s.t304_fallback_success;
    duplicate_commands += s.duplicate_commands;
    degraded_enters += s.degraded_enters;
    degraded_time_s += s.degraded_time_s;
    prep_requests += s.prep_requests;
    prep_retries += s.prep_retries;
    prep_acks += s.prep_acks;
    prep_rejects += s.prep_rejects;
    prep_fallbacks += s.prep_fallbacks;
    prep_failures += s.prep_failures;
    prep_rtt_sum_s += s.prep_rtt_sum_s;
    context_fetch_failures += s.context_fetch_failures;
    backhaul_sent += s.backhaul_sent;
    backhaul_delivered += s.backhaul_delivered;
    backhaul_dropped_loss += s.backhaul_dropped_loss;
    backhaul_dropped_partition += s.backhaul_dropped_partition;
    backhaul_dropped_queue += s.backhaul_dropped_queue;
    backhaul_dropped_crash += s.backhaul_dropped_crash;
    backhaul_duplicated += s.backhaul_duplicated;
    backhaul_reordered += s.backhaul_reordered;
    backhaul_latency_sum_s += s.backhaul_latency_sum_s;
    bs_jobs_submitted += s.bs_jobs_submitted;
    bs_jobs_served += s.bs_jobs_served;
    bs_jobs_queued += s.bs_jobs_queued;
    bs_queue_shed += s.bs_queue_shed;
    bs_jobs_flushed += s.bs_jobs_flushed;
    bs_jobs_inflight_end += s.bs_jobs_inflight_end;
    bs_queue_wait_sum_s += s.bs_queue_wait_sum_s;
    admission_rejects += s.admission_rejects;
    admission_backoff_retries += s.admission_backoff_retries;
    bs_crashes += s.bs_crashes;
    bs_crash_dropped_msgs += s.bs_crash_dropped_msgs;
    stale_context_responses += s.stale_context_responses;
    if (s.avg_handover_interval_s > 0)
      handover_interval_s.add(s.avg_handover_interval_s);
    feedback_delay_s.add_all(s.feedback_delays_s);
    outage_durations_s.insert(outage_durations_s.end(),
                              s.outage_durations_s.begin(),
                              s.outage_durations_s.end());
  }

  double failure_ratio() const {
    const int den = handovers + failures;
    return den > 0 ? static_cast<double>(failures) / den : 0.0;
  }
  double cause_ratio(sim::FailureCause c) const {
    const int den = handovers + failures;
    const auto it = by_cause.find(c);
    return den > 0 && it != by_cause.end()
               ? static_cast<double>(it->second) / den
               : 0.0;
  }
  double failure_ratio_excluding_holes() const {
    return failure_ratio() - cause_ratio(sim::FailureCause::kCoverageHole);
  }
};

struct ScenarioRun {
  AggregateStats legacy;
  AggregateStats rem;
  /// Static two-cell conflicts of the synthesized legacy policy set
  /// (aggregated over seeds).
  std::map<std::string, int> conflict_histogram;
  int total_conflicts = 0;
  /// Per-manager metrics merged in seed order (empty unless
  /// SeedRunOptions::collect_metrics). Simulated-time metrics only, so the
  /// merged snapshots are bit-identical for any worker-thread count.
  obs::MetricsSnapshot legacy_metrics;
  obs::MetricsSnapshot rem_metrics;
};

/// Everything one seed contributes to a ScenarioRun, kept separate so seeds
/// can run on any thread and be merged deterministically afterwards.
struct SeedRunResult {
  sim::SimStats legacy;
  sim::SimStats rem;
  bool has_rem = false;
  std::map<std::string, int> conflict_histogram;
  int total_conflicts = 0;
  /// This seed's metrics per manager (empty unless
  /// SeedRunOptions::collect_metrics was set).
  obs::MetricsSnapshot legacy_metrics;
  obs::MetricsSnapshot rem_metrics;
};

/// Per-seed run knobs beyond the scenario itself.
struct SeedRunOptions {
  sim::FaultConfig faults;    ///< applied to both managers' simulations
  bool record_events = false; ///< keep the full SimStats::events log
  /// Attach a rem::testkit::InvariantChecker to every simulation and
  /// throw std::logic_error (with the checker's report) on any violation.
  /// Defaults ON so all benches and tests run machine-checked; the
  /// REM_CHECK_INVARIANTS=0 environment variable is a global kill switch.
  bool check_invariants = true;
  /// Attach a rem::obs::SpanTracer recording into a per-run Registry,
  /// cross-check it against SimStats (throwing std::logic_error on any
  /// reconcile mismatch), and return the snapshot in SeedRunResult.
  /// Defaults to the REM_METRICS environment knob. Only simulated-time
  /// metrics are recorded here, so results stay deterministic.
  bool collect_metrics = obs::metrics_enabled();
  /// When set, replaces the scenario's backhaul transport config (latency
  /// distribution, loss/reorder/duplicate probabilities, or disabling the
  /// transport entirely) for both managers' simulations.
  std::optional<net::BackhaulConfig> backhaul;
  /// When set, replaces the scenario's per-BS capacity model config
  /// (slots, queue bound, service times, admission control) for both
  /// managers' simulations.
  std::optional<sim::BsCapacityConfig> bs_capacity;
};

/// Simulate a single seed (legacy manager, and REM when `run_rem`).
/// Thread-safe: all state derives from the seed; `bler` is read-only.
/// `opts.faults` is applied to both managers' simulations; the schedule
/// itself is seeded from the per-seed Rng, so runs stay bit-identical for
/// the same (seed, faults) pair. The invariant checker (opts) observes
/// each run without drawing randomness, so attaching it never changes
/// results.
inline SeedRunResult run_seed(trace::Route route, double speed_kmh,
                              double duration_s, std::uint64_t seed,
                              bool run_rem, const phy::BlerModel& bler,
                              const SeedRunOptions& opts) {
  SeedRunResult out;
  auto sc = trace::make_scenario(route, speed_kmh, duration_s);
  sc.sim.faults = opts.faults;
  sc.sim.record_events = sc.sim.record_events || opts.record_events;
  if (opts.backhaul) sc.sim.backhaul = *opts.backhaul;
  if (opts.bs_capacity) sc.sim.bs_capacity = *opts.bs_capacity;
  const bool check = opts.check_invariants && testkit::invariants_enabled();
  common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

  // Exact pairwise conflict predicate for loop attribution, restricted
  // to cells that actually cover common ground.
  const auto pcs = trace::to_policy_cells(cells, policies);
  const double reach = 2.0 * sc.deployment.site_spacing_mean_m;
  const auto neighbor_filter = [&](std::size_t i, std::size_t j) {
    return std::abs(cells[i].site_pos_m - cells[j].site_pos_m) <= reach;
  };
  const auto conflicts =
      mobility::find_two_cell_conflicts(pcs, {}, neighbor_filter);
  out.total_conflicts = static_cast<int>(conflicts.size());
  for (const auto& [label, n] : mobility::conflict_histogram(conflicts))
    out.conflict_histogram[label] += n;
  std::set<std::pair<int, int>> pairs;
  for (const auto& c : conflicts) {
    pairs.insert({c.cell_i, c.cell_j});
    pairs.insert({c.cell_j, c.cell_i});
  }
  const auto pair_fn = [&pairs](int a, int b) {
    return pairs.count({a, b}) > 0;
  };

  // Observation: one fanout per simulation hosting the invariant checker
  // and/or the span tracer, both attached via SimConfig::observer. Neither
  // draws randomness, and the RNG fork order below is identical whatever
  // is attached, so observed and bare paths produce bit-identical
  // statistics. A checker violation or a tracer/stats reconcile mismatch
  // is a simulator (or tracer) bug, not a statistical outcome, so either
  // aborts the run loudly instead of skewing aggregates.
  const bool collect = opts.collect_metrics;
  const auto run_context = [&](const std::string& who) {
    return who + " run (route " + trace::route_name(route) + ", " +
           std::to_string(speed_kmh) + " km/h, seed " +
           std::to_string(seed) + ")";
  };
  const auto run_observed = [&](sim::MobilityManager& m, common::Rng run_rng,
                                const std::function<bool(int, int)>& pf,
                                testkit::CheckerConfig ccfg,
                                obs::MetricsSnapshot* metrics_out) {
    if (!check && !collect) {
      sim::Simulator s(env, sc.sim, bler, std::move(run_rng));
      return s.run(m, pf);
    }
    testkit::InvariantChecker checker(std::move(ccfg));
    obs::Registry registry;
    obs::SpanTracer tracer(&registry);
    sim::ObserverFanout fanout;
    if (check) fanout.add(&checker);
    if (collect) fanout.add(&tracer);
    sim::SimConfig observed = sc.sim;
    observed.observer = &fanout;
    sim::Simulator s(env, observed, bler, std::move(run_rng));
    auto stats = s.run(m, pf);
    if (check && checker.violation_count() > 0)
      throw std::logic_error("invariant violations in " +
                             run_context(m.name()) + ":\n" +
                             checker.report());
    if (collect) {
      const auto mismatches = tracer.reconcile(stats);
      if (!mismatches.empty()) {
        std::string msg =
            "trace/stats reconcile mismatches in " + run_context(m.name());
        for (const auto& line : mismatches) msg += "\n  " + line;
        throw std::logic_error(msg);
      }
      if (metrics_out != nullptr) *metrics_out = registry.snapshot();
    }
    return stats;
  };
  testkit::CheckerConfig base;
  base.sim = sc.sim;
  base.num_cells = cells.size();
  base.faults_expected = !opts.faults.empty();

  core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  core::LegacyManager legacy(lc);
  testkit::CheckerConfig legacy_cfg = base;
  legacy_cfg.expect_no_degraded = true;  // legacy has no fallback mode
  out.legacy = run_observed(legacy, rng.fork(), pair_fn, legacy_cfg,
                            &out.legacy_metrics);

  if (run_rem) {
    core::RemManager remm(core::RemConfig{}, rng.fork());
    testkit::CheckerConfig rem_cfg = base;
    rem_cfg.staleness_bound_s = core::RemConfig{}.estimate_staleness_s;
    // REM's coordinated policy is conflict-free by Theorem 2.
    out.rem = run_observed(remm, rng.fork(), [](int, int) { return false; },
                           rem_cfg, &out.rem_metrics);
    out.has_rem = true;
  }
  return out;
}

/// Back-compat overload: bare fault schedule, events off, checker on.
inline SeedRunResult run_seed(trace::Route route, double speed_kmh,
                              double duration_s, std::uint64_t seed,
                              bool run_rem, const phy::BlerModel& bler,
                              const sim::FaultConfig& faults = {}) {
  SeedRunOptions opts;
  opts.faults = faults;
  return run_seed(route, speed_kmh, duration_s, seed, run_rem, bler, opts);
}

/// Fold per-seed results in the order given. Seed order — not completion
/// order — fixes every floating-point accumulation, which is what makes the
/// parallel runner's output independent of thread count.
inline ScenarioRun merge_seed_results(const std::vector<SeedRunResult>& rs) {
  ScenarioRun out;
  for (const auto& r : rs) {
    out.total_conflicts += r.total_conflicts;
    for (const auto& [label, n] : r.conflict_histogram)
      out.conflict_histogram[label] += n;
    out.legacy.add(r.legacy);
    if (r.has_rem) out.rem.add(r.rem);
    out.legacy_metrics.merge(r.legacy_metrics);
    if (r.has_rem) out.rem_metrics.merge(r.rem_metrics);
  }
  return out;
}

inline ScenarioRun run_route(trace::Route route, double speed_kmh,
                             double duration_s,
                             const std::vector<std::uint64_t>& seeds,
                             bool run_rem, const SeedRunOptions& opts) {
  phy::LogisticBlerModel bler;
  std::vector<SeedRunResult> rs;
  rs.reserve(seeds.size());
  for (const auto seed : seeds)
    rs.push_back(
        run_seed(route, speed_kmh, duration_s, seed, run_rem, bler, opts));
  return merge_seed_results(rs);
}

inline ScenarioRun run_route(trace::Route route, double speed_kmh,
                             double duration_s,
                             const std::vector<std::uint64_t>& seeds,
                             bool run_rem = true,
                             const sim::FaultConfig& faults = {}) {
  SeedRunOptions opts;
  opts.faults = faults;
  return run_route(route, speed_kmh, duration_s, seeds, run_rem, opts);
}

/// Worker count for parallel benches: the REM_BENCH_THREADS environment
/// variable when set (>= 1), otherwise the hardware thread count.
inline std::size_t bench_threads() {
  if (const char* env = std::getenv("REM_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return common::ThreadPool::default_threads();
}

/// Seed-parallel run_route: each seed's legacy+REM simulation runs as one
/// thread-pool job; results merge in seed order, so the output is
/// bit-identical to run_route() for any num_threads. num_threads == 0 reads
/// REM_BENCH_THREADS / hardware concurrency via bench_threads().
inline ScenarioRun run_route_parallel(trace::Route route, double speed_kmh,
                                      double duration_s,
                                      const std::vector<std::uint64_t>& seeds,
                                      bool run_rem, std::size_t num_threads,
                                      const SeedRunOptions& opts) {
  if (num_threads == 0) num_threads = bench_threads();
  phy::LogisticBlerModel bler;
  std::vector<SeedRunResult> rs(seeds.size());
  common::parallel_for(seeds.size(), num_threads, [&](std::size_t i) {
    rs[i] = run_seed(route, speed_kmh, duration_s, seeds[i], run_rem, bler,
                     opts);
  });
  return merge_seed_results(rs);
}

inline ScenarioRun run_route_parallel(trace::Route route, double speed_kmh,
                                      double duration_s,
                                      const std::vector<std::uint64_t>& seeds,
                                      bool run_rem = true,
                                      std::size_t num_threads = 0,
                                      const sim::FaultConfig& faults = {}) {
  SeedRunOptions opts;
  opts.faults = faults;
  return run_route_parallel(route, speed_kmh, duration_s, seeds, run_rem,
                            num_threads, opts);
}

inline double pct(double x) { return 100.0 * x; }

/// "a x" reduction factor epsilon = (legacy - rem) / rem, as the paper
/// defines it; returns -1 when rem is zero (infinite reduction).
inline double reduction_factor(double legacy, double rem) {
  if (rem <= 0.0) return -1.0;
  return (legacy - rem) / rem;
}

}  // namespace rem::bench
