// Shared helper for the table/figure benches: build a scenario, run both
// managers over several seeds, aggregate statistics.
#pragma once

#include "common/stats.hpp"
#include "core/legacy_manager.hpp"
#include "core/rem_manager.hpp"
#include "mobility/conflict.hpp"
#include "phy/bler_model.hpp"
#include "trace/scenario.hpp"

#include <functional>
#include <set>
#include <vector>

namespace rem::bench {

struct AggregateStats {
  int handovers = 0;
  int failures = 0;
  std::map<sim::FailureCause, int> by_cause;
  int loop_episodes = 0;
  int loop_handovers = 0;
  int conflict_loop_episodes = 0;
  int conflict_loop_handovers = 0;
  int intra_freq_conflict_loops = 0;
  double sim_time_s = 0.0;
  common::Summary handover_interval_s;
  common::Summary feedback_delay_s;
  std::vector<double> outage_durations_s;
  std::vector<double> pre_failure_snrs_db;
  common::Summary throughput_bps;
  common::Summary downtime_fraction;

  void add(const sim::SimStats& s) {
    pre_failure_snrs_db.insert(pre_failure_snrs_db.end(),
                               s.pre_failure_snrs_db.begin(),
                               s.pre_failure_snrs_db.end());
    throughput_bps.add(s.mean_throughput_bps);
    downtime_fraction.add(s.downtime_fraction);
    handovers += s.handovers;
    failures += s.failures;
    for (const auto& [c, n] : s.failures_by_cause) by_cause[c] += n;
    loop_episodes += s.loop_episodes;
    loop_handovers += s.loop_handovers;
    conflict_loop_episodes += s.conflict_loop_episodes;
    conflict_loop_handovers += s.conflict_loop_handovers;
    intra_freq_conflict_loops += s.intra_freq_conflict_loops;
    sim_time_s += s.sim_time_s;
    if (s.avg_handover_interval_s > 0)
      handover_interval_s.add(s.avg_handover_interval_s);
    feedback_delay_s.add_all(s.feedback_delays_s);
    outage_durations_s.insert(outage_durations_s.end(),
                              s.outage_durations_s.begin(),
                              s.outage_durations_s.end());
  }

  double failure_ratio() const {
    const int den = handovers + failures;
    return den > 0 ? static_cast<double>(failures) / den : 0.0;
  }
  double cause_ratio(sim::FailureCause c) const {
    const int den = handovers + failures;
    const auto it = by_cause.find(c);
    return den > 0 && it != by_cause.end()
               ? static_cast<double>(it->second) / den
               : 0.0;
  }
  double failure_ratio_excluding_holes() const {
    return failure_ratio() - cause_ratio(sim::FailureCause::kCoverageHole);
  }
};

struct ScenarioRun {
  AggregateStats legacy;
  AggregateStats rem;
  /// Static two-cell conflicts of the synthesized legacy policy set
  /// (aggregated over seeds).
  std::map<std::string, int> conflict_histogram;
  int total_conflicts = 0;
};

inline ScenarioRun run_route(trace::Route route, double speed_kmh,
                             double duration_s,
                             const std::vector<std::uint64_t>& seeds,
                             bool run_rem = true) {
  ScenarioRun out;
  phy::LogisticBlerModel bler;
  for (const auto seed : seeds) {
    const auto sc = trace::make_scenario(route, speed_kmh, duration_s);
    common::Rng rng(seed);
    auto cells = sim::make_rail_deployment(sc.deployment, rng);
    auto holes = sim::make_hole_segments(sc.deployment, rng);
    sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
    auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

    // Exact pairwise conflict predicate for loop attribution, restricted
    // to cells that actually cover common ground.
    const auto pcs = trace::to_policy_cells(cells, policies);
    const double reach = 2.0 * sc.deployment.site_spacing_mean_m;
    const auto neighbor_filter = [&](std::size_t i, std::size_t j) {
      return std::abs(cells[i].site_pos_m - cells[j].site_pos_m) <= reach;
    };
    const auto conflicts =
        mobility::find_two_cell_conflicts(pcs, {}, neighbor_filter);
    out.total_conflicts += static_cast<int>(conflicts.size());
    for (const auto& [label, n] : mobility::conflict_histogram(conflicts))
      out.conflict_histogram[label] += n;
    std::set<std::pair<int, int>> pairs;
    for (const auto& c : conflicts) {
      pairs.insert({c.cell_i, c.cell_j});
      pairs.insert({c.cell_j, c.cell_i});
    }
    const auto pair_fn = [&pairs](int a, int b) {
      return pairs.count({a, b}) > 0;
    };

    core::LegacyConfig lc;
    lc.policies = policies;
    lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
    lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
    core::LegacyManager legacy(lc);
    sim::Simulator s1(env, sc.sim, bler, rng.fork());
    out.legacy.add(s1.run(legacy, pair_fn));

    if (run_rem) {
      core::RemManager remm(core::RemConfig{}, rng.fork());
      sim::Simulator s2(env, sc.sim, bler, rng.fork());
      // REM's coordinated policy is conflict-free by Theorem 2.
      out.rem.add(s2.run(remm, [](int, int) { return false; }));
    }
  }
  return out;
}

inline double pct(double x) { return 100.0 * x; }

/// "a x" reduction factor epsilon = (legacy - rem) / rem, as the paper
/// defines it; returns -1 when rem is zero (infinite reduction).
inline double reduction_factor(double legacy, double rem) {
  if (rem <= 0.0) return -1.0;
  return (legacy - rem) / rem;
}

}  // namespace rem::bench
