// Fig. 10: REM's error reduction for signaling — coded BLER vs SNR for
// legacy OFDM and REM's OTFS overlay, on (a) the high-speed-rail channel at
// 350 km/h and (b) the low-mobility EVA channel. Full link simulation
// (QPSK, rate-1/2 TBCC, 12x14 subframe).
#include "common/stats.hpp"
#include "common/units.hpp"
#include "phy/link.hpp"

#include <cstdio>

using namespace rem;

namespace {

void sweep(const char* label, channel::Profile profile, double speed_kmh,
           std::uint64_t seed) {
  channel::ChannelDrawConfig draw;
  draw.profile = profile;
  draw.speed_mps = common::kmh_to_mps(speed_kmh);
  draw.carrier_hz = 2.0e9;

  const std::vector<double> snrs = {-20, -15, -10, -5, 0, 5, 10, 15, 20,
                                    25, 30};
  phy::LinkConfig cfg;
  cfg.num = phy::Numerology::lte(12, 14);
  cfg.mod = phy::Modulation::kQPSK;

  std::printf("\nFig. 10 (%s, %s at %.0f km/h)\n", label,
              channel::profile_name(profile).c_str(), speed_kmh);
  std::printf("  %8s %12s %12s\n", "SNR(dB)", "Legacy/OFDM", "REM/OTFS");
  common::Rng rng(seed);
  cfg.waveform = phy::Waveform::kOFDM;
  const auto ofdm = phy::LinkSimulator(cfg).bler_curve(draw, snrs, 120, rng);
  cfg.waveform = phy::Waveform::kOTFS;
  const auto otfs = phy::LinkSimulator(cfg).bler_curve(draw, snrs, 120, rng);
  for (std::size_t i = 0; i < snrs.size(); ++i)
    std::printf("  %8.0f %11.1f%% %11.1f%%\n", snrs[i],
                100.0 * ofdm[i].bler, 100.0 * otfs[i].bler);
}

}  // namespace

int main() {
  std::printf("Fig. 10: block error rate vs SNR, coded link simulation\n");
  sweep("a: high-speed rails", channel::Profile::kHST350, 350.0, 1);
  sweep("b: low mobility", channel::Profile::kEVA, 60.0, 2);
  std::printf(
      "\nPaper reference (Fig. 10): OTFS needs several dB less SNR than "
      "OFDM under HSR\nDoppler and avoids OFDM's high-Doppler error floor; "
      "the two are close at low mobility.\n");
  return 0;
}
