// Table 5: Reduction of failures and policy conflicts (legacy vs REM).
//
// Runs the full simulator with both managers over every route/speed column
// of the paper's Table 5 and prints failure ratios (total, without coverage
// holes, per cause), conflict-loop statistics, and the reduction factor
// epsilon = (legacy - rem) / rem.
#include "scenario_runner.hpp"

#include <cstdio>

using namespace rem;

namespace {

void print_reduction(const char* row, double lg, double rm) {
  const double eps = bench::reduction_factor(lg, rm);
  if (eps < 0.0 && lg > 0.0)
    std::printf("  %-28s %8.2f%% %8.2f%% %10s\n", row, 100.0 * lg,
                100.0 * rm, "inf");
  else
    std::printf("  %-28s %8.2f%% %8.2f%% %9.1fx\n", row, 100.0 * lg,
                100.0 * rm, eps < 0 ? 0.0 : eps);
}

void run_column(const char* label, trace::Route route, double speed_kmh) {
  const auto run = bench::run_route(route, speed_kmh, 1500.0, {11, 12, 13});
  const auto& lg = run.legacy;
  const auto& rm = run.rem;
  std::printf("\n%s  (legacy HOs: %d, REM HOs: %d)\n", label, lg.handovers,
              rm.handovers);
  std::printf("  %-28s %9s %9s %10s\n", "", "Legacy", "REM", "reduction");
  print_reduction("Total failure ratio", lg.failure_ratio(),
                  rm.failure_ratio());
  print_reduction("Failure w/o coverage hole",
                  lg.failure_ratio_excluding_holes(),
                  rm.failure_ratio_excluding_holes());
  print_reduction("Feedback delay/loss",
                  lg.cause_ratio(sim::FailureCause::kFeedbackDelayLoss),
                  rm.cause_ratio(sim::FailureCause::kFeedbackDelayLoss));
  print_reduction("Missed cell",
                  lg.cause_ratio(sim::FailureCause::kMissedCell),
                  rm.cause_ratio(sim::FailureCause::kMissedCell));
  print_reduction("Handover cmd. loss",
                  lg.cause_ratio(sim::FailureCause::kHoCommandLoss),
                  rm.cause_ratio(sim::FailureCause::kHoCommandLoss));
  print_reduction("Coverage holes",
                  lg.cause_ratio(sim::FailureCause::kCoverageHole),
                  rm.cause_ratio(sim::FailureCause::kCoverageHole));

  const double lg_conf_ho =
      lg.handovers > 0 ? static_cast<double>(lg.conflict_loop_handovers) /
                             lg.handovers
                       : 0.0;
  const double rm_conf_ho =
      rm.handovers > 0 ? static_cast<double>(rm.conflict_loop_handovers) /
                             rm.handovers
                       : 0.0;
  print_reduction("Total HO in conflicts", lg_conf_ho, rm_conf_ho);
  std::printf("  %-28s %9d %9d\n", "Conflict loop episodes",
              lg.conflict_loop_episodes, rm.conflict_loop_episodes);
}

}  // namespace

int main() {
  std::printf(
      "Table 5: Reduction of failures and policy conflicts (LGC vs REM)\n");
  run_column("Low mobility, 0-100 km/h", trace::Route::kLowMobilityLA, 60.0);
  run_column("Beijing-Taiyuan, 200-300 km/h", trace::Route::kBeijingTaiyuan,
             250.0);
  run_column("Beijing-Shanghai, 100-200 km/h",
             trace::Route::kBeijingShanghai, 150.0);
  run_column("Beijing-Shanghai, 200-300 km/h",
             trace::Route::kBeijingShanghai, 250.0);
  run_column("Beijing-Shanghai, 300-350 km/h",
             trace::Route::kBeijingShanghai, 330.0);
  std::printf(
      "\nPaper reference (Table 5): REM cuts total failures 0.9-3.0x, "
      "failures w/o holes 3.9-12.7x,\nand eliminates conflict handovers "
      "entirely (0%% in every column).\n");
  return 0;
}
