// Fig. 2: Unreliable handover triggering & execution (legacy).
//  (a) measurement feedback delay CDF, HSR vs driving;
//  (b) block error rate CDF for uplink feedback and downlink handover
//      commands in the SNR window preceding failures.
#include "phy/bler_model.hpp"
#include "scenario_runner.hpp"

#include <cstdio>

using namespace rem;

int main() {
  // ---- (a) feedback delay CDFs from the full simulator ----
  const auto hsr =
      bench::run_route(trace::Route::kBeijingShanghai, 300.0, 1500.0,
                       {1, 2}, /*run_rem=*/false);
  const auto drive =
      bench::run_route(trace::Route::kLowMobilityLA, 60.0, 1500.0, {1, 2},
                       /*run_rem=*/false);

  std::printf("Fig. 2a: measurement feedback delay CDF (legacy)\n");
  std::printf("  HSR (100-350 km/h): mean %.1f ms, p50 %.1f ms, p90 %.1f ms\n",
              1e3 * hsr.legacy.feedback_delay_s.mean(),
              1e3 * hsr.legacy.feedback_delay_s.percentile(50),
              1e3 * hsr.legacy.feedback_delay_s.percentile(90));
  std::printf("  Driving (30-100 km/h): mean %.1f ms, p50 %.1f ms, p90 %.1f "
              "ms\n",
              1e3 * drive.legacy.feedback_delay_s.mean(),
              1e3 * drive.legacy.feedback_delay_s.percentile(50),
              1e3 * drive.legacy.feedback_delay_s.percentile(90));
  const auto cdf_hsr =
      common::empirical_cdf(hsr.legacy.feedback_delay_s.samples(), 12);
  std::printf("  delay_s  CDF(HSR)\n");
  for (const auto& p : cdf_hsr)
    std::printf("  %7.3f  %5.2f\n", p.value, p.fraction);

  // ---- (b) block error rates in the pre-failure SNR window ----
  // SNR samples come from the simulator's recorded 5 s windows preceding
  // each failure; the uplink report gets 2 HARQ attempts, the downlink
  // command one shot — hence the paper's UL < DL asymmetry.
  phy::LogisticBlerModel bler;
  std::vector<double> ul, dl;
  for (const double snr : hsr.legacy.pre_failure_snrs_db) {
    const double b =
        bler.bler(phy::Waveform::kOFDM, phy::DopplerRegime::kHigh, snr);
    ul.push_back(100.0 * b * b);  // after 2 attempts
    dl.push_back(100.0 * b);
  }
  common::Summary sul, sdl;
  sul.add_all(ul);
  sdl.add_all(dl);
  std::printf("\nFig. 2b: block error rate before signaling loss (OFDM, "
              "high Doppler)\n");
  std::printf("  uplink (feedback):   mean %5.1f%%  median %5.1f%%\n",
              sul.mean(), sul.median());
  std::printf("  downlink (HO cmd):   mean %5.1f%%  median %5.1f%%\n",
              sdl.mean(), sdl.median());
  std::printf("  BLER%%   CDF(UL)  CDF(DL)\n");
  for (double x = 0; x <= 100.0; x += 10.0)
    std::printf("  %5.0f   %6.2f   %6.2f\n", x, sul.cdf_at(x),
                sdl.cdf_at(x));
  std::printf(
      "\nPaper reference: HSR feedback averages ~800 ms vs sub-second "
      "driving; mean pre-loss\nBLER ~9.9%% uplink vs ~30.3%% downlink "
      "(downlink worse).\n");
  return 0;
}
