// §3.4 implications for 5G: the same mobility design under 5G NR
// numerologies (15/30/60/120 kHz subcarrier spacing) and carriers up to
// mmWave. Wider subcarriers shorten symbols and buy OFDM some Doppler
// robustness, but coherence time shrinks with carrier frequency faster
// than numerology can recover — while OTFS stays flat.
#include "common/stats.hpp"
#include "common/units.hpp"
#include "phy/link.hpp"

#include <cstdio>

using namespace rem;

int main() {
  std::printf("5G implications: coherence time vs carrier (350 km/h)\n");
  std::printf("  %10s %14s\n", "carrier", "Tc");
  for (double fc : {2.0e9, 3.5e9, 28e9, 39e9}) {
    std::printf("  %7.1f GHz %11.3f ms\n", fc / 1e9,
                1e3 * common::coherence_time_s(common::kmh_to_mps(350.0),
                                               fc));
  }

  std::printf("\nCoded BLER at 6 dB SNR, 350 km/h, by numerology and "
              "carrier (120 blocks each)\n");
  std::printf("  %10s %10s %12s %12s\n", "carrier", "SCS", "OFDM", "OTFS");
  common::Rng rng(5);
  for (double fc : {3.5e9, 28e9}) {
    for (double scs : {15e3, 30e3, 60e3, 120e3}) {
      channel::ChannelDrawConfig draw;
      draw.profile = channel::Profile::kHST350;
      draw.speed_mps = common::kmh_to_mps(350.0);
      draw.carrier_hz = fc;

      phy::LinkConfig cfg;
      cfg.num.num_subcarriers = 12;
      cfg.num.num_symbols = 14;
      cfg.num.subcarrier_spacing_hz = scs;
      cfg.num.cp_len = 1;
      cfg.mod = phy::Modulation::kQPSK;
      cfg.snr_db = 6.0;

      cfg.waveform = phy::Waveform::kOFDM;
      const auto ofdm =
          phy::LinkSimulator(cfg).measure_bler(draw, 120, rng);
      cfg.waveform = phy::Waveform::kOTFS;
      const auto otfs =
          phy::LinkSimulator(cfg).measure_bler(draw, 120, rng);
      std::printf("  %7.1f GHz %7.0fkHz %11.1f%% %11.1f%%\n", fc / 1e9,
                  scs / 1e3, 100.0 * ofdm.bler, 100.0 * otfs.bler);
    }
  }
  std::printf(
      "\nPaper §3.4: 5G keeps 4G's handover design while mmWave multiplies "
      "the Doppler —\nreliable extreme mobility gets harder, not easier; "
      "REM's overlay applies unchanged.\n");
  return 0;
}
