#include "net/backhaul.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rem::net {
namespace {

void check_prob(double v, const char* name) {
  if (!(v >= 0.0 && v <= 1.0))
    throw std::invalid_argument("BackhaulConfig: " + std::string(name) + " " +
                                std::to_string(v) + " outside [0, 1]");
}

void check_nonneg(double v, const char* name) {
  if (!(v >= 0.0))
    throw std::invalid_argument("BackhaulConfig: " + std::string(name) + " " +
                                std::to_string(v) + " must be >= 0");
}

}  // namespace

BackhaulNetwork::BackhaulNetwork(const BackhaulConfig& cfg, common::Rng rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  if (!(cfg_.base_latency_s > 0.0))
    throw std::invalid_argument("BackhaulConfig: base_latency_s " +
                                std::to_string(cfg_.base_latency_s) +
                                " must be > 0");
  check_nonneg(cfg_.jitter_s, "jitter_s");
  check_nonneg(cfg_.reorder_extra_s, "reorder_extra_s");
  check_prob(cfg_.loss_prob, "loss_prob");
  check_prob(cfg_.reorder_prob, "reorder_prob");
  check_prob(cfg_.duplicate_prob, "duplicate_prob");
  if (cfg_.queue_capacity < 1)
    throw std::invalid_argument(
        "BackhaulConfig: queue_capacity must be >= 1");
  if (!(cfg_.reverse_latency_scale > 0.0))
    throw std::invalid_argument("BackhaulConfig: reverse_latency_scale " +
                                std::to_string(cfg_.reverse_latency_scale) +
                                " must be > 0");
}

double BackhaulNetwork::draw_delay(double extra_delay_s) {
  double d = cfg_.base_latency_s + extra_delay_s;
  if (cfg_.jitter_s > 0.0) d += rng_.uniform(0.0, cfg_.jitter_s);
  if (cfg_.reorder_prob > 0.0 && rng_.bernoulli(cfg_.reorder_prob)) {
    ++stats_.reordered;
    if (cfg_.reorder_extra_s > 0.0)
      d += rng_.uniform(0.0, cfg_.reorder_extra_s);
  }
  return d;
}

bool BackhaulNetwork::send(double now_s, const BackhaulMessage& msg,
                           double extra_loss_prob, double extra_delay_s,
                           bool partitioned) {
  ++stats_.sent;
  // Partitions are deterministic drops: no draws, so a partition window
  // does not shift the random sequence of messages sent after it ends.
  if (partitioned) {
    ++stats_.dropped_partition;
    return false;
  }
  const double p_loss = std::min(1.0, cfg_.loss_prob + extra_loss_prob);
  if (p_loss > 0.0 && rng_.bernoulli(p_loss)) {
    ++stats_.dropped_loss;
    return false;
  }
  if (queue_.size() >= cfg_.queue_capacity) {
    ++stats_.dropped_queue;
    return false;
  }
  // Asymmetric provisioning: the reverse direction (toward the
  // lower-indexed cell) pays the configured scale on its whole one-way
  // delay. The scale multiplies *after* the draws, so symmetric and
  // asymmetric links consume the identical random sequence.
  const bool reverse =
      msg.src_cell >= 0 && msg.dst_cell >= 0 && msg.dst_cell < msg.src_cell;
  const double dir_scale = reverse ? cfg_.reverse_latency_scale : 1.0;
  InFlight f;
  f.deliver_at_s = now_s + dir_scale * draw_delay(extra_delay_s);
  f.order = next_order_++;
  f.sent_at_s = now_s;
  f.frame = encode_message(msg);
  queue_.push_back(std::move(f));
  if (cfg_.duplicate_prob > 0.0 && rng_.bernoulli(cfg_.duplicate_prob) &&
      queue_.size() < cfg_.queue_capacity) {
    ++stats_.duplicated;
    InFlight dup;
    dup.deliver_at_s = now_s + dir_scale * draw_delay(extra_delay_s);
    dup.order = next_order_++;
    dup.sent_at_s = now_s;
    dup.frame = encode_message(msg);
    queue_.push_back(std::move(dup));
  }
  return true;
}

std::size_t BackhaulNetwork::drop_in_flight_for_cell(std::int32_t cell) {
  std::size_t kept = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const BackhaulMessage m = decode_message(queue_[i].frame);
    if (m.src_cell == cell || m.dst_cell == cell) {
      ++dropped;
    } else {
      if (kept != i) queue_[kept] = std::move(queue_[i]);
      ++kept;
    }
  }
  queue_.resize(kept);
  stats_.dropped_crash += dropped;
  return dropped;
}

std::vector<BackhaulMessage> BackhaulNetwork::poll(double now_s) {
  // Tolerance matches the simulator's tick-time epsilon so a frame due
  // exactly on a tick boundary is not deferred by float rounding.
  const double cutoff = now_s + 1e-9;
  std::vector<InFlight> due;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].deliver_at_s <= cutoff) {
      due.push_back(std::move(queue_[i]));
    } else {
      if (kept != i) queue_[kept] = std::move(queue_[i]);
      ++kept;
    }
  }
  queue_.resize(kept);
  std::sort(due.begin(), due.end(), [](const InFlight& a, const InFlight& b) {
    if (a.deliver_at_s != b.deliver_at_s) return a.deliver_at_s < b.deliver_at_s;
    return a.order < b.order;
  });
  std::vector<BackhaulMessage> out;
  out.reserve(due.size());
  for (const auto& f : due) {
    out.push_back(decode_message(f.frame));
    ++stats_.delivered;
    stats_.latency_sum_s += f.deliver_at_s - f.sent_at_s;
  }
  return out;
}

}  // namespace rem::net
