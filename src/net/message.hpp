// Inter-BS control-plane messages for the backhaul transport (rem::net).
//
// Handover preparation and context transfer between base stations ride a
// real (simulated) network, not a function call, so every message has a
// wire format: a fixed-size framed encoding with magic, version, and an
// FNV-1a checksum. The codec is load-bearing — BackhaulNetwork encodes at
// send() and decodes at poll(), so a corrupted frame can never silently
// become a well-formed message. decode_message() follows the repo's
// reject-with-context convention: malformed input throws
// std::runtime_error naming the offending field and value, never returns
// a guess.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rem::net {

/// X2-style control-plane message types carried between base stations.
enum class MsgType : std::uint8_t {
  kHandoverRequest = 1,  ///< serving BS asks the target to prepare
  kHandoverAck = 2,      ///< target admitted the handover (prep done)
  kHandoverReject = 3,   ///< target refused admission
  kContextFetch = 4,     ///< re-establishment BS asks for the UE context
  kContextResponse = 5,  ///< old serving BS returns the UE context
  kHandoverRejectBusy = 6,  ///< target overloaded: admission control
                            ///< rejected the request; payload carries the
                            ///< backoff hint in seconds
  kContextStale = 7,     ///< old serving BS restarted and lost the UE
                         ///< context; the fetched state would be stale
};

constexpr std::size_t kNumMsgTypes = 7;

/// Stable identifier used in logs/JSON. Throws std::invalid_argument on a
/// value outside the enum instead of returning a placeholder.
std::string msg_type_name(MsgType t);

/// One backhaul message. `seq` identifies the transaction: replies echo
/// the request's sequence number so the sender can match answers to
/// outstanding requests and discard stale or duplicated ones
/// (idempotent receive via SequenceTracker).
struct BackhaulMessage {
  std::uint64_t seq = 0;
  MsgType type = MsgType::kHandoverRequest;
  std::int32_t src_cell = -1;     ///< originating cell index (-1 = n/a)
  std::int32_t dst_cell = -1;     ///< destination cell index (-1 = n/a)
  std::int32_t target_cell = -1;  ///< handover/context subject cell
  /// UE the transaction concerns (X2 messages carry a UE id on real
  /// links). Replies echo the request's ue, so a fleet simulation can
  /// route every answer back to the owning UE without a side table.
  /// Always 0 in single-UE runs.
  std::int32_t ue = 0;
  double payload = 0.0;           ///< type-specific (e.g. admission RSRP)
  /// Sender's control-plane load advertisement, piggybacked on every
  /// frame: utilization of the sending BS in [0, 1], or -1 when the
  /// sender does not advertise (load advertisement disabled, or the
  /// sender is not a BS). Receivers treat anything < 0 as "no ad".
  double load = -1.0;
};

/// Wire framing: magic(2) version(1) type(1) seq(8) src(4) dst(4)
/// target(4) ue(4) payload(8) load(8) checksum(4), little-endian,
/// 48 bytes total. The checksum is 32-bit FNV-1a over every preceding
/// byte. Version 2 added the ue field; version 3 added the piggybacked
/// load advertisement. Older versions are rejected like any other
/// foreign version — the transport never mixes versions in flight.
constexpr std::size_t kFrameSize = 48;
constexpr std::uint16_t kFrameMagic = 0x5242;  // "RB" (REM backhaul)
constexpr std::uint8_t kFrameVersion = 3;

/// Encode one message into its framed wire form (always kFrameSize bytes).
std::vector<std::uint8_t> encode_message(const BackhaulMessage& m);

/// Decode one frame. Throws std::runtime_error with reject context on any
/// malformation: short/long frame, bad magic, unsupported version,
/// unknown type, cell index below -1, or checksum mismatch.
BackhaulMessage decode_message(const std::uint8_t* data, std::size_t len);

inline BackhaulMessage decode_message(const std::vector<std::uint8_t>& f) {
  return decode_message(f.data(), f.size());
}

}  // namespace rem::net
