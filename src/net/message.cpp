#include "net/message.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace rem::net {
namespace {

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::string msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHandoverRequest: return "handover_request";
    case MsgType::kHandoverAck: return "handover_ack";
    case MsgType::kHandoverReject: return "handover_reject";
    case MsgType::kContextFetch: return "context_fetch";
    case MsgType::kContextResponse: return "context_response";
    case MsgType::kHandoverRejectBusy: return "handover_reject_busy";
    case MsgType::kContextStale: return "context_stale";
  }
  throw std::invalid_argument("msg_type_name: invalid MsgType value " +
                              std::to_string(static_cast<int>(t)));
}

std::vector<std::uint8_t> encode_message(const BackhaulMessage& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameSize);
  put_u16(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(m.type));
  put_u64(out, m.seq);
  put_u32(out, static_cast<std::uint32_t>(m.src_cell));
  put_u32(out, static_cast<std::uint32_t>(m.dst_cell));
  put_u32(out, static_cast<std::uint32_t>(m.target_cell));
  put_u32(out, static_cast<std::uint32_t>(m.ue));
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(m.payload));
  std::memcpy(&bits, &m.payload, sizeof(bits));
  put_u64(out, bits);
  std::memcpy(&bits, &m.load, sizeof(bits));
  put_u64(out, bits);
  put_u32(out, fnv1a32(out.data(), out.size()));
  return out;
}

BackhaulMessage decode_message(const std::uint8_t* data, std::size_t len) {
  const auto fail = [](const std::string& why) {
    throw std::runtime_error("backhaul frame: " + why);
  };
  if (len != kFrameSize)
    fail("bad length " + std::to_string(len) + " (frame is " +
         std::to_string(kFrameSize) + " bytes)");
  const std::uint16_t magic = get_u16(data);
  if (magic != kFrameMagic) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "bad magic 0x%04x", magic);
    fail(buf);
  }
  if (data[2] != kFrameVersion)
    fail("unsupported version " + std::to_string(data[2]) + " (expected " +
         std::to_string(kFrameVersion) + ")");
  const std::uint32_t want = fnv1a32(data, kFrameSize - 4);
  const std::uint32_t got = get_u32(data + kFrameSize - 4);
  if (want != got) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "checksum mismatch (got 0x%08x, want 0x%08x)",
                  got, want);
    fail(buf);
  }
  const std::uint8_t raw_type = data[3];
  if (raw_type < 1 || raw_type > kNumMsgTypes)
    fail("unknown message type " + std::to_string(raw_type));
  BackhaulMessage m;
  m.type = static_cast<MsgType>(raw_type);
  m.seq = get_u64(data + 4);
  m.src_cell = static_cast<std::int32_t>(get_u32(data + 12));
  m.dst_cell = static_cast<std::int32_t>(get_u32(data + 16));
  m.target_cell = static_cast<std::int32_t>(get_u32(data + 20));
  m.ue = static_cast<std::int32_t>(get_u32(data + 24));
  const auto check_cell = [&](std::int32_t v, const char* name) {
    if (v < -1)
      fail(std::string("invalid ") + name + " " + std::to_string(v) +
           " (must be >= -1)");
  };
  check_cell(m.src_cell, "src_cell");
  check_cell(m.dst_cell, "dst_cell");
  check_cell(m.target_cell, "target_cell");
  if (m.ue < 0)
    fail("invalid ue " + std::to_string(m.ue) + " (must be >= 0)");
  std::uint64_t bits = get_u64(data + 28);
  std::memcpy(&m.payload, &bits, sizeof(m.payload));
  bits = get_u64(data + 36);
  std::memcpy(&m.load, &bits, sizeof(m.load));
  if (m.load > 1.0)
    fail("invalid load advertisement " + std::to_string(m.load) +
         " (must be <= 1; negative means none)");
  return m;
}

}  // namespace rem::net
