// Deterministic discrete-event backhaul transport between base stations.
//
// BackhaulNetwork models the inter-BS control-plane link the way INET/ns-3
// style simulators do — as a seeded message queue with a per-link latency
// distribution (base + uniform jitter), random loss, reordering,
// duplication, and a bounded queue that drops on overload — while keeping
// the repo's determinism contract: every stochastic choice draws from the
// network's own forked Rng at send() time, in a fixed order, so identical
// (config, seed, send sequence) triples replay the exact same delivery
// timeline on any thread count. Fault windows (sim::FaultInjector's
// backhaul classes) enter as per-send overrides: extra loss probability,
// extra one-way delay, or a partition that drops everything at the sender.
//
// Messages cross the wire framed (net/message.hpp): send() encodes,
// poll() decodes, so the codec sits on the live path rather than only in
// tests.
#pragma once

#include "common/rng.hpp"
#include "net/message.hpp"

#include <cstdint>
#include <set>
#include <vector>

namespace rem::net {

/// Per-link transport model. Probabilities are per message; latency is
/// `base_latency_s` plus a uniform draw in [0, jitter_s). Validated at
/// BackhaulNetwork construction (reject-with-context on nonsense).
struct BackhaulConfig {
  /// Master switch: when false the simulator falls back to instantaneous,
  /// infallible preparation (the pre-backhaul behaviour).
  bool enabled = true;
  double base_latency_s = 0.004;  ///< one-way propagation + switching
  double jitter_s = 0.002;        ///< uniform extra delay in [0, jitter_s)
  double loss_prob = 0.0;         ///< ambient per-message loss
  double reorder_prob = 0.0;      ///< chance of an extra reorder delay
  double reorder_extra_s = 0.006; ///< uniform extra delay when reordered
  double duplicate_prob = 0.0;    ///< chance the frame is delivered twice
  std::size_t queue_capacity = 64; ///< in-flight cap; overload drops
  /// Per-link asymmetry: messages flowing "down-corridor" (dst_cell <
  /// src_cell — the return path of a prep handshake toward the serving BS)
  /// have their whole one-way delay (base + jitter + spikes + reorder
  /// extra) multiplied by this factor. Models forward/return backhaul
  /// links provisioned differently along the deployment; 1.0 (the
  /// default) is exactly symmetric and leaves the delivery timeline
  /// bit-identical to the pre-asymmetry transport. Draw order is
  /// unaffected either way. Must be > 0.
  double reverse_latency_scale = 1.0;
};

/// Monotonic transport counters, mirrored into SimStats at end of run.
struct TransportStats {
  std::uint64_t sent = 0;               ///< send() calls (incl. drops)
  std::uint64_t delivered = 0;          ///< frames handed out by poll()
  std::uint64_t dropped_loss = 0;       ///< lost to the loss probability
  std::uint64_t dropped_partition = 0;  ///< dropped while partitioned
  std::uint64_t dropped_queue = 0;      ///< dropped on queue overload
  std::uint64_t dropped_crash = 0;      ///< flushed when a BS crashed
  std::uint64_t duplicated = 0;         ///< extra copies injected
  std::uint64_t reordered = 0;          ///< frames given a reorder delay
  double latency_sum_s = 0.0;           ///< summed over delivered frames
};

/// Seeded inter-BS message transport (see the file-top comment). Not
/// thread-safe; one instance per simulation run, like the simulator's own
/// Rng.
class BackhaulNetwork {
 public:
  /// Validates `cfg` (latency > 0, probabilities in [0,1], non-negative
  /// jitter/reorder delay, capacity >= 1), throwing std::invalid_argument
  /// naming the offending field. The Rng is owned and advanced only by
  /// this network, so other subsystems' draw sequences are unaffected.
  BackhaulNetwork(const BackhaulConfig& cfg, common::Rng rng);

  /// Submit one message at simulated time `now_s`. `extra_loss_prob` adds
  /// to the ambient loss probability (saturating at 1), `extra_delay_s`
  /// adds one-way latency, and `partitioned` drops the message outright
  /// without consuming any random draws (partitions are deterministic).
  /// Returns whether the frame was queued (duplicates count as queued
  /// once); a false return means the message is gone — senders recover
  /// via their own timeout/retry machinery, never via transport feedback.
  bool send(double now_s, const BackhaulMessage& msg,
            double extra_loss_prob = 0.0, double extra_delay_s = 0.0,
            bool partitioned = false);

  /// Deliver every frame due at or before `now_s`, sorted by (delivery
  /// time, send order) so simultaneous deliveries have a deterministic
  /// order. Frames are decoded through the wire codec on the way out.
  std::vector<BackhaulMessage> poll(double now_s);

  /// A BS crash takes its half of every in-flight exchange down with it:
  /// drop all queued frames whose source or destination is `cell`
  /// (counted as dropped_crash). Returns how many frames were dropped.
  /// Draws no randomness — crash drops are deterministic, like partitions.
  std::size_t drop_in_flight_for_cell(std::int32_t cell);

  const TransportStats& stats() const { return stats_; }
  std::size_t in_flight() const { return queue_.size(); }
  const BackhaulConfig& config() const { return cfg_; }

 private:
  struct InFlight {
    double deliver_at_s = 0.0;
    std::uint64_t order = 0;  ///< send order, tie-break for equal times
    double sent_at_s = 0.0;
    std::vector<std::uint8_t> frame;
  };

  double draw_delay(double extra_delay_s);

  BackhaulConfig cfg_;
  common::Rng rng_;
  std::vector<InFlight> queue_;
  std::uint64_t next_order_ = 0;
  TransportStats stats_;
};

/// At-most-once receive filter keyed on BackhaulMessage::seq: accept()
/// returns true exactly once per sequence number, so duplicated or
/// re-sent frames cannot double-trigger handover state transitions.
class SequenceTracker {
 public:
  /// True iff `seq` has not been accepted before (and records it).
  bool accept(std::uint64_t seq) {
    if (!seen_.insert(seq).second) {
      ++duplicates_;
      return false;
    }
    return true;
  }
  bool seen(std::uint64_t seq) const { return seen_.count(seq) > 0; }
  std::uint64_t duplicates() const { return duplicates_; }

  /// A crashed-and-restarted BS loses its receive-side dedup state; the
  /// duplicates counter stays monotonic (it is mirrored into run stats).
  void reset() { seen_.clear(); }

 private:
  std::set<std::uint64_t> seen_;
  std::uint64_t duplicates_ = 0;
};

}  // namespace rem::net
