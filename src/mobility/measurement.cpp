#include "mobility/measurement.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace rem::mobility {
namespace {

// Wall-clock time needed to accumulate `needed` seconds of in-gap
// measurement under the gap schedule.
double gap_time(double needed, const MeasurementConfig& cfg) {
  if (needed <= 0.0) return 0.0;
  const double gaps = std::ceil(needed / cfg.gap_length_s);
  // The last gap may be partially used; earlier gaps are fully spaced.
  return (gaps - 1.0) * cfg.gap_period_s +
         (needed - (gaps - 1.0) * cfg.gap_length_s);
}

}  // namespace

double legacy_feedback_delay_s(const std::vector<MeasureTask>& tasks,
                               const MeasurementConfig& cfg,
                               int reconfigurations) {
  // Head-of-line blocking: every cell is measured one after another, the
  // report leaves only after the slowest TTT-gated cell.
  double intra_time = 0.0;
  double inter_acquire = 0.0;
  bool any_intra = false, any_inter = false;
  for (const auto& t : tasks) {
    if (t.intra_frequency) {
      intra_time += cfg.intra_measure_s;
      any_intra = true;
    } else {
      inter_acquire += cfg.inter_acquire_s;
      any_inter = true;
    }
  }
  double delay = intra_time + gap_time(inter_acquire, cfg);
  if (any_inter)
    delay += cfg.inter_ttt_s;
  else if (any_intra)
    delay += cfg.intra_ttt_s;
  delay += cfg.report_latency_s;
  delay += reconfigurations * cfg.reconfigure_rtt_s;
  return delay;
}

double rem_feedback_delay_s(const std::vector<MeasureTask>& tasks,
                            const MeasurementConfig& cfg) {
  // Group by base station; measure one cell per site (intra preferred).
  std::map<int, bool> site_has_intra;
  for (const auto& t : tasks) {
    auto [it, inserted] =
        site_has_intra.try_emplace(t.cell.base_station, t.intra_frequency);
    if (!inserted) it->second = it->second || t.intra_frequency;
  }
  double intra_time = 0.0;
  double inter_acquire = 0.0;
  std::size_t sites = 0;
  for (const auto& [site, has_intra] : site_has_intra) {
    ++sites;
    if (has_intra)
      intra_time += cfg.intra_measure_s;
    else
      inter_acquire += cfg.inter_acquire_s;
  }
  double delay = intra_time + gap_time(inter_acquire, cfg);
  // Stable delay-Doppler metrics let REM use the short (intra) TTT for
  // everything; cross-band estimation adds its runtime per site.
  delay += cfg.intra_ttt_s;
  delay += cfg.crossband_runtime_s * static_cast<double>(sites);
  delay += cfg.report_latency_s;
  return delay;
}

double gap_spectrum_overhead(const MeasurementConfig& cfg, bool gaps_active) {
  if (!gaps_active) return 0.0;
  return cfg.gap_length_s / cfg.gap_period_s;
}

}  // namespace rem::mobility
