// Client-side measurement feedback model (§3.1 and Fig. 2a/14a).
//
// Legacy 4G/5G measures cells *sequentially*: intra-frequency cells during
// normal operation, inter-frequency cells only inside pre-allocated
// measurement gaps (typically 6 ms every 40 ms), each cell's report gated
// by its TimeToTrigger. The head-of-line blocking this creates — plus the
// round trips of multi-stage reconfiguration — is the feedback delay the
// paper measures at ~800 ms on HSR.
//
// REM measures one cell per base station and cross-band-estimates the rest,
// eliminating the gap-schedule serialization for co-located cells.
#pragma once

#include "mobility/cell.hpp"

#include <cstddef>
#include <vector>

namespace rem::mobility {

struct MeasurementConfig {
  /// Time to acquire + filter one intra-frequency cell [s].
  double intra_measure_s = 0.040;
  /// Measurement gap schedule: gap_length every gap_period (LTE gp0/gp1).
  double gap_period_s = 0.040;
  double gap_length_s = 0.006;
  /// Time inside gaps needed to acquire one inter-frequency cell [s].
  double inter_acquire_s = 0.015;
  /// TimeToTrigger applied after acquisition, intra / inter [s].
  double intra_ttt_s = 0.040;
  double inter_ttt_s = 0.640;
  /// One-way report delivery latency [s] (uplink scheduling + HARQ).
  double report_latency_s = 0.010;
  /// Extra round trip for each multi-stage reconfiguration [s].
  double reconfigure_rtt_s = 0.050;
  /// REM: time to run cross-band estimation per base station [s].
  double crossband_runtime_s = 0.0;
};

/// One cell the client has to evaluate before reporting.
struct MeasureTask {
  CellId cell;
  bool intra_frequency = true;
};

/// Time from "measurement needed" to "feedback delivered" for the legacy
/// sequential procedure. `reconfigurations` counts multi-stage round trips
/// that happened before the final report (0 for single-stage).
double legacy_feedback_delay_s(const std::vector<MeasureTask>& tasks,
                               const MeasurementConfig& cfg,
                               int reconfigurations = 0);

/// Feedback delay under REM: one measured cell per base station (preferring
/// intra-frequency), cross-band estimation for co-located cells, no
/// multi-stage round trips, no inter-frequency gaps for co-located cells.
/// Cells whose base station hosts no measurable intra-frequency cell still
/// need one gap-based acquisition.
double rem_feedback_delay_s(const std::vector<MeasureTask>& tasks,
                            const MeasurementConfig& cfg);

/// Spectrum fraction lost to measurement gaps while `inter_cells` cells
/// are being monitored without cross-band estimation (§3.2's
/// 38.3-61.7% MeasurementGap cost when multi-stage policies are disabled).
double gap_spectrum_overhead(const MeasurementConfig& cfg, bool gaps_active);

}  // namespace rem::mobility
