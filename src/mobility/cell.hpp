// Cell and base-station identities shared by the mobility and simulation
// layers.
#pragma once

#include <cstdint>
#include <functional>

namespace rem::mobility {

/// EARFCN-style frequency channel number. Cells on the same channel are
/// "intra-frequency" neighbors; others require inter-frequency measurement
/// (gaps) under the legacy design.
using ChannelId = int;

struct CellId {
  int cell = -1;      ///< globally unique cell index (ECI-like)
  int base_station = -1;  ///< physical site (cells sharing it share paths)
  ChannelId channel = -1;

  bool valid() const { return cell >= 0; }
  friend bool operator==(const CellId&, const CellId&) = default;
};

}  // namespace rem::mobility

template <>
struct std::hash<rem::mobility::CellId> {
  std::size_t operator()(const rem::mobility::CellId& c) const noexcept {
    return std::hash<int>()(c.cell);
  }
};
