#include "mobility/conflict.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rem::mobility {
namespace {

// Conjunction of box bounds on (r_s, r_n) and a lower bound on r_n - r_s.
// Every Table 1 event maps onto this shape:
//   A1: r_s > t          A2: r_s < t          A3: r_n - r_s > offset
//   A4: r_n > t          A5: r_s < t1, r_n > t2
struct Region {
  double s_lo, s_hi;  // serving metric bounds
  double n_lo, n_hi;  // neighbor metric bounds
  double diff_lo;     // r_n - r_s > diff_lo (-inf when unconstrained)

  static Region full(const MetricRange& r) {
    return {r.lo, r.hi, r.lo, r.hi,
            -std::numeric_limits<double>::infinity()};
  }
};

Region event_region(const EventConfig& e, const MetricRange& range) {
  Region reg = Region::full(range);
  switch (e.type) {
    case EventType::kA1:
      reg.s_lo = std::max(reg.s_lo, e.threshold1 + e.hysteresis);
      break;
    case EventType::kA2:
      reg.s_hi = std::min(reg.s_hi, e.threshold1 - e.hysteresis);
      break;
    case EventType::kA3:
      reg.diff_lo = e.offset + e.hysteresis;
      break;
    case EventType::kA4:
      reg.n_lo = std::max(reg.n_lo, e.threshold1 + e.hysteresis);
      break;
    case EventType::kA5:
      reg.s_hi = std::min(reg.s_hi, e.threshold1 - e.hysteresis);
      reg.n_lo = std::max(reg.n_lo, e.threshold2 + e.hysteresis);
      break;
  }
  return reg;
}

// Intersect region A (serving = r1, neighbor = r2) with region B evaluated
// with the roles swapped (serving = r2, neighbor = r1). Exact
// satisfiability over the (r1, r2) plane, returning a witness point.
bool regions_intersect(const Region& a, const Region& b, double* w1,
                       double* w2) {
  // r1 bounds: a's serving and b's neighbor. r2 bounds: a's neighbor and
  // b's serving.
  const double r1_lo = std::max(a.s_lo, b.n_lo);
  const double r1_hi = std::min(a.s_hi, b.n_hi);
  const double r2_lo = std::max(a.n_lo, b.s_lo);
  const double r2_hi = std::min(a.n_hi, b.s_hi);
  if (r1_lo > r1_hi || r2_lo > r2_hi) return false;
  // Difference constraints: a demands r2 - r1 > a.diff_lo; b demands
  // r1 - r2 > b.diff_lo, i.e. r2 - r1 < -b.diff_lo.
  const double d_lo = a.diff_lo;                 // r2 - r1 > d_lo
  const double d_hi = -b.diff_lo;                // r2 - r1 < d_hi
  // Achievable (r2 - r1) range within the box:
  const double feas_lo = std::max(r2_lo - r1_hi, d_lo);
  const double feas_hi = std::min(r2_hi - r1_lo, d_hi);
  // Strict inequalities: need a nonempty open interval.
  if (!(feas_lo < feas_hi)) return false;
  // Build a witness: pick d in the middle, then choose r1 so both points
  // stay in their boxes.
  const double eps = 1e-9;
  const double d = std::nextafter(
      std::clamp((feas_lo + feas_hi) / 2.0, feas_lo + eps, feas_hi - eps),
      feas_hi);
  const double r1_min = std::max(r1_lo, r2_lo - d);
  const double r1_max = std::min(r1_hi, r2_hi - d);
  const double r1 = (r1_min + r1_max) / 2.0;
  if (w1 != nullptr) *w1 = r1;
  if (w2 != nullptr) *w2 = r1 + d;
  return true;
}

// Handover-capable rules of a policy with the serving-metric gate implied
// by reaching their stage: a stage-N rule (N > 0) is only armed after the
// A2 reconfiguration guard fired, so its region inherits the guard's
// serving upper bound. Returns (rule, serving_upper_bound) pairs.
struct GatedRule {
  const PolicyRule* rule;
  double serving_upper;  // +inf when ungated
};

std::vector<GatedRule> handover_rules(const CellPolicy& p) {
  // Weakest (highest) A2 guard leading out of stage 0.
  double guard = std::numeric_limits<double>::infinity();
  for (const auto& r : p.rules) {
    if (r.action == PolicyAction::kReconfigure &&
        r.event.type == EventType::kA2)
      guard = std::min(guard, r.event.threshold1 - r.event.hysteresis);
  }
  std::vector<GatedRule> out;
  for (const auto& r : p.rules) {
    if (r.action != PolicyAction::kHandover) continue;
    out.push_back({&r, r.stage > 0
                           ? guard
                           : std::numeric_limits<double>::infinity()});
  }
  return out;
}

bool rule_applies_to(const PolicyRule& rule, const CellId& serving,
                     const CellId& target) {
  if (rule.channel == PolicyRule::kAnyChannel) return true;
  if (rule.channel == PolicyRule::kServingChannel)
    return target.channel == serving.channel;
  if (rule.channel == PolicyRule::kOtherChannels)
    return target.channel != serving.channel;
  return rule.channel == target.channel;
}

}  // namespace

std::string conflict_type_label(EventType a, EventType b) {
  std::string sa = event_name(a);
  std::string sb = event_name(b);
  if (sb < sa) std::swap(sa, sb);
  return sa + "-" + sb;
}

std::vector<TwoCellConflict> find_two_cell_conflicts(
    const std::vector<PolicyCell>& cells, MetricRange range,
    const std::function<bool(std::size_t, std::size_t)>& pair_filter) {
  std::vector<TwoCellConflict> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      if (pair_filter && !pair_filter(i, j)) continue;
      const auto& ci = cells[i];
      const auto& cj = cells[j];
      const auto rules_i = handover_rules(ci.policy);
      const auto rules_j = handover_rules(cj.policy);
      bool found = false;
      for (const auto& ri : rules_i) {
        if (found) break;
        if (!rule_applies_to(*ri.rule, ci.id, cj.id)) continue;
        for (const auto& rj : rules_j) {
          if (!rule_applies_to(*rj.rule, cj.id, ci.id)) continue;
          Region a = event_region(ri.rule->event, range);
          Region b = event_region(rj.rule->event, range);
          a.s_hi = std::min(a.s_hi, ri.serving_upper);
          b.s_hi = std::min(b.s_hi, rj.serving_upper);
          double w1 = 0, w2 = 0;
          if (regions_intersect(a, b, &w1, &w2)) {
            TwoCellConflict c;
            c.cell_i = ci.id.cell;
            c.cell_j = cj.id.cell;
            c.event_i = ri.rule->event.type;
            c.event_j = rj.rule->event.type;
            c.inter_frequency = ci.id.channel != cj.id.channel;
            c.witness_ri = w1;
            c.witness_rj = w2;
            out.push_back(c);
            found = true;  // one conflict per pair, like Table 3 counts
            break;
          }
        }
      }
    }
  }
  return out;
}

std::map<std::string, int> conflict_histogram(
    const std::vector<TwoCellConflict>& conflicts) {
  std::map<std::string, int> hist;
  for (const auto& c : conflicts)
    ++hist[conflict_type_label(c.event_i, c.event_j)];
  return hist;
}

std::vector<TripleViolation> check_theorem2(
    const std::vector<std::vector<double>>& deltas) {
  std::vector<TripleViolation> out;
  const int n = static_cast<int>(deltas.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      for (int k = 0; k < n; ++k) {
        if (k == j) continue;  // i may equal k (2-cell loop case)
        const double sum = deltas[i][j] + deltas[j][k];
        if (sum < 0.0) out.push_back({i, j, k, sum});
      }
    }
  }
  return out;
}

std::vector<std::vector<double>> repair_theorem2(
    std::vector<std::vector<double>> deltas) {
  // Theorem 2 only binds each middle cell j through its *minimum* incoming
  // and outgoing offsets: the condition holds iff for every j,
  // min_i D(i->j) + min_k D(j->k) >= 0. Repair in one O(n^2) pass: for a
  // violating j, raise both minima by half the deficit via per-node
  // floors, then clamp every edge to the floors of both endpoints.
  // Raising offsets can never create a violation, so one pass suffices;
  // compatible matrices get -inf floors and stay untouched.
  const std::size_t n = deltas.size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> in_floor(n, -inf), out_floor(n, -inf);
  for (std::size_t j = 0; j < n; ++j) {
    double m_in = inf, m_out = inf;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      m_in = std::min(m_in, deltas[i][j]);
      m_out = std::min(m_out, deltas[j][i]);
    }
    if (m_in == inf || m_out == inf) continue;  // fewer than 2 cells
    const double sum = m_in + m_out;
    if (sum < 0.0) {
      // Lift each minimum by |sum|/2 plus a rounding guard so the
      // repaired sums land strictly at >= 0.
      in_floor[j] = m_in - sum / 2.0 + 1e-9;
      out_floor[j] = m_out - sum / 2.0 + 1e-9;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      deltas[i][j] =
          std::max({deltas[i][j], out_floor[i], in_floor[j]});
    }
  }
  return deltas;
}

bool a3_cycle_satisfiable(const std::vector<double>& cycle_offsets) {
  double sum = 0.0;
  for (double d : cycle_offsets) sum += d;
  return sum < 0.0;
}

std::vector<A3Loop> find_a3_loops(
    const std::vector<PolicyCell>& cells, std::size_t max_len,
    const std::function<bool(std::size_t, std::size_t)>& pair_filter) {
  const std::size_t n = cells.size();
  // Directed A3 edge weights (offset of i's A3 rule applicable to j),
  // or NaN when no edge.
  const double none = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> edge(n, std::vector<double>(n, none));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (pair_filter && !pair_filter(std::min(i, j), std::max(i, j)))
        continue;
      const auto off = cells[i].policy.a3_offset_for(cells[j].id.channel,
                                                     cells[i].id.channel);
      if (off) edge[i][j] = *off;
    }
  }

  std::vector<A3Loop> loops;
  // DFS from each start node, only visiting indices > start so every
  // cycle is enumerated exactly once (anchored at its smallest index).
  std::vector<std::size_t> path;
  std::vector<bool> on_path(n, false);
  const std::function<void(std::size_t, std::size_t, double)> dfs =
      [&](std::size_t start, std::size_t at, double sum) {
        if (path.size() >= 2 && !std::isnan(edge[at][start]) &&
            sum + edge[at][start] < 0.0) {
          A3Loop loop;
          for (const auto idx : path)
            loop.cells.push_back(cells[idx].id.cell);
          loop.offset_sum = sum + edge[at][start];
          loops.push_back(std::move(loop));
        }
        if (path.size() == max_len) return;
        for (std::size_t next = start + 1; next < n; ++next) {
          if (on_path[next] || std::isnan(edge[at][next])) continue;
          path.push_back(next);
          on_path[next] = true;
          dfs(start, next, sum + edge[at][next]);
          on_path[next] = false;
          path.pop_back();
        }
      };
  for (std::size_t start = 0; start < n; ++start) {
    path = {start};
    on_path.assign(n, false);
    on_path[start] = true;
    dfs(start, start, 0.0);
  }
  return loops;
}

}  // namespace rem::mobility
