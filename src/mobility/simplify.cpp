#include "mobility/simplify.hpp"

#include <set>

namespace rem::mobility {

CellPolicy simplify_policy(const CellPolicy& legacy,
                           double a4_default_offset, SimplifyStats* stats) {
  SimplifyStats local;
  CellPolicy out;
  out.initial_stage = 0;
  std::set<int> stages;
  for (const auto& rule : legacy.rules) {
    stages.insert(rule.stage);
    if (rule.action == PolicyAction::kReconfigure) {
      ++local.removed_a1_a2;  // reconfiguration guards are A1/A2 by design
      continue;
    }
    PolicyRule nr;
    nr.stage = 0;
    nr.channel = PolicyRule::kAnyChannel;  // cross-band covers all channels
    nr.action = PolicyAction::kHandover;
    nr.event.type = EventType::kA3;
    nr.event.hysteresis = rule.event.hysteresis;
    nr.event.time_to_trigger_s = rule.event.time_to_trigger_s;
    switch (rule.event.type) {
      case EventType::kA1:
      case EventType::kA2:
        ++local.removed_a1_a2;
        continue;  // serving-only guards are gone with the multi-stage
      case EventType::kA3:
        nr.event.offset = rule.event.offset;
        ++local.kept_a3;
        break;
      case EventType::kA5:
        // A5 (Rs < t1, Rn > t2) implies Rn > Rs + (t2 - t1).
        nr.event.offset = rule.event.threshold2 - rule.event.threshold1;
        ++local.a5_to_a3;
        break;
      case EventType::kA4:
        // Load-balancing A4 becomes a capacity comparison via A3.
        nr.event.offset = a4_default_offset;
        ++local.a4_to_a3;
        break;
    }
    out.rules.push_back(nr);
  }
  local.removed_stages = static_cast<int>(stages.size()) - 1;
  if (stats != nullptr) *stats = local;
  return out;
}

void coordinate_offsets(std::vector<PolicyCell>& cells) {
  const std::size_t n = cells.size();
  std::vector<std::vector<double>> deltas(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto off = cells[i].policy.a3_offset_for(
          cells[j].id.channel, cells[i].id.channel);
      deltas[i][j] = off.value_or(0.0);
    }
  }
  const auto repaired = repair_theorem2(std::move(deltas));
  for (std::size_t i = 0; i < n; ++i) {
    // The per-cell policy keeps a single A3 rule; set its offset to the
    // max repaired outgoing offset so every triple constraint holds.
    double max_off = 0.0;
    bool any = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (!any || repaired[i][j] > max_off) {
        max_off = repaired[i][j];
        any = true;
      }
    }
    for (auto& rule : cells[i].policy.rules) {
      if (rule.event.type == EventType::kA3 && any)
        rule.event.offset = std::max(rule.event.offset, max_off);
    }
  }
}

}  // namespace rem::mobility
