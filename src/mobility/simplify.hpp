// REM's policy simplification (§5.3, Fig. 8): transform a legacy
// wireless-signal-strength policy into a single-stage, A3-only,
// delay-Doppler-SNR policy, then coordinate the A3 offsets to satisfy
// Theorem 2 (conflict freedom).
#pragma once

#include "mobility/conflict.hpp"
#include "mobility/policy.hpp"

namespace rem::mobility {

struct SimplifyStats {
  int removed_a1_a2 = 0;   ///< multi-stage guards dropped
  int a5_to_a3 = 0;        ///< A5 rewritten as A3 (offset = t2 - t1)
  int a4_to_a3 = 0;        ///< A4 rewritten as A3
  int kept_a3 = 0;
  int removed_stages = 0;  ///< stages collapsed into one
};

/// Step 1-3 of Fig. 8 for one cell:
///  * drop A1/A2 and every reconfiguration (cross-band estimation replaces
///    inter-frequency measurement, so all rules live in a single stage);
///  * rewrite A5(t1, t2) as A3 with offset t2 - t1;
///  * rewrite A4(t) as A3 with offset `a4_default_offset` (load-balancing
///    capacity comparison, §5.3 step 3);
///  * keep A3 rules, retargeted to all channels.
/// Non-SNR policies (priorities, access control) are outside the event set
/// and unaffected (step 4).
CellPolicy simplify_policy(const CellPolicy& legacy,
                           double a4_default_offset = 0.0,
                           SimplifyStats* stats = nullptr);

/// Step "Theorem 2": given simplified per-cell policies, extract the A3
/// offset matrix over a neighbor set, repair it, and write the repaired
/// offsets back. `cells` index both the rows and columns of the matrix.
void coordinate_offsets(std::vector<PolicyCell>& cells);

}  // namespace rem::mobility
