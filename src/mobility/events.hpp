// 4G/5G measurement-report triggering events (Table 1) with hysteresis and
// TimeToTrigger semantics per TS 36.331 / 38.331.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

namespace rem::mobility {

enum class EventType { kA1, kA2, kA3, kA4, kA5 };

std::string event_name(EventType t);

/// One configured triggering event. Thresholds/offsets are in dB(m) of
/// whatever metric drives the policy (RSRP for legacy, delay-Doppler SNR
/// for REM — the criteria are metric-agnostic).
struct EventConfig {
  EventType type = EventType::kA3;
  /// A1/A2/A4: the threshold. A5: serving-cell threshold (Delta_A5_1).
  double threshold1 = 0.0;
  /// A5: neighbor-cell threshold (Delta_A5_2). Unused otherwise.
  double threshold2 = 0.0;
  /// A3: the offset Delta_A3 (can be negative for proactive policies).
  double offset = 0.0;
  /// Entering hysteresis, applied to the deciding comparison.
  double hysteresis = 0.0;
  /// TimeToTrigger: the condition must hold this long before reporting.
  double time_to_trigger_s = 0.0;
};

/// Instantaneous entering condition (Table 1), before TimeToTrigger.
/// `serving` / `neighbor` are the metric values; neighbor is ignored for
/// A1/A2.
bool event_condition(const EventConfig& cfg, double serving,
                     double neighbor);

/// Tracks a single (event, neighbor) pair across time and applies
/// TimeToTrigger: fires once the entering condition has held continuously
/// for time_to_trigger_s. Re-arms after the condition lapses.
class EventMonitor {
 public:
  explicit EventMonitor(EventConfig cfg) : cfg_(cfg) {}

  const EventConfig& config() const { return cfg_; }

  /// Feed one measurement sample at time `t`; returns true when the event
  /// fires (first sample at which the condition has held for TTT).
  bool update(double t, double serving, double neighbor);

  /// Forget any partially elapsed trigger (e.g. after reconfiguration).
  void reset();

 private:
  EventConfig cfg_;
  std::optional<double> entered_at_;
  bool fired_ = false;
};

}  // namespace rem::mobility
