#include "mobility/policy.hpp"

#include <algorithm>

namespace rem::mobility {

std::vector<const PolicyRule*> CellPolicy::rules_in_stage(int stage) const {
  std::vector<const PolicyRule*> out;
  for (const auto& r : rules)
    if (r.stage == stage) out.push_back(&r);
  return out;
}

int CellPolicy::num_stages() const {
  int max_stage = 0;
  for (const auto& r : rules) {
    max_stage = std::max(max_stage, r.stage);
    if (r.action == PolicyAction::kReconfigure)
      max_stage = std::max(max_stage, r.next_stage);
  }
  return max_stage + 1;
}

std::optional<double> CellPolicy::a3_offset_for(
    ChannelId channel, ChannelId serving_channel) const {
  std::optional<double> best;
  for (const auto& r : rules) {
    if (r.event.type != EventType::kA3) continue;
    const bool matches =
        r.channel == PolicyRule::kAnyChannel || r.channel == channel ||
        (r.channel == PolicyRule::kServingChannel &&
         channel == serving_channel);
    if (!matches) continue;
    if (!best || r.event.offset < *best) best = r.event.offset;
  }
  return best;
}

bool CellPolicy::is_multi_stage() const {
  return std::any_of(rules.begin(), rules.end(), [](const PolicyRule& r) {
    return r.action == PolicyAction::kReconfigure;
  });
}

}  // namespace rem::mobility
