#include "mobility/events.hpp"

namespace rem::mobility {

std::string event_name(EventType t) {
  switch (t) {
    case EventType::kA1: return "A1";
    case EventType::kA2: return "A2";
    case EventType::kA3: return "A3";
    case EventType::kA4: return "A4";
    case EventType::kA5: return "A5";
  }
  return "?";
}

bool event_condition(const EventConfig& cfg, double serving,
                     double neighbor) {
  switch (cfg.type) {
    case EventType::kA1:
      return serving > cfg.threshold1 + cfg.hysteresis;
    case EventType::kA2:
      return serving < cfg.threshold1 - cfg.hysteresis;
    case EventType::kA3:
      return neighbor > serving + cfg.offset + cfg.hysteresis;
    case EventType::kA4:
      return neighbor > cfg.threshold1 + cfg.hysteresis;
    case EventType::kA5:
      return serving < cfg.threshold1 - cfg.hysteresis &&
             neighbor > cfg.threshold2 + cfg.hysteresis;
  }
  return false;
}

bool EventMonitor::update(double t, double serving, double neighbor) {
  if (!event_condition(cfg_, serving, neighbor)) {
    entered_at_.reset();
    fired_ = false;
    return false;
  }
  if (!entered_at_) entered_at_ = t;
  if (fired_) return false;  // report once per entry
  if (t - *entered_at_ + 1e-12 >= cfg_.time_to_trigger_s) {
    fired_ = true;
    return true;
  }
  return false;
}

void EventMonitor::reset() {
  entered_at_.reset();
  fired_ = false;
}

}  // namespace rem::mobility
