// Per-cell handover decision policies (Fig. 1b): a state machine whose
// stages monitor different cell sets, trigger measurement reconfiguration
// (multi-stage decision) or handover.
#pragma once

#include "mobility/cell.hpp"
#include "mobility/events.hpp"

#include <optional>
#include <vector>

namespace rem::mobility {

enum class PolicyAction {
  kHandover,     ///< migrate to the cell that satisfied the event
  kReconfigure,  ///< move to `next_stage` (e.g. start inter-freq. scan)
};

struct PolicyRule {
  int stage = 0;
  EventConfig event;
  /// Which channel's cells this rule measures; kAnyChannel matches all,
  /// kServingChannel restricts to the serving cell's own frequency,
  /// kOtherChannels to every frequency but the serving one
  /// (inter-frequency rules).
  ChannelId channel = kAnyChannel;
  PolicyAction action = PolicyAction::kHandover;
  int next_stage = -1;  ///< for kReconfigure

  static constexpr ChannelId kAnyChannel = -1;
  static constexpr ChannelId kServingChannel = -2;
  static constexpr ChannelId kOtherChannels = -3;
};

/// The policy one serving cell runs. Legacy multi-stage policies start in
/// stage 0 (intra-frequency A3 + an A2 guard) and reconfigure into later
/// stages for inter-frequency A4/A5 — see trace::synthesize_policy.
struct CellPolicy {
  std::vector<PolicyRule> rules;
  int initial_stage = 0;

  /// All rules active in a stage.
  std::vector<const PolicyRule*> rules_in_stage(int stage) const;
  /// Number of distinct stages.
  int num_stages() const;
  /// The A3 offset this policy applies against cells of `channel`
  /// (smallest offset wins if several rules match); nullopt if the policy
  /// has no A3 rule for that channel.
  std::optional<double> a3_offset_for(ChannelId channel,
                                      ChannelId serving_channel) const;
  /// True if any rule uses multi-stage reconfiguration.
  bool is_multi_stage() const;
};

}  // namespace rem::mobility
