// Policy conflict analysis (§3.2, Table 3) and REM's conflict-freedom
// guarantees (§5.3, Theorems 2 & 3).
//
// A two-cell conflict exists when cell i's policy would hand a client to
// cell j while cell j's policy would simultaneously hand it back — i.e.
// the conjunction of the two trigger regions is satisfiable somewhere in
// the metric space. Trigger regions here are conjunctions of interval and
// difference constraints over (R_i, R_j), so satisfiability is exact.
#pragma once

#include "mobility/policy.hpp"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace rem::mobility {

/// Valid metric range used for satisfiability (RSRP dBm by default; works
/// equally for SNR in dB with adjusted bounds).
struct MetricRange {
  double lo = -140.0;
  double hi = -40.0;
};

/// A detected two-cell conflict.
struct TwoCellConflict {
  int cell_i = 0;
  int cell_j = 0;
  EventType event_i;       ///< i -> j trigger
  EventType event_j;       ///< j -> i trigger
  bool inter_frequency = false;
  /// A witness point (R_i, R_j) where both policies fire.
  double witness_ri = 0.0;
  double witness_rj = 0.0;
};

/// Key "A3-A4" style label matching Table 3 (alphabetical order).
std::string conflict_type_label(EventType a, EventType b);

/// A cell's policy plus identity, as input to the analyzer.
struct PolicyCell {
  CellId id;
  CellPolicy policy;
};

/// Exhaustive exact two-cell conflict detection. `pair_filter(i, j)`
/// restricts which index pairs are considered (e.g. only cells covering
/// the same area — the paper's Table 3 counts neighbors, not the whole
/// route); pass an empty function to test every pair.
std::vector<TwoCellConflict> find_two_cell_conflicts(
    const std::vector<PolicyCell>& cells, MetricRange range = {},
    const std::function<bool(std::size_t, std::size_t)>& pair_filter = {});

/// Count conflicts per type label (the Table 3 histogram).
std::map<std::string, int> conflict_histogram(
    const std::vector<TwoCellConflict>& conflicts);

/// Theorem 2 precondition: for all cells i, j, k covering the same area
/// (j != i, k; i may equal k), Delta_A3(i->j) + Delta_A3(j->k) >= 0.
/// `deltas[i][j]` is cell i's A3 offset toward cell j. Returns the list of
/// violated (i, j, k) triples (empty = conflict-free by Theorems 2/3).
struct TripleViolation {
  int i, j, k;
  double sum;  ///< Delta(i->j) + Delta(j->k) < 0
};
std::vector<TripleViolation> check_theorem2(
    const std::vector<std::vector<double>>& deltas);

/// Minimally raise offsets until Theorem 2 holds: repeatedly lift the
/// smaller offset of the most-violated adjacent pair. Preserves offsets
/// that are already compatible. Returns the repaired matrix.
std::vector<std::vector<double>> repair_theorem2(
    std::vector<std::vector<double>> deltas);

/// n-cell persistent-loop satisfiability for pure-A3 policies: the cycle
/// c_0 -> c_1 -> ... -> c_{n-1} -> c_0 is satisfiable iff the offsets sum
/// negative (proof of Theorem 2). Exposed for tests and benches.
bool a3_cycle_satisfiable(const std::vector<double>& cycle_offsets);

/// An n-cell persistent loop found by enumeration.
struct A3Loop {
  std::vector<int> cells;  ///< cell ids along the cycle (length n)
  double offset_sum;       ///< sum of A3 offsets along the cycle (< 0)
};

/// Enumerate satisfiable A3 loops of length up to `max_len` among the
/// given cells (pure-A3 / simplified policies; edges exist where cell i
/// has an A3 rule applicable to cell j). `pair_filter(i, j)` restricts
/// edges to cells covering common ground, as in find_two_cell_conflicts.
/// Each loop is reported once (lowest cell id first). Complexity grows
/// combinatorially in max_len — intended for neighbor-filtered sets.
std::vector<A3Loop> find_a3_loops(
    const std::vector<PolicyCell>& cells, std::size_t max_len = 4,
    const std::function<bool(std::size_t, std::size_t)>& pair_filter = {});

}  // namespace rem::mobility
