// Link abstraction: maps (waveform, Doppler regime, SNR) to a block error
// probability so the network-level simulator does not run the full coded
// link per signaling message. Two implementations:
//  * LogisticBlerModel — parametric curves with defaults calibrated against
//    this repo's LinkSimulator (bench_fig10 regenerates the raw curves);
//  * TableBlerModel    — interpolates measured (snr, bler) points, e.g.
//    produced online by LinkSimulator::bler_curve.
#pragma once

#include "phy/link.hpp"

#include <map>
#include <memory>
#include <vector>

namespace rem::phy {

/// Doppler regime seen by the signaling link.
enum class DopplerRegime { kLow, kHigh };

class BlerModel {
 public:
  virtual ~BlerModel() = default;
  /// Block error probability in [0,1].
  virtual double bler(Waveform w, DopplerRegime d, double snr_db) const = 0;
};

/// Parametric logistic BLER with an optional high-Doppler error floor:
///   bler = floor + (1 - floor) / (1 + exp(slope * (snr - mid)))
struct LogisticCurve {
  double mid_db = 0.0;
  double slope = 1.0;
  double floor = 0.0;

  double eval(double snr_db) const;
};

class LogisticBlerModel final : public BlerModel {
 public:
  /// Defaults reproduce the qualitative Fig. 10 relationship: at high
  /// Doppler, OFDM needs several dB more SNR and keeps a residual error
  /// floor from inter-carrier interference, while OTFS rides the full
  /// time-frequency diversity.
  LogisticBlerModel();

  void set_curve(Waveform w, DopplerRegime d, LogisticCurve c);
  double bler(Waveform w, DopplerRegime d, double snr_db) const override;

 private:
  LogisticCurve curves_[2][2];
};

class TableBlerModel final : public BlerModel {
 public:
  /// Register a measured curve (points sorted by SNR internally).
  void set_points(Waveform w, DopplerRegime d, std::vector<BlerPoint> pts);
  /// Linear interpolation in SNR; clamped at the ends. Missing curves
  /// return 1.0 (conservative).
  double bler(Waveform w, DopplerRegime d, double snr_db) const override;

 private:
  std::map<std::pair<int, int>, std::vector<BlerPoint>> tables_;
};

/// Calibrate a TableBlerModel by running the link simulator on the given
/// profiles (convenience used by tests/benches).
TableBlerModel calibrate_bler_model(const Numerology& num, Modulation mod,
                                    const std::vector<double>& snrs_db,
                                    std::size_t blocks_per_point,
                                    common::Rng& rng);

}  // namespace rem::phy
