// End-to-end coded link simulation: bits -> convolutional code -> QAM ->
// {OFDM | OTFS} -> multipath channel -> AWGN -> equalization -> soft demap
// -> Viterbi -> bits. Used to regenerate Fig. 2b, Fig. 10 (BLER vs SNR per
// waveform) and Fig. 11 (per-slot SNR stability).
#pragma once

#include "channel/multipath.hpp"
#include "channel/profiles.hpp"
#include "common/rng.hpp"
#include "phy/numerology.hpp"
#include "phy/qam.hpp"

#include <vector>

namespace rem::phy {

enum class Waveform { kOFDM, kOTFS };

std::string waveform_name(Waveform w);

struct LinkConfig {
  Numerology num = Numerology::lte(12, 14);
  Waveform waveform = Waveform::kOFDM;
  Modulation mod = Modulation::kQPSK;
  double snr_db = 10.0;
};

struct BlockResult {
  bool block_error = false;
  std::size_t bit_errors = 0;
  std::size_t payload_bits = 0;
  /// Post-equalization SNR per OFDM symbol (column), dB. For OTFS this is
  /// measured on the delay-Doppler grid, i.e. what the signaling decoder
  /// experiences per slot.
  std::vector<double> per_slot_snr_db;
};

struct BlerPoint {
  double snr_db;
  double bler;
  std::size_t blocks;
};

class LinkSimulator {
 public:
  explicit LinkSimulator(LinkConfig cfg) : cfg_(cfg) {}

  const LinkConfig& config() const { return cfg_; }

  /// Payload bits that fit one grid with the configured modulation and the
  /// rate-1/2 terminated code.
  std::size_t payload_bits_per_grid() const;

  /// Simulate one coded block over a fixed channel realization.
  BlockResult run_block(const channel::MultipathChannel& ch,
                        common::Rng& rng) const;

  /// BLER over `blocks` independent channel draws from `draw_cfg`.
  BlerPoint measure_bler(const channel::ChannelDrawConfig& draw_cfg,
                         std::size_t blocks, common::Rng& rng) const;

  /// Sweep SNR values; returns one BlerPoint per SNR.
  std::vector<BlerPoint> bler_curve(
      const channel::ChannelDrawConfig& draw_cfg,
      const std::vector<double>& snrs_db, std::size_t blocks_per_point,
      common::Rng& rng) const;

 private:
  LinkConfig cfg_;
};

}  // namespace rem::phy
