#include "phy/mp_detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rem::phy {
namespace {

// Flattened column-major index.
inline std::size_t flat(std::size_t row, std::size_t col, std::size_t m) {
  return col * m + row;
}

}  // namespace

std::vector<DdTap> extract_dd_taps(const dsp::Matrix& dd_h,
                                   double threshold,
                                   std::size_t max_taps) {
  std::vector<DdTap> taps;
  double strongest = 0.0;
  for (std::size_t k = 0; k < dd_h.rows(); ++k)
    for (std::size_t l = 0; l < dd_h.cols(); ++l)
      strongest = std::max(strongest, std::abs(dd_h(k, l)));
  if (strongest <= 0.0) return taps;
  for (std::size_t k = 0; k < dd_h.rows(); ++k)
    for (std::size_t l = 0; l < dd_h.cols(); ++l)
      if (std::abs(dd_h(k, l)) >= threshold * strongest)
        taps.push_back({k, l, dd_h(k, l)});
  std::sort(taps.begin(), taps.end(), [](const DdTap& a, const DdTap& b) {
    return std::abs(a.gain) > std::abs(b.gain);
  });
  if (taps.size() > max_taps) taps.resize(max_taps);
  return taps;
}

MpResult mp_detect(const dsp::Matrix& y, const std::vector<DdTap>& taps,
                   Modulation mod, double noise_power,
                   const MpDetectorConfig& cfg) {
  const std::size_t m = y.rows();
  const std::size_t n = y.cols();
  const std::size_t count = m * n;
  const auto& constel = constellation(mod);
  const std::size_t q = constel.size();
  const std::size_t bps = bits_per_symbol(mod);

  MpResult out;
  out.symbols.assign(count, cd(0, 0));
  out.llrs.assign(count * bps, 0.0);
  if (taps.empty() || count == 0) return out;

  // Symbol posteriors, initialized uniform; means/vars derived from them.
  std::vector<double> prob(count * q, 1.0 / static_cast<double>(q));
  std::vector<cd> mean(count, cd(0, 0));
  std::vector<double> var(count, 1.0);  // unit-power constellations

  const auto refresh_moments = [&](std::size_t d) {
    cd mu(0, 0);
    double second = 0.0;
    for (std::size_t s = 0; s < q; ++s) {
      mu += prob[d * q + s] * constel[s];
      second += prob[d * q + s] * std::norm(constel[s]);
    }
    mean[d] = mu;
    var[d] = std::max(second - std::norm(mu), 1e-9);
  };
  for (std::size_t d = 0; d < count; ++d) refresh_moments(d);

  // Observation c = (row k, col l) couples with data symbol
  // d = (k - k_i mod M, l - l_i mod N) through tap i.
  const auto data_index = [&](std::size_t k, std::size_t l,
                              const DdTap& tap) {
    const std::size_t dk = (k + m - tap.delay_bin) % m;
    const std::size_t dl = (l + n - tap.doppler_bin) % n;
    return flat(dk, dl, m);
  };

  std::vector<double> new_prob(count * q);
  for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
    // Precompute the total interference mean/variance per observation.
    std::vector<cd> obs_mean(count, cd(0, 0));
    std::vector<double> obs_var(count, noise_power);
    for (std::size_t l = 0; l < n; ++l) {
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t c = flat(k, l, m);
        for (const auto& tap : taps) {
          const std::size_t d = data_index(k, l, tap);
          obs_mean[c] += tap.gain * mean[d];
          obs_var[c] += std::norm(tap.gain) * var[d];
        }
      }
    }

    // Per-symbol posterior update: combine extrinsic Gaussians from every
    // observation the symbol participates in.
    double max_change = 0.0;
    for (std::size_t l = 0; l < n; ++l) {
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t d = flat(k, l, m);
        // Log-likelihood of each constellation point.
        std::vector<double> loglik(q, 0.0);
        for (const auto& tap : taps) {
          // Observation this symbol feeds through this tap:
          // c = (k + k_i mod M, l + l_i mod N).
          const std::size_t ck = (k + tap.delay_bin) % m;
          const std::size_t cl = (l + tap.doppler_bin) % n;
          const std::size_t c = flat(ck, cl, m);
          // Extrinsic: remove this symbol's own contribution.
          const cd ext_mean = obs_mean[c] - tap.gain * mean[d];
          const double ext_var = std::max(
              obs_var[c] - std::norm(tap.gain) * var[d], noise_power);
          const cd residual = y(ck, cl) - ext_mean;
          for (std::size_t s = 0; s < q; ++s) {
            loglik[s] -=
                std::norm(residual - tap.gain * constel[s]) / ext_var;
          }
        }
        // Softmax with damping.
        const double peak = *std::max_element(loglik.begin(), loglik.end());
        double z = 0.0;
        for (std::size_t s = 0; s < q; ++s) {
          loglik[s] = std::exp(loglik[s] - peak);
          z += loglik[s];
        }
        for (std::size_t s = 0; s < q; ++s) {
          const double p_new = loglik[s] / z;
          const double damped = cfg.damping * p_new +
                                (1.0 - cfg.damping) * prob[d * q + s];
          max_change = std::max(max_change,
                                std::abs(damped - prob[d * q + s]));
          new_prob[d * q + s] = damped;
        }
      }
    }
    prob.swap(new_prob);
    for (std::size_t d = 0; d < count; ++d) refresh_moments(d);
    out.iterations = iter + 1;
    if (max_change < cfg.convergence_eps) break;
  }

  // Posterior means and max-log bit LLRs.
  for (std::size_t d = 0; d < count; ++d) {
    out.symbols[d] = mean[d];
    for (std::size_t b = 0; b < bps; ++b) {
      double best0 = -std::numeric_limits<double>::infinity();
      double best1 = -std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < q; ++s) {
        const double lp = std::log(std::max(prob[d * q + s], 1e-300));
        if ((s >> (bps - 1 - b)) & 1u)
          best1 = std::max(best1, lp);
        else
          best0 = std::max(best0, lp);
      }
      out.llrs[d * bps + b] = best0 - best1;  // >0 favors bit 0
    }
  }
  return out;
}

}  // namespace rem::phy
