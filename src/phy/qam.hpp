// Gray-mapped QAM constellations with hard decisions and max-log LLRs.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace rem::phy {

using cd = std::complex<double>;

enum class Modulation { kBPSK, kQPSK, kQAM16, kQAM64 };

std::string modulation_name(Modulation m);

/// Bits per symbol for a modulation.
std::size_t bits_per_symbol(Modulation m);

/// Map a bit string (values 0/1) to unit-average-power constellation
/// symbols. The bit count must be a multiple of bits_per_symbol.
std::vector<cd> qam_modulate(const std::vector<std::uint8_t>& bits,
                             Modulation m);

/// Hard-decision demap.
std::vector<std::uint8_t> qam_demodulate_hard(const std::vector<cd>& symbols,
                                              Modulation m);

/// Max-log LLRs, positive = bit 0 more likely. `noise_var` is the complex
/// noise variance per symbol after equalization; per-symbol values allow
/// the equalizer to report reliability (e.g. weak subcarriers).
std::vector<double> qam_demodulate_llr(const std::vector<cd>& symbols,
                                       Modulation m,
                                       const std::vector<double>& noise_var);

/// The constellation points of a modulation (unit average power).
const std::vector<cd>& constellation(Modulation m);

}  // namespace rem::phy
