#include "phy/link.hpp"

#include "channel/noise.hpp"
#include "phy/coding.hpp"
#include "phy/ofdm.hpp"
#include "phy/otfs.hpp"

#include <cmath>
#include <stdexcept>

namespace rem::phy {
namespace {

// Fill an M x N grid from symbols in column-major (symbol-by-symbol) order.
dsp::Matrix to_grid(const std::vector<cd>& symbols, std::size_t m,
                    std::size_t n) {
  if (symbols.size() != m * n)
    throw std::invalid_argument("to_grid: symbol count mismatch");
  dsp::Matrix grid(m, n);
  std::size_t idx = 0;
  for (std::size_t col = 0; col < n; ++col)
    for (std::size_t row = 0; row < m; ++row) grid(row, col) = symbols[idx++];
  return grid;
}

struct EqualizedGrid {
  std::vector<cd> symbols;        // column-major, matches to_grid order
  std::vector<double> noise_var;  // per symbol
};

// Per-RE MMSE equalization in the time-frequency domain with a
// pilot-calibrated channel estimate h_est (same shape as the grid).
EqualizedGrid mmse_equalize(const dsp::Matrix& y, const dsp::Matrix& h_est,
                            double noise_power) {
  EqualizedGrid out;
  out.symbols.reserve(y.rows() * y.cols());
  out.noise_var.reserve(y.rows() * y.cols());
  for (std::size_t col = 0; col < y.cols(); ++col) {
    for (std::size_t row = 0; row < y.rows(); ++row) {
      const cd h = h_est(row, col);
      const double h2 = std::norm(h);
      const cd x_hat = std::conj(h) * y(row, col) / (h2 + noise_power);
      out.symbols.push_back(x_hat);
      // Post-MMSE effective noise variance (signal normalized to 1):
      // var = noise / (|h|^2 + noise) scaled back by the MMSE bias; the
      // max-log LLR only needs a relative reliability, so noise/|h|^2 with
      // a floor works well and is the standard practical choice.
      out.noise_var.push_back(noise_power / (h2 + 1e-9));
    }
  }
  return out;
}

}  // namespace

std::string waveform_name(Waveform w) {
  return w == Waveform::kOFDM ? "OFDM" : "OTFS";
}

std::size_t LinkSimulator::payload_bits_per_grid() const {
  const std::size_t res = cfg_.num.total_res();
  const std::size_t coded_bits = res * bits_per_symbol(cfg_.mod);
  if (coded_bits / 2 <= ConvolutionalCode::kMemory)
    throw std::invalid_argument("grid too small for the code tail");
  return coded_bits / 2 - ConvolutionalCode::kMemory;
}

BlockResult LinkSimulator::run_block(const channel::MultipathChannel& ch,
                                     common::Rng& rng) const {
  const std::size_t m = cfg_.num.num_subcarriers;
  const std::size_t n = cfg_.num.num_symbols;
  const double fs = cfg_.num.sample_rate_hz();
  const double noise_power =
      channel::noise_power_for_snr_db(cfg_.snr_db);

  // --- Transmitter ---
  const std::size_t payload = payload_bits_per_grid();
  std::vector<std::uint8_t> bits(payload);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  std::vector<std::uint8_t> coded = ConvolutionalCode::encode(bits);
  // Pad coded bits to fill the grid exactly (padding bits are known zeros).
  const std::size_t grid_bits = m * n * bits_per_symbol(cfg_.mod);
  coded.resize(grid_bits, 0);
  const std::vector<cd> tx_syms = qam_modulate(coded, cfg_.mod);
  const dsp::Matrix tx_grid = to_grid(tx_syms, m, n);

  OfdmModem ofdm(cfg_.num);
  dsp::CVec tx_time;
  if (cfg_.waveform == Waveform::kOFDM) {
    tx_time = ofdm.modulate(tx_grid);
  } else {
    tx_time = ofdm.modulate(sfft(tx_grid));  // tx_grid lives in DD domain
  }

  // --- Channel: pilot-calibrated per-RE estimate, then the data pass ---
  // The calibration pass sends a known full-pilot TF grid through the same
  // deterministic channel; dividing out the pilot yields exactly the
  // effective per-RE response the data sees (ICI shows up as residual).
  dsp::Matrix pilot(m, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < m; ++r) pilot(r, c) = cd(1, 0);
  const dsp::CVec pilot_rx =
      ch.apply_to_signal(ofdm.modulate(pilot), fs);
  const dsp::Matrix h_est = ofdm.demodulate(pilot_rx);  // = Y/1

  dsp::CVec rx_time = ch.apply_to_signal(tx_time, fs);
  channel::add_awgn(rx_time, noise_power, rng);
  const dsp::Matrix rx_grid = ofdm.demodulate(rx_time);

  // --- Equalization ---
  EqualizedGrid eq = mmse_equalize(rx_grid, h_est, noise_power);

  std::vector<cd> data_syms;
  std::vector<double> data_var;
  if (cfg_.waveform == Waveform::kOFDM) {
    data_syms = std::move(eq.symbols);
    data_var = std::move(eq.noise_var);
  } else {
    // Bring the equalized TF grid back to the DD domain. The unitary ISFFT
    // mixes every TF RE into every DD symbol, so each DD symbol sees the
    // *average* post-equalization noise — OTFS's full time-frequency
    // diversity.
    dsp::Matrix eq_grid = to_grid(eq.symbols, m, n);
    const dsp::Matrix dd = isfft(eq_grid);
    data_syms.reserve(m * n);
    for (std::size_t col = 0; col < n; ++col)
      for (std::size_t row = 0; row < m; ++row)
        data_syms.push_back(dd(row, col));
    double mean_var = 0.0;
    for (double v : eq.noise_var) mean_var += v;
    mean_var /= static_cast<double>(eq.noise_var.size());
    data_var.assign(m * n, mean_var);
  }

  // --- Per-slot post-equalization SNR (Fig. 11) ---
  BlockResult result;
  result.per_slot_snr_db.reserve(n);
  for (std::size_t col = 0; col < n; ++col) {
    double sig = 0.0, err = 0.0;
    for (std::size_t row = 0; row < m; ++row) {
      const std::size_t idx = col * m + row;
      sig += std::norm(tx_syms[idx]);
      err += std::norm(data_syms[idx] - tx_syms[idx]);
    }
    result.per_slot_snr_db.push_back(
        10.0 * std::log10(sig / std::max(err, 1e-12)));
  }

  // --- Decode ---
  std::vector<double> llrs = qam_demodulate_llr(data_syms, cfg_.mod, data_var);
  llrs.resize(ConvolutionalCode::coded_length(payload));  // strip pad bits
  const std::vector<std::uint8_t> decoded = ConvolutionalCode::decode(llrs);

  result.payload_bits = payload;
  for (std::size_t i = 0; i < payload; ++i)
    if (decoded[i] != bits[i]) ++result.bit_errors;
  result.block_error = result.bit_errors > 0;
  return result;
}

BlerPoint LinkSimulator::measure_bler(
    const channel::ChannelDrawConfig& draw_cfg, std::size_t blocks,
    common::Rng& rng) const {
  std::size_t errors = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    const auto ch = channel::draw_channel(draw_cfg, rng);
    if (run_block(ch, rng).block_error) ++errors;
  }
  return {cfg_.snr_db, static_cast<double>(errors) /
                           static_cast<double>(blocks),
          blocks};
}

std::vector<BlerPoint> LinkSimulator::bler_curve(
    const channel::ChannelDrawConfig& draw_cfg,
    const std::vector<double>& snrs_db, std::size_t blocks_per_point,
    common::Rng& rng) const {
  std::vector<BlerPoint> out;
  out.reserve(snrs_db.size());
  LinkConfig cfg = cfg_;
  for (double snr : snrs_db) {
    cfg.snr_db = snr;
    out.push_back(
        LinkSimulator(cfg).measure_bler(draw_cfg, blocks_per_point, rng));
  }
  return out;
}

}  // namespace rem::phy
