#include "phy/scheduler.hpp"

#include "phy/coding.hpp"

#include <algorithm>

namespace rem::phy {

bool GridRect::overlaps(const GridRect& o) const {
  const bool sc = first_subcarrier < o.first_subcarrier + o.num_subcarriers &&
                  o.first_subcarrier < first_subcarrier + num_subcarriers;
  const bool sym = first_symbol < o.first_symbol + o.num_symbols &&
                   o.first_symbol < first_symbol + num_symbols;
  return sc && sym;
}

std::size_t res_for_bytes(std::size_t bytes, Modulation mod) {
  const std::size_t payload_bits = bytes * 8;
  const std::size_t coded = ConvolutionalCode::coded_length(payload_bits);
  const std::size_t bps = bits_per_symbol(mod);
  return (coded + bps - 1) / bps;
}

void SignalingScheduler::enqueue(PendingMessage msg) {
  if (msg.is_signaling)
    srb_.push_back(msg);
  else
    drb_.push_back(msg);
}

std::size_t SignalingScheduler::signaling_backlog_bytes() const {
  std::size_t total = 0;
  for (const auto& m : srb_) total += m.bytes;
  return total;
}

std::size_t SignalingScheduler::data_backlog_bytes() const {
  std::size_t total = 0;
  for (const auto& m : drb_) total += m.bytes;
  return total;
}

SubframeAllocation SignalingScheduler::schedule_subframe() {
  SubframeAllocation alloc;
  const std::size_t m = num_.num_subcarriers;
  const std::size_t n = num_.num_symbols;
  const std::size_t grid_res = m * n;

  // --- Signaling: pop whole messages while they fit the grid ---
  std::size_t sig_res = 0;
  while (!srb_.empty()) {
    const std::size_t need =
        res_for_bytes(srb_.front().bytes, signaling_mod_);
    if (sig_res + need > grid_res) break;
    sig_res += need;
    alloc.served_signaling_ids.push_back(srb_.front().id);
    srb_.pop_front();
  }

  std::size_t sig_symbols = 0;
  if (sig_res > 0) {
    // Column-first growth: a signaling subgrid of M x N' full symbols.
    // OTFS requires the rectangle to be contiguous; using full symbols
    // matches the LTE scheduler granularity and maximizes the delay
    // resolution M' = M of the overlay.
    sig_symbols = (sig_res + m - 1) / m;
    sig_symbols = std::min(sig_symbols, n);
    GridRect rect;
    rect.first_subcarrier = 0;
    rect.first_symbol = 0;
    rect.num_subcarriers = m;
    rect.num_symbols = sig_symbols;
    alloc.signaling = rect;
    alloc.unused_res = rect.res() - sig_res;
  }

  // --- Data: the remaining symbols ---
  std::size_t data_res_available = (n - sig_symbols) * m;
  if (data_res_available > 0) {
    GridRect rect;
    rect.first_subcarrier = 0;
    rect.first_symbol = sig_symbols;
    rect.num_subcarriers = m;
    rect.num_symbols = n - sig_symbols;
    alloc.data.push_back(rect);
    // Serve data messages into the leftover capacity (same MCS model).
    std::size_t used = 0;
    while (!drb_.empty()) {
      const std::size_t need =
          res_for_bytes(drb_.front().bytes, signaling_mod_);
      if (used + need > data_res_available) break;
      used += need;
      alloc.served_data_ids.push_back(drb_.front().id);
      drb_.pop_front();
    }
  }
  return alloc;
}

}  // namespace rem::phy
