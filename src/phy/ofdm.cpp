#include "phy/ofdm.hpp"

#include "dsp/fft_plan.hpp"

#include <cmath>
#include <stdexcept>

namespace rem::phy {

dsp::CVec OfdmModem::modulate(const dsp::Matrix& grid) const {
  const std::size_t m = num_.num_subcarriers;
  const std::size_t n = num_.num_symbols;
  if (grid.rows() != m || grid.cols() != n)
    throw std::invalid_argument("OFDM modulate: grid shape mismatch");
  // The plan's inverse includes 1/M; sqrt(M) on top gives the unitary IFFT.
  const double scale = std::sqrt(static_cast<double>(m));
  const auto plan = dsp::FftPlan::get(m);
  dsp::FftScratch scratch;
  dsp::CVec freq(m);
  dsp::CVec out;
  out.reserve(num_.total_samples());
  for (std::size_t sym = 0; sym < n; ++sym) {
    for (std::size_t k = 0; k < m; ++k) freq[k] = grid(k, sym);
    plan->transform(freq.data(), 1, true, scale, scratch);
    // Cyclic prefix: copy of the tail.
    for (std::size_t i = 0; i < num_.cp_len; ++i)
      out.push_back(freq[m - num_.cp_len + i]);
    out.insert(out.end(), freq.begin(), freq.end());
  }
  return out;
}

dsp::Matrix OfdmModem::demodulate(const dsp::CVec& samples) const {
  const std::size_t m = num_.num_subcarriers;
  const std::size_t n = num_.num_symbols;
  if (samples.size() != num_.total_samples())
    throw std::invalid_argument("OFDM demodulate: sample count mismatch");
  const double scale = 1.0 / std::sqrt(static_cast<double>(m));
  const auto plan = dsp::FftPlan::get(m);
  dsp::FftScratch scratch;
  dsp::CVec time(m);
  dsp::Matrix grid(m, n);
  std::size_t pos = 0;
  for (std::size_t sym = 0; sym < n; ++sym) {
    pos += num_.cp_len;  // skip CP
    for (std::size_t k = 0; k < m; ++k) time[k] = samples[pos + k];
    plan->transform(time.data(), 1, false, scale, scratch);
    for (std::size_t k = 0; k < m; ++k) grid(k, sym) = time[k];
    pos += m;
  }
  return grid;
}

}  // namespace rem::phy
