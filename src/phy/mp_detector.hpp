// Message-passing detection for OTFS in the delay-Doppler domain
// (Raviteja et al., "Interference cancellation and iterative detection for
// orthogonal time frequency space modulation" — the paper's OTFS detection
// reference [21]).
//
// The DD-domain input-output relation is a sparse 2-D twisted convolution:
// each received bin couples only with the few delay/Doppler-shifted copies
// of the data grid the channel's paths produce. The detector runs Gaussian
// message passing on that sparse factor graph: interference from other
// symbols is approximated per-edge as Gaussian, symbol posteriors are
// damped across iterations, and convergence yields per-symbol
// probabilities (and max-log LLRs for the decoder).
#pragma once

#include "dsp/matrix.hpp"
#include "phy/qam.hpp"

#include <vector>

namespace rem::phy {

/// One sparse channel tap in the delay-Doppler grid.
struct DdTap {
  std::size_t delay_bin = 0;    ///< k_i in [0, M)
  std::size_t doppler_bin = 0;  ///< l_i in [0, N)
  cd gain;                      ///< complex tap value
};

/// Extract significant taps from a DD channel sample matrix: keep taps
/// above `threshold` * strongest, at most `max_taps` (strongest first).
std::vector<DdTap> extract_dd_taps(const dsp::Matrix& dd_h,
                                   double threshold = 0.05,
                                   std::size_t max_taps = 16);

struct MpDetectorConfig {
  std::size_t max_iterations = 20;
  double damping = 0.6;          ///< posterior damping factor (Delta)
  double convergence_eps = 1e-3; ///< stop when posteriors settle
};

struct MpResult {
  std::vector<cd> symbols;       ///< posterior-mean symbol estimates
  std::vector<double> llrs;      ///< max-log LLRs (bits_per_symbol per sym)
  std::size_t iterations = 0;
};

/// Detect the M x N delay-Doppler data grid from the received grid `y`
/// given the sparse channel taps. Symbols are column-major (matching
/// LinkSimulator's grid fill order): index = col * M + row.
MpResult mp_detect(const dsp::Matrix& y, const std::vector<DdTap>& taps,
                   Modulation mod, double noise_power,
                   const MpDetectorConfig& cfg = {});

}  // namespace rem::phy
