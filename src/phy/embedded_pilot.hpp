// Embedded pilot-aided channel estimation for OTFS (Raviteja et al., the
// paper's reference [49]).
//
// Instead of a dedicated pilot grid, one delay-Doppler frame multiplexes a
// single pilot impulse, a guard region sized to the channel's maximum
// delay/Doppler spread, and data symbols everywhere else. The receiver
// reads the channel taps directly out of the guard box (each tap shows up
// as the pilot shifted by its delay/Doppler) and hands the data region to
// a detector. This is what makes REM's overlay self-contained: every
// signaling frame carries its own channel sounding.
#pragma once

#include "dsp/matrix.hpp"
#include "phy/mp_detector.hpp"
#include "phy/qam.hpp"

#include <vector>

namespace rem::phy {

struct EmbeddedPilotConfig {
  /// Pilot placement (delay bin, Doppler bin).
  std::size_t pilot_delay_bin = 0;
  std::size_t pilot_doppler_bin = 0;
  /// Guard half-widths: taps with delay shift in [0, guard_delay] and
  /// Doppler shift in [-guard_doppler, +guard_doppler] are observable.
  std::size_t guard_delay = 3;
  std::size_t guard_doppler = 2;
  /// Pilot power boost over data symbols (dB). Higher pilots estimate
  /// better but cost PAPR; [49] uses similar boosts.
  double pilot_boost_db = 10.0;
  /// Taps below this fraction of the pilot response are noise, not paths.
  double tap_threshold = 0.08;
};

struct EmbeddedFrame {
  dsp::Matrix grid;                  ///< DD grid with pilot+guard+data
  std::vector<std::size_t> data_positions;  ///< flat col-major indices
};

/// Number of data symbols an M x N frame carries under this config.
std::size_t embedded_data_capacity(std::size_t m, std::size_t n,
                                   const EmbeddedPilotConfig& cfg);

/// Build a frame: pilot impulse + zero guard + data symbols (in the order
/// of `data_symbols`, filling data_positions). `data_symbols` must match
/// embedded_data_capacity.
EmbeddedFrame build_embedded_frame(std::size_t m, std::size_t n,
                                   const std::vector<cd>& data_symbols,
                                   const EmbeddedPilotConfig& cfg);

/// Estimate channel taps from the guard region of a received frame.
std::vector<DdTap> estimate_taps_from_pilot(const dsp::Matrix& y,
                                            const EmbeddedPilotConfig& cfg);

/// Full receiver: estimate taps from the pilot region, MP-detect the data
/// region, return the recovered data symbols (posterior means) in
/// transmit order.
struct EmbeddedRxResult {
  std::vector<cd> data_symbols;
  std::vector<DdTap> taps;
};
EmbeddedRxResult embedded_receive(const dsp::Matrix& y,
                                  const EmbeddedPilotConfig& cfg,
                                  Modulation mod, double noise_power);

}  // namespace rem::phy
