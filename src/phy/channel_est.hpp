// Delay-Doppler channel estimation (§5.2, Fig. 7).
//
// REM reuses the cell's reference signals but pre/post-processes them in the
// delay-Doppler domain: a pilot impulse in the DD grid passes through the
// real OFDM waveform + multipath channel, and the received DD grid is (up to
// noise and windowing) the sampled channel h_w(k dtau, l dnu) of Eq. 5.
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"
#include "dsp/matrix.hpp"
#include "phy/numerology.hpp"

namespace rem::phy {

/// Result of a delay-Doppler estimation pass.
struct DdEstimate {
  dsp::Matrix h;           ///< estimated h_w samples, shape M x N
  double noise_power = 0;  ///< per-RE noise power used for the run
};

class DdChannelEstimator {
 public:
  explicit DdChannelEstimator(Numerology num) : num_(num) {}

  /// Run the full pilot chain: DD impulse pilot -> OTFS -> channel -> AWGN
  /// at `snr_db` -> OTFS demod -> channel samples. This is what a client
  /// does for the one measured cell per base station.
  DdEstimate estimate(const channel::MultipathChannel& ch, double snr_db,
                      common::Rng& rng) const;

  /// Noise-free variant (used by tests to check the estimator against the
  /// analytic dd_matrix()).
  DdEstimate estimate_noiseless(const channel::MultipathChannel& ch) const;

  const Numerology& numerology() const { return num_; }

 private:
  DdEstimate run(const channel::MultipathChannel& ch, double noise_power,
                 common::Rng* rng) const;

  Numerology num_;
};

/// Mean per-RE channel power gain implied by a DD channel sample matrix
/// (Parseval: equals the Frobenius norm squared of the 1/(MN)-normalized
/// DD samples).
double mean_channel_gain(const dsp::Matrix& dd_h);

/// Wideband SNR [dB] a cell would deliver given its DD channel samples,
/// per-RE transmit power `tx_power` and per-RE noise power `noise_power`.
double snr_db_from_dd(const dsp::Matrix& dd_h, double tx_power,
                      double noise_power);

}  // namespace rem::phy
