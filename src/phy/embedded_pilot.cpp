#include "phy/embedded_pilot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rem::phy {
namespace {

// The zero (guard) box around the pilot: delay within +/- guard_delay,
// Doppler within +/- 2*guard_doppler (double width so shifted data cannot
// leak into the observation half-box).
bool in_guard_box(std::size_t k, std::size_t l, std::size_t m,
                  std::size_t n, const EmbeddedPilotConfig& cfg) {
  const auto wrap_dist = [](std::size_t a, std::size_t b,
                            std::size_t mod) {
    const std::size_t d = (a + mod - b) % mod;
    return std::min(d, mod - d);
  };
  return wrap_dist(k, cfg.pilot_delay_bin, m) <= cfg.guard_delay &&
         wrap_dist(l, cfg.pilot_doppler_bin, n) <= 2 * cfg.guard_doppler;
}

double pilot_amplitude(const EmbeddedPilotConfig& cfg) {
  return std::pow(10.0, cfg.pilot_boost_db / 20.0);
}

}  // namespace

std::size_t embedded_data_capacity(std::size_t m, std::size_t n,
                                   const EmbeddedPilotConfig& cfg) {
  std::size_t guard = 0;
  for (std::size_t l = 0; l < n; ++l)
    for (std::size_t k = 0; k < m; ++k)
      guard += in_guard_box(k, l, m, n, cfg);
  return m * n - guard;
}

EmbeddedFrame build_embedded_frame(std::size_t m, std::size_t n,
                                   const std::vector<cd>& data_symbols,
                                   const EmbeddedPilotConfig& cfg) {
  if (data_symbols.size() != embedded_data_capacity(m, n, cfg))
    throw std::invalid_argument(
        "embedded frame: data symbol count must equal capacity");
  EmbeddedFrame frame;
  frame.grid = dsp::Matrix(m, n);
  std::size_t next = 0;
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t k = 0; k < m; ++k) {
      if (in_guard_box(k, l, m, n, cfg)) continue;
      frame.grid(k, l) = data_symbols[next];
      frame.data_positions.push_back(l * m + k);
      ++next;
    }
  }
  frame.grid(cfg.pilot_delay_bin, cfg.pilot_doppler_bin) =
      cd(pilot_amplitude(cfg), 0);
  return frame;
}

std::vector<DdTap> estimate_taps_from_pilot(const dsp::Matrix& y,
                                            const EmbeddedPilotConfig& cfg) {
  const std::size_t m = y.rows();
  const std::size_t n = y.cols();
  const double amp = pilot_amplitude(cfg);
  std::vector<DdTap> taps;
  double strongest = 0.0;
  // Observation half-box: delay shifts are causal (>= 0), Doppler shifts
  // run both ways.
  for (std::size_t dk = 0; dk <= cfg.guard_delay; ++dk) {
    for (int dl = -static_cast<int>(cfg.guard_doppler);
         dl <= static_cast<int>(cfg.guard_doppler); ++dl) {
      const std::size_t k = (cfg.pilot_delay_bin + dk) % m;
      const std::size_t l =
          (cfg.pilot_doppler_bin + static_cast<std::size_t>(
                                       dl + static_cast<int>(n))) %
          n;
      const cd gain = y(k, l) / amp;
      strongest = std::max(strongest, std::abs(gain));
      taps.push_back(
          {dk, static_cast<std::size_t>((dl + static_cast<int>(n))) % n,
           gain});
    }
  }
  // Threshold against the strongest observed response.
  std::vector<DdTap> kept;
  for (const auto& t : taps)
    if (std::abs(t.gain) >= cfg.tap_threshold * strongest)
      kept.push_back(t);
  std::sort(kept.begin(), kept.end(), [](const DdTap& a, const DdTap& b) {
    return std::abs(a.gain) > std::abs(b.gain);
  });
  return kept;
}

EmbeddedRxResult embedded_receive(const dsp::Matrix& y,
                                  const EmbeddedPilotConfig& cfg,
                                  Modulation mod, double noise_power) {
  const std::size_t m = y.rows();
  const std::size_t n = y.cols();
  EmbeddedRxResult out;
  out.taps = estimate_taps_from_pilot(y, cfg);

  // Cancel the pilot's known contribution before detection.
  dsp::Matrix y_data = y;
  const double amp = pilot_amplitude(cfg);
  for (const auto& tap : out.taps) {
    const std::size_t k = (cfg.pilot_delay_bin + tap.delay_bin) % m;
    const std::size_t l = (cfg.pilot_doppler_bin + tap.doppler_bin) % n;
    y_data(k, l) -= tap.gain * amp;
  }

  const auto mp = mp_detect(y_data, out.taps, mod, noise_power);

  // Read out the data positions (same layout as build_embedded_frame).
  for (std::size_t l = 0; l < n; ++l)
    for (std::size_t k = 0; k < m; ++k)
      if (!in_guard_box(k, l, m, n, cfg))
        out.data_symbols.push_back(mp.symbols[l * m + k]);
  return out;
}

}  // namespace rem::phy
