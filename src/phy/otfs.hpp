// OTFS pre/post-coding on top of OFDM: the (inverse) symplectic finite
// Fourier transform between the delay-Doppler grid x[k,l] and the
// time-frequency grid X[n,m] (Eq. 2-3 of the paper).
//
// We use the unitary convention (both directions scaled by 1/sqrt(MN)) so
// power is preserved; this differs from Eq. 2/3 only by a constant factor
// and keeps SNR accounting across the overlay exact.
#pragma once

#include "dsp/matrix.hpp"
#include "phy/numerology.hpp"
#include "phy/ofdm.hpp"

namespace rem::phy {

/// Delay-Doppler grid (rows = delay bins k, cols = Doppler bins l) to
/// time-frequency grid (rows = subcarriers m, cols = symbols n).
dsp::Matrix sfft(const dsp::Matrix& dd_grid);

/// Time-frequency grid to delay-Doppler grid (inverse of sfft).
dsp::Matrix isfft(const dsp::Matrix& tf_grid);

/// OTFS modem = SFFT precoding + the OFDM modem.
class OtfsModem {
 public:
  explicit OtfsModem(Numerology num) : ofdm_(num) {}

  const Numerology& numerology() const { return ofdm_.numerology(); }

  /// Delay-Doppler grid -> time samples.
  dsp::CVec modulate(const dsp::Matrix& dd_grid) const {
    return ofdm_.modulate(sfft(dd_grid));
  }

  /// Time samples -> delay-Doppler grid.
  dsp::Matrix demodulate(const dsp::CVec& samples) const {
    return isfft(ofdm_.demodulate(samples));
  }

  const OfdmModem& ofdm() const { return ofdm_; }

 private:
  OfdmModem ofdm_;
};

}  // namespace rem::phy
