// Scheduling-based OTFS (§5.1, Fig. 6).
//
// OTFS needs a *contiguous* M' x N' sub-grid of the OFDM resource grid.
// 4G/5G already prioritizes signaling radio bearers over data, so the
// scheduler first carves one contiguous rectangle for all pending signaling
// (sized to the queue), then fills the remaining resource elements with
// OFDM data. No extra delay or spectral cost is added for data.
#pragma once

#include "phy/numerology.hpp"
#include "phy/qam.hpp"

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace rem::phy {

/// A rectangular region of the resource grid: subcarriers
/// [first_subcarrier, first_subcarrier+num_subcarriers) x symbols
/// [first_symbol, first_symbol+num_symbols).
struct GridRect {
  std::size_t first_subcarrier = 0;
  std::size_t first_symbol = 0;
  std::size_t num_subcarriers = 0;
  std::size_t num_symbols = 0;

  std::size_t res() const { return num_subcarriers * num_symbols; }
  bool contains(std::size_t subcarrier, std::size_t symbol) const {
    return subcarrier >= first_subcarrier &&
           subcarrier < first_subcarrier + num_subcarriers &&
           symbol >= first_symbol && symbol < first_symbol + num_symbols;
  }
  bool overlaps(const GridRect& o) const;
};

/// A queued message. Signaling messages (SRB) always outrank data (DRB).
struct PendingMessage {
  std::uint64_t id = 0;
  std::size_t bytes = 0;
  bool is_signaling = false;
};

/// Result of scheduling one subframe.
struct SubframeAllocation {
  /// Contiguous sub-grid for OTFS signaling; nullopt when no signaling was
  /// pending. Always anchored at (0, 0).
  std::optional<GridRect> signaling;
  /// Remaining region(s) given to OFDM data (may be empty).
  std::vector<GridRect> data;
  /// Messages actually served this subframe, in order.
  std::vector<std::uint64_t> served_signaling_ids;
  std::vector<std::uint64_t> served_data_ids;
  /// Resource elements left idle (signaling rounding waste).
  std::size_t unused_res = 0;
};

/// Resource elements needed to carry `bytes` of payload with the rate-1/2
/// convolutional code and the given modulation.
std::size_t res_for_bytes(std::size_t bytes, Modulation mod);

class SignalingScheduler {
 public:
  SignalingScheduler(Numerology num, Modulation signaling_mod)
      : num_(num), signaling_mod_(signaling_mod) {}

  /// Enqueue a message; signaling goes to the SRB queue, data to the DRB
  /// queue.
  void enqueue(PendingMessage msg);

  std::size_t signaling_backlog_bytes() const;
  std::size_t data_backlog_bytes() const;

  /// Schedule one subframe: serve as much of the SRB queue as fits into a
  /// contiguous subgrid (grown column-first, matching how LTE schedules
  /// full symbols), then pack DRB data into the remainder.
  SubframeAllocation schedule_subframe();

 private:
  Numerology num_;
  Modulation signaling_mod_;
  std::deque<PendingMessage> srb_;
  std::deque<PendingMessage> drb_;
};

}  // namespace rem::phy
