#include "phy/channel_est.hpp"

#include "channel/noise.hpp"
#include "phy/otfs.hpp"

#include <cmath>

namespace rem::phy {

DdEstimate DdChannelEstimator::run(const channel::MultipathChannel& ch,
                                   double noise_power,
                                   common::Rng* rng) const {
  const std::size_t m = num_.num_subcarriers;
  const std::size_t n = num_.num_symbols;
  OtfsModem modem(num_);
  // Impulse pilot at DD bin (0,0), amplitude sqrt(MN) so the time-domain
  // waveform has unit average power like a fully loaded data grid.
  const double amp = std::sqrt(static_cast<double>(m * n));
  dsp::Matrix pilot(m, n);
  pilot(0, 0) = dsp::cd(amp, 0);

  dsp::CVec tx = modem.modulate(pilot);
  dsp::CVec rx = ch.apply_to_signal(tx, num_.sample_rate_hz());
  if (rng != nullptr && noise_power > 0.0)
    channel::add_awgn(rx, noise_power, *rng);
  dsp::Matrix y = modem.demodulate(rx);
  // y[k,l] = amp * h_w_normalized[k,l] (+ noise); undo the amplitude.
  y *= dsp::cd(1.0 / amp, 0.0);

  DdEstimate est;
  est.h = std::move(y);
  est.noise_power = noise_power;
  return est;
}

DdEstimate DdChannelEstimator::estimate(const channel::MultipathChannel& ch,
                                        double snr_db,
                                        common::Rng& rng) const {
  return run(ch, channel::noise_power_for_snr_db(snr_db), &rng);
}

DdEstimate DdChannelEstimator::estimate_noiseless(
    const channel::MultipathChannel& ch) const {
  return run(ch, 0.0, nullptr);
}

double mean_channel_gain(const dsp::Matrix& dd_h) {
  const double f = dd_h.frobenius_norm();
  return f * f;
}

double snr_db_from_dd(const dsp::Matrix& dd_h, double tx_power,
                      double noise_power) {
  const double g = mean_channel_gain(dd_h);
  return 10.0 * std::log10(g * tx_power / noise_power);
}

}  // namespace rem::phy
