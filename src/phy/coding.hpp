// Rate-1/2 convolutional code (K = 7, generators 171/133 octal — the
// standard LTE control-channel TBCC polynomials) with a soft-decision
// Viterbi decoder. Signaling blocks in the link simulator are protected by
// this code; a block errors out if any payload bit decodes incorrectly.
#pragma once

#include <cstdint>
#include <vector>

namespace rem::phy {

class ConvolutionalCode {
 public:
  static constexpr std::size_t kConstraint = 7;
  static constexpr std::size_t kMemory = kConstraint - 1;
  static constexpr std::uint32_t kG0 = 0171;  // octal
  static constexpr std::uint32_t kG1 = 0133;  // octal

  /// Encode `bits` (0/1 values), appending kMemory zero tail bits to
  /// terminate the trellis. Output length = 2 * (bits.size() + kMemory).
  static std::vector<std::uint8_t> encode(
      const std::vector<std::uint8_t>& bits);

  /// Soft-decision Viterbi decode. `llrs` holds one LLR per coded bit
  /// (positive = bit 0 likelier), length must be even and correspond to a
  /// terminated encode. Returns the payload bits (tail removed).
  static std::vector<std::uint8_t> decode(const std::vector<double>& llrs);

  /// Number of coded bits produced for `payload_bits` payload bits.
  static std::size_t coded_length(std::size_t payload_bits) {
    return 2 * (payload_bits + kMemory);
  }
};

}  // namespace rem::phy
