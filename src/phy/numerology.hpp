// OFDM numerology: grid dimensions and sampling intervals shared by the
// OFDM/OTFS modems and the channel-estimation code.
#pragma once

#include <cstddef>

namespace rem::phy {

/// Describes an M x N OFDM resource grid (M subcarriers x N symbols) and
/// its time/frequency sampling. The delay-Doppler grid quantization follows
/// (Fig. 6a): dtau = 1/(M df), dnu = 1/(N T).
struct Numerology {
  std::size_t num_subcarriers = 12;   ///< M
  std::size_t num_symbols = 14;       ///< N
  double subcarrier_spacing_hz = 15e3;  ///< df (LTE: 15 kHz)
  std::size_t cp_len = 0;             ///< cyclic prefix length in samples

  /// Baseband sample rate = M * df.
  double sample_rate_hz() const {
    return static_cast<double>(num_subcarriers) * subcarrier_spacing_hz;
  }
  /// Useful (FFT) symbol duration 1/df.
  double useful_symbol_s() const { return 1.0 / subcarrier_spacing_hz; }
  /// Total symbol duration including CP — the grid's time step T.
  double symbol_duration_s() const {
    return (static_cast<double>(num_subcarriers + cp_len)) /
           sample_rate_hz();
  }
  /// Delay resolution dtau = 1/(M df).
  double delay_res_s() const {
    return 1.0 / (static_cast<double>(num_subcarriers) *
                  subcarrier_spacing_hz);
  }
  /// Doppler resolution dnu = 1/(N T).
  double doppler_res_hz() const {
    return 1.0 / (static_cast<double>(num_symbols) * symbol_duration_s());
  }
  /// Total samples for the whole grid.
  std::size_t total_samples() const {
    return (num_subcarriers + cp_len) * num_symbols;
  }
  /// Resource elements in the grid.
  std::size_t total_res() const { return num_subcarriers * num_symbols; }

  /// LTE-like defaults: normal CP approximated as 1/4 of the FFT length
  /// was historically extended CP; we use ~7% (rounded up) like normal CP.
  static Numerology lte(std::size_t m, std::size_t n) {
    Numerology num;
    num.num_subcarriers = m;
    num.num_symbols = n;
    num.subcarrier_spacing_hz = 15e3;
    num.cp_len = (m + 13) / 14;  // ceil(M/14) ~ 7%
    return num;
  }
};

}  // namespace rem::phy
