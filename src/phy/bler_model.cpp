#include "phy/bler_model.hpp"

#include <algorithm>
#include <cmath>

namespace rem::phy {

double LogisticCurve::eval(double snr_db) const {
  const double logistic = 1.0 / (1.0 + std::exp(slope * (snr_db - mid_db)));
  return floor + (1.0 - floor) * logistic;
}

LogisticBlerModel::LogisticBlerModel() {
  // Calibrated to the shapes produced by bench_fig10 on this repo's link
  // simulator (QPSK, rate-1/2 TBCC, 12x14 grid):
  //   low Doppler:  OFDM and OTFS within ~1 dB of each other.
  //   high Doppler: OFDM shifted right by ~5 dB with a ~3% ICI floor;
  //                 OTFS close to its low-Doppler curve.
  curves_[0][0] = {1.0, 1.1, 0.0};    // OFDM, low Doppler
  curves_[0][1] = {6.0, 0.55, 0.03};  // OFDM, high Doppler
  curves_[1][0] = {0.5, 1.3, 0.0};    // OTFS, low Doppler
  curves_[1][1] = {1.5, 1.0, 0.0};    // OTFS, high Doppler
}

void LogisticBlerModel::set_curve(Waveform w, DopplerRegime d,
                                  LogisticCurve c) {
  curves_[static_cast<int>(w)][static_cast<int>(d)] = c;
}

double LogisticBlerModel::bler(Waveform w, DopplerRegime d,
                               double snr_db) const {
  return curves_[static_cast<int>(w)][static_cast<int>(d)].eval(snr_db);
}

void TableBlerModel::set_points(Waveform w, DopplerRegime d,
                                std::vector<BlerPoint> pts) {
  std::sort(pts.begin(), pts.end(),
            [](const BlerPoint& a, const BlerPoint& b) {
              return a.snr_db < b.snr_db;
            });
  tables_[{static_cast<int>(w), static_cast<int>(d)}] = std::move(pts);
}

double TableBlerModel::bler(Waveform w, DopplerRegime d,
                            double snr_db) const {
  const auto it = tables_.find({static_cast<int>(w), static_cast<int>(d)});
  if (it == tables_.end() || it->second.empty()) return 1.0;
  const auto& pts = it->second;
  if (snr_db <= pts.front().snr_db) return pts.front().bler;
  if (snr_db >= pts.back().snr_db) return pts.back().bler;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (snr_db <= pts[i].snr_db) {
      const double t = (snr_db - pts[i - 1].snr_db) /
                       (pts[i].snr_db - pts[i - 1].snr_db);
      return pts[i - 1].bler * (1.0 - t) + pts[i].bler * t;
    }
  }
  return pts.back().bler;
}

TableBlerModel calibrate_bler_model(const Numerology& num, Modulation mod,
                                    const std::vector<double>& snrs_db,
                                    std::size_t blocks_per_point,
                                    common::Rng& rng) {
  TableBlerModel model;
  struct Case {
    Waveform w;
    DopplerRegime d;
    channel::Profile profile;
    double speed_kmh;
  };
  const Case cases[] = {
      {Waveform::kOFDM, DopplerRegime::kLow, channel::Profile::kEVA, 60.0},
      {Waveform::kOFDM, DopplerRegime::kHigh, channel::Profile::kHST350,
       350.0},
      {Waveform::kOTFS, DopplerRegime::kLow, channel::Profile::kEVA, 60.0},
      {Waveform::kOTFS, DopplerRegime::kHigh, channel::Profile::kHST350,
       350.0},
  };
  for (const auto& c : cases) {
    LinkConfig cfg;
    cfg.num = num;
    cfg.waveform = c.w;
    cfg.mod = mod;
    channel::ChannelDrawConfig draw;
    draw.profile = c.profile;
    draw.speed_mps = c.speed_kmh / 3.6;
    draw.carrier_hz = 2.0e9;
    model.set_points(c.w, c.d,
                     LinkSimulator(cfg).bler_curve(draw, snrs_db,
                                                   blocks_per_point, rng));
  }
  return model;
}

}  // namespace rem::phy
