#include "phy/otfs.hpp"

#include "dsp/fft.hpp"

#include <cmath>

namespace rem::phy {
namespace {

// Apply forward (invert=false) or inverse (invert=true) unitary DFT to every
// row of the matrix.
void dft_rows(dsp::Matrix& m, bool invert) {
  const double scale = invert ? std::sqrt(static_cast<double>(m.cols()))
                              : 1.0 / std::sqrt(static_cast<double>(m.cols()));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    dsp::CVec row = m.row(r);
    if (invert)
      dsp::ifft(row);
    else
      dsp::fft(row);
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = row[c] * scale;
  }
}

void dft_cols(dsp::Matrix& m, bool invert) {
  const double scale = invert ? std::sqrt(static_cast<double>(m.rows()))
                              : 1.0 / std::sqrt(static_cast<double>(m.rows()));
  for (std::size_t c = 0; c < m.cols(); ++c) {
    dsp::CVec col = m.col(c);
    if (invert)
      dsp::ifft(col);
    else
      dsp::fft(col);
    for (std::size_t r = 0; r < m.rows(); ++r) m(r, c) = col[r] * scale;
  }
}

}  // namespace

// Eq. 2: X[n,m] = sum_{k,l} x[k,l] e^{-j2pi(mk/M - nl/N)}
//   = forward DFT along delay (k -> m), inverse DFT along Doppler (l -> n),
// here in the unitary convention.
dsp::Matrix sfft(const dsp::Matrix& dd_grid) {
  dsp::Matrix tf = dd_grid;   // rows: k -> m, cols: l -> n
  dft_cols(tf, false);        // delay axis (rows index) forward DFT
  dft_rows(tf, true);         // Doppler axis inverse DFT
  return tf;
}

dsp::Matrix isfft(const dsp::Matrix& tf_grid) {
  dsp::Matrix dd = tf_grid;
  dft_rows(dd, false);
  dft_cols(dd, true);
  return dd;
}

}  // namespace rem::phy
