#include "phy/otfs.hpp"

#include "dsp/fft_plan.hpp"
#include "obs/profile.hpp"

#include <cmath>

namespace rem::phy {
namespace {

// Apply forward (invert=false) or inverse (invert=true) unitary DFT to every
// row of the matrix, in place: rows are contiguous in the row-major storage,
// so each transform runs directly on the matrix buffer with one cached plan
// and one scratch — no per-row temporaries.
void dft_rows(dsp::Matrix& m, bool invert) {
  const std::size_t cols = m.cols();
  if (cols == 0 || m.rows() == 0) return;
  // The plan's inverse already folds in 1/N; sqrt(N) on top yields the
  // unitary 1/sqrt(N) convention in both directions.
  const double scale = invert ? std::sqrt(static_cast<double>(cols))
                              : 1.0 / std::sqrt(static_cast<double>(cols));
  const auto plan = dsp::FftPlan::get(cols);
  dsp::FftScratch scratch;
  dsp::cd* base = m.data().data();
  for (std::size_t r = 0; r < m.rows(); ++r)
    plan->transform(base + r * cols, 1, invert, scale, scratch);
}

// Column counterpart: columns are stride-`cols` views of the same buffer;
// the plan gathers through one reused scratch buffer instead of allocating
// a CVec per column.
void dft_cols(dsp::Matrix& m, bool invert) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  if (rows == 0 || cols == 0) return;
  const double scale = invert ? std::sqrt(static_cast<double>(rows))
                              : 1.0 / std::sqrt(static_cast<double>(rows));
  const auto plan = dsp::FftPlan::get(rows);
  dsp::FftScratch scratch;
  dsp::cd* base = m.data().data();
  for (std::size_t c = 0; c < cols; ++c)
    plan->transform(base + c, cols, invert, scale, scratch);
}

}  // namespace

// Eq. 2: X[n,m] = sum_{k,l} x[k,l] e^{-j2pi(mk/M - nl/N)}
//   = forward DFT along delay (k -> m), inverse DFT along Doppler (l -> n),
// here in the unitary convention.
dsp::Matrix sfft(const dsp::Matrix& dd_grid) {
  static obs::Histogram* const timer_hist = obs::kernel_timer("phy.sfft_ns");
  obs::ScopedTimer timer(timer_hist);
  dsp::Matrix tf = dd_grid;   // rows: k -> m, cols: l -> n
  dft_cols(tf, false);        // delay axis (rows index) forward DFT
  dft_rows(tf, true);         // Doppler axis inverse DFT
  return tf;
}

dsp::Matrix isfft(const dsp::Matrix& tf_grid) {
  static obs::Histogram* const timer_hist = obs::kernel_timer("phy.isfft_ns");
  obs::ScopedTimer timer(timer_hist);
  dsp::Matrix dd = tf_grid;
  dft_rows(dd, false);
  dft_cols(dd, true);
  return dd;
}

}  // namespace rem::phy
