// CP-OFDM modulator/demodulator over an M x N resource grid.
//
// The grid is a dsp::Matrix with rows = subcarriers (M), cols = symbols (N).
// The transforms are unitary (norm preserving) so SNR bookkeeping is exact
// across the whole chain.
#pragma once

#include "dsp/fft.hpp"
#include "dsp/matrix.hpp"
#include "phy/numerology.hpp"

namespace rem::phy {

class OfdmModem {
 public:
  explicit OfdmModem(Numerology num) : num_(num) {}

  const Numerology& numerology() const { return num_; }

  /// Grid -> time samples. Per symbol: unitary IFFT across subcarriers,
  /// then cyclic prefix of cp_len samples.
  dsp::CVec modulate(const dsp::Matrix& grid) const;

  /// Time samples -> grid. Drops CPs, unitary FFT per symbol.
  dsp::Matrix demodulate(const dsp::CVec& samples) const;

 private:
  Numerology num_;
};

}  // namespace rem::phy
