#include "phy/qam.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rem::phy {
namespace {

// Gray-coded PAM levels for one axis carrying `bits` bits, unnormalized
// (..., -3, -1, 1, 3, ...) indexed by the Gray-decoded bit group.
double pam_level(std::uint32_t gray_bits, std::size_t bits) {
  // Convert Gray code to binary index.
  std::uint32_t bin = gray_bits;
  for (std::uint32_t shift = 1; shift < bits; shift <<= 1)
    bin ^= bin >> shift;
  const double levels = static_cast<double>(1u << bits);
  return 2.0 * static_cast<double>(bin) - (levels - 1.0);
}

std::uint32_t pam_bits_from_level(double x, std::size_t bits) {
  const std::int32_t levels = 1 << bits;
  // Nearest level index.
  std::int32_t idx = static_cast<std::int32_t>(
      std::lround((x + (levels - 1)) / 2.0));
  idx = std::max(0, std::min(levels - 1, idx));
  // Binary to Gray.
  const auto u = static_cast<std::uint32_t>(idx);
  return u ^ (u >> 1);
}

struct AxisSpec {
  std::size_t bits_per_axis;
  double scale;  // normalization to unit average power
};

AxisSpec axis_spec(Modulation m) {
  switch (m) {
    case Modulation::kBPSK: return {1, 1.0};
    case Modulation::kQPSK: return {1, 1.0 / std::sqrt(2.0)};
    case Modulation::kQAM16: return {2, 1.0 / std::sqrt(10.0)};
    case Modulation::kQAM64: return {3, 1.0 / std::sqrt(42.0)};
  }
  throw std::invalid_argument("unknown modulation");
}

}  // namespace

std::string modulation_name(Modulation m) {
  switch (m) {
    case Modulation::kBPSK: return "BPSK";
    case Modulation::kQPSK: return "QPSK";
    case Modulation::kQAM16: return "16QAM";
    case Modulation::kQAM64: return "64QAM";
  }
  return "?";
}

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBPSK: return 1;
    case Modulation::kQPSK: return 2;
    case Modulation::kQAM16: return 4;
    case Modulation::kQAM64: return 6;
  }
  return 0;
}

std::vector<cd> qam_modulate(const std::vector<std::uint8_t>& bits,
                             Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  if (bits.size() % bps != 0)
    throw std::invalid_argument("bit count not a multiple of bits/symbol");
  const auto spec = axis_spec(m);
  std::vector<cd> out;
  out.reserve(bits.size() / bps);
  for (std::size_t i = 0; i < bits.size(); i += bps) {
    if (m == Modulation::kBPSK) {
      out.emplace_back(bits[i] ? -1.0 : 1.0, 0.0);
      continue;
    }
    // First half of the bits on I, second half on Q.
    std::uint32_t gi = 0, gq = 0;
    for (std::size_t b = 0; b < spec.bits_per_axis; ++b)
      gi = (gi << 1) | bits[i + b];
    for (std::size_t b = 0; b < spec.bits_per_axis; ++b)
      gq = (gq << 1) | bits[i + spec.bits_per_axis + b];
    out.emplace_back(pam_level(gi, spec.bits_per_axis) * spec.scale,
                     pam_level(gq, spec.bits_per_axis) * spec.scale);
  }
  return out;
}

std::vector<std::uint8_t> qam_demodulate_hard(const std::vector<cd>& symbols,
                                              Modulation m) {
  const auto spec = axis_spec(m);
  const std::size_t bps = bits_per_symbol(m);
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * bps);
  for (const auto& s : symbols) {
    if (m == Modulation::kBPSK) {
      bits.push_back(s.real() < 0 ? 1 : 0);
      continue;
    }
    const std::uint32_t gi =
        pam_bits_from_level(s.real() / spec.scale, spec.bits_per_axis);
    const std::uint32_t gq =
        pam_bits_from_level(s.imag() / spec.scale, spec.bits_per_axis);
    for (std::size_t b = 0; b < spec.bits_per_axis; ++b)
      bits.push_back((gi >> (spec.bits_per_axis - 1 - b)) & 1u);
    for (std::size_t b = 0; b < spec.bits_per_axis; ++b)
      bits.push_back((gq >> (spec.bits_per_axis - 1 - b)) & 1u);
  }
  return bits;
}

const std::vector<cd>& constellation(Modulation m) {
  static const auto make = [](Modulation mod) {
    const std::size_t bps = bits_per_symbol(mod);
    std::vector<cd> pts;
    const std::size_t count = 1u << bps;
    for (std::size_t v = 0; v < count; ++v) {
      std::vector<std::uint8_t> bits(bps);
      for (std::size_t b = 0; b < bps; ++b)
        bits[b] = (v >> (bps - 1 - b)) & 1u;
      pts.push_back(qam_modulate(bits, mod)[0]);
    }
    return pts;
  };
  static const std::vector<cd> bpsk = make(Modulation::kBPSK);
  static const std::vector<cd> qpsk = make(Modulation::kQPSK);
  static const std::vector<cd> qam16 = make(Modulation::kQAM16);
  static const std::vector<cd> qam64 = make(Modulation::kQAM64);
  switch (m) {
    case Modulation::kBPSK: return bpsk;
    case Modulation::kQPSK: return qpsk;
    case Modulation::kQAM16: return qam16;
    case Modulation::kQAM64: return qam64;
  }
  throw std::invalid_argument("unknown modulation");
}

std::vector<double> qam_demodulate_llr(const std::vector<cd>& symbols,
                                       Modulation m,
                                       const std::vector<double>& noise_var) {
  if (noise_var.size() != symbols.size())
    throw std::invalid_argument("noise_var size mismatch");
  const std::size_t bps = bits_per_symbol(m);
  const auto& pts = constellation(m);
  std::vector<double> llrs;
  llrs.reserve(symbols.size() * bps);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const double nv = std::max(noise_var[i], 1e-12);
    for (std::size_t b = 0; b < bps; ++b) {
      double best0 = std::numeric_limits<double>::infinity();
      double best1 = std::numeric_limits<double>::infinity();
      for (std::size_t v = 0; v < pts.size(); ++v) {
        const double d = std::norm(symbols[i] - pts[v]);
        const bool bit = (v >> (bps - 1 - b)) & 1u;
        if (bit)
          best1 = std::min(best1, d);
        else
          best0 = std::min(best0, d);
      }
      llrs.push_back((best1 - best0) / nv);  // >0 means bit 0 likelier
    }
  }
  return llrs;
}

}  // namespace rem::phy
