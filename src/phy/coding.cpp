#include "phy/coding.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace rem::phy {
namespace {

constexpr std::size_t kStates = 1u << ConvolutionalCode::kMemory;

// Output pair (c0, c1) for input bit `in` from state `state` (state = last
// kMemory input bits, most recent in the LSB).
inline std::pair<std::uint8_t, std::uint8_t> outputs(std::uint32_t state,
                                                     std::uint8_t in) {
  const std::uint32_t reg = (state << 1) | in;  // constraint-length window
  const auto parity = [](std::uint32_t v) {
    return static_cast<std::uint8_t>(std::popcount(v) & 1u);
  };
  return {parity(reg & ConvolutionalCode::kG0),
          parity(reg & ConvolutionalCode::kG1)};
}

inline std::uint32_t next_state(std::uint32_t state, std::uint8_t in) {
  return ((state << 1) | in) & (kStates - 1);
}

}  // namespace

std::vector<std::uint8_t> ConvolutionalCode::encode(
    const std::vector<std::uint8_t>& bits) {
  std::vector<std::uint8_t> out;
  out.reserve(coded_length(bits.size()));
  std::uint32_t state = 0;
  const auto push = [&](std::uint8_t in) {
    const auto [c0, c1] = outputs(state, in);
    out.push_back(c0);
    out.push_back(c1);
    state = next_state(state, in);
  };
  for (std::uint8_t b : bits) push(b & 1u);
  for (std::size_t i = 0; i < kMemory; ++i) push(0);  // terminate
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::decode(
    const std::vector<double>& llrs) {
  if (llrs.size() % 2 != 0)
    throw std::invalid_argument("Viterbi: odd LLR count");
  const std::size_t steps = llrs.size() / 2;
  if (steps < kMemory) throw std::invalid_argument("Viterbi: input too short");
  const double kInf = std::numeric_limits<double>::infinity();

  // Path metrics; trellis starts and ends in state 0 (terminated).
  std::vector<double> metric(kStates, kInf);
  metric[0] = 0.0;
  // survivors[t][s] = input bit that led into state s at step t (plus the
  // predecessor implied by the shift register structure).
  std::vector<std::vector<std::uint8_t>> survivor_bit(
      steps, std::vector<std::uint8_t>(kStates, 0));

  std::vector<double> next(kStates, kInf);
  for (std::size_t t = 0; t < steps; ++t) {
    const double l0 = llrs[2 * t];
    const double l1 = llrs[2 * t + 1];
    std::fill(next.begin(), next.end(), kInf);
    for (std::uint32_t s = 0; s < kStates; ++s) {
      if (metric[s] == kInf) continue;
      for (std::uint8_t in = 0; in <= 1; ++in) {
        const auto [c0, c1] = outputs(s, in);
        // LLR convention: positive favors bit 0. Cost of hypothesizing a
        // transmitted bit b given llr l is l * b (up to a constant).
        const double branch = l0 * c0 + l1 * c1;
        const std::uint32_t ns = next_state(s, in);
        const double cand = metric[s] + branch;
        if (cand < next[ns]) {
          next[ns] = cand;
          survivor_bit[t][ns] = static_cast<std::uint8_t>((in << 1) |
                                                          (s >> (kMemory - 1)));
        }
      }
    }
    metric.swap(next);
  }

  // Trace back from state 0.
  std::vector<std::uint8_t> decoded(steps);
  std::uint32_t state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t packed = survivor_bit[t][state];
    const std::uint8_t in = packed >> 1;
    const std::uint8_t oldest = packed & 1u;  // MSB of predecessor state
    decoded[t] = in;
    // Predecessor: shift the input bit out, restore the dropped MSB.
    state = ((state >> 1) | (static_cast<std::uint32_t>(oldest)
                             << (kMemory - 1))) &
            (kStates - 1);
  }
  decoded.resize(steps - kMemory);  // drop tail
  return decoded;
}

}  // namespace rem::phy
