// Declarative scenario compiler (SCENARIOS.md documents the schema and
// the shipped library under scenarios/).
//
// A scenario is a flat-JSON description — one `"key": "value"` pair per
// line, the same wire discipline as the rem-metrics-v1 codec — of one
// complete evaluation world: route preset, BS deployment layout, a
// mixed-speed UE population, a fault schedule over any of the twelve
// FaultKinds (with correlated-fault domain knobs for region_outage /
// cascade_overload), cascade-resilience knobs (load advertisement,
// circuit breakers, storm damping), backhaul transport parameters
// (including per-link asymmetry), a per-BS capacity profile, time
// compression, and the acceptance gates bench_fleet enforces when it
// sweeps the library.
//
// The compiler turns that description into a fully validated
// trace::Scenario (DeploymentConfig + PropagationConfig + PolicyMix +
// SimConfig with FleetConfig): every field is range-checked, fault
// schedules go through FaultInjector's reject-with-context validation,
// backhaul and BS-capacity configs go through their own validators, and
// contradictions (overlapping scripted windows, class counts that do not
// sum to the fleet size, unknown keys, out-of-range speeds) are rejected
// with the offending key and scenario named — a scenario can be wrong,
// but never silently wrong.
//
// Determinism: compilation is a pure function of the spec (plus the
// overrides), so the golden corpus pins a digest of every compiled
// library scenario (tests/golden/scen_*.json) and any compiler drift
// shows up as a named field diff.
#pragma once

#include "trace/scenario.hpp"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rem::scenario {

/// BS deployment geometry families the compiler can synthesize. Each maps
/// to a DeploymentConfig/PropagationConfig adjustment on top of the route
/// preset (see apply_layout / SCENARIOS.md for the exact parameter sets).
enum class Layout {
  kRailLinear,     ///< the paper's HSR corridor (route preset untouched)
  kUrbanCanyon,    ///< street-canyon macro grid: tight sites, heavy shadowing
  kDenseSmallCell, ///< low-power small cells a few hundred metres apart
};

std::string layout_name(Layout l);
Layout layout_from_name(const std::string& name);

/// Stable wire name of a route preset ("la", "beijing_taiyuan",
/// "beijing_shanghai") — the scenario JSON vocabulary, round-trip safe.
std::string route_wire_name(trace::Route r);
trace::Route route_from_wire_name(const std::string& name);

/// Per-scenario acceptance gates, enforced by bench_fleet for every
/// library scenario (a scenario ships with its own pass criteria).
struct ScenarioGates {
  /// REM's aggregate failure ratio must stay at or below this.
  double max_rem_failure_ratio = 1.0;
  /// REM's aggregate failure ratio must not exceed legacy's.
  bool rem_le_legacy = true;
  /// The legacy fleet must attempt at least this many handovers — a
  /// scenario that provokes no mobility is rot, not a pass.
  int min_legacy_handovers = 1;
};

/// Parsed (not yet compiled) scenario description. Field defaults are
/// the schema defaults: a key omitted from the JSON leaves its field at
/// the value below.
struct ScenarioSpec {
  std::string name;         ///< [a-z0-9_]+, must match the file basename
  std::string description;  ///< one-line human summary (required)
  std::string paper_ref;    ///< paper figure/table this generalizes
  trace::Route route = trace::Route::kBeijingShanghai;
  Layout layout = Layout::kRailLinear;
  double speed_kmh = 300.0;      ///< UE 0 (reference UE) speed
  double duration_s = 120.0;     ///< wall of simulated seconds *before*
                                 ///< time compression
  double time_compression = 1.0; ///< >0; compiled horizon = duration_s / tc
  std::uint64_t seed = 1;

  // --- UE population ---
  int ue_count = 1;
  double start_spread_m = 2000.0;
  /// Plain single-band form (used when `classes` is empty).
  double ue_speed_lo_kmh = 200.0;
  double ue_speed_hi_kmh = 350.0;
  /// Mixed-speed class form; counts must sum to ue_count.
  std::vector<sim::FleetSpeedClass> classes;

  // --- fault schedule (uncompressed timeline) ---
  std::vector<sim::FaultWindow> faults;
  std::vector<sim::RandomFaultSpec> rfaults;
  /// Correlated-fault domain knobs (region_outage / cascade_overload);
  /// defaults mirror sim::FaultConfig. The stagger lives on the
  /// uncompressed timeline like the windows.
  int fault_domain_size = 4;
  double region_stagger_s = 0.5;
  int cascade_neighbor_radius = 2;

  // --- cascade-resilience knobs (defaults mirror sim::SimConfig:
  // everything off, so omitting the keys changes nothing) ---
  double load_ad_staleness_s = 0.0;
  int breaker_trip_k = 0;
  double breaker_cooldown_s = 2.0;
  double storm_jitter_frac = 0.0;

  // --- transports / BS capacity ---
  net::BackhaulConfig backhaul;
  std::string bs_profile = "macro";  ///< macro | small_cell | edge
  sim::BsCapacityConfig bs_capacity; ///< profile preset + overrides

  ScenarioGates gates;
};

/// Runtime knobs applied before compilation (bench_fleet --smoke and the
/// bench_chaos fleet section use these instead of editing JSON files).
struct CompileOverrides {
  /// Extra time compression multiplied onto the spec's own factor.
  std::optional<double> extra_time_compression;
  /// Replaces the spec's UE count. Only valid for plain-band populations
  /// (a class mix pins its own counts); rejected otherwise.
  std::optional<int> ue_count;
  /// Replaces the spec's pre-compression duration.
  std::optional<double> duration_s;
};

/// A validated, runnable scenario: the trace::Scenario carries the full
/// deployment/propagation/policy/sim configuration (fleet knobs
/// included); `scenario.sim.duration_s` is the compressed horizon.
struct CompiledScenario {
  std::string name;
  std::string description;
  std::string paper_ref;
  trace::Scenario scenario;
  std::uint64_t seed = 1;
  ScenarioGates gates;
};

/// Parse one flat-JSON scenario. Rejects — std::runtime_error with line
/// number and content — anything the schema does not define: unknown
/// keys, duplicate keys, malformed values, a missing schema/name/
/// description, or contradictory population forms (both a plain speed
/// band and class counts).
ScenarioSpec read_scenario_json(std::istream& is);
ScenarioSpec read_scenario_json_file(const std::string& path);

/// Canonical emission: every schema key, in fixed order, current values.
/// read(write(spec)) == spec (the round-trip test pins this).
void write_scenario_json(const ScenarioSpec& spec, std::ostream& os);
std::string write_scenario_json(const ScenarioSpec& spec);

/// Compile a spec into a validated runnable scenario. Throws
/// std::invalid_argument naming the scenario and the offending field on
/// out-of-range values, fault-schedule violations (via FaultInjector's
/// validation), invalid backhaul or BS-capacity configs, or class counts
/// that do not sum to the UE count.
CompiledScenario compile(const ScenarioSpec& spec,
                         const CompileOverrides& overrides = {});

/// Every compiled field as ordered (name, value) string pairs — integers
/// in decimal, doubles as %.17g — the golden-digest payload for
/// scen_*.json pins. Purely a function of the compiled scenario.
std::vector<std::pair<std::string, std::string>> digest_fields(
    const CompiledScenario& c);

/// Sorted basenames (no .json suffix) of every scenario file in `dir`.
/// Throws std::runtime_error when the directory cannot be read.
std::vector<std::string> list_scenario_names(const std::string& dir);

/// Load + parse `dir/<name>.json`, enforcing that the file's `name` field
/// matches the basename.
ScenarioSpec load_scenario(const std::string& dir, const std::string& name);

}  // namespace rem::scenario
