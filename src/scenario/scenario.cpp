#include "scenario/scenario.hpp"

#include "common/units.hpp"
#include "net/backhaul.hpp"
#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace rem::scenario {
namespace {

// ---------------------------------------------------------------------------
// formatting helpers (shared by the canonical writer and digest_fields)

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_bool(bool v) { return v ? "true" : "false"; }

// ---------------------------------------------------------------------------
// schema vocabulary

constexpr const char* kSchemaName = "rem-scenario-v1";

/// The convenience UE classes the schema names directly. `ue.pedestrian`,
/// `ue.vehicular` and `ue.hst350` are count shorthands that expand to
/// these bands, in this order (the canonical fill order: slow to fast).
struct NamedClass {
  const char* key;
  const char* name;
  double lo_kmh, hi_kmh;
};
constexpr NamedClass kNamedClasses[] = {
    {"ue.pedestrian", "pedestrian", 3.0, 6.0},
    {"ue.vehicular", "vehicular", 40.0, 100.0},
    {"ue.hst350", "hst350", 300.0, 350.0},
};

/// Physical ceiling for any configured speed (km/h) — a little above the
/// paper's 350 km/h operating point, far below anything the propagation
/// model was calibrated for.
constexpr double kMaxSpeedKmh = 600.0;

sim::BsCapacityConfig bs_profile_preset(const std::string& profile) {
  sim::BsCapacityConfig c;  // "macro": the model defaults
  if (profile == "macro") return c;
  if (profile == "small_cell") {
    // One processing slot, shallow queue, early admission pushback — the
    // street-furniture cell that saturates first under a signaling storm.
    c.slots = 1;
    c.queue_capacity = 4;
    c.admission_load_threshold = 0.5;
    return c;
  }
  if (profile == "edge") {
    // Edge-compute BS: more slots and queue depth, later pushback.
    c.slots = 4;
    c.queue_capacity = 16;
    c.admission_load_threshold = 0.75;
    return c;
  }
  throw std::runtime_error("unknown bs.profile '" + profile +
                           "' (expected macro | small_cell | edge)");
}

}  // namespace

std::string layout_name(Layout l) {
  switch (l) {
    case Layout::kRailLinear: return "rail_linear";
    case Layout::kUrbanCanyon: return "urban_canyon";
    case Layout::kDenseSmallCell: return "dense_small_cell";
  }
  throw std::invalid_argument("layout_name: value outside the Layout enum");
}

Layout layout_from_name(const std::string& name) {
  if (name == "rail_linear") return Layout::kRailLinear;
  if (name == "urban_canyon") return Layout::kUrbanCanyon;
  if (name == "dense_small_cell") return Layout::kDenseSmallCell;
  throw std::runtime_error("unknown layout '" + name +
                           "' (expected rail_linear | urban_canyon | "
                           "dense_small_cell)");
}

std::string route_wire_name(trace::Route r) {
  switch (r) {
    case trace::Route::kLowMobilityLA: return "la";
    case trace::Route::kBeijingTaiyuan: return "beijing_taiyuan";
    case trace::Route::kBeijingShanghai: return "beijing_shanghai";
  }
  throw std::invalid_argument(
      "route_wire_name: value outside the Route enum");
}

trace::Route route_from_wire_name(const std::string& name) {
  if (name == "la") return trace::Route::kLowMobilityLA;
  if (name == "beijing_taiyuan") return trace::Route::kBeijingTaiyuan;
  if (name == "beijing_shanghai") return trace::Route::kBeijingShanghai;
  throw std::runtime_error("unknown route '" + name +
                           "' (expected la | beijing_taiyuan | "
                           "beijing_shanghai)");
}

// ---------------------------------------------------------------------------
// parser

ScenarioSpec read_scenario_json(std::istream& is) {
  // Phase 1: the rem-metrics-v1 line discipline — one `"key": "value"`
  // pair per line inside a single object — collected into a key/value
  // map. Duplicates and structural noise are rejected here with the line
  // number and content.
  std::map<std::string, std::string> kv;
  std::string line;
  int line_no = 0;
  bool in_object = false, closed = false;
  const auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("scenario JSON line " + std::to_string(line_no) +
                             ": " + why + " in '" + line + "'");
  };
  const auto unquote = [&](std::string_view sv) {
    if (sv.size() < 2 || sv.front() != '"' || sv.back() != '"')
      fail("expected a double-quoted string");
    std::string out;
    for (std::size_t i = 1; i + 1 < sv.size(); ++i) {
      if (sv[i] == '\\') {
        if (i + 2 >= sv.size()) fail("dangling escape");
        out.push_back(sv[++i]);
      } else {
        out.push_back(sv[i]);
      }
    }
    return out;
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv(line);
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t'))
      sv.remove_prefix(1);
    while (!sv.empty() &&
           (sv.back() == ' ' || sv.back() == '\t' || sv.back() == '\r'))
      sv.remove_suffix(1);
    if (sv.empty()) continue;
    if (sv == "{") {
      if (in_object || closed) fail("unexpected '{'");
      in_object = true;
      continue;
    }
    if (sv == "}") {
      if (!in_object || closed) fail("unexpected '}'");
      closed = true;
      continue;
    }
    if (!in_object || closed) fail("content outside the object");
    if (sv.back() == ',') sv.remove_suffix(1);
    const auto colon = sv.find("\": \"");
    if (colon == std::string_view::npos) fail("expected '\"key\": \"value\"'");
    const std::string key = unquote(sv.substr(0, colon + 1));
    const std::string value = unquote(sv.substr(colon + 3));
    if (!kv.emplace(key, value).second) fail("duplicate key '" + key + "'");
  }
  if (!in_object) throw std::runtime_error("scenario JSON: no object found");
  if (!closed) throw std::runtime_error("scenario JSON: object never closed");

  // Phase 2: interpret the keys in fixed order (file order is irrelevant;
  // e.g. bs.profile always applies before bs.* overrides). Every consumed
  // key is erased; whatever is left at the end is unknown and rejected.
  const auto bad = [](const std::string& key, const std::string& why) {
    throw std::runtime_error("scenario JSON key '" + key + "': " + why);
  };
  const auto take = [&](const std::string& key) -> std::optional<std::string> {
    const auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    std::string v = it->second;
    kv.erase(it);
    return v;
  };
  const auto parse_double = [&](const std::string& key,
                                const std::string& s) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size())
      bad(key, "malformed number '" + s + "'");
    return v;
  };
  const auto parse_int = [&](const std::string& key, const std::string& s) {
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size())
      bad(key, "malformed integer '" + s + "'");
    return static_cast<int>(v);
  };
  const auto parse_bool = [&](const std::string& key, const std::string& s) {
    if (s == "true") return true;
    if (s == "false") return false;
    bad(key, "expected 'true' or 'false', got '" + s + "'");
    return false;
  };
  const auto take_double = [&](const std::string& key, double& out) {
    if (const auto v = take(key)) out = parse_double(key, *v);
  };
  const auto take_int = [&](const std::string& key, int& out) {
    if (const auto v = take(key)) out = parse_int(key, *v);
  };
  const auto take_bool = [&](const std::string& key, bool& out) {
    if (const auto v = take(key)) out = parse_bool(key, *v);
  };

  const auto schema = take("schema");
  if (!schema) throw std::runtime_error("scenario JSON: missing 'schema' key");
  if (*schema != kSchemaName)
    throw std::runtime_error("scenario JSON: schema '" + *schema +
                             "' is not '" + kSchemaName + "'");

  ScenarioSpec spec;
  if (const auto v = take("name")) spec.name = *v;
  else throw std::runtime_error("scenario JSON: missing 'name' key");
  if (const auto v = take("description")) spec.description = *v;
  else throw std::runtime_error("scenario JSON: missing 'description' key");
  if (const auto v = take("paper_ref")) spec.paper_ref = *v;
  try {
    if (const auto v = take("route")) spec.route = route_from_wire_name(*v);
    if (const auto v = take("layout")) spec.layout = layout_from_name(*v);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("scenario JSON: ") + e.what());
  }
  take_double("speed_kmh", spec.speed_kmh);
  take_double("duration_s", spec.duration_s);
  take_double("time_compression", spec.time_compression);
  if (const auto v = take("seed")) {
    for (char c : *v)
      if (c < '0' || c > '9') bad("seed", "malformed integer '" + *v + "'");
    if (v->empty()) bad("seed", "empty integer");
    spec.seed = std::strtoull(v->c_str(), nullptr, 10);
  }

  // --- UE population: plain band, named-class shorthands, or generic
  // indexed classes; the forms are mutually exclusive beyond the plain
  // defaults (a file mixing them is contradictory, not mergeable).
  const auto ue_count = take("ue.count");
  take_double("ue.start_spread_m", spec.start_spread_m);
  const auto band_lo = take("ue.speed_lo_kmh");
  const auto band_hi = take("ue.speed_hi_kmh");
  bool any_shorthand = false;
  for (const auto& nc : kNamedClasses) {
    if (const auto v = take(nc.key)) {
      any_shorthand = true;
      const int count = parse_int(nc.key, *v);
      if (count < 0) bad(nc.key, "class count must be >= 0");
      if (count == 0) continue;
      sim::FleetSpeedClass c;
      c.name = nc.name;
      c.count = count;
      c.speed_lo_kmh = nc.lo_kmh;
      c.speed_hi_kmh = nc.hi_kmh;
      spec.classes.push_back(std::move(c));
    }
  }
  bool any_indexed = false;
  for (int i = 0;; ++i) {
    const std::string p = "ue.class." + std::to_string(i) + ".";
    const auto cname = take(p + "name");
    const auto ccount = take(p + "count");
    const auto clo = take(p + "speed_lo_kmh");
    const auto chi = take(p + "speed_hi_kmh");
    if (!cname && !ccount && !clo && !chi) break;
    if (!cname || !ccount || !clo || !chi)
      bad(p + "*", "a ue.class entry needs all of name/count/"
                   "speed_lo_kmh/speed_hi_kmh");
    any_indexed = true;
    sim::FleetSpeedClass c;
    c.name = *cname;
    c.count = parse_int(p + "count", *ccount);
    c.speed_lo_kmh = parse_double(p + "speed_lo_kmh", *clo);
    c.speed_hi_kmh = parse_double(p + "speed_hi_kmh", *chi);
    spec.classes.push_back(std::move(c));
  }
  if (any_shorthand && any_indexed)
    throw std::runtime_error(
        "scenario JSON: contradictory UE population — both named class "
        "shorthands (ue.pedestrian/...) and indexed ue.class.<i> entries");
  if (!spec.classes.empty() && (band_lo || band_hi))
    throw std::runtime_error(
        "scenario JSON: contradictory UE population — both a plain speed "
        "band (ue.speed_lo_kmh/ue.speed_hi_kmh) and speed classes");
  if (band_lo) spec.ue_speed_lo_kmh = parse_double("ue.speed_lo_kmh", *band_lo);
  if (band_hi) spec.ue_speed_hi_kmh = parse_double("ue.speed_hi_kmh", *band_hi);
  if (!spec.classes.empty()) {
    int sum = 0;
    for (const auto& c : spec.classes) sum += c.count;
    if (ue_count) {
      spec.ue_count = parse_int("ue.count", *ue_count);
      if (spec.ue_count != sum)
        throw std::runtime_error(
            "scenario JSON: ue.count " + std::to_string(spec.ue_count) +
            " contradicts the class counts (sum " + std::to_string(sum) + ")");
    } else {
      spec.ue_count = sum;
    }
  } else if (ue_count) {
    spec.ue_count = parse_int("ue.count", *ue_count);
  }

  // --- scripted fault windows: contiguous indices, all four keys each.
  for (int i = 0;; ++i) {
    const std::string p = "fault." + std::to_string(i) + ".";
    const auto kind = take(p + "kind");
    const auto start = take(p + "start_s");
    const auto dur = take(p + "duration_s");
    const auto mag = take(p + "magnitude");
    if (!kind && !start && !dur && !mag) break;
    if (!kind || !start || !dur || !mag)
      bad(p + "*",
          "a fault window needs all of kind/start_s/duration_s/magnitude");
    sim::FaultWindow w;
    try {
      w.kind = sim::fault_kind_from_name(*kind);
    } catch (const std::invalid_argument& e) {
      bad(p + "kind", e.what());
    }
    w.start_s = parse_double(p + "start_s", *start);
    w.duration_s = parse_double(p + "duration_s", *dur);
    w.magnitude = parse_double(p + "magnitude", *mag);
    spec.faults.push_back(w);
  }

  // --- random fault specs: same shape, six keys each.
  for (int i = 0;; ++i) {
    const std::string p = "rfault." + std::to_string(i) + ".";
    const auto kind = take(p + "kind");
    const auto gap = take(p + "mean_gap_s");
    const auto dlo = take(p + "duration_lo_s");
    const auto dhi = take(p + "duration_hi_s");
    const auto mlo = take(p + "magnitude_lo");
    const auto mhi = take(p + "magnitude_hi");
    if (!kind && !gap && !dlo && !dhi && !mlo && !mhi) break;
    if (!kind || !gap || !dlo || !dhi || !mlo || !mhi)
      bad(p + "*",
          "a random fault spec needs all of kind/mean_gap_s/duration_lo_s/"
          "duration_hi_s/magnitude_lo/magnitude_hi");
    sim::RandomFaultSpec r;
    try {
      r.kind = sim::fault_kind_from_name(*kind);
    } catch (const std::invalid_argument& e) {
      bad(p + "kind", e.what());
    }
    r.mean_gap_s = parse_double(p + "mean_gap_s", *gap);
    r.duration_lo_s = parse_double(p + "duration_lo_s", *dlo);
    r.duration_hi_s = parse_double(p + "duration_hi_s", *dhi);
    r.magnitude_lo = parse_double(p + "magnitude_lo", *mlo);
    r.magnitude_hi = parse_double(p + "magnitude_hi", *mhi);
    spec.rfaults.push_back(r);
  }

  // --- correlated-fault domain + cascade-resilience knobs.
  take_int("fault.domain_size", spec.fault_domain_size);
  take_double("fault.region_stagger_s", spec.region_stagger_s);
  take_int("fault.cascade_neighbor_radius", spec.cascade_neighbor_radius);
  take_double("resilience.load_ad_staleness_s", spec.load_ad_staleness_s);
  take_int("resilience.breaker_trip_k", spec.breaker_trip_k);
  take_double("resilience.breaker_cooldown_s", spec.breaker_cooldown_s);
  take_double("resilience.storm_jitter_frac", spec.storm_jitter_frac);

  // --- backhaul transport overrides.
  take_bool("backhaul.enabled", spec.backhaul.enabled);
  take_double("backhaul.base_latency_s", spec.backhaul.base_latency_s);
  take_double("backhaul.jitter_s", spec.backhaul.jitter_s);
  take_double("backhaul.loss_prob", spec.backhaul.loss_prob);
  take_double("backhaul.reorder_prob", spec.backhaul.reorder_prob);
  take_double("backhaul.reorder_extra_s", spec.backhaul.reorder_extra_s);
  take_double("backhaul.duplicate_prob", spec.backhaul.duplicate_prob);
  if (const auto v = take("backhaul.queue_capacity")) {
    const int q = parse_int("backhaul.queue_capacity", *v);
    if (q < 1) bad("backhaul.queue_capacity", "must be >= 1");
    spec.backhaul.queue_capacity = static_cast<std::size_t>(q);
  }
  take_double("backhaul.reverse_latency_scale",
              spec.backhaul.reverse_latency_scale);

  // --- BS capacity: profile preset first, field overrides on top.
  if (const auto v = take("bs.profile")) spec.bs_profile = *v;
  try {
    spec.bs_capacity = bs_profile_preset(spec.bs_profile);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("scenario JSON: ") + e.what());
  }
  take_bool("bs.enabled", spec.bs_capacity.enabled);
  take_int("bs.slots", spec.bs_capacity.slots);
  if (const auto v = take("bs.queue_capacity")) {
    const int q = parse_int("bs.queue_capacity", *v);
    if (q < 0) bad("bs.queue_capacity", "must be >= 0");
    spec.bs_capacity.queue_capacity = static_cast<std::size_t>(q);
  }
  take_double("bs.prep_service_s", spec.bs_capacity.prep_service_s);
  take_double("bs.ctx_service_s", spec.bs_capacity.ctx_service_s);
  take_double("bs.background_service_s",
              spec.bs_capacity.background_service_s);
  take_double("bs.admission_load_threshold",
              spec.bs_capacity.admission_load_threshold);
  take_double("bs.reject_backoff_hint_s",
              spec.bs_capacity.reject_backoff_hint_s);
  take_int("bs.admission_max_retries",
           spec.bs_capacity.admission_max_retries);

  // --- gates.
  take_double("gate.max_rem_failure_ratio",
              spec.gates.max_rem_failure_ratio);
  take_bool("gate.rem_le_legacy", spec.gates.rem_le_legacy);
  take_int("gate.min_legacy_handovers", spec.gates.min_legacy_handovers);

  if (!kv.empty()) {
    std::string keys;
    for (const auto& [k, _] : kv) {
      if (!keys.empty()) keys += ", ";
      keys += "'" + k + "'";
    }
    throw std::runtime_error("scenario JSON: unknown key(s) " + keys);
  }
  return spec;
}

ScenarioSpec read_scenario_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("read_scenario_json_file: cannot open " + path);
  try {
    return read_scenario_json(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

// ---------------------------------------------------------------------------
// canonical writer

void write_scenario_json(const ScenarioSpec& spec, std::ostream& os) {
  std::vector<std::pair<std::string, std::string>> out;
  const auto add = [&](const std::string& k, const std::string& v) {
    out.emplace_back(k, v);
  };
  add("schema", kSchemaName);
  add("name", spec.name);
  add("description", spec.description);
  add("paper_ref", spec.paper_ref);
  add("route", route_wire_name(spec.route));
  add("layout", layout_name(spec.layout));
  add("speed_kmh", fmt_double(spec.speed_kmh));
  add("duration_s", fmt_double(spec.duration_s));
  add("time_compression", fmt_double(spec.time_compression));
  add("seed", std::to_string(spec.seed));
  add("ue.count", std::to_string(spec.ue_count));
  add("ue.start_spread_m", fmt_double(spec.start_spread_m));
  if (spec.classes.empty()) {
    add("ue.speed_lo_kmh", fmt_double(spec.ue_speed_lo_kmh));
    add("ue.speed_hi_kmh", fmt_double(spec.ue_speed_hi_kmh));
  } else {
    for (std::size_t i = 0; i < spec.classes.size(); ++i) {
      const auto& c = spec.classes[i];
      const std::string p = "ue.class." + std::to_string(i) + ".";
      add(p + "name", c.name);
      add(p + "count", std::to_string(c.count));
      add(p + "speed_lo_kmh", fmt_double(c.speed_lo_kmh));
      add(p + "speed_hi_kmh", fmt_double(c.speed_hi_kmh));
    }
  }
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const auto& w = spec.faults[i];
    const std::string p = "fault." + std::to_string(i) + ".";
    add(p + "kind", sim::fault_kind_name(w.kind));
    add(p + "start_s", fmt_double(w.start_s));
    add(p + "duration_s", fmt_double(w.duration_s));
    add(p + "magnitude", fmt_double(w.magnitude));
  }
  for (std::size_t i = 0; i < spec.rfaults.size(); ++i) {
    const auto& r = spec.rfaults[i];
    const std::string p = "rfault." + std::to_string(i) + ".";
    add(p + "kind", sim::fault_kind_name(r.kind));
    add(p + "mean_gap_s", fmt_double(r.mean_gap_s));
    add(p + "duration_lo_s", fmt_double(r.duration_lo_s));
    add(p + "duration_hi_s", fmt_double(r.duration_hi_s));
    add(p + "magnitude_lo", fmt_double(r.magnitude_lo));
    add(p + "magnitude_hi", fmt_double(r.magnitude_hi));
  }
  // Domain / resilience knobs are emitted only off their defaults so
  // pre-existing scenarios re-canonicalize byte-identically.
  if (spec.fault_domain_size != 4)
    add("fault.domain_size", std::to_string(spec.fault_domain_size));
  if (spec.region_stagger_s != 0.5)
    add("fault.region_stagger_s", fmt_double(spec.region_stagger_s));
  if (spec.cascade_neighbor_radius != 2)
    add("fault.cascade_neighbor_radius",
        std::to_string(spec.cascade_neighbor_radius));
  if (spec.load_ad_staleness_s != 0.0)
    add("resilience.load_ad_staleness_s",
        fmt_double(spec.load_ad_staleness_s));
  if (spec.breaker_trip_k != 0)
    add("resilience.breaker_trip_k", std::to_string(spec.breaker_trip_k));
  if (spec.breaker_cooldown_s != 2.0)
    add("resilience.breaker_cooldown_s",
        fmt_double(spec.breaker_cooldown_s));
  if (spec.storm_jitter_frac != 0.0)
    add("resilience.storm_jitter_frac", fmt_double(spec.storm_jitter_frac));
  add("backhaul.enabled", fmt_bool(spec.backhaul.enabled));
  add("backhaul.base_latency_s", fmt_double(spec.backhaul.base_latency_s));
  add("backhaul.jitter_s", fmt_double(spec.backhaul.jitter_s));
  add("backhaul.loss_prob", fmt_double(spec.backhaul.loss_prob));
  add("backhaul.reorder_prob", fmt_double(spec.backhaul.reorder_prob));
  add("backhaul.reorder_extra_s", fmt_double(spec.backhaul.reorder_extra_s));
  add("backhaul.duplicate_prob", fmt_double(spec.backhaul.duplicate_prob));
  add("backhaul.queue_capacity",
      std::to_string(spec.backhaul.queue_capacity));
  add("backhaul.reverse_latency_scale",
      fmt_double(spec.backhaul.reverse_latency_scale));
  add("bs.profile", spec.bs_profile);
  add("bs.enabled", fmt_bool(spec.bs_capacity.enabled));
  add("bs.slots", std::to_string(spec.bs_capacity.slots));
  add("bs.queue_capacity", std::to_string(spec.bs_capacity.queue_capacity));
  add("bs.prep_service_s", fmt_double(spec.bs_capacity.prep_service_s));
  add("bs.ctx_service_s", fmt_double(spec.bs_capacity.ctx_service_s));
  add("bs.background_service_s",
      fmt_double(spec.bs_capacity.background_service_s));
  add("bs.admission_load_threshold",
      fmt_double(spec.bs_capacity.admission_load_threshold));
  add("bs.reject_backoff_hint_s",
      fmt_double(spec.bs_capacity.reject_backoff_hint_s));
  add("bs.admission_max_retries",
      std::to_string(spec.bs_capacity.admission_max_retries));
  add("gate.max_rem_failure_ratio",
      fmt_double(spec.gates.max_rem_failure_ratio));
  add("gate.rem_le_legacy", fmt_bool(spec.gates.rem_le_legacy));
  add("gate.min_legacy_handovers",
      std::to_string(spec.gates.min_legacy_handovers));

  const auto escaped = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e.push_back('\\');
      e.push_back(c);
    }
    return e;
  };
  os << "{\n";
  for (std::size_t i = 0; i < out.size(); ++i)
    os << "  \"" << escaped(out[i].first) << "\": \""
       << escaped(out[i].second) << "\"" << (i + 1 < out.size() ? "," : "")
       << "\n";
  os << "}\n";
}

std::string write_scenario_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  write_scenario_json(spec, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// compiler

namespace {

/// Deployment-geometry families on top of the route preset. rail_linear
/// leaves make_scenario's corridor untouched; the other two reshape the
/// grid and propagation to the family SCENARIOS.md documents.
void apply_layout(trace::Scenario& s, Layout l) {
  auto& d = s.deployment;
  auto& p = s.propagation;
  switch (l) {
    case Layout::kRailLinear:
      break;
    case Layout::kUrbanCanyon:
      // Street-canyon macro grid: sites every few blocks, close to the
      // road, heavy building shadowing with short decorrelation, frequent
      // short canyon blockages standing in for intersections and trucks.
      d.site_spacing_mean_m = std::min(d.site_spacing_mean_m, 600.0);
      d.site_spacing_jitter_m = 0.25 * d.site_spacing_mean_m;
      d.site_offset_min_m = 20.0;
      d.site_offset_max_m = 120.0;
      d.colocated_second_cell_prob = 0.6;
      d.primary_missing_prob = 0.12;
      d.holes_per_km = 0.05;
      d.hole_len_min_m = 40.0;
      d.hole_len_max_m = 150.0;
      d.tx_power_dbm = 40.0;
      p.pathloss_exponent = 3.8;
      p.shadowing_sigma_db = 6.0;
      p.shadowing_decorr_m = 40.0;
      p.fading_sigma_db = 2.5;
      break;
    case Layout::kDenseSmallCell:
      // Low-power small cells a couple hundred metres apart, almost all
      // co-sited with a second carrier; clean below-rooftop propagation,
      // no blanket holes (outages come from capacity, not coverage).
      d.site_spacing_mean_m = std::min(d.site_spacing_mean_m, 220.0);
      d.site_spacing_jitter_m = 50.0;
      d.site_offset_min_m = 10.0;
      d.site_offset_max_m = 60.0;
      d.colocated_second_cell_prob = 0.9;
      d.primary_missing_prob = 0.02;
      d.holes_per_km = 0.0;
      d.tx_power_dbm = 30.0;
      d.secondary_bandwidths_hz = {10e6, 20e6};
      p.pathloss_exponent = 3.2;
      p.shadowing_sigma_db = 4.0;
      p.shadowing_decorr_m = 60.0;
      break;
  }
}

}  // namespace

CompiledScenario compile(const ScenarioSpec& spec,
                         const CompileOverrides& overrides) {
  const std::string ctx = "scenario '" + spec.name + "': ";
  const auto reject = [&](const std::string& why) -> void {
    throw std::invalid_argument(ctx + why);
  };

  if (spec.name.empty()) reject("name must be non-empty");
  for (char c : spec.name)
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_'))
      reject("name must match [a-z0-9_]+ (got '" + spec.name + "')");
  if (spec.description.empty()) reject("description must be non-empty");

  const double tc =
      spec.time_compression * overrides.extra_time_compression.value_or(1.0);
  if (!(tc > 0.0)) reject("time_compression must be > 0");
  const double duration_raw = overrides.duration_s.value_or(spec.duration_s);
  if (!(duration_raw > 0.0)) reject("duration_s must be > 0");
  const double duration_s = duration_raw / tc;

  const auto check_speed = [&](const std::string& what, double v) {
    if (!(v > 0.0 && v <= kMaxSpeedKmh))
      reject(what + " " + fmt_double(v) + " km/h outside (0, " +
             fmt_double(kMaxSpeedKmh) + "]");
  };
  check_speed("speed_kmh", spec.speed_kmh);

  int ue_count = spec.ue_count;
  if (overrides.ue_count) {
    if (!spec.classes.empty())
      reject("a ue_count override is not valid for a class-mix population "
             "(the classes pin their own counts)");
    ue_count = *overrides.ue_count;
  }
  if (ue_count < 1) reject("ue.count must be >= 1");
  if (!(spec.start_spread_m >= 0.0)) reject("ue.start_spread_m must be >= 0");

  double max_speed_kmh = spec.speed_kmh;
  if (spec.classes.empty()) {
    check_speed("ue.speed_lo_kmh", spec.ue_speed_lo_kmh);
    check_speed("ue.speed_hi_kmh", spec.ue_speed_hi_kmh);
    if (!(spec.ue_speed_lo_kmh <= spec.ue_speed_hi_kmh))
      reject("ue.speed_lo_kmh must be <= ue.speed_hi_kmh");
    if (ue_count > 1)
      max_speed_kmh = std::max(max_speed_kmh, spec.ue_speed_hi_kmh);
  } else {
    int sum = 0;
    for (const auto& c : spec.classes) {
      const std::string what = "class '" + c.name + "'";
      if (c.count < 0) reject(what + " count must be >= 0");
      check_speed(what + " speed_lo_kmh", c.speed_lo_kmh);
      check_speed(what + " speed_hi_kmh", c.speed_hi_kmh);
      if (!(c.speed_lo_kmh <= c.speed_hi_kmh))
        reject(what + " speed_lo_kmh must be <= speed_hi_kmh");
      sum += c.count;
      max_speed_kmh = std::max(max_speed_kmh, c.speed_hi_kmh);
    }
    if (sum != ue_count)
      reject("class counts sum to " + std::to_string(sum) +
             " but ue.count is " + std::to_string(ue_count));
  }

  CompiledScenario out;
  out.name = spec.name;
  out.description = spec.description;
  out.paper_ref = spec.paper_ref;
  out.seed = spec.seed;
  out.gates = spec.gates;
  if (!(out.gates.max_rem_failure_ratio >= 0.0 &&
        out.gates.max_rem_failure_ratio <= 1.0))
    reject("gate.max_rem_failure_ratio must be in [0, 1]");
  if (out.gates.min_legacy_handovers < 0)
    reject("gate.min_legacy_handovers must be >= 0");

  out.scenario = trace::make_scenario(spec.route, spec.speed_kmh, duration_s);
  apply_layout(out.scenario, spec.layout);

  auto& sc = out.scenario.sim;
  sc.fleet_size = ue_count;
  sc.fleet.speed_min_kmh = spec.ue_speed_lo_kmh;
  sc.fleet.speed_max_kmh = spec.ue_speed_hi_kmh;
  sc.fleet.start_spread_m = spec.start_spread_m;
  sc.fleet.classes = spec.classes;

  // The corridor must outlast the fastest UE for the whole (compressed)
  // horizon plus the start spread — recomputed after layout shaping since
  // the terminal padding is two (possibly reshaped) site spacings.
  out.scenario.deployment.route_len_m =
      common::kmh_to_mps(max_speed_kmh) * duration_s + spec.start_spread_m +
      2.0 * out.scenario.deployment.site_spacing_mean_m;

  // Fault timeline: scripted windows and random-spec arrival/duration
  // parameters live on the *uncompressed* timeline and are divided by the
  // compression factor here. Magnitudes are never scaled — they are
  // protocol-level quantities (loss probabilities, extra latencies), not
  // timeline positions.
  for (auto w : spec.faults) {
    w.start_s /= tc;
    w.duration_s /= tc;
    sc.faults.windows.push_back(w);
  }
  for (auto r : spec.rfaults) {
    r.mean_gap_s /= tc;
    r.duration_lo_s /= tc;
    r.duration_hi_s /= tc;
    sc.faults.random.push_back(r);
  }
  // Correlated-fault domain knobs: the onset stagger is a timeline
  // position, so it compresses with the windows; domain size and the
  // cascade radius are topology, never scaled.
  if (spec.fault_domain_size < 1) reject("fault.domain_size must be >= 1");
  if (!(spec.region_stagger_s >= 0.0))
    reject("fault.region_stagger_s must be >= 0");
  if (spec.cascade_neighbor_radius < 0)
    reject("fault.cascade_neighbor_radius must be >= 0");
  sc.faults.domain_size = spec.fault_domain_size;
  sc.faults.region_stagger_s = spec.region_stagger_s / tc;
  sc.faults.cascade_neighbor_radius = spec.cascade_neighbor_radius;
  if (!sc.faults.empty()) {
    // Reuse FaultInjector's reject-with-context validation (overlap,
    // bad magnitudes, ...) at compile time, with the scenario named. The
    // throwaway injector draws from a fixed RNG and is discarded.
    try {
      sim::FaultInjector probe(sc.faults, duration_s, common::Rng(0));
    } catch (const std::invalid_argument& e) {
      reject(e.what());
    }
  }

  sc.backhaul = spec.backhaul;
  if (sc.backhaul.enabled) {
    try {
      net::BackhaulNetwork probe(sc.backhaul, common::Rng(0));
    } catch (const std::invalid_argument& e) {
      reject(e.what());
    }
  }

  sc.bs_capacity = spec.bs_capacity;
  if (sc.bs_capacity.enabled) {
    try {
      sim::validate(sc.bs_capacity);
    } catch (const std::invalid_argument& e) {
      reject(e.what());
    }
  }

  // Cascade-resilience knobs. The staleness bound is an advertisement
  // shelf life, not a timeline position — protocol-level, never scaled
  // (like fault magnitudes); same for the breaker cool-down.
  if (!(spec.load_ad_staleness_s >= 0.0))
    reject("resilience.load_ad_staleness_s must be >= 0");
  if (spec.breaker_trip_k < 0)
    reject("resilience.breaker_trip_k must be >= 0");
  if (spec.breaker_trip_k > 0 && !(spec.breaker_cooldown_s > 0.0))
    reject("resilience.breaker_cooldown_s must be > 0 when breakers are "
           "enabled");
  if (!(spec.storm_jitter_frac >= 0.0))
    reject("resilience.storm_jitter_frac must be >= 0");
  sc.load_ad_staleness_s = spec.load_ad_staleness_s;
  sc.breaker_trip_k = spec.breaker_trip_k;
  sc.breaker_cooldown_s = spec.breaker_cooldown_s;
  sc.storm_jitter_frac = spec.storm_jitter_frac;
  return out;
}

// ---------------------------------------------------------------------------
// digest

std::vector<std::pair<std::string, std::string>> digest_fields(
    const CompiledScenario& c) {
  std::vector<std::pair<std::string, std::string>> f;
  const auto add = [&](const std::string& k, const std::string& v) {
    f.emplace_back(k, v);
  };
  const auto add_d = [&](const std::string& k, double v) {
    add(k, fmt_double(v));
  };
  const auto add_i = [&](const std::string& k, long long v) {
    add(k, std::to_string(v));
  };
  add("name", c.name);
  add("seed", std::to_string(c.seed));
  add("route", route_wire_name(c.scenario.route));
  add_d("speed_kmh", c.scenario.speed_kmh);

  const auto& d = c.scenario.deployment;
  add_d("deploy.route_len_m", d.route_len_m);
  add_d("deploy.site_spacing_mean_m", d.site_spacing_mean_m);
  add_d("deploy.site_spacing_jitter_m", d.site_spacing_jitter_m);
  add_d("deploy.site_offset_min_m", d.site_offset_min_m);
  add_d("deploy.site_offset_max_m", d.site_offset_max_m);
  add_d("deploy.colocated_second_cell_prob", d.colocated_second_cell_prob);
  add_d("deploy.primary_missing_prob", d.primary_missing_prob);
  for (std::size_t i = 0; i < d.channels.size(); ++i) {
    const std::string p = "deploy.channel." + std::to_string(i);
    add_i(p + ".id", d.channels[i].first);
    add_d(p + ".carrier_hz", d.channels[i].second);
  }
  add_d("deploy.primary_bandwidth_hz", d.primary_bandwidth_hz);
  for (std::size_t i = 0; i < d.secondary_bandwidths_hz.size(); ++i)
    add_d("deploy.secondary_bandwidth_hz." + std::to_string(i),
          d.secondary_bandwidths_hz[i]);
  add_d("deploy.holes_per_km", d.holes_per_km);
  add_d("deploy.hole_len_min_m", d.hole_len_min_m);
  add_d("deploy.hole_len_max_m", d.hole_len_max_m);
  add_d("deploy.tx_power_dbm", d.tx_power_dbm);

  const auto& p = c.scenario.propagation;
  add_d("prop.pathloss_exponent", p.pathloss_exponent);
  add_d("prop.ref_loss_db", p.ref_loss_db);
  add_d("prop.shadowing_sigma_db", p.shadowing_sigma_db);
  add_d("prop.shadowing_decorr_m", p.shadowing_decorr_m);
  add_d("prop.per_cell_shadow_sigma_db", p.per_cell_shadow_sigma_db);
  add_d("prop.per_cell_shadow_decorr_m", p.per_cell_shadow_decorr_m);
  add_d("prop.hole_extra_loss_db", p.hole_extra_loss_db);
  add_d("prop.noise_floor_dbm", p.noise_floor_dbm);
  add_d("prop.fading_sigma_db", p.fading_sigma_db);
  add_d("prop.dd_residual_sigma_db", p.dd_residual_sigma_db);

  const auto& m = c.scenario.policy_mix;
  add_d("mix.proactive_a3_prob", m.proactive_a3_prob);
  add_d("mix.proactive_offset_lo", m.proactive_offset_lo);
  add_d("mix.proactive_offset_hi", m.proactive_offset_hi);
  add_d("mix.normal_offset_lo", m.normal_offset_lo);
  add_d("mix.normal_offset_hi", m.normal_offset_hi);
  add_d("mix.load_balance_a4_prob", m.load_balance_a4_prob);
  add_d("mix.a4_threshold_lo", m.a4_threshold_lo);
  add_d("mix.a4_threshold_hi", m.a4_threshold_hi);
  add_d("mix.a2_guard_lo", m.a2_guard_lo);
  add_d("mix.a2_guard_hi", m.a2_guard_hi);
  add_d("mix.intra_ttt_s", m.intra_ttt_s);
  add_d("mix.inter_ttt_s", m.inter_ttt_s);

  const auto& s = c.scenario.sim;
  add_d("sim.speed_kmh", s.speed_kmh);
  add_d("sim.duration_s", s.duration_s);
  add_d("sim.tick_s", s.tick_s);
  add_d("sim.qout_snr_db", s.qout_snr_db);
  add_i("sim.n310", s.n310);
  add_d("sim.t310_s", s.t310_s);
  add_i("sim.n311", s.n311);
  add_d("sim.qin_margin_db", s.qin_margin_db);
  add_d("sim.min_coverage_rsrp_dbm", s.min_coverage_rsrp_dbm);
  add_d("sim.min_connect_snr_db", s.min_connect_snr_db);
  add_d("sim.reestablish_s", s.reestablish_s);
  add_d("sim.t304_reestablish_s", s.t304_reestablish_s);
  add_i("sim.uplink_attempts", s.uplink_attempts);
  add_i("sim.downlink_attempts", s.downlink_attempts);
  add_d("sim.retry_spacing_s", s.retry_spacing_s);
  add_i("sim.report_max_retries", s.report_max_retries);
  add_d("sim.report_retry_backoff_s", s.report_retry_backoff_s);
  add_d("sim.decision_proc_s", s.decision_proc_s);
  add_d("sim.ho_interruption_s", s.ho_interruption_s);
  add_d("sim.loop_window_s", s.loop_window_s);
  add_d("sim.post_ho_suppress_s", s.post_ho_suppress_s);
  add_d("sim.prep_timeout_s", s.prep_timeout_s);
  add_i("sim.prep_max_retries", s.prep_max_retries);
  add_d("sim.ctx_fetch_timeout_s", s.ctx_fetch_timeout_s);
  add_i("sim.ctx_fetch_max_retries", s.ctx_fetch_max_retries);
  add_d("sim.ctx_degraded_penalty_s", s.ctx_degraded_penalty_s);
  add_i("sim.engine", static_cast<int>(s.engine));
  add_i("sim.fleet_size", s.fleet_size);
  add_d("fleet.speed_min_kmh", s.fleet.speed_min_kmh);
  add_d("fleet.speed_max_kmh", s.fleet.speed_max_kmh);
  add_d("fleet.start_spread_m", s.fleet.start_spread_m);
  for (std::size_t i = 0; i < s.fleet.classes.size(); ++i) {
    const auto& cls = s.fleet.classes[i];
    const std::string cp = "fleet.class." + std::to_string(i);
    add(cp + ".name", cls.name);
    add_i(cp + ".count", cls.count);
    add_d(cp + ".speed_lo_kmh", cls.speed_lo_kmh);
    add_d(cp + ".speed_hi_kmh", cls.speed_hi_kmh);
  }

  for (std::size_t i = 0; i < s.faults.windows.size(); ++i) {
    const auto& w = s.faults.windows[i];
    const std::string fp = "fault." + std::to_string(i);
    add(fp + ".kind", sim::fault_kind_name(w.kind));
    add_d(fp + ".start_s", w.start_s);
    add_d(fp + ".duration_s", w.duration_s);
    add_d(fp + ".magnitude", w.magnitude);
  }
  for (std::size_t i = 0; i < s.faults.random.size(); ++i) {
    const auto& r = s.faults.random[i];
    const std::string rp = "rfault." + std::to_string(i);
    add(rp + ".kind", sim::fault_kind_name(r.kind));
    add_d(rp + ".mean_gap_s", r.mean_gap_s);
    add_d(rp + ".duration_lo_s", r.duration_lo_s);
    add_d(rp + ".duration_hi_s", r.duration_hi_s);
    add_d(rp + ".magnitude_lo", r.magnitude_lo);
    add_d(rp + ".magnitude_hi", r.magnitude_hi);
  }

  // Domain knobs only matter to (and are only digested for) schedules
  // that fire a correlated fault; resilience knobs appear only off their
  // defaults. Pre-existing scen_* goldens stay byte-identical.
  {
    const auto uses_kind = [&](sim::FaultKind k) {
      for (const auto& w : s.faults.windows)
        if (w.kind == k) return true;
      for (const auto& r : s.faults.random)
        if (r.kind == k) return true;
      return false;
    };
    if (uses_kind(sim::FaultKind::kRegionOutage) ||
        uses_kind(sim::FaultKind::kCascadeOverload)) {
      add_i("fault.domain_size", s.faults.domain_size);
      add_d("fault.region_stagger_s", s.faults.region_stagger_s);
      add_i("fault.cascade_neighbor_radius",
            s.faults.cascade_neighbor_radius);
    }
  }
  if (s.load_ad_staleness_s != 0.0)
    add_d("resilience.load_ad_staleness_s", s.load_ad_staleness_s);
  if (s.breaker_trip_k != 0) {
    add_i("resilience.breaker_trip_k", s.breaker_trip_k);
    add_d("resilience.breaker_cooldown_s", s.breaker_cooldown_s);
  }
  if (s.storm_jitter_frac != 0.0)
    add_d("resilience.storm_jitter_frac", s.storm_jitter_frac);

  const auto& b = s.backhaul;
  add("backhaul.enabled", fmt_bool(b.enabled));
  add_d("backhaul.base_latency_s", b.base_latency_s);
  add_d("backhaul.jitter_s", b.jitter_s);
  add_d("backhaul.loss_prob", b.loss_prob);
  add_d("backhaul.reorder_prob", b.reorder_prob);
  add_d("backhaul.reorder_extra_s", b.reorder_extra_s);
  add_d("backhaul.duplicate_prob", b.duplicate_prob);
  add_i("backhaul.queue_capacity",
        static_cast<long long>(b.queue_capacity));
  add_d("backhaul.reverse_latency_scale", b.reverse_latency_scale);

  const auto& bs = s.bs_capacity;
  add("bs.enabled", fmt_bool(bs.enabled));
  add_i("bs.slots", bs.slots);
  add_i("bs.queue_capacity", static_cast<long long>(bs.queue_capacity));
  add_d("bs.prep_service_s", bs.prep_service_s);
  add_d("bs.ctx_service_s", bs.ctx_service_s);
  add_d("bs.background_service_s", bs.background_service_s);
  add_d("bs.admission_load_threshold", bs.admission_load_threshold);
  add_d("bs.reject_backoff_hint_s", bs.reject_backoff_hint_s);
  add_i("bs.admission_max_retries", bs.admission_max_retries);

  add_d("gate.max_rem_failure_ratio", c.gates.max_rem_failure_ratio);
  add("gate.rem_le_legacy", fmt_bool(c.gates.rem_le_legacy));
  add_i("gate.min_legacy_handovers", c.gates.min_legacy_handovers);
  return f;
}

// ---------------------------------------------------------------------------
// library access

std::vector<std::string> list_scenario_names(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec)
    throw std::runtime_error("list_scenario_names: cannot read directory " +
                             dir + ": " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const fs::path p = entry.path();
    if (p.extension() != ".json") continue;
    names.push_back(p.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

ScenarioSpec load_scenario(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name + ".json";
  ScenarioSpec spec = read_scenario_json_file(path);
  if (spec.name != name)
    throw std::runtime_error(path + ": name field '" + spec.name +
                             "' does not match the file basename '" + name +
                             "'");
  return spec;
}

}  // namespace rem::scenario
