#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rem::common {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) throw std::runtime_error("Summary::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::runtime_error("Summary::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Summary::percentile(double p) const {
  if (samples_.empty())
    throw std::runtime_error("Summary::percentile on empty set");
  ensure_sorted();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Summary::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<CdfPoint> empirical_cdf(const std::vector<double>& samples,
                                    std::size_t num_points) {
  if (samples.empty() || num_points == 0) return {};
  Summary s;
  s.add_all(samples);
  const double lo = s.min();
  const double hi = s.max();
  std::vector<CdfPoint> out;
  out.reserve(num_points);
  if (hi <= lo) {
    out.push_back({lo, 1.0});
    return out;
  }
  for (std::size_t i = 0; i < num_points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(num_points - 1);
    out.push_back({x, s.cdf_at(x)});
  }
  return out;
}

std::string format_cdf(const std::vector<CdfPoint>& cdf,
                       const std::string& value_label,
                       const std::string& indent) {
  std::ostringstream os;
  os << indent << value_label << "  CDF\n";
  for (const auto& p : cdf) {
    os << indent << p.value << "  " << p.fraction << "\n";
  }
  return os.str();
}

}  // namespace rem::common
