#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace rem::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_threads();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn) {
  if (num_threads == 0) num_threads = ThreadPool::default_threads();
  if (n <= 1 || num_threads <= 1) {
    // Same contract as the pooled path: every index runs, then the first
    // failure is rethrown.
    std::exception_ptr serial_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!serial_error) serial_error = std::current_exception();
      }
    }
    if (serial_error) std::rethrow_exception(serial_error);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  {
    ThreadPool pool(std::min(num_threads, n));
    for (std::size_t t = 0; t < pool.num_threads(); ++t) pool.submit(drain);
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rem::common
