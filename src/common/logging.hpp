// Minimal leveled logger.
//
// The simulator and benches are chatty only when asked; default level is
// kWarn so test output stays clean. The level is atomic and lines are
// emitted with a single stream write, so parallel scenario workers may log
// concurrently (lines never interleave mid-line, but their order across
// threads is unspecified).
#pragma once

#include <sstream>
#include <string>

namespace rem::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Both functions
/// are thread-safe (one relaxed atomic); changing the level mid-run
/// affects subsequent messages only.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level prefix (no-op below threshold).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace rem::common
