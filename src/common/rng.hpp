// Deterministic random number generation.
//
// All stochastic components (channel fading, shadowing, message loss, trace
// synthesis) draw from an explicitly seeded Rng so that every experiment in
// bench/ is exactly reproducible. Components never construct their own
// std::random_device.
#pragma once

#include <cstdint>
#include <random>
#include <complex>
#include <vector>

namespace rem::common {

/// Thin wrapper over a 64-bit Mersenne Twister with typed draw helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to `stddev`.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Circularly-symmetric complex Gaussian with total variance
  /// `variance` (i.e. E[|x|^2] = variance).
  std::complex<double> complex_gaussian(double variance = 1.0) {
    const double s = std::sqrt(variance / 2.0);
    return {gaussian(0.0, s), gaussian(0.0, s)};
  }

  /// Bernoulli trial.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with mean `mean`.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Poisson with mean `mean`.
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t discrete(const std::vector<double>& weights) {
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Derive an independent child stream; used to give each subsystem its
  /// own stream so adding draws in one does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rem::common
