// Descriptive statistics and empirical CDFs for the evaluation harness.
//
// Not thread-safe: a Summary belongs to one thread (or one seed's run).
// Even const queries mutate the lazily sorted cache, so concurrent readers
// race — the seed-parallel runner keeps one Summary per seed and merges
// after the pool drains. For lock-free aggregation across threads use
// obs::Histogram instead (fixed buckets, relaxed atomics).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rem::common {

/// Accumulates scalar samples and answers summary queries. Samples are kept
/// so percentiles/CDFs are exact (datasets here are at most a few million
/// points).
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by linear interpolation, p in [0,100].
  /// Precondition: !empty() — mean/stddev/min/max/percentile on an empty
  /// Summary return 0 rather than trap; callers gate on empty().
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples <= x (empirical CDF evaluated at x).
  double cdf_at(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// A (value, cumulative fraction) pair of an empirical CDF.
struct CdfPoint {
  double value;
  double fraction;  // in [0,1]
};

/// Evaluate the empirical CDF of `samples` on `num_points` evenly spaced
/// values between min and max. Returns an empty vector for empty input.
std::vector<CdfPoint> empirical_cdf(const std::vector<double>& samples,
                                    std::size_t num_points = 50);

/// Render a CDF as aligned text rows ("value fraction") for bench output.
std::string format_cdf(const std::vector<CdfPoint>& cdf,
                       const std::string& value_label,
                       const std::string& indent = "  ");

}  // namespace rem::common
