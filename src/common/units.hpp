// Physical units and dB arithmetic used across REM.
//
// Everything in the library stores SI units (Hz, seconds, meters, watts).
// dB/dBm are *presentation* and *configuration* forms, converted at the edge
// through the helpers here. Keeping one conversion point avoids the classic
// power-vs-amplitude factor-of-2 bugs.
#pragma once

#include <cmath>
#include <cstdint>

namespace rem::common {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Convert a linear power ratio to decibels.
double lin_to_db(double linear);

/// Convert decibels to a linear power ratio.
double db_to_lin(double db);

/// Convert a power in watts to dBm.
double watt_to_dbm(double watt);

/// Convert dBm to watts.
double dbm_to_watt(double dbm);

/// Convert km/h to m/s.
constexpr double kmh_to_mps(double kmh) { return kmh / 3.6; }

/// Convert m/s to km/h.
constexpr double mps_to_kmh(double mps) { return mps * 3.6; }

/// Maximum Doppler shift [Hz] for a client moving at `speed_mps` under
/// carrier frequency `carrier_hz` (nu_max = v*f/c, §2 of the paper).
double max_doppler_hz(double speed_mps, double carrier_hz);

/// OFDM coherence time approximation Tc ≈ 1/nu_max [s] (§2). Returns +inf
/// for a static client.
double coherence_time_s(double speed_mps, double carrier_hz);

/// Carrier wavelength [m].
double wavelength_m(double carrier_hz);

/// Shannon capacity C = B log2(1 + SNR) [bit/s]; `snr_linear` is a power
/// ratio. Used by REM's SNR-based load-balancing replacement (§5.3).
double shannon_capacity_bps(double bandwidth_hz, double snr_linear);

}  // namespace rem::common
