#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace rem::common {
namespace {
// Atomic so parallel scenario workers can read the level while a test or
// bench main() adjusts it, without a data race.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  // Build the full line first so concurrent writers cannot interleave
  // mid-line on stderr.
  std::string line;
  line.reserve(msg.size() + 16);
  line.append("[").append(level_name(level)).append("] ").append(msg).append(
      "\n");
  std::cerr << line;
}

}  // namespace rem::common
