// A small fixed-size worker pool for embarrassingly parallel bench work.
//
// The scenario runner forks an independent Rng per seed, so seeds can run on
// any worker in any order; determinism is recovered by merging results in
// seed order afterwards. The pool is deliberately minimal: submit closures,
// wait for drain, join on destruction. parallel_for is the common entry
// point — it hands out indices through an atomic counter so workers
// self-balance across uneven seed costs.
//
// Thread safety: submit() may be called from any thread, including from
// inside a running job; wait_idle() belongs to one coordinating thread at
// a time. default_threads() is hardware concurrency — the bench harness
// layers the REM_BENCH_THREADS override on top (bench::bench_threads(),
// knob table in OBSERVABILITY.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rem::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 means default_threads()).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not throw (wrap exceptions yourself —
  /// parallel_for does).
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency, clamped to at least 1.
  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: job or stop
  std::condition_variable idle_cv_;   ///< signals waiters: drained
  std::size_t active_ = 0;            ///< jobs currently executing
  bool stop_ = false;
};

/// Run fn(0), ..., fn(n-1) across up to `num_threads` workers and return
/// when all calls finished. Indices are claimed dynamically so uneven work
/// self-balances. num_threads <= 1 (or n <= 1) degrades to a plain serial
/// loop on the calling thread. The first exception thrown by any fn is
/// rethrown here after all indices complete.
void parallel_for(std::size_t n, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace rem::common
