#include "common/units.hpp"

#include <limits>

namespace rem::common {

double lin_to_db(double linear) { return 10.0 * std::log10(linear); }

double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

double watt_to_dbm(double watt) { return lin_to_db(watt) + 30.0; }

double dbm_to_watt(double dbm) { return db_to_lin(dbm - 30.0); }

double max_doppler_hz(double speed_mps, double carrier_hz) {
  return speed_mps * carrier_hz / kSpeedOfLight;
}

double coherence_time_s(double speed_mps, double carrier_hz) {
  const double nu_max = max_doppler_hz(speed_mps, carrier_hz);
  if (nu_max <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / nu_max;
}

double wavelength_m(double carrier_hz) { return kSpeedOfLight / carrier_hz; }

double shannon_capacity_bps(double bandwidth_hz, double snr_linear) {
  return bandwidth_hz * std::log2(1.0 + snr_linear);
}

}  // namespace rem::common
