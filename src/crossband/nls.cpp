#include "crossband/nls.hpp"

#include <cmath>
#include <limits>
#include <numbers>

namespace rem::crossband {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
using cd = std::complex<double>;
}  // namespace

std::vector<cd> nls_steering(double tau, std::size_t m, double df) {
  std::vector<cd> v(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) * df * tau;
    v[k] = cd(std::cos(ang), std::sin(ang));
  }
  return v;
}

std::vector<NlsPath> nls_matching_pursuit(const std::vector<cd>& h,
                                          double df, std::size_t max_paths,
                                          std::size_t oversample) {
  const std::size_t m = h.size();
  std::vector<NlsPath> paths;
  std::vector<cd> residual = h;
  const std::size_t grid_points = m * oversample;
  const double tau_max = 1.0 / df;
  for (std::size_t p = 0; p < max_paths; ++p) {
    double best_tau = 0.0;
    cd best_a(0, 0);
    double best_score = -1.0;
    for (std::size_t g = 0; g < grid_points; ++g) {
      const double tau = tau_max * static_cast<double>(g) /
                         static_cast<double>(grid_points);
      const auto s = nls_steering(tau, m, df);
      cd corr(0, 0);
      for (std::size_t k = 0; k < m; ++k)
        corr += residual[k] * std::conj(s[k]);
      if (std::norm(corr) > best_score) {
        best_score = std::norm(corr);
        best_tau = tau;
        best_a = corr / static_cast<double>(m);
      }
    }
    if (std::abs(best_a) < 1e-6) break;
    paths.push_back({best_a, best_tau});
    const auto s = nls_steering(best_tau, m, df);
    for (std::size_t k = 0; k < m; ++k) residual[k] -= best_a * s[k];
  }
  return paths;
}

void nls_refine(std::vector<NlsPath>& paths, const std::vector<cd>& h,
                double df, std::size_t iters, std::size_t oversample) {
  if (paths.empty()) return;
  const std::size_t m = h.size();
  const double tau_max = 1.0 / df;
  const double tau_step0 =
      tau_max / static_cast<double>(m * oversample);
  for (std::size_t it = 0; it < iters; ++it) {
    const std::size_t p = it % paths.size();
    std::vector<cd> r = h;
    for (std::size_t q = 0; q < paths.size(); ++q) {
      if (q == p) continue;
      const auto s = nls_steering(paths[q].delay_s, m, df);
      for (std::size_t k = 0; k < m; ++k) r[k] -= paths[q].amplitude * s[k];
    }
    const double step =
        tau_step0 / (1.0 + static_cast<double>(it) /
                               static_cast<double>(paths.size()));
    double best_tau = paths[p].delay_s;
    cd best_a = paths[p].amplitude;
    double best_err = std::numeric_limits<double>::infinity();
    for (int d = -2; d <= 2; ++d) {
      double tau = paths[p].delay_s + static_cast<double>(d) * step;
      if (tau < 0) tau += tau_max;
      if (tau >= tau_max) tau -= tau_max;
      const auto s = nls_steering(tau, m, df);
      cd corr(0, 0);
      for (std::size_t k = 0; k < m; ++k) corr += r[k] * std::conj(s[k]);
      const cd a = corr / static_cast<double>(m);
      double err = 0.0;
      for (std::size_t k = 0; k < m; ++k) err += std::norm(r[k] - a * s[k]);
      if (err < best_err) {
        best_err = err;
        best_tau = tau;
        best_a = a;
      }
    }
    paths[p].delay_s = best_tau;
    paths[p].amplitude = best_a;
  }
}

std::vector<cd> nls_evaluate(const std::vector<NlsPath>& paths,
                             std::size_t m, double df) {
  std::vector<cd> h(m, cd(0, 0));
  for (const auto& p : paths) {
    const auto s = nls_steering(p.delay_s, m, df);
    for (std::size_t k = 0; k < m; ++k) h[k] += p.amplitude * s[k];
  }
  return h;
}

}  // namespace rem::crossband
