#include "crossband/mimo.hpp"

#include <span>

namespace rem::crossband {

MimoOutput MimoRemEstimator::estimate(const MimoInput& in) {
  MimoOutput out;
  // All antennas share the grid shape, so one batched call factorizes them
  // in a single block-swept Jacobi pass (per-antenna results identical to
  // looping estimate()).
  RemSvdEstimator est(cfg_);
  out.per_antenna =
      est.estimate_batch(std::span<const CrossbandInput>(in.antennas));
  for (const auto& o : out.per_antenna) out.mrc_gain += o.mean_gain;
  return out;
}

}  // namespace rem::crossband
