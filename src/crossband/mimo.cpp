#include "crossband/mimo.hpp"

namespace rem::crossband {

MimoOutput MimoRemEstimator::estimate(const MimoInput& in) {
  MimoOutput out;
  out.per_antenna.reserve(in.antennas.size());
  for (const auto& ant : in.antennas) {
    RemSvdEstimator est(cfg_);
    out.per_antenna.push_back(est.estimate(ant));
    out.mrc_gain += out.per_antenna.back().mean_gain;
  }
  return out;
}

}  // namespace rem::crossband
