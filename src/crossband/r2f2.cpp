#include "crossband/r2f2.hpp"

#include "crossband/nls.hpp"

namespace rem::crossband {

using cd = std::complex<double>;

CrossbandOutput R2f2Estimator::estimate(const CrossbandInput& in) {
  const std::size_t m = in.h1_tf.rows();
  const std::size_t n = in.h1_tf.cols();
  const double df = in.num.subcarrier_spacing_hz;

  // Static assumption: collapse time.
  std::vector<cd> h(m, cd(0, 0));
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < n; ++l) h[k] += in.h1_tf(k, l);
    h[k] /= static_cast<double>(n);
  }

  // Cold-start matching pursuit + the long NLS refinement loop that makes
  // R2F2 expensive.
  auto fitted = nls_matching_pursuit(h, df, cfg_.max_paths,
                                     cfg_.delay_oversample);
  nls_refine(fitted, h, df, cfg_.refine_iters, cfg_.delay_oversample);

  paths_.clear();
  for (const auto& p : fitted) paths_.push_back({p.amplitude, p.delay_s});

  // Re-evaluate for band 2 (static, Doppler-blind): path delays and
  // amplitudes are carrier-independent in the simulated model, so the
  // band-2 prediction is the fitted response replicated over time.
  const auto model = nls_evaluate(fitted, m, df);
  dsp::Matrix h2(m, n);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t l = 0; l < n; ++l) h2(k, l) = model[k];

  CrossbandOutput out;
  out.is_delay_doppler = false;
  out.mean_gain = mean_gain_tf(h2);
  out.h2 = std::move(h2);
  return out;
}

}  // namespace rem::crossband
