// Multi-antenna cross-band estimation (§5.2: "Algorithm 1 supports
// multi-antenna systems such as MIMO and beamforming, by running it on
// each antenna").
//
// Each receive antenna sees the same physical paths with its own complex
// per-path weights, so the SVD factorization runs per antenna and the
// results combine: per-antenna band-2 predictions, plus a joint wideband
// gain (sum over antennas) for MRC-style SNR.
#pragma once

#include "crossband/rem_svd.hpp"

#include <vector>

namespace rem::crossband {

struct MimoInput {
  /// One CrossbandInput per receive antenna (same grid/carrier config).
  std::vector<CrossbandInput> antennas;
};

struct MimoOutput {
  std::vector<CrossbandOutput> per_antenna;
  /// Maximum-ratio-combined mean gain across antennas.
  double mrc_gain = 0.0;
};

class MimoRemEstimator {
 public:
  explicit MimoRemEstimator(RemSvdConfig cfg = {}) : cfg_(cfg) {}

  MimoOutput estimate(const MimoInput& in);

 private:
  RemSvdConfig cfg_;
};

}  // namespace rem::crossband
