// OptML-style learned cross-band estimation baseline (Bakshi et al.,
// MobiCom'19).
//
// A machine-learning predictor trained on paired (band-1 measurement,
// band-2 ground truth) examples. Features capture the per-subcarrier
// time-averaged magnitude profile *and* the per-subcarrier temporal
// variance — the latter implicitly encodes Doppler spread, which is why
// OptML outperforms the purely static R2F2 fit on high-speed-rail channels
// while still trailing REM's explicit Doppler treatment (Fig. 13).
//
// The predictor is weighted k-nearest-neighbor regression over the training
// set, followed by an ML-seeded NLS refinement stage — the "optimization"
// half of OptML, shared with R2F2 but warm-started and therefore much
// shorter. Like the original, it needs a training corpus (80/20 split in
// the paper's evaluation) and its inference cost sits between REM's
// closed-form SVD and R2F2's cold-start optimization.
#pragma once

#include "crossband/estimator.hpp"

#include <vector>

namespace rem::crossband {

struct OptMlConfig {
  std::size_t k_neighbors = 8;
  /// Paths in the ML-seeded NLS phase-refinement stage.
  std::size_t max_paths = 6;
  /// Warm-start refinement iterations (vs R2F2's cold-start hundreds).
  std::size_t refine_iters = 120;
  std::size_t delay_oversample = 4;
};

class OptMlEstimator final : public CrossbandEstimator {
 public:
  explicit OptMlEstimator(OptMlConfig cfg = {}) : cfg_(cfg) {}

  /// Add one training example: the band-1 TF measurement and the true
  /// band-2 TF channel (same grid).
  void add_training_example(const dsp::Matrix& h1_tf,
                            const dsp::Matrix& h2_tf);

  std::size_t training_size() const { return corpus_.size(); }

  CrossbandOutput estimate(const CrossbandInput& in) override;
  std::string name() const override { return "OptML"; }

 private:
  struct Example {
    std::vector<double> feature;
    double gain2;               ///< band-2 mean per-RE gain
    std::vector<double> mag2;   ///< band-2 per-subcarrier mean magnitude
  };

  static std::vector<double> featurize(const dsp::Matrix& h_tf);

  OptMlConfig cfg_;
  std::vector<Example> corpus_;
};

}  // namespace rem::crossband
