// REM's SVD cross-band estimation (Algorithm 1 + Appendix C).
//
// Factorize the band-1 delay-Doppler channel matrix H1 = U Σ V* and read
// each singular triplet as one propagation path: U column = delay spread
// Γ(·, τ_p), singular value = attenuation |h_p|, V* row = Doppler spread
// Φ(·, ν_p). Delays/attenuations transfer to band 2 unchanged; Dopplers are
// rescaled by f2/f1, the Doppler factor is rebuilt, and H2 = Γ P Φ2.
//
// Per-path delay/Doppler extraction departs from the paper's printed ratio
// estimator in favour of the equivalent (and numerically robust, on- and
// off-grid) inverse-DFT method: the Dirichlet columns Γ(·,τ) / Φ(·,ν) are
// the exact forward DFTs of finite exponential sequences, so an inverse
// DFT recovers e^{-j2π τ Δf} / e^{j2π ν T} as the common ratio of
// consecutive samples.
#pragma once

#include "crossband/estimator.hpp"

namespace rem::crossband {

struct RemSvdConfig {
  /// Maximum number of paths to keep (rank truncation). 0 = auto (keep
  /// singular values above `energy_cutoff` of the strongest).
  std::size_t max_paths = 0;
  /// Relative singular-value cutoff for auto rank selection.
  double energy_cutoff = 0.05;
};

/// Per-path parameters extracted from one singular triplet.
struct ExtractedPath {
  double delay_s = 0.0;
  double doppler_hz = 0.0;
  double attenuation = 0.0;  ///< singular value
};

class RemSvdEstimator final : public CrossbandEstimator {
 public:
  explicit RemSvdEstimator(RemSvdConfig cfg = {}) : cfg_(cfg) {}

  CrossbandOutput estimate(const CrossbandInput& in) override;
  std::string name() const override { return "REM"; }

  /// Paths extracted on the last estimate() call (for inspection/tests).
  const std::vector<ExtractedPath>& last_paths() const { return paths_; }

 private:
  RemSvdConfig cfg_;
  std::vector<ExtractedPath> paths_;
};

}  // namespace rem::crossband
