// REM's SVD cross-band estimation (Algorithm 1 + Appendix C).
//
// Factorize the band-1 delay-Doppler channel matrix H1 = U Σ V* and read
// each singular triplet as one propagation path: U column = delay spread
// Γ(·, τ_p), singular value = attenuation |h_p|, V* row = Doppler spread
// Φ(·, ν_p). Delays/attenuations transfer to band 2 unchanged; Dopplers are
// rescaled by f2/f1, the Doppler factor is rebuilt, and H2 = Γ P Φ2.
//
// Per-path delay/Doppler extraction departs from the paper's printed ratio
// estimator in favour of the equivalent (and numerically robust, on- and
// off-grid) inverse-DFT method: the Dirichlet columns Γ(·,τ) / Φ(·,ν) are
// the exact forward DFTs of finite exponential sequences, so an inverse
// DFT recovers e^{-j2π τ Δf} / e^{j2π ν T} as the common ratio of
// consecutive samples.
#pragma once

#include "crossband/estimator.hpp"
#include "dsp/arena.hpp"

#include <span>
#include <vector>

namespace rem::crossband {

struct RemSvdConfig {
  /// Maximum number of paths to keep (rank truncation). 0 = auto (keep
  /// singular values above `energy_cutoff` of the strongest).
  std::size_t max_paths = 0;
  /// Relative singular-value cutoff for auto rank selection.
  double energy_cutoff = 0.05;
  /// Worker threads for estimate_batch (1 = serial on the calling thread).
  /// Results are bit-identical for any value: inputs are sharded
  /// contiguously and every output is written to its input-order slot.
  std::size_t batch_threads = 1;
};

/// Per-path parameters extracted from one singular triplet.
struct ExtractedPath {
  double delay_s = 0.0;
  double doppler_hz = 0.0;
  double attenuation = 0.0;  ///< singular value
};

class RemSvdEstimator final : public CrossbandEstimator {
 public:
  explicit RemSvdEstimator(RemSvdConfig cfg = {}) : cfg_(cfg) {}

  CrossbandOutput estimate(const CrossbandInput& in) override;
  std::string name() const override { return "REM"; }

  /// Batched Algorithm 1: same per-input semantics as estimate(), but the
  /// whole span runs through the SoA batch pipeline (BatchMatrix pack,
  /// svd_batch, split-plane triplet extraction) with per-shard arenas, so
  /// steady-state calls are allocation-free (assert via arena_grows()).
  /// Mixed shapes are grouped by (rows, cols); inputs with an empty h1_dd
  /// are rejected with std::invalid_argument naming the offending index.
  /// Deterministic: outputs land in input order and are bit-identical for
  /// any cfg.batch_threads. last_paths() reflects the final input.
  std::vector<CrossbandOutput> estimate_batch(
      std::span<const CrossbandInput> in);
  /// In-place variant: out.size() must equal in.size(); each out[i].h2's
  /// storage is reused when its shape already matches.
  void estimate_batch(std::span<const CrossbandInput> in,
                      std::span<CrossbandOutput> out);

  /// Paths extracted on the last estimate() call (for inspection/tests).
  const std::vector<ExtractedPath>& last_paths() const { return paths_; }

  /// Total arena heap growths / high-water bytes across batch shards.
  /// grow_count staying flat between two warm estimate_batch calls is the
  /// zero-steady-state-allocation contract.
  std::size_t arena_grows() const;
  std::size_t arena_high_water() const;

 private:
  RemSvdConfig cfg_;
  std::vector<ExtractedPath> paths_;
  std::vector<dsp::Arena> arenas_;  ///< one per estimate_batch shard
};

}  // namespace rem::crossband
