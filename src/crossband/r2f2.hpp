// R2F2-style cross-band estimation baseline (Vasisht et al., SIGCOMM'16).
//
// Works in the time-frequency domain under a *static* channel assumption:
// average the measured response over time, fit a sparse path model
//   H(f) = sum_p a_p e^{-j 2 pi f tau_p}
// by greedy matching pursuit over an oversampled delay grid followed by
// iterative nonlinear least-squares refinement (the expensive part the
// paper criticizes), and re-evaluate the model for the other band.
//
// Deliberately Doppler-blind, as the original: under extreme mobility the
// time average blurs the channel and the prediction degrades — this is the
// Fig. 13 comparison point.
#pragma once

#include "crossband/estimator.hpp"

#include <complex>
#include <vector>

namespace rem::crossband {

struct R2f2Config {
  std::size_t max_paths = 6;         ///< paper's empirically optimal setting
  std::size_t delay_oversample = 16; ///< matching-pursuit grid density
  std::size_t refine_iters = 800;    ///< cold-start NLS refinement steps
};

class R2f2Estimator final : public CrossbandEstimator {
 public:
  explicit R2f2Estimator(R2f2Config cfg = {}) : cfg_(cfg) {}

  CrossbandOutput estimate(const CrossbandInput& in) override;
  std::string name() const override { return "R2F2"; }

  /// Fitted (complex amplitude, delay) pairs from the last call.
  struct FittedPath {
    std::complex<double> amplitude;
    double delay_s;
  };
  const std::vector<FittedPath>& last_paths() const { return paths_; }

 private:
  R2f2Config cfg_;
  std::vector<FittedPath> paths_;
};

}  // namespace rem::crossband
