// Batched REM cross-band estimation (Algorithm 1 over a span of inputs).
//
// Same per-input math as RemSvdEstimator::estimate(), restructured for
// throughput: inputs are sharded contiguously across batch_threads, each
// shard groups its inputs by (rows, cols) shape key in first-appearance
// order, packs every group into an arena-backed BatchMatrix, factorizes
// with svd_batch (one block-swept Jacobi over the whole group), and runs
// the per-triplet extraction on the split planes with plan-direct FFTs and
// the allocation-free prony variants. The extraction itself is two-pass:
// all Doppler sequences of a group are computed first so their Hankel
// pencil matrices factorize as a second group-wide svd_batch call, instead
// of one tiny SVD per triplet. Each shard owns one Arena that is
// reset (not freed) per call, so warm calls never touch the heap.
//
// Own translation unit so these kernels get the batch-pipeline
// vectorization flags while estimate() stays on the default ones.
#include "crossband/rem_svd.hpp"

#include "common/thread_pool.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/prony.hpp"
#include "dsp/svd.hpp"
#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace rem::crossband {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
using dsp::cd;

// Split-plane scratch for one shape group; all pointers live in the shard
// arena.
struct ExtractScratch {
  double* phi_re;  ///< length n: Doppler row -> exponential sequence
  double* phi_im;
  double* gam_re;  ///< length m: delay column -> common-ratio sequence
  double* gam_im;
  double* p2_re;  ///< length n: rebuilt band-2 Doppler factor
  double* p2_im;
  double* wre;  ///< FFT plan scratch (Bluestein), max over both plans
  double* wim;
};

// Effective path count of batch slot `b` (energy cutoff when max_paths
// doesn't cap it), mirroring the singles estimator's rank selection.
std::size_t effective_rank(const dsp::BatchSvd& s, std::size_t b,
                           const RemSvdConfig& cfg) {
  const double* sig = s.sigma + b * s.r_max;
  std::size_t rank = s.rank[b];
  if (cfg.max_paths == 0) {
    while (rank > 1 && sig[rank - 1] < cfg.energy_cutoff * sig[0]) --rank;
  }
  return rank;
}

// One singular triplet -> one path: fit the Doppler components of V's
// column, read the delay off U's column, rescale by f2/f1, and accumulate
// U_p sigma_p x DFT(phi2) into h2 slot `slot`. Mirrors the triplet loop of
// RemSvdEstimator::estimate() line for line (see rem_svd.cpp for the
// algorithm commentary). The Doppler sequences arrive pre-computed in
// `phis` (rank sequences of length n) and their Hankel factorization in
// slots [t0, t0 + rank) of `hs` — both produced group-wide by
// process_range so the tiny per-triplet SVDs run as one batched sweep.
void extract_into(const dsp::BatchSvd& s, std::size_t b,
                  const CrossbandInput& in, std::size_t rank, const cd* phis,
                  const dsp::PencilShape& ps,
                  const dsp::BatchSvd& hs, std::size_t t0,
                  const dsp::FftPlan& plan_m, const dsp::FftPlan& plan_n,
                  const ExtractScratch& sc, dsp::BatchMatrix& h2,
                  std::size_t slot, std::vector<ExtractedPath>* paths) {
  const std::size_t m = h2.rows();
  const std::size_t n = h2.cols();
  const double df = in.num.subcarrier_spacing_hz;
  const double symbol_t = in.num.symbol_duration_s();
  const double fs = in.num.sample_rate_hz();
  const double ratio = in.f2_hz / in.f1_hz;

  const double* sig = s.sigma + b * s.r_max;

  for (std::size_t p = 0; p < rank; ++p) {
    const cd* seq = phis + p * n;
    dsp::ExponentialComponent comps[3];
    const std::size_t k_comp =
        ps.rows == 0
            ? dsp::fit_exponential_ratio(seq, n, comps)
            : dsp::fit_exponentials_from_svd(seq, n, 3, 0.08, hs, t0 + p,
                                             ps.l, comps);

    // Delay: common ratio of conj(ifft(conj(U(:, p)))).
    const double* ure = s.u.re_col(b, p);
    const double* uim = s.u.im_col(b, p);
    for (std::size_t i = 0; i < m; ++i) {
      sc.gam_re[i] = ure[i];
      sc.gam_im[i] = -uim[i];
    }
    plan_m.transform_split(sc.gam_re, sc.gam_im, true, 1.0, sc.wre, sc.wim);
    double acc_re = 0.0, acc_im = 0.0;
    for (std::size_t d = 0; d + 1 < m; ++d) {
      // seq[d] = conj(t[d]); acc += seq[d+1] * conj(seq[d]).
      const double ar = sc.gam_re[d + 1], ai = -sc.gam_im[d + 1];
      const double br = sc.gam_re[d], bi = -sc.gam_im[d];
      acc_re += ar * br + ai * bi;
      acc_im += ai * br - ar * bi;
    }
    const double acc_mag = std::sqrt(acc_re * acc_re + acc_im * acc_im);
    const cd u = acc_mag < 1e-15 ? cd(1, 0) : cd(acc_re, acc_im) / acc_mag;
    double tau = -std::arg(u) / (kTwoPi * df);
    if (tau < 0) tau += 1.0 / df;

    const double dominant_nu1 =
        k_comp == 0 ? 0.0 : std::arg(comps[0].pole) / (kTwoPi * symbol_t);
    if (paths) paths->push_back({tau, dominant_nu1 * ratio, sig[p]});
    for (std::size_t c = 0; c < k_comp; ++c) {
      const double nu1 = std::arg(comps[c].pole) / (kTwoPi * symbol_t);
      const double cp_ang = kTwoPi * nu1 * (ratio - 1.0) *
                            static_cast<double>(in.num.cp_len) / fs;
      comps[c].amplitude *= cd(std::cos(cp_ang), std::sin(cp_ang));
    }

    // Rebuild phi2 and accumulate h2 += (U_p sigma_p) x DFT(phi2).
    dsp::eval_exponentials_into(comps, k_comp, n, ratio, sc.p2_re, sc.p2_im);
    plan_n.transform_split(sc.p2_re, sc.p2_im, false, 1.0, sc.wre, sc.wim);
    for (std::size_t l = 0; l < n; ++l) {
      const double cr = sig[p] * sc.p2_re[l];
      const double ci = sig[p] * sc.p2_im[l];
      double* __restrict hr = h2.re_col(slot, l);
      double* __restrict hi = h2.im_col(slot, l);
#pragma omp simd
      for (std::size_t i = 0; i < m; ++i) {
        hr[i] += ure[i] * cr - uim[i] * ci;
        hi[i] += ure[i] * ci + uim[i] * cr;
      }
    }
  }
}

// Process the input range [lo, hi) on one shard arena. `last_paths` is
// non-null only on the shard owning the final input.
void process_range(std::span<const CrossbandInput> in,
                   std::span<CrossbandOutput> out, std::size_t lo,
                   std::size_t hi, const RemSvdConfig& cfg, dsp::Arena& arena,
                   std::vector<ExtractedPath>* last_paths) {
  arena.reset();
  // Group the shard's indices by shape key in first-appearance order:
  // group[i] links indices of equal (rows, cols) into chains.
  std::size_t* next_in_group = arena.alloc<std::size_t>(hi - lo);
  const std::size_t kEnd = in.size();
  for (std::size_t i = lo; i < hi; ++i) next_in_group[i - lo] = kEnd;

  for (std::size_t g = lo; g < hi; ++g) {
    if (next_in_group[g - lo] != kEnd) continue;  // already chained
    const std::size_t m = in[g].h1_dd.rows();
    const std::size_t n = in[g].h1_dd.cols();
    // Chain all later same-shape indices onto g (marking them consumed).
    std::size_t count = 1;
    std::size_t tail = g;
    for (std::size_t i = g + 1; i < hi; ++i) {
      if (next_in_group[i - lo] != kEnd) continue;
      if (in[i].h1_dd.rows() != m || in[i].h1_dd.cols() != n) continue;
      next_in_group[tail - lo] = i;
      tail = i;
      ++count;
    }
    next_in_group[tail - lo] = g;  // close the cycle: marks tail consumed

    // Pack the group and factorize it in one batched sweep.
    dsp::BatchMatrix a(arena, count, m, n);
    std::size_t idx = g;
    for (std::size_t b = 0; b < count; ++b) {
      a.load(b, in[idx].h1_dd);
      idx = next_in_group[idx - lo];
    }
    const dsp::BatchSvd s = dsp::svd_batch(a, arena, cfg.max_paths);

    const auto plan_m = dsp::FftPlan::get(m);
    const auto plan_n = dsp::FftPlan::get(n);
    ExtractScratch sc;
    sc.phi_re = arena.alloc<double>(n);
    sc.phi_im = arena.alloc<double>(n);
    sc.gam_re = arena.alloc<double>(m);
    sc.gam_im = arena.alloc<double>(m);
    sc.p2_re = arena.alloc<double>(n);
    sc.p2_im = arena.alloc<double>(n);
    const std::size_t w = std::max(plan_m->split_scratch_doubles(),
                                   plan_n->split_scratch_doubles());
    sc.wre = w > 0 ? arena.alloc<double>(w) : nullptr;
    sc.wim = w > 0 ? arena.alloc<double>(w) : nullptr;

    // Pass 1: Doppler sequences phi = ifft(conj(V(:, p))) for every kept
    // triplet of the group, stored contiguously so their Hankel pencils can
    // be factorized as ONE svd_batch call (the tiny per-triplet SVDs
    // dominate extraction when they run one by one).
    std::size_t* toff = arena.alloc<std::size_t>(count + 1);
    toff[0] = 0;
    for (std::size_t b = 0; b < count; ++b)
      toff[b + 1] = toff[b] + effective_rank(s, b, cfg);
    const std::size_t total = toff[count];

    cd* phis = arena.alloc<cd>(total * n);
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t p = toff[b]; p < toff[b + 1]; ++p) {
        const double* vre = s.v.re_col(b, p - toff[b]);
        const double* vim = s.v.im_col(b, p - toff[b]);
        for (std::size_t l = 0; l < n; ++l) {
          sc.phi_re[l] = vre[l];
          sc.phi_im[l] = -vim[l];
        }
        plan_n->transform_split(sc.phi_re, sc.phi_im, true, 1.0, sc.wre,
                                sc.wim);
        cd* seq = phis + p * n;
        for (std::size_t l = 0; l < n; ++l)
          seq[l] = cd(sc.phi_re[l], sc.phi_im[l]);
      }
    }

    const dsp::PencilShape ps = dsp::pencil_shape(n, 3);
    dsp::BatchSvd hs;
    if (ps.rows > 0 && total > 0) {
      dsp::BatchMatrix y(arena, total, ps.rows, ps.l + 1);
      for (std::size_t t = 0; t < total; ++t)
        dsp::pack_hankel_split(phis + t * n, ps, y, t);
      hs = dsp::svd_batch(y, arena);
    }

    // Pass 2: finish each input from its pre-factorized triplets.
    dsp::BatchMatrix h2(arena, count, m, n);
    idx = g;
    for (std::size_t b = 0; b < count; ++b) {
      std::vector<ExtractedPath>* paths = nullptr;
      if (last_paths && idx + 1 == in.size()) {
        last_paths->clear();
        paths = last_paths;
      }
      extract_into(s, b, in[idx], toff[b + 1] - toff[b], phis + toff[b] * n,
                   ps, hs, toff[b], *plan_m, *plan_n, sc, h2, b, paths);

      CrossbandOutput& o = out[idx];
      o.is_delay_doppler = true;
      h2.store(b, o.h2);
      double fro2 = 0.0;
      for (std::size_t l = 0; l < n; ++l) {
        const double* __restrict hr = h2.re_col(b, l);
        const double* __restrict hi = h2.im_col(b, l);
        double col = 0.0;
#pragma omp simd reduction(+ : col)
        for (std::size_t i = 0; i < m; ++i) col += hr[i] * hr[i] + hi[i] * hi[i];
        fro2 += col;
      }
      o.mean_gain = fro2;
      idx = next_in_group[idx - lo];
    }
  }
}

}  // namespace

std::vector<CrossbandOutput> RemSvdEstimator::estimate_batch(
    std::span<const CrossbandInput> in) {
  std::vector<CrossbandOutput> out(in.size());
  estimate_batch(in, out);
  return out;
}

void RemSvdEstimator::estimate_batch(std::span<const CrossbandInput> in,
                                     std::span<CrossbandOutput> out) {
  static obs::Histogram* const timer_hist =
      obs::kernel_timer("crossband.rem_svd_estimate_batch_ns");
  obs::ScopedTimer timer(timer_hist);

  if (out.size() != in.size())
    throw std::invalid_argument(
        "estimate_batch: out.size() " + std::to_string(out.size()) +
        " != in.size() " + std::to_string(in.size()));
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto& h = in[i].h1_dd;
    if (h.rows() == 0 || h.cols() == 0)
      throw std::invalid_argument(
          "estimate_batch: input " + std::to_string(i) + " has empty h1_dd (" +
          std::to_string(h.rows()) + "x" + std::to_string(h.cols()) + ")");
  }
  if (in.empty()) return;

  const std::size_t threads = std::max<std::size_t>(1, cfg_.batch_threads);
  const std::size_t shards = std::min(threads, in.size());
  if (arenas_.size() < shards) arenas_.resize(shards);

  common::parallel_for(shards, threads, [&](std::size_t t) {
    const std::size_t lo = in.size() * t / shards;
    const std::size_t hi = in.size() * (t + 1) / shards;
    process_range(in, out, lo, hi, cfg_, arenas_[t],
                  hi == in.size() ? &paths_ : nullptr);
  });
}

std::size_t RemSvdEstimator::arena_grows() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a.stats().grow_count;
  return total;
}

std::size_t RemSvdEstimator::arena_high_water() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a.stats().high_water_bytes;
  return total;
}

}  // namespace rem::crossband
