// Evaluation harness for cross-band estimators (Fig. 12-14).
//
// Per trial: draw a band-1 channel, derive the co-located band-2 channel by
// Doppler scaling (nu2/nu1 = f2/f1 — same paths, same gains), measure band 1
// through the noisy pilot chain, ask the estimator for band 2, and compare
// the predicted wideband SNR against the ground truth. Also scores A3
// handover decisions made from the estimate against decisions made from the
// ground truth, across a spread of configured thresholds.
#pragma once

#include "channel/profiles.hpp"
#include "common/rng.hpp"
#include "crossband/estimator.hpp"
#include "crossband/optml.hpp"

#include <vector>

namespace rem::crossband {

struct EvalConfig {
  channel::ChannelDrawConfig draw;   ///< band-1 channel statistics
  phy::Numerology num = phy::Numerology::lte(64, 16);
  double f1_hz = 1.88e9;
  double f2_hz = 2.6e9;
  double measure_snr_db = 20.0;      ///< pilot SNR for the band-1 estimate
  std::size_t trials = 100;
  /// A3 thresholds are drawn uniformly from [-delta_range, +delta_range]
  /// dB around the (near-zero) true SNR difference, probing how estimation
  /// error flips borderline handover decisions.
  double delta_range_db = 6.0;
  /// An LTE measurement is a time/frequency-localized burst, not the whole
  /// grid: the score compares predicted vs true gain over this patch
  /// (subcarriers x symbols, placed at a random grid position per trial).
  std::size_t subband_m = 12;
  std::size_t subband_n = 4;
};

struct EvalResult {
  std::vector<double> snr_error_db;  ///< |predicted - true| per trial
  double mean_snr_error_db = 0.0;
  double p90_snr_error_db = 0.0;
  /// Of the trials where the estimate triggered the A3 event, the fraction
  /// where direct measurement would have triggered it too.
  double decision_precision = 0.0;
  /// Fraction of trials where estimated and true decisions agree.
  double decision_agreement = 0.0;
  double mean_runtime_ms = 0.0;
};

/// Run the evaluation protocol on one estimator.
EvalResult evaluate_estimator(CrossbandEstimator& est, const EvalConfig& cfg,
                              common::Rng& rng);

/// Generate `examples` training pairs for OptML from the same statistics
/// the evaluation will use (the paper's 80/20 split).
void train_optml(OptMlEstimator& est, const EvalConfig& cfg,
                 std::size_t examples, common::Rng& rng);

/// Noisy time-frequency measurement of a channel (analytic response +
/// complex AWGN per RE at the configured pilot SNR).
dsp::Matrix measure_tf(const channel::MultipathChannel& ch,
                       const phy::Numerology& num, double snr_db,
                       common::Rng& rng);

}  // namespace rem::crossband
