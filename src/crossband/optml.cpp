#include "crossband/optml.hpp"

#include "crossband/nls.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rem::crossband {
namespace {
using dsp::cd;

double sq(double x) { return x * x; }
}  // namespace

std::vector<double> OptMlEstimator::featurize(const dsp::Matrix& h_tf) {
  const std::size_t m = h_tf.rows();
  const std::size_t n = h_tf.cols();
  std::vector<double> f;
  f.reserve(2 * m);
  // Per-subcarrier time-averaged magnitude.
  for (std::size_t k = 0; k < m; ++k) {
    double mean = 0;
    for (std::size_t l = 0; l < n; ++l) mean += std::abs(h_tf(k, l));
    f.push_back(mean / static_cast<double>(n));
  }
  // Per-subcarrier temporal variance (Doppler signature).
  for (std::size_t k = 0; k < m; ++k) {
    double mean = f[k];
    double var = 0;
    for (std::size_t l = 0; l < n; ++l)
      var += sq(std::abs(h_tf(k, l)) - mean);
    f.push_back(var / static_cast<double>(n));
  }
  return f;
}

void OptMlEstimator::add_training_example(const dsp::Matrix& h1_tf,
                                          const dsp::Matrix& h2_tf) {
  Example ex;
  ex.feature = featurize(h1_tf);
  ex.gain2 = mean_gain_tf(h2_tf);
  ex.mag2.resize(h2_tf.rows());
  for (std::size_t k = 0; k < h2_tf.rows(); ++k) {
    double mean = 0;
    for (std::size_t l = 0; l < h2_tf.cols(); ++l)
      mean += std::abs(h2_tf(k, l));
    ex.mag2[k] = mean / static_cast<double>(h2_tf.cols());
  }
  corpus_.push_back(std::move(ex));
}

CrossbandOutput OptMlEstimator::estimate(const CrossbandInput& in) {
  if (corpus_.empty())
    throw std::runtime_error("OptML: estimate() before training");
  const std::size_t m = in.h1_tf.rows();
  const std::size_t n = in.h1_tf.cols();

  const auto feature = featurize(in.h1_tf);

  // Weighted k-NN over the corpus.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(corpus_.size());
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    const auto& f = corpus_[i].feature;
    double d = 0;
    const std::size_t dim = std::min(f.size(), feature.size());
    for (std::size_t j = 0; j < dim; ++j) d += sq(f[j] - feature[j]);
    dist.push_back({d, i});
  }
  const std::size_t k_n = std::min(cfg_.k_neighbors, corpus_.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k_n),
                    dist.end());

  double gain = 0;
  std::vector<double> mag2(m, 0.0);
  double wsum = 0;
  for (std::size_t j = 0; j < k_n; ++j) {
    const double w = 1.0 / (dist[j].first + 1e-9);
    const auto& ex = corpus_[dist[j].second];
    gain += w * ex.gain2;
    for (std::size_t k = 0; k < m && k < ex.mag2.size(); ++k)
      mag2[k] += w * ex.mag2[k];
    wsum += w;
  }
  gain /= wsum;
  for (auto& x : mag2) x /= wsum;

  // ML-seeded NLS refinement ("Opt" in OptML): fit a sparse path model to
  // the time-averaged band-1 response, warm-started by matching pursuit
  // and refined for far fewer iterations than R2F2 needs from cold. The
  // fitted model provides the per-subcarrier *phase* structure; the k-NN
  // provides the band-2 magnitudes. Doppler-induced time evolution is
  // still invisible to it, which is this baseline's residual error.
  std::vector<cd> h_avg(m, cd(0, 0));
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < n; ++l) h_avg[k] += in.h1_tf(k, l);
    h_avg[k] /= static_cast<double>(n);
  }
  auto fitted = nls_matching_pursuit(h_avg, in.num.subcarrier_spacing_hz,
                                     cfg_.max_paths, cfg_.delay_oversample);
  nls_refine(fitted, h_avg, in.num.subcarrier_spacing_hz,
             cfg_.refine_iters, cfg_.delay_oversample);
  const auto model =
      nls_evaluate(fitted, m, in.num.subcarrier_spacing_hz);

  dsp::Matrix h2(m, n);
  for (std::size_t k = 0; k < m; ++k) {
    cd phase = model[k];
    const double pm = std::abs(phase);
    phase = pm > 1e-12 ? phase / pm : cd(1, 0);
    for (std::size_t l = 0; l < n; ++l) h2(k, l) = mag2[k] * phase;
  }
  // Normalize total energy to the k-NN gain.
  const double g_now = mean_gain_tf(h2);
  if (g_now > 1e-15) {
    const double scale = std::sqrt(gain / g_now);
    h2 *= cd(scale, 0);
  }

  CrossbandOutput out;
  out.is_delay_doppler = false;
  out.mean_gain = gain;
  out.h2 = std::move(h2);
  return out;
}

}  // namespace rem::crossband
