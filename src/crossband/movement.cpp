#include "crossband/movement.hpp"

#include "common/units.hpp"

#include <algorithm>
#include <cmath>

namespace rem::crossband {

std::optional<MovementEstimate> estimate_movement(
    const std::vector<ExtractedPath>& paths, double carrier_hz) {
  if (paths.empty() || carrier_hz <= 0.0) return std::nullopt;

  MovementEstimate est;
  double max_abs_nu = 0.0;
  double min_nu = std::numeric_limits<double>::infinity();
  double max_nu = -std::numeric_limits<double>::infinity();
  double min_tau = std::numeric_limits<double>::infinity();
  double max_tau = -std::numeric_limits<double>::infinity();
  double strongest = -1.0;
  for (const auto& p : paths) {
    max_abs_nu = std::max(max_abs_nu, std::abs(p.doppler_hz));
    min_nu = std::min(min_nu, p.doppler_hz);
    max_nu = std::max(max_nu, p.doppler_hz);
    min_tau = std::min(min_tau, p.delay_s);
    max_tau = std::max(max_tau, p.delay_s);
    if (p.attenuation > strongest) {
      strongest = p.attenuation;
      est.heading_sign = p.doppler_hz >= 0.0 ? 1.0 : -1.0;
    }
  }
  est.speed_mps = max_abs_nu * common::kSpeedOfLight / carrier_hz;
  est.delay_spread_m = (max_tau - min_tau) * common::kSpeedOfLight;
  est.doppler_spread_hz = max_nu - min_nu;
  return est;
}

}  // namespace rem::crossband
