#include "crossband/rem_svd.hpp"

#include "dsp/fft.hpp"
#include "dsp/prony.hpp"
#include "dsp/svd.hpp"
#include "obs/profile.hpp"
#include "phy/otfs.hpp"

#include <cmath>
#include <numbers>

namespace rem::crossband {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
using dsp::cd;

// Recover the common ratio r of the finite exponential sequence whose
// forward DFT is `spectrum` (i.e. spectrum[j] = sum_d r_seq[d] W^{jd} with
// r_seq[d] = r^d * scale). Weighted by magnitude so near-zero samples do
// not blow up the estimate. `conjugate_dft` selects the sign convention of
// the forward transform that produced `spectrum`.
cd common_ratio(const std::vector<cd>& spectrum, bool conjugate_dft) {
  // Invert the DFT to get the exponential sequence.
  std::vector<cd> seq = spectrum;
  if (conjugate_dft) {
    // spectrum[j] = sum_d x[d] e^{+j2pi jd/D}: conjugate, ifft, conjugate.
    for (auto& x : seq) x = std::conj(x);
    dsp::ifft(seq);
    for (auto& x : seq) x = std::conj(x);
  } else {
    dsp::ifft(seq);
  }
  cd acc(0, 0);
  for (std::size_t d = 0; d + 1 < seq.size(); ++d) {
    // Weight each consecutive ratio by |seq[d]|^2: seq[d+1]/seq[d] * w.
    acc += seq[d + 1] * std::conj(seq[d]);
  }
  const double mag = std::abs(acc);
  if (mag < 1e-15) return cd(1, 0);
  return acc / mag;  // unit-modulus ratio estimate
}

}  // namespace

CrossbandOutput RemSvdEstimator::estimate(const CrossbandInput& in) {
  static obs::Histogram* const timer_hist =
      obs::kernel_timer("crossband.rem_svd_estimate_ns");
  obs::ScopedTimer timer(timer_hist);
  const std::size_t m = in.h1_dd.rows();
  const std::size_t n = in.h1_dd.cols();
  const double df = in.num.subcarrier_spacing_hz;
  const double symbol_t = in.num.symbol_duration_s();
  const double fs = in.num.sample_rate_hz();
  const double ratio = in.f2_hz / in.f1_hz;

  // Line 1: H1 = Gamma P Phi1 via SVD.
  const auto svd = dsp::svd(in.h1_dd, cfg_.max_paths);
  std::size_t rank = svd.sigma.size();
  if (cfg_.max_paths == 0) {
    // Auto rank: keep components above the relative energy cutoff.
    while (rank > 1 &&
           svd.sigma[rank - 1] < cfg_.energy_cutoff * svd.sigma[0])
      --rank;
  }

  paths_.clear();
  dsp::Matrix h2(m, n);
  for (std::size_t p = 0; p < rank; ++p) {
    // Lines 3-5 (generalized): the Doppler factor of this triplet.
    // V* row p = conj(V(:,p)); Phi(l) = sum_c e^{-j2pi l c / N} phi_c is a
    // forward DFT of the time sequence phi_c. When the triplet carries a
    // single path, phi_c = e^{j 2 pi nu c T}; co-delayed paths (e.g. a
    // Rician LOS plus its diffuse component) land in the *same* triplet,
    // making phi_c a small sum of exponentials — fit them all with the
    // matrix-pencil method instead of the paper's single-ratio estimator.
    std::vector<cd> phi_row(n);
    for (std::size_t l = 0; l < n; ++l) phi_row[l] = std::conj(svd.v(l, p));
    std::vector<cd> phi_seq = phi_row;
    dsp::ifft(phi_seq);
    auto comps = dsp::fit_exponentials(phi_seq, 3);

    // U column p: Gamma(k) = sum_d e^{+j2pi k d / M} e^{-j2pi tau d df} is
    // a conjugate-convention DFT of e^{-j 2 pi tau d df}; extract tau for
    // reporting (the delay factor itself transfers to band 2 unchanged).
    std::vector<cd> gamma_col = svd.u.col(p);
    const cd u = common_ratio(gamma_col, true);  // e^{-j 2 pi tau df}
    double tau = -std::arg(u) / (kTwoPi * df);
    if (tau < 0) tau += 1.0 / df;  // delays are non-negative, wrap

    // Line 6: rescale every Doppler component by f2/f1. Each component's
    // CP phase e^{j 2 pi nu cp/fs} also moves with its Doppler.
    const double dominant_nu1 =
        comps.empty() ? 0.0
                      : std::arg(comps[0].pole) / (kTwoPi * symbol_t);
    paths_.push_back({tau, dominant_nu1 * ratio, svd.sigma[p]});
    for (auto& comp : comps) {
      const double nu1 = std::arg(comp.pole) / (kTwoPi * symbol_t);
      const double cp_ang = kTwoPi * nu1 * (ratio - 1.0) *
                            static_cast<double>(in.num.cp_len) / fs;
      comp.amplitude *= cd(std::cos(cp_ang), std::sin(cp_ang));
    }

    // Lines 9-10: rebuild the band-2 Doppler factor from the rescaled
    // components and accumulate H2 += (U_p sigma_p) x DFT(phi2).
    std::vector<cd> phi2_seq = dsp::eval_exponentials(comps, n, ratio);
    dsp::fft(phi2_seq);  // back to the Phi(l) representation
    for (std::size_t k = 0; k < m; ++k) {
      const cd left = svd.u(k, p) * svd.sigma[p];
      for (std::size_t l = 0; l < n; ++l) h2(k, l) += left * phi2_seq[l];
    }
  }

  CrossbandOutput out;
  out.is_delay_doppler = true;
  const double f = h2.frobenius_norm();
  out.mean_gain = f * f;
  out.h2 = std::move(h2);
  return out;
}

double mean_gain_tf(const dsp::Matrix& h_tf) {
  const double f = h_tf.frobenius_norm();
  return f * f / static_cast<double>(h_tf.rows() * h_tf.cols());
}

dsp::Matrix output_as_tf(const CrossbandOutput& out) {
  if (!out.is_delay_doppler) return out.h2;
  // The DD estimate is the 1/(MN)-normalized inverse SFFT of the TF
  // samples, so the forward unitary SFFT needs a sqrt(MN) rescale.
  dsp::Matrix tf = phy::sfft(out.h2);
  const double scale =
      std::sqrt(static_cast<double>(out.h2.rows() * out.h2.cols()));
  tf *= dsp::cd(scale, 0);
  return tf;
}

}  // namespace rem::crossband
