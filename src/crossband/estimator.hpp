// Common interface for cross-band channel estimators (§5.2).
//
// A client measures one cell of a base station on carrier f1 and wants the
// channel of a co-located cell on carrier f2 without measuring it. Path
// delays and attenuations are carrier-independent; Dopplers scale by f2/f1.
//
// REM operates on the delay-Doppler estimate; the R2F2/OptML baselines
// operate on the time-frequency estimate (as the original systems do).
#pragma once

#include "dsp/matrix.hpp"
#include "phy/numerology.hpp"

#include <string>

namespace rem::crossband {

struct CrossbandInput {
  /// Band-1 delay-Doppler channel samples (M x N) from DdChannelEstimator.
  dsp::Matrix h1_dd;
  /// Band-1 time-frequency channel samples (M x N), rows = subcarriers.
  dsp::Matrix h1_tf;
  /// Grid parameters the estimates were taken with.
  phy::Numerology num;
  /// Carrier frequencies [Hz].
  double f1_hz = 2.0e9;
  double f2_hz = 2.6e9;
};

struct CrossbandOutput {
  /// Predicted band-2 channel in the estimator's native domain.
  dsp::Matrix h2;
  /// True if `h2` is delay-Doppler samples; false if time-frequency.
  bool is_delay_doppler = true;
  /// Predicted mean per-RE channel power gain of band 2 (domain-agnostic).
  double mean_gain = 0.0;
};

class CrossbandEstimator {
 public:
  virtual ~CrossbandEstimator() = default;
  virtual CrossbandOutput estimate(const CrossbandInput& in) = 0;
  virtual std::string name() const = 0;
};

/// Mean per-RE gain of a TF channel sample matrix.
double mean_gain_tf(const dsp::Matrix& h_tf);

/// Convert a predicted channel to time-frequency samples regardless of the
/// estimator's native domain (DD estimates are SFFT'd back).
dsp::Matrix output_as_tf(const CrossbandOutput& out);

}  // namespace rem::crossband
