#include "crossband/metrics.hpp"

#include "channel/noise.hpp"
#include "common/stats.hpp"
#include "phy/channel_est.hpp"

#include <chrono>
#include <cmath>

namespace rem::crossband {
namespace {

// Mean per-RE gain of a TF matrix over the patch starting at (k0, l0).
double patch_gain(const dsp::Matrix& h, std::size_t k0, std::size_t l0,
                  std::size_t pm, std::size_t pn) {
  double g = 0.0;
  for (std::size_t k = 0; k < pm; ++k)
    for (std::size_t l = 0; l < pn; ++l) g += std::norm(h(k0 + k, l0 + l));
  return g / static_cast<double>(pm * pn);
}

}  // namespace

dsp::Matrix measure_tf(const channel::MultipathChannel& ch,
                       const phy::Numerology& num, double snr_db,
                       common::Rng& rng) {
  auto h = ch.tf_matrix(num.num_subcarriers, num.num_symbols,
                        num.subcarrier_spacing_hz, num.symbol_duration_s());
  const double noise = channel::noise_power_for_snr_db(snr_db);
  for (auto& x : h.data()) x += rng.complex_gaussian(noise);
  return h;
}

void train_optml(OptMlEstimator& est, const EvalConfig& cfg,
                 std::size_t examples, common::Rng& rng) {
  const double ratio = cfg.f2_hz / cfg.f1_hz;
  for (std::size_t i = 0; i < examples; ++i) {
    const auto ch1 = channel::draw_channel(cfg.draw, rng);
    const auto ch2 = ch1.with_doppler_scaled(ratio);
    const auto h1 = measure_tf(ch1, cfg.num, cfg.measure_snr_db, rng);
    const auto h2 = ch2.tf_matrix(cfg.num.num_subcarriers,
                                  cfg.num.num_symbols,
                                  cfg.num.subcarrier_spacing_hz,
                                  cfg.num.symbol_duration_s());
    est.add_training_example(h1, h2);
  }
}

EvalResult evaluate_estimator(CrossbandEstimator& est, const EvalConfig& cfg,
                              common::Rng& rng) {
  EvalResult res;
  const double ratio = cfg.f2_hz / cfg.f1_hz;
  phy::DdChannelEstimator dd_est(cfg.num);

  std::size_t est_trigger = 0, both_trigger = 0, agree = 0;
  double runtime_ms = 0.0;
  const std::size_t pm = std::min(cfg.subband_m, cfg.num.num_subcarriers);
  const std::size_t pn = std::min(cfg.subband_n, cfg.num.num_symbols);

  for (std::size_t t = 0; t < cfg.trials; ++t) {
    const auto ch1 = channel::draw_channel(cfg.draw, rng);
    const auto ch2 = ch1.with_doppler_scaled(ratio);

    CrossbandInput in;
    in.num = cfg.num;
    in.f1_hz = cfg.f1_hz;
    in.f2_hz = cfg.f2_hz;
    in.h1_dd = dd_est.estimate(ch1, cfg.measure_snr_db, rng).h;
    in.h1_tf = measure_tf(ch1, cfg.num, cfg.measure_snr_db, rng);

    const auto start = std::chrono::steady_clock::now();
    const auto out = est.estimate(in);
    const auto stop = std::chrono::steady_clock::now();
    runtime_ms +=
        std::chrono::duration<double, std::milli>(stop - start).count();

    // Localized measurement patch, random position per trial.
    const auto k0 = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cfg.num.num_subcarriers - pm)));
    const auto l0 = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cfg.num.num_symbols - pn)));

    const auto h2_true = ch2.tf_matrix(cfg.num.num_subcarriers,
                                       cfg.num.num_symbols,
                                       cfg.num.subcarrier_spacing_hz,
                                       cfg.num.symbol_duration_s());
    const auto h2_pred = output_as_tf(out);
    const double g_true = patch_gain(h2_true, k0, l0, pm, pn);
    const double g_pred =
        std::max(patch_gain(h2_pred, k0, l0, pm, pn), 1e-12);
    const double err_db = std::abs(10.0 * std::log10(g_pred / g_true));
    res.snr_error_db.push_back(err_db);

    // A3 decision: SNR2 > SNR1 + delta with a random borderline delta.
    // The SNR offset cancels (same noise floor), so this reduces to a gain
    // comparison in dB.
    const auto h1_true = ch1.tf_matrix(cfg.num.num_subcarriers,
                                       cfg.num.num_symbols,
                                       cfg.num.subcarrier_spacing_hz,
                                       cfg.num.symbol_duration_s());
    const double g1_true = patch_gain(h1_true, k0, l0, pm, pn);
    const double delta_db = rng.uniform(-cfg.delta_range_db,
                                        cfg.delta_range_db);
    const bool true_ho =
        10.0 * std::log10(g_true / g1_true) > delta_db;
    const bool est_ho =
        10.0 * std::log10(g_pred / g1_true) > delta_db;
    if (est_ho) {
      ++est_trigger;
      if (true_ho) ++both_trigger;
    }
    if (est_ho == true_ho) ++agree;
  }

  common::Summary s;
  s.add_all(res.snr_error_db);
  res.mean_snr_error_db = s.mean();
  res.p90_snr_error_db = s.percentile(90.0);
  res.decision_precision =
      est_trigger > 0
          ? static_cast<double>(both_trigger) /
                static_cast<double>(est_trigger)
          : 1.0;
  res.decision_agreement =
      static_cast<double>(agree) / static_cast<double>(cfg.trials);
  res.mean_runtime_ms = runtime_ms / static_cast<double>(cfg.trials);
  return res;
}

}  // namespace rem::crossband
