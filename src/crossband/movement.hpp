// Movement estimation from the delay-Doppler factorization (§10 "beyond
// reliability": delay-Doppler based localization / client movement
// insights).
//
// The paths REM extracts for cross-band estimation carry physics: each
// Doppler nu_p = v f cos(theta_p) / c and each delay tau_p is an excess
// path length. The strongest (LOS-like) path bounds the client speed from
// below, and the Doppler *spread* across paths reveals how much of the
// environment is scattered around versus ahead.
#pragma once

#include "crossband/rem_svd.hpp"

#include <optional>

namespace rem::crossband {

struct MovementEstimate {
  /// Lower-bound speed estimate [m/s]: max |nu| * c / f. Equals the true
  /// speed when some path is aligned with the motion (cos theta = 1),
  /// which the HSR LOS geometry approximates.
  double speed_mps = 0.0;
  /// Positive = approaching the dominant scatterer/site, negative =
  /// receding (sign of the strongest path's Doppler).
  double heading_sign = 0.0;
  /// Excess path-length spread [m]: (max tau - min tau) * c.
  double delay_spread_m = 0.0;
  /// Doppler spread across paths [Hz].
  double doppler_spread_hz = 0.0;
};

/// Estimate client movement from extracted paths at carrier `carrier_hz`.
/// Returns nullopt when no usable paths exist.
std::optional<MovementEstimate> estimate_movement(
    const std::vector<ExtractedPath>& paths, double carrier_hz);

}  // namespace rem::crossband
