// Shared nonlinear-least-squares path fitting for the time-frequency
// domain baselines. R2F2 runs it from a matching-pursuit cold start with
// many iterations; OptML runs the same refinement seeded by its learned
// prediction with fewer iterations (ML-seeded optimization, as in the
// original system).
#pragma once

#include <complex>
#include <vector>

namespace rem::crossband {

struct NlsPath {
  std::complex<double> amplitude;
  double delay_s = 0.0;
};

/// Model response e^{-j 2 pi k df tau} on subcarriers k = 0..m-1.
std::vector<std::complex<double>> nls_steering(double tau, std::size_t m,
                                               double df);

/// Greedy matching pursuit of up to `max_paths` paths over a delay grid of
/// `m * oversample` points.
std::vector<NlsPath> nls_matching_pursuit(
    const std::vector<std::complex<double>>& h, double df,
    std::size_t max_paths, std::size_t oversample);

/// Coordinate-wise NLS refinement: `iters` rounds of re-fitting one path
/// (local delay search + amplitude re-solve) against the residual of the
/// others. Mutates `paths` in place.
void nls_refine(std::vector<NlsPath>& paths,
                const std::vector<std::complex<double>>& h, double df,
                std::size_t iters, std::size_t oversample);

/// Evaluate the fitted model on m subcarriers.
std::vector<std::complex<double>> nls_evaluate(
    const std::vector<NlsPath>& paths, std::size_t m, double df);

}  // namespace rem::crossband
