#include "trace/scenario.hpp"

#include "common/units.hpp"

namespace rem::trace {

namespace rm = rem::mobility;

std::string route_name(Route r) {
  switch (r) {
    case Route::kLowMobilityLA: return "Low mobility (LA)";
    case Route::kBeijingTaiyuan: return "Beijing-Taiyuan";
    case Route::kBeijingShanghai: return "Beijing-Shanghai";
  }
  return "?";
}

Scenario make_scenario(Route route, double speed_kmh, double duration_s) {
  Scenario s;
  s.route = route;
  s.speed_kmh = speed_kmh;

  // Deployment density: the Table 2 handover intervals (50.2 s at
  // 0-100 km/h down to 11.3 s at 300-350 km/h) pin the site spacing to
  // roughly speed * interval.
  const double speed_mps = common::kmh_to_mps(speed_kmh);
  double target_interval_s;
  if (speed_kmh < 150.0)
    target_interval_s = 50.0;
  else if (speed_kmh < 250.0)
    target_interval_s = 20.4;
  else if (speed_kmh < 320.0)
    target_interval_s = 19.3;
  else
    target_interval_s = 11.3;
  s.deployment.site_spacing_mean_m =
      std::max(400.0, speed_mps * target_interval_s);
  s.deployment.site_spacing_jitter_m =
      s.deployment.site_spacing_mean_m * 0.2;
  s.deployment.route_len_m =
      speed_mps * duration_s + 2.0 * s.deployment.site_spacing_mean_m;

  switch (route) {
    case Route::kLowMobilityLA:
      s.deployment.channels = {{5230, 0.7315e9}, {1825, 1.88e9},
                               {2452, 2.36e9}};
      s.deployment.holes_per_km = 0.006;
      s.policy_mix.proactive_a3_prob = 0.0;  // no failure pressure
      s.policy_mix.load_balance_a4_prob = 0.15;
      s.policy_mix.intra_ttt_s = 0.128;
      s.policy_mix.inter_ttt_s = 0.640;
      break;
    case Route::kBeijingTaiyuan:
      s.deployment.channels = {{1825, 0.8742e9}, {2452, 1.88e9},
                               {100, 2.12e9}};
      s.deployment.holes_per_km = 0.016;  // mountainous route
      s.policy_mix.proactive_a3_prob = 0.65;
      s.policy_mix.load_balance_a4_prob = 0.10;
      break;
    case Route::kBeijingShanghai:
      s.deployment.channels = {{1825, 1.835e9}, {2452, 2.665e9},
                               {100, 2.11e9}};
      s.deployment.holes_per_km = 0.009;
      s.policy_mix.proactive_a3_prob = 0.55;
      s.policy_mix.load_balance_a4_prob = 0.30;  // more A4 conflicts [6]
      break;
  }

  s.sim.speed_kmh = speed_kmh;
  s.sim.duration_s = duration_s;
  return s;
}

std::map<int, rm::CellPolicy> synthesize_policies(
    const std::vector<sim::Cell>& cells, const PolicyMix& mix,
    common::Rng& rng) {
  std::map<int, rm::CellPolicy> out;
  for (const auto& cell : cells) {
    rm::CellPolicy p;

    // Stage 0: intra-frequency A3 (proactive for a §3.2-style fraction).
    rm::PolicyRule intra;
    intra.stage = 0;
    intra.channel = rm::PolicyRule::kServingChannel;
    intra.event.type = rm::EventType::kA3;
    intra.event.offset =
        rng.bernoulli(mix.proactive_a3_prob)
            ? rng.uniform(mix.proactive_offset_lo, mix.proactive_offset_hi)
            : rng.uniform(mix.normal_offset_lo, mix.normal_offset_hi);
    intra.event.hysteresis =
        intra.event.offset < 0.0 ? 0.5 : 1.5;  // proactive cells gamble
    intra.event.time_to_trigger_s = mix.intra_ttt_s;
    p.rules.push_back(intra);

    // Stage 0: A2 guard into the inter-frequency stage.
    rm::PolicyRule guard;
    guard.stage = 0;
    guard.event.type = rm::EventType::kA2;
    guard.event.threshold1 = rng.uniform(mix.a2_guard_lo, mix.a2_guard_hi);
    guard.event.time_to_trigger_s = mix.intra_ttt_s;
    guard.action = rm::PolicyAction::kReconfigure;
    guard.next_stage = 1;
    p.rules.push_back(guard);

    // Stage 1: inter-frequency rule toward foreign channels. Operators
    // mix A4 thresholds, A5 pairs, and inter-frequency A3 offsets (the
    // source of Table 3's A3-A4/A3-A5 inter-frequency classes).
    rm::PolicyRule inter;
    inter.stage = 1;
    inter.channel = rm::PolicyRule::kOtherChannels;
    const double inter_kind = rng.uniform(0.0, 1.0);
    if (inter_kind < 0.40) {
      inter.event.type = rm::EventType::kA4;
      inter.event.threshold1 =
          rng.uniform(mix.a4_threshold_lo, mix.a4_threshold_hi);
    } else if (inter_kind < 0.65) {
      inter.event.type = rm::EventType::kA5;
      inter.event.threshold1 = guard.event.threshold1;
      inter.event.threshold2 =
          rng.uniform(mix.a4_threshold_lo, mix.a4_threshold_hi);
    } else {
      inter.event.type = rm::EventType::kA3;
      inter.event.offset =
          rng.bernoulli(mix.proactive_a3_prob)
              ? rng.uniform(mix.proactive_offset_lo,
                            mix.proactive_offset_hi)
              : rng.uniform(mix.normal_offset_lo, mix.normal_offset_hi);
      inter.event.hysteresis = 1.0;
    }
    inter.event.time_to_trigger_s = mix.inter_ttt_s;
    p.rules.push_back(inter);

    // Optional direct load-balancing A4 (Fig. 3: no A2 prerequisite).
    if (rng.bernoulli(mix.load_balance_a4_prob)) {
      rm::PolicyRule lb;
      lb.stage = 0;
      lb.channel = rm::PolicyRule::kOtherChannels;
      lb.event.type = rng.bernoulli(0.7) ? rm::EventType::kA4
                                         : rm::EventType::kA5;
      lb.event.threshold1 =
          rng.uniform(mix.a4_threshold_lo, mix.a4_threshold_hi);
      lb.event.threshold2 = lb.event.threshold1 + rng.uniform(0.0, 6.0);
      if (lb.event.type == rm::EventType::kA5) {
        // A5: serving below t1, neighbor above t2 (Fig. 3's cell 2).
        lb.event.threshold1 = rng.uniform(-100.0, -92.0);
        lb.event.threshold2 = rng.uniform(-106.0, -98.0);
      }
      lb.event.time_to_trigger_s = mix.inter_ttt_s;
      p.rules.push_back(lb);
    }
    out[cell.id.cell] = std::move(p);
  }
  return out;
}

std::vector<rm::PolicyCell> to_policy_cells(
    const std::vector<sim::Cell>& cells,
    const std::map<int, rm::CellPolicy>& policies) {
  std::vector<rm::PolicyCell> out;
  out.reserve(cells.size());
  for (const auto& c : cells) {
    rm::PolicyCell pc;
    pc.id = c.id;
    const auto it = policies.find(c.id.cell);
    if (it != policies.end()) pc.policy = it->second;
    out.push_back(std::move(pc));
  }
  return out;
}

}  // namespace rem::trace
