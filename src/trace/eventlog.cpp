#include "trace/eventlog.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rem::trace {
namespace {

const std::map<std::string, sim::EventKind>& kind_by_name() {
  static const std::map<std::string, sim::EventKind> m = {
      {"measurement_triggered", sim::EventKind::kMeasurementTriggered},
      {"report_delivered", sim::EventKind::kReportDelivered},
      {"report_lost", sim::EventKind::kReportLost},
      {"ho_command_delivered", sim::EventKind::kHoCommandDelivered},
      {"ho_command_lost", sim::EventKind::kHoCommandLost},
      {"handover_complete", sim::EventKind::kHandoverComplete},
      {"radio_link_failure", sim::EventKind::kRadioLinkFailure},
      {"reestablished", sim::EventKind::kReestablished},
      {"fault_start", sim::EventKind::kFaultStart},
      {"fault_end", sim::EventKind::kFaultEnd},
      {"report_retransmit", sim::EventKind::kReportRetransmit},
      {"t304_expiry", sim::EventKind::kT304Expiry},
      {"ho_command_duplicate", sim::EventKind::kHoCommandDuplicate},
      {"degraded_enter", sim::EventKind::kDegradedEnter},
      {"degraded_exit", sim::EventKind::kDegradedExit},
      {"prep_request", sim::EventKind::kPrepRequest},
      {"prep_retry", sim::EventKind::kPrepRetry},
      {"prep_ack", sim::EventKind::kPrepAck},
      {"prep_reject", sim::EventKind::kPrepReject},
      {"prep_fallback", sim::EventKind::kPrepFallback},
      {"prep_failed", sim::EventKind::kPrepFailed},
      {"context_fetch_failed", sim::EventKind::kContextFetchFailed},
      {"bs_queue_shed", sim::EventKind::kBsQueueShed},
      {"bs_job_done", sim::EventKind::kBsJobDone},
      {"admission_reject", sim::EventKind::kAdmissionReject},
      {"admission_retry", sim::EventKind::kAdmissionRetry},
      {"bs_crash", sim::EventKind::kBsCrash},
      {"bs_restart", sim::EventKind::kBsRestart},
      {"context_stale", sim::EventKind::kContextStale},
      {"cascade_inject", sim::EventKind::kCascadeInject},
      {"breaker_trip", sim::EventKind::kBreakerTrip},
      {"breaker_probe", sim::EventKind::kBreakerProbe},
      {"breaker_close", sim::EventKind::kBreakerClose},
  };
  return m;
}

/// Parse one numeric field, turning the bare std::sto* exceptions into an
/// error that names the field and quotes the offending text.
double parse_double(const std::string& field, const char* name) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size())
      throw std::runtime_error("trailing garbage");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + name + " '" + field +
                             "'");
  }
}

int parse_int(const std::string& field, const char* name) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(field, &used);
    if (used != field.size())
      throw std::runtime_error("trailing garbage");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + name + " '" + field +
                             "'");
  }
}

}  // namespace

void write_event_csv(const sim::EventLog& log, std::ostream& os) {
  os << "t_s,kind,serving_cell,target_cell,serving_snr_db\n";
  for (const auto& e : log) {
    os << e.t_s << ',' << sim::event_kind_name(e.kind) << ','
       << e.serving_cell << ',' << e.target_cell << ',' << e.serving_snr_db
       << '\n';
  }
}

void write_event_csv_file(const sim::EventLog& log,
                          const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_event_csv(log, f);
}

sim::EventLog read_event_csv(std::istream& is) {
  sim::EventLog log;
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("event CSV: empty input");
  if (line.rfind("t_s,", 0) != 0)
    throw std::runtime_error("event CSV: missing header");
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Split first so a short/long row is rejected as a field-count error
    // naming the line, not as a misleading conversion failure.
    std::vector<std::string> fields;
    std::istringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    sim::SignalingEvent e;
    try {
      if (fields.size() != 5)
        throw std::runtime_error("expected 5 fields, got " +
                                 std::to_string(fields.size()) + " in '" +
                                 line + "'");
      e.t_s = parse_double(fields[0], "t_s");
      const auto it = kind_by_name().find(fields[1]);
      if (it == kind_by_name().end())
        throw std::runtime_error("unknown kind '" + fields[1] + "'");
      e.kind = it->second;
      e.serving_cell = parse_int(fields[2], "serving_cell");
      e.target_cell = parse_int(fields[3], "target_cell");
      e.serving_snr_db = parse_double(fields[4], "serving_snr_db");
    } catch (const std::exception& ex) {
      throw std::runtime_error("event CSV line " +
                               std::to_string(line_no) + ": " + ex.what());
    }
    log.push_back(e);
  }
  return log;
}

sim::EventLog read_event_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_event_csv(f);
}

LogSummary summarize_event_log(const sim::EventLog& log) {
  LogSummary s;
  double first_ho = -1.0, last_ho = -1.0;
  for (const auto& e : log) {
    switch (e.kind) {
      case sim::EventKind::kHandoverComplete:
        ++s.handovers;
        if (first_ho < 0) first_ho = e.t_s;
        last_ho = e.t_s;
        break;
      case sim::EventKind::kRadioLinkFailure: ++s.failures; break;
      case sim::EventKind::kReportLost: ++s.report_losses; break;
      case sim::EventKind::kHoCommandLost: ++s.command_losses; break;
      case sim::EventKind::kReportRetransmit: ++s.report_retransmits; break;
      case sim::EventKind::kT304Expiry: ++s.t304_expiries; break;
      case sim::EventKind::kHoCommandDuplicate:
        ++s.duplicate_commands;
        break;
      case sim::EventKind::kFaultStart: ++s.fault_windows; break;
      case sim::EventKind::kDegradedEnter: ++s.degraded_episodes; break;
      case sim::EventKind::kPrepRetry: ++s.prep_retries; break;
      case sim::EventKind::kPrepReject: ++s.prep_rejects; break;
      case sim::EventKind::kPrepFallback: ++s.prep_fallbacks; break;
      case sim::EventKind::kPrepFailed: ++s.prep_failures; break;
      case sim::EventKind::kContextFetchFailed:
        ++s.context_fetch_failures;
        break;
      default: break;
    }
  }
  if (s.handovers >= 2)
    s.mean_handover_interval_s =
        (last_ho - first_ho) / static_cast<double>(s.handovers - 1);
  return s;
}

}  // namespace rem::trace
