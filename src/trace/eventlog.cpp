#include "trace/eventlog.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rem::trace {
namespace {

const std::map<std::string, sim::EventKind>& kind_by_name() {
  static const std::map<std::string, sim::EventKind> m = {
      {"measurement_triggered", sim::EventKind::kMeasurementTriggered},
      {"report_delivered", sim::EventKind::kReportDelivered},
      {"report_lost", sim::EventKind::kReportLost},
      {"ho_command_delivered", sim::EventKind::kHoCommandDelivered},
      {"ho_command_lost", sim::EventKind::kHoCommandLost},
      {"handover_complete", sim::EventKind::kHandoverComplete},
      {"radio_link_failure", sim::EventKind::kRadioLinkFailure},
      {"reestablished", sim::EventKind::kReestablished},
  };
  return m;
}

}  // namespace

void write_event_csv(const sim::EventLog& log, std::ostream& os) {
  os << "t_s,kind,serving_cell,target_cell,serving_snr_db\n";
  for (const auto& e : log) {
    os << e.t_s << ',' << sim::event_kind_name(e.kind) << ','
       << e.serving_cell << ',' << e.target_cell << ',' << e.serving_snr_db
       << '\n';
  }
}

void write_event_csv_file(const sim::EventLog& log,
                          const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_event_csv(log, f);
}

sim::EventLog read_event_csv(std::istream& is) {
  sim::EventLog log;
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("event CSV: empty input");
  if (line.rfind("t_s,", 0) != 0)
    throw std::runtime_error("event CSV: missing header");
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    sim::SignalingEvent e;
    try {
      std::getline(row, field, ',');
      e.t_s = std::stod(field);
      std::getline(row, field, ',');
      const auto it = kind_by_name().find(field);
      if (it == kind_by_name().end())
        throw std::runtime_error("unknown kind '" + field + "'");
      e.kind = it->second;
      std::getline(row, field, ',');
      e.serving_cell = std::stoi(field);
      std::getline(row, field, ',');
      e.target_cell = std::stoi(field);
      std::getline(row, field, ',');
      e.serving_snr_db = std::stod(field);
    } catch (const std::exception& ex) {
      throw std::runtime_error("event CSV line " +
                               std::to_string(line_no) + ": " + ex.what());
    }
    log.push_back(e);
  }
  return log;
}

sim::EventLog read_event_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_event_csv(f);
}

LogSummary summarize_event_log(const sim::EventLog& log) {
  LogSummary s;
  double first_ho = -1.0, last_ho = -1.0;
  for (const auto& e : log) {
    switch (e.kind) {
      case sim::EventKind::kHandoverComplete:
        ++s.handovers;
        if (first_ho < 0) first_ho = e.t_s;
        last_ho = e.t_s;
        break;
      case sim::EventKind::kRadioLinkFailure: ++s.failures; break;
      case sim::EventKind::kReportLost: ++s.report_losses; break;
      case sim::EventKind::kHoCommandLost: ++s.command_losses; break;
      default: break;
    }
  }
  if (s.handovers >= 2)
    s.mean_handover_interval_s =
        (last_ho - first_ho) / static_cast<double>(s.handovers - 1);
  return s;
}

}  // namespace rem::trace
