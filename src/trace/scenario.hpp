// Synthetic dataset / scenario generation.
//
// The paper evaluates against operational LTE captures (Table 4:
// Beijing-Taiyuan, Beijing-Shanghai, LA driving). Those traces are not
// redistributable, so this module synthesizes scenarios calibrated to the
// published statistics: handover intervals per speed bucket (Table 2),
// cell/site ratios and carrier plans (Table 4), operator policy mixes
// (multi-stage + proactive A3 + load-balancing A4/A5, §3.2). The
// simulator then exercises exactly the code paths the real traces would.
#pragma once

#include "common/rng.hpp"
#include "mobility/conflict.hpp"
#include "mobility/policy.hpp"
#include "sim/radio_env.hpp"
#include "sim/simulator.hpp"

#include <map>
#include <string>
#include <vector>

namespace rem::trace {

enum class Route {
  kLowMobilityLA,     ///< 0-100 km/h driving baseline
  kBeijingTaiyuan,    ///< fine-grained HSR, 200-300 km/h
  kBeijingShanghai,   ///< coarse-grained HSR, 200-350 km/h
};

std::string route_name(Route r);

/// How operator policies are sampled (§3.2 behaviours).
struct PolicyMix {
  /// Fraction of cells with a *proactive* intra-frequency A3 (offset < 0,
  /// the failure-mitigation practice that amplifies conflicts, Fig. 4).
  double proactive_a3_prob = 0.5;
  double proactive_offset_lo = -3.0;  ///< sampled offset range when proactive
  double proactive_offset_hi = -0.5;
  double normal_offset_lo = 1.0;
  double normal_offset_hi = 3.0;
  /// Fraction of cells with a load-balancing direct A4 toward another
  /// channel (the Fig. 3 conflict source).
  double load_balance_a4_prob = 0.25;
  double a4_threshold_lo = -112.0;
  double a4_threshold_hi = -104.0;
  /// Multi-stage: A2 guard threshold range and inter-frequency A5 pairs.
  double a2_guard_lo = -114.0;
  double a2_guard_hi = -106.0;
  double intra_ttt_s = 0.040;   ///< operator-shortened HSR values (§3.1)
  double inter_ttt_s = 0.640;
};

struct Scenario {
  Route route;
  double speed_kmh;
  sim::DeploymentConfig deployment;
  sim::PropagationConfig propagation;
  PolicyMix policy_mix;
  sim::SimConfig sim;
};

/// Preset scenario for a route at a given speed bucket (speed in km/h is
/// the bucket midpoint; deployment density scales so handover intervals
/// land in Table 2's range).
Scenario make_scenario(Route route, double speed_kmh,
                       double duration_s = 2000.0);

/// Sample legacy multi-stage policies for every cell of a deployment
/// (Fig. 1b shape + §3.2 proactive/load-balancing behaviours).
std::map<int, mobility::CellPolicy> synthesize_policies(
    const std::vector<sim::Cell>& cells, const PolicyMix& mix,
    common::Rng& rng);

/// Mobility::PolicyCell view of a deployment + policy map (input to the
/// conflict analyzer, Table 3).
std::vector<mobility::PolicyCell> to_policy_cells(
    const std::vector<sim::Cell>& cells,
    const std::map<int, mobility::CellPolicy>& policies);

}  // namespace rem::trace
