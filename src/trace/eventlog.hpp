// CSV export/import of simulated signaling event logs — the repo's
// equivalent of the operational datasets in Table 4. One row per
// control-plane event: time, kind, serving cell, target cell, serving SNR.
#pragma once

#include "sim/events.hpp"

#include <iosfwd>
#include <string>

namespace rem::trace {

/// Serialize an event log as CSV (with a header row).
void write_event_csv(const sim::EventLog& log, std::ostream& os);
void write_event_csv_file(const sim::EventLog& log,
                          const std::string& path);

/// Parse an event log written by write_event_csv. Throws
/// std::runtime_error on malformed input.
sim::EventLog read_event_csv(std::istream& is);
sim::EventLog read_event_csv_file(const std::string& path);

/// Summary statistics straight from a log (handover interval, failure
/// counts) — the first-pass analysis the paper runs over its captures.
struct LogSummary {
  std::size_t handovers = 0;
  std::size_t failures = 0;
  std::size_t report_losses = 0;
  std::size_t command_losses = 0;
  std::size_t report_retransmits = 0;
  std::size_t t304_expiries = 0;
  std::size_t duplicate_commands = 0;
  std::size_t fault_windows = 0;     ///< fault_start events
  std::size_t degraded_episodes = 0; ///< degraded_enter events
  // Backhaul preparation / context-fetch events (rem::net transport).
  std::size_t prep_retries = 0;
  std::size_t prep_rejects = 0;
  std::size_t prep_fallbacks = 0;
  std::size_t prep_failures = 0;
  std::size_t context_fetch_failures = 0;
  double mean_handover_interval_s = 0.0;
};
LogSummary summarize_event_log(const sim::EventLog& log);

}  // namespace rem::trace
