// Structured run tracing: a SpanTracer rides the sim::SimObserver hook and
// reassembles the simulator's flat signaling-event stream into per-attempt
// span trees — one span per handover attempt (phases: measure → decide →
// prepare → execute, "prepare" present only when the backhaul transport is
// enabled) and one per outage (RLF/T304 to re-establishment) — annotated
// with the fault windows active while each span was open.
//
// The tracer is an observer in the strict SimObserver sense: it draws no
// randomness and never mutates simulation state, so attaching it cannot
// change a run's results. Everything it records derives from *simulated*
// time, which makes its metrics bit-identical across reruns and thread
// counts; reconcile() cross-checks the reassembled spans against the
// simulator's own SimStats so trace and stats cannot drift apart silently.
//
// Span and metric names, units, and the phase-to-event mapping are
// documented in OBSERVABILITY.md.
#pragma once

#include "obs/registry.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"

#include <array>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace rem::obs {

/// One contiguous stage of a span, in simulated seconds.
struct SpanPhase {
  std::string name;    ///< "measure", "decide", "prepare", "execute", "outage"
  double start_s = 0.0;
  double end_s = 0.0;
};

/// One reassembled span: a handover attempt (kind "handover") from its
/// triggering measurement to its terminal event, or an outage (kind
/// "outage") from connectivity loss to re-establishment.
struct Span {
  std::string kind;     ///< "handover" | "outage"
  double start_s = 0.0;
  double end_s = 0.0;
  int serving = -1;     ///< serving cell at span open
  int target = -1;      ///< handover target (-1 for outages)
  /// Terminal event: handover spans end in "complete", "report_lost",
  /// "command_lost", "prep_failed", "t304_expiry", "rlf_interrupted", or
  /// "unfinished" (run ended mid-span); outage spans end in
  /// "reestablished" or "unfinished".
  std::string outcome;
  std::vector<SpanPhase> phases;
  /// Names of fault kinds whose windows overlapped this span.
  std::vector<std::string> faults;
  int report_retransmits = 0;
  int prep_retries = 0;          ///< timed-out HANDOVER REQUESTs re-sent
  bool used_fallback = false;    ///< preparation swung to the 2nd-best target
  bool duplicate_command = false;
  bool admission_rejected = false;  ///< target answered busy at least once
  int admission_retries = 0;        ///< hint-spaced re-sends after busy

  double duration_s() const { return end_s - start_s; }
};

/// Stable slug for a failure cause ("feedback_delay_loss", "missed_cell",
/// "ho_command_loss", "coverage_hole") used in metric names and JSON.
/// Throws std::invalid_argument on a value outside the enum.
std::string failure_cause_slug(sim::FailureCause c);

/// SimObserver that reassembles the event stream into spans (see the
/// file-top comment) and records span-derived metrics into a Registry.
/// One tracer observes exactly one run; construct a fresh one per run.
class SpanTracer : public sim::SimObserver {
 public:
  /// Metrics derived from the spans are recorded into `registry` (may be
  /// nullptr to trace without metrics). The registry pointer is borrowed
  /// and must outlive the tracer.
  explicit SpanTracer(Registry* registry = nullptr);

  /// SimObserver contract: no RNG draws, no simulation-state mutation.
  /// Fleet runs: a tracer observes exactly one UE, so host one tracer per
  /// UE behind sim::UeObserverDemux. The demux child only ever sees its
  /// own UE id; the tracer records it and stamps `"ue": k` onto every
  /// trace line (single-UE runs never call on_ue and emit no `ue` key,
  /// keeping pre-fleet traces byte-identical). A second, different UE id
  /// means the tracer was attached un-demuxed — it throws rather than
  /// silently interleaving two UEs' state machines into nonsense spans.
  void on_ue(int ue) override;
  void on_event(const sim::SignalingEvent& event) override;
  void on_tick(const sim::TickView& view) override;
  /// Closes dangling spans as "unfinished" and records the per-cause
  /// failure counters (`sim.failure_cause.*`), which exist only in
  /// SimStats — reconcile() independently cross-checks the totals.
  void on_run_end(sim::SimStats& stats) override;

  /// All closed spans, in close order. Complete only after on_run_end.
  const std::vector<Span>& spans() const { return spans_; }

  /// Cross-check the reassembled spans against the simulator's own
  /// statistics: handover attempts/completions, failure totals and
  /// per-cause splits, outage count and exact duration sum, latency
  /// histogram count, retransmit/duplicate/degraded counters. Returns one
  /// human-readable line per mismatch; empty means trace and stats agree
  /// exactly. Precondition: on_run_end has fired for this run.
  std::vector<std::string> reconcile(const sim::SimStats& stats) const;

  /// Write one JSON object per span (JSON Lines). `context` is an
  /// optional pre-rendered fragment of `"key": "value"` pairs (no braces,
  /// no trailing comma) merged into every line — the scenario runner uses
  /// it to stamp seed/manager/route onto each span.
  void write_trace_jsonl(std::ostream& os,
                         const std::string& context = "") const;

 private:
  void note_fault(std::size_t kind_index);
  void close_handover(double t, const std::string& outcome);
  void close_outage(double t, const std::string& outcome);

  Registry* registry_;
  int ue_ = -1;  ///< attributed UE in fleet runs; -1 until on_ue fires
  std::vector<Span> spans_;
  std::optional<Span> handover_;   ///< open handover attempt
  std::optional<Span> outage_;     ///< open outage
  std::array<bool, sim::kNumFaultKinds> fault_active_{};
  // Out-of-sync episode tracking (T310 armed interval), from on_tick.
  bool t310_prev_ = false;
  double t310_started_ = 0.0;
  double max_estimate_age_s_ = 0.0;
  double last_tick_s_ = 0.0;
  bool run_ended_ = false;
  // Independent tallies for reconcile(), kept even without a registry.
  struct Tally {
    std::uint64_t triggered = 0, report_delivered = 0, report_lost = 0,
                  attempts = 0, command_lost = 0, complete = 0, rlf = 0,
                  t304_expiry = 0, reestablished = 0, retransmits = 0,
                  duplicates = 0, degraded_enters = 0, fault_windows = 0;
    std::uint64_t prep_requests = 0, prep_retries = 0, prep_acks = 0,
                  prep_rejects = 0, prep_fallbacks = 0, prep_failures = 0,
                  ctx_fetch_failures = 0;
    std::uint64_t bs_jobs_done = 0, bs_queue_sheds = 0,
                  admission_rejects = 0, admission_retries = 0,
                  bs_crashes = 0, bs_restarts = 0, stale_ctx_responses = 0;
    std::uint64_t cascade_activations = 0, cascade_jobs = 0,
                  breaker_trips = 0, breaker_probes = 0, breaker_closes = 0;
    double bs_queue_wait_sum_s = 0.0;
    double prep_rtt_sum_s = 0.0;
    double outage_sum_s = 0.0;
    std::uint64_t latency_count = 0;
  } tally_;
};

}  // namespace rem::obs
