// Observability metrics registry (OBSERVABILITY.md documents every metric
// name, unit, and bucket layout this repo records).
//
// A Registry owns named instruments — monotonic Counters, last-value
// Gauges, fixed-bucket Histograms — with a strict hot-path/cold-path
// split: *registration* (name lookup) takes a mutex and may allocate,
// while *recording* (Counter::add, Gauge::set, Histogram::record) is a
// handful of relaxed atomic operations with no locks and no allocation.
// Call sites therefore register once (e.g. through a function-local
// static) and record through the returned stable pointer.
//
// Determinism: values recorded from simulated time (event timestamps,
// tick counts) are bit-identical run to run; values recorded from wall
// clocks (obs/profile.hpp timers) are not, and are kept in separate
// metrics so deterministic merges stay meaningful. Per-seed registries
// merged in seed order (bench::merge_seed_results) produce snapshots that
// are independent of worker-thread count.
//
// A disabled Registry (enabled = false) registers nothing: every getter
// returns nullptr without allocating, so gated call sites cost one branch.
// The process-wide global_registry() used by the DSP/crossband kernel
// timers is enabled by the REM_METRICS environment variable (see
// metrics_enabled()).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rem::obs {

/// Monotonically increasing event count.
///
/// Thread-safety: add/value are lock-free relaxed atomics; concurrent
/// adders never lose increments. Counters cannot decrease.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (e.g. a high-water mark). Snapshot merges take the
/// maximum of the two values, so gauges should record quantities where
/// "worst seen" is the meaningful aggregate.
///
/// Thread-safety: set/value are lock-free atomics; concurrent set calls
/// leave one of the written values (no tearing).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `edges` are ascending upper bounds; a sample v
/// lands in the first bucket with v <= edges[i], or the final overflow
/// bucket when v exceeds every edge (counts().size() == edges().size()+1).
/// Edges are fixed at registration so per-thread histograms of the same
/// metric always merge bucket-by-bucket.
///
/// Thread-safety: record() is lock-free (one relaxed fetch_add per sample
/// plus a CAS loop for the running sum); sum() under concurrent recording
/// is a racy-but-atomic read.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  /// Precondition: none (any finite double is accepted; NaN lands in the
  /// overflow bucket). Postcondition: exactly one bucket count and the
  /// running sum have grown.
  void record(double v) noexcept;

  const std::vector<double>& edges() const { return edges_; }
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// Per-bucket counts, index-aligned with edges() plus the overflow slot.
  std::vector<std::uint64_t> counts() const;

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one registry, merge-able and JSON round-trippable.
/// Instruments are kept sorted by name, so two snapshots of registries
/// that recorded the same values compare (and serialize) identically
/// regardless of registration order.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
/// Frozen Gauge value (merge takes the max; see Gauge).
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
/// Frozen Histogram contents plus derived statistics (quantiles).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;  ///< edges.size()+1 (overflow last)
  double sum = 0.0;

  std::uint64_t total_count() const;
  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket; the overflow bucket reports its lower edge.
  /// Returns 0 for an empty histogram.
  double quantile(double q) const;
};

/// One registry's instruments at a point in time, name-sorted per section;
/// the unit of merging (seed order) and of JSON serialization.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Union-by-name fold: counters and histogram buckets/sums add, gauges
  /// take the max. Throws std::invalid_argument when the same histogram
  /// name appears with different bucket edges. Merging in a fixed order
  /// (e.g. seed order) makes the result independent of thread count.
  void merge(const MetricsSnapshot& other);

  /// Lookup helpers; return nullptr when the name is absent.
  const CounterSnapshot* find_counter(const std::string& name) const;
  const GaugeSnapshot* find_gauge(const std::string& name) const;
  const HistogramSnapshot* find_histogram(const std::string& name) const;
};

/// Named-instrument registry. All getters are idempotent: the first call
/// with a name registers the instrument, later calls return the same
/// pointer, which stays valid for the registry's lifetime.
///
/// Thread-safety: getters serialize on an internal mutex; the returned
/// instruments record lock-free. snapshot() may run concurrently with
/// recording and sees each instrument's atomics individually.
class Registry {
 public:
  /// A disabled registry (enabled = false) never allocates: every getter
  /// returns nullptr and snapshot() is empty.
  explicit Registry(bool enabled = true) : enabled_(enabled) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  /// Get-or-register. Returns nullptr iff the registry is disabled.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Throws std::invalid_argument when `name` was already registered with
  /// different edges, or when edges are empty/not strictly ascending.
  Histogram* histogram(const std::string& name, std::vector<double> edges);

  MetricsSnapshot snapshot() const;

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry used by the kernel profiling timers
/// (obs/profile.hpp). Enabled iff metrics_enabled().
Registry& global_registry();

/// The REM_METRICS environment knob, read once at first use: "1" enables
/// the global registry (and makes bench::SeedRunOptions collect metrics by
/// default); unset/"0" disables. Changing the variable after first use has
/// no effect.
bool metrics_enabled();

/// Canonical bucket layouts (documented in OBSERVABILITY.md). Stable
/// across runs and threads so per-thread histograms always merge.
const std::vector<double>& kernel_time_buckets_ns();
const std::vector<double>& handover_latency_buckets_s();
const std::vector<double>& outage_duration_buckets_s();
const std::vector<double>& out_of_sync_buckets_s();
const std::vector<double>& backhaul_rtt_buckets_s();
const std::vector<double>& bs_queue_wait_buckets_s();

/// Flat-JSON codec, mirroring the golden-trace digest discipline: one
/// string-valued `"key": "value"` pair per line, doubles as %.17g (exact
/// round trip), and a reader that rejects malformed input with line and
/// context detail rather than guessing.
void write_metrics_json(const MetricsSnapshot& snap, std::ostream& os);
MetricsSnapshot read_metrics_json(std::istream& is);
MetricsSnapshot read_metrics_json_file(const std::string& path);
void write_metrics_json_file(const MetricsSnapshot& snap,
                             const std::string& path);

}  // namespace rem::obs
