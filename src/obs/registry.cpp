#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace rem::obs {
namespace {

// Lock-free add for the histogram running sum (std::atomic<double>::
// fetch_add is C++20 but not reliably lowered on every toolchain; the CAS
// loop is portable and contention here is a few threads at most).
void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string join_doubles(const std::vector<double>& vs) {
  std::string out;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) out.push_back(',');
    out += fmt_double(vs[i]);
  }
  return out;
}

std::string join_counts(const std::vector<std::uint64_t>& vs) {
  std::string out;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(vs[i]);
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!s.empty()) out.push_back(cur);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  if (edges_.empty())
    throw std::invalid_argument("Histogram: empty bucket edges");
  for (std::size_t i = 1; i < edges_.size(); ++i)
    if (!(edges_[i - 1] < edges_[i]))
      throw std::invalid_argument(
          "Histogram: bucket edges not strictly ascending at index " +
          std::to_string(i) + " (" + fmt_double(edges_[i - 1]) + " vs " +
          fmt_double(edges_[i]) + ")");
}

void Histogram::record(double v) noexcept {
  // First bucket whose upper edge admits v (v <= edge); NaN is explicitly
  // routed to the overflow bucket since it compares false with every edge.
  std::size_t idx;
  if (std::isnan(v)) {
    idx = edges_.size();
  } else {
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    idx = static_cast<std::size_t>(it - edges_.begin());
  }
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t HistogramSnapshot::total_count() const {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return total;
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      if (i >= edges.size()) return edges.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : edges[i - 1];
      const double hi = edges[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cum += c;
  }
  return edges.back();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  const auto merge_sorted = [](auto& mine, const auto& theirs, auto combine) {
    for (const auto& t : theirs) {
      const auto it = std::lower_bound(
          mine.begin(), mine.end(), t,
          [](const auto& a, const auto& b) { return a.name < b.name; });
      if (it != mine.end() && it->name == t.name)
        combine(*it, t);
      else
        mine.insert(it, t);
    }
  };
  merge_sorted(counters, other.counters,
               [](CounterSnapshot& a, const CounterSnapshot& b) {
                 a.value += b.value;
               });
  merge_sorted(gauges, other.gauges,
               [](GaugeSnapshot& a, const GaugeSnapshot& b) {
                 a.value = std::max(a.value, b.value);
               });
  merge_sorted(histograms, other.histograms,
               [](HistogramSnapshot& a, const HistogramSnapshot& b) {
                 if (a.edges != b.edges)
                   throw std::invalid_argument(
                       "MetricsSnapshot::merge: histogram '" + a.name +
                       "' has mismatched bucket edges");
                 for (std::size_t i = 0; i < a.counts.size(); ++i)
                   a.counts[i] += b.counts[i];
                 a.sum += b.sum;
               });
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    const std::string& name) const {
  for (const auto& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Counter* Registry::counter(const std::string& name) {
  if (!enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  if (!enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> edges) {
  if (!enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(edges)))
             .first;
  } else if (it->second->edges() != edges) {
    throw std::invalid_argument(
        "Registry::histogram: '" + name +
        "' re-registered with different bucket edges");
  }
  return it->second.get();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back({name, h->edges(), h->counts(), h->sum()});
  return snap;  // std::map iteration order keeps everything name-sorted
}

Registry& global_registry() {
  static Registry registry(metrics_enabled());
  return registry;
}

bool metrics_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("REM_METRICS");
    return env != nullptr && std::string_view(env) == "1";
  }();
  return enabled;
}

const std::vector<double>& kernel_time_buckets_ns() {
  // ~1-2.5-5 decade ladder from 1 us to 100 ms: SFFT on a 12x14 signaling
  // subgrid sits near the bottom, a 1200x560 offline SVD near the top.
  static const std::vector<double> edges = {
      1e3,   2.5e3, 5e3,   1e4,   2.5e4, 5e4,   1e5,   2.5e5,
      5e5,   1e6,   2.5e6, 5e6,   1e7,   2.5e7, 5e7,   1e8};
  return edges;
}

const std::vector<double>& handover_latency_buckets_s() {
  // Trigger-to-complete span of one handover attempt. The paper's Fig. 2a
  // feedback delays (~0.2-1.5 s) plus decision and execution land here.
  static const std::vector<double> edges = {0.05, 0.1, 0.15, 0.2, 0.3,
                                            0.4,  0.5, 0.75, 1.0, 1.5,
                                            2.0,  3.0, 5.0};
  return edges;
}

const std::vector<double>& outage_duration_buckets_s() {
  // RLF-to-camp durations: 0.3 s prepared-target fallback and 0.8 s full
  // re-establishment are the configured floors; blackouts stretch the tail.
  static const std::vector<double> edges = {0.1, 0.2, 0.3, 0.5, 0.8, 1.0,
                                            1.5, 2.0, 3.0, 5.0, 10.0};
  return edges;
}

const std::vector<double>& backhaul_rtt_buckets_s() {
  // Preparation request->ack round trips over the inter-BS backhaul. The
  // default link (4 ms base + 2 ms jitter each way, 10 ms tick
  // quantization) lands near 10-30 ms; delay-spike faults and retries
  // stretch into the hundreds of milliseconds.
  static const std::vector<double> edges = {0.01,  0.02, 0.03, 0.05,
                                            0.075, 0.1,  0.15, 0.25,
                                            0.5,   1.0,  2.0};
  return edges;
}

const std::vector<double>& bs_queue_wait_buckets_s() {
  // Time a signaling job spends in a BS's bounded FIFO queue before a
  // processing slot frees up. Uncontended jobs wait 0 (first bucket);
  // overload windows (20 ms background jobs, inflated service times)
  // push waits toward tens to hundreds of milliseconds.
  static const std::vector<double> edges = {0.001, 0.002, 0.005, 0.01,
                                            0.02,  0.05,  0.1,   0.2,
                                            0.5,   1.0};
  return edges;
}

const std::vector<double>& out_of_sync_buckets_s() {
  // T310-armed episode lengths; the default T310 of 0.45 s caps episodes
  // that end in RLF, recoveries can be shorter or (with N311 churn) longer.
  static const std::vector<double> edges = {0.05, 0.1,  0.2, 0.3,
                                            0.45, 0.6,  1.0, 2.0};
  return edges;
}

void write_metrics_json(const MetricsSnapshot& snap, std::ostream& os) {
  os << "{\n";
  os << "  \"schema\": \"rem-metrics-v1\"";
  for (const auto& c : snap.counters)
    os << ",\n  \"counter." << json_escape(c.name) << "\": \"" << c.value
       << "\"";
  for (const auto& g : snap.gauges)
    os << ",\n  \"gauge." << json_escape(g.name) << "\": \""
       << fmt_double(g.value) << "\"";
  for (const auto& h : snap.histograms) {
    const std::string key = "hist." + json_escape(h.name);
    os << ",\n  \"" << key << ".edges\": \"" << join_doubles(h.edges) << "\"";
    os << ",\n  \"" << key << ".counts\": \"" << join_counts(h.counts)
       << "\"";
    os << ",\n  \"" << key << ".sum\": \"" << fmt_double(h.sum) << "\"";
  }
  os << "\n}\n";
}

MetricsSnapshot read_metrics_json(std::istream& is) {
  // Minimal parser for exactly the flat shape write_metrics_json emits
  // (one `"key": "value"` pair per line inside a single object), with the
  // golden-digest error discipline: reject anything else with the line
  // number and content.
  MetricsSnapshot snap;
  // Histograms arrive as three keys; collect parts and assemble at the end.
  struct HistParts {
    std::string edges, counts, sum;
  };
  std::map<std::string, HistParts> hist_parts;
  std::string line;
  int line_no = 0;
  bool in_object = false, closed = false, have_schema = false;
  const auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("metrics JSON line " + std::to_string(line_no) +
                             ": " + why + " in '" + line + "'");
  };
  const auto unquote = [&](std::string_view sv) {
    if (sv.size() < 2 || sv.front() != '"' || sv.back() != '"')
      fail("expected a double-quoted string");
    std::string out;
    for (std::size_t i = 1; i + 1 < sv.size(); ++i) {
      if (sv[i] == '\\') {
        if (i + 2 >= sv.size()) fail("dangling escape");
        out.push_back(sv[++i]);
      } else {
        out.push_back(sv[i]);
      }
    }
    return out;
  };
  const auto parse_u64 = [&](const std::string& s) {
    if (s.empty()) fail("empty integer");
    for (char c : s)
      if (c < '0' || c > '9') fail("malformed integer '" + s + "'");
    return static_cast<std::uint64_t>(std::strtoull(s.c_str(), nullptr, 10));
  };
  const auto parse_double = [&](const std::string& s) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size())
      fail("malformed number '" + s + "'");
    return v;
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv(line);
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t'))
      sv.remove_prefix(1);
    while (!sv.empty() &&
           (sv.back() == ' ' || sv.back() == '\t' || sv.back() == '\r'))
      sv.remove_suffix(1);
    if (sv.empty()) continue;
    if (sv == "{") {
      if (in_object || closed) fail("unexpected '{'");
      in_object = true;
      continue;
    }
    if (sv == "}") {
      if (!in_object || closed) fail("unexpected '}'");
      closed = true;
      in_object = false;
      continue;
    }
    if (!in_object) fail("content outside the metrics object");
    if (sv.back() == ',') sv.remove_suffix(1);
    const std::size_t colon = sv.find("\": \"");
    if (colon == std::string_view::npos)
      fail("expected a '\"key\": \"value\"' pair");
    const std::string key = unquote(sv.substr(0, colon + 1));
    const std::string value = unquote(sv.substr(colon + 3));
    if (key == "schema") {
      if (value != "rem-metrics-v1")
        fail("unsupported schema '" + value + "'");
      have_schema = true;
    } else if (key.rfind("counter.", 0) == 0) {
      snap.counters.push_back({key.substr(8), parse_u64(value)});
    } else if (key.rfind("gauge.", 0) == 0) {
      snap.gauges.push_back({key.substr(6), parse_double(value)});
    } else if (key.rfind("hist.", 0) == 0) {
      const std::string rest = key.substr(5);
      const std::size_t dot = rest.rfind('.');
      if (dot == std::string::npos)
        fail("histogram key missing '.edges/.counts/.sum' suffix");
      const std::string name = rest.substr(0, dot);
      const std::string part = rest.substr(dot + 1);
      if (part == "edges")
        hist_parts[name].edges = value;
      else if (part == "counts")
        hist_parts[name].counts = value;
      else if (part == "sum")
        hist_parts[name].sum = value;
      else
        fail("unknown histogram part '" + part + "'");
    } else {
      fail("unknown key prefix for '" + key + "'");
    }
  }
  if (!closed)
    throw std::runtime_error("metrics JSON: unterminated object (no '}')");
  if (!have_schema)
    throw std::runtime_error("metrics JSON: missing the 'schema' key");
  for (const auto& [name, parts] : hist_parts) {
    if (parts.edges.empty() || parts.counts.empty() || parts.sum.empty())
      throw std::runtime_error("metrics JSON: histogram '" + name +
                               "' is missing edges, counts, or sum");
    HistogramSnapshot h;
    h.name = name;
    for (const auto& s : split_csv(parts.edges))
      h.edges.push_back(parse_double(s));
    for (const auto& s : split_csv(parts.counts))
      h.counts.push_back(parse_u64(s));
    h.sum = parse_double(parts.sum);
    if (h.counts.size() != h.edges.size() + 1)
      throw std::runtime_error(
          "metrics JSON: histogram '" + name + "' has " +
          std::to_string(h.counts.size()) + " counts for " +
          std::to_string(h.edges.size()) + " edges (want edges+1)");
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

MetricsSnapshot read_metrics_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("read_metrics_json_file: cannot open " + path);
  try {
    return read_metrics_json(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_metrics_json_file(const MetricsSnapshot& snap,
                             const std::string& path) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_metrics_json_file: cannot open " + path);
  write_metrics_json(snap, os);
  if (!os)
    throw std::runtime_error("write_metrics_json_file: write failed for " +
                             path);
}

}  // namespace rem::obs
