// Scoped RAII profiling timers for the DSP/crossband hot paths.
//
// A ScopedTimer records the wall-clock nanoseconds between construction
// and destruction into a Histogram. Gating is by pointer: passing nullptr
// (what every Registry getter returns when disabled) reduces the timer to
// two untaken branches — no clock reads, no atomics, no allocation — so
// instrumented kernels cost nothing when REM_METRICS is off.
//
// Wall-clock durations are inherently nondeterministic; kernel-time
// histograms therefore live in the process-wide global_registry() and are
// never part of the deterministic per-seed snapshots that the scenario
// runner merges (see registry.hpp).
//
// Typical call-site pattern (one registration, then lock-free recording):
//
//   static obs::Histogram* const timer_hist =
//       obs::global_registry().histogram("dsp.svd_ns",
//                                        obs::kernel_time_buckets_ns());
//   obs::ScopedTimer timer(timer_hist);
#pragma once

#include "obs/registry.hpp"

#include <chrono>

namespace rem::obs {

/// Records elapsed wall-clock ns into `hist` on destruction; a nullptr
/// histogram disables the timer entirely (no clock reads).
///
/// Thread-safety: each instance is single-threaded (stack-scoped); the
/// underlying Histogram::record is lock-free, so concurrent scopes on
/// different threads may share one histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) noexcept : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ != nullptr)
      hist_->record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Convenience for kernel call sites: the named histogram with the
/// canonical kernel-time buckets from the global registry, or nullptr when
/// metrics are disabled. Intended for one-time function-local-static
/// initialization (the lookup takes the registry mutex).
inline Histogram* kernel_timer(const std::string& name) {
  return global_registry().histogram(name, kernel_time_buckets_ns());
}

}  // namespace rem::obs
