#include "obs/tracer.hpp"

#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace rem::obs {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string failure_cause_slug(sim::FailureCause c) {
  switch (c) {
    case sim::FailureCause::kFeedbackDelayLoss: return "feedback_delay_loss";
    case sim::FailureCause::kMissedCell: return "missed_cell";
    case sim::FailureCause::kHoCommandLoss: return "ho_command_loss";
    case sim::FailureCause::kCoverageHole: return "coverage_hole";
  }
  throw std::invalid_argument(
      "failure_cause_slug: invalid FailureCause value " +
      std::to_string(static_cast<int>(c)));
}

SpanTracer::SpanTracer(Registry* registry) : registry_(registry) {}

void SpanTracer::note_fault(std::size_t kind_index) {
  const std::string name =
      sim::fault_kind_name(static_cast<sim::FaultKind>(kind_index));
  const auto annotate = [&](std::optional<Span>& span) {
    if (!span) return;
    auto& fs = span->faults;
    if (std::find(fs.begin(), fs.end(), name) == fs.end()) fs.push_back(name);
  };
  annotate(handover_);
  annotate(outage_);
}

void SpanTracer::close_handover(double t, const std::string& outcome) {
  if (!handover_) return;
  Span span = std::move(*handover_);
  handover_.reset();
  if (!span.phases.empty() && span.phases.back().end_s < span.phases.back().start_s)
    span.phases.back().end_s = t;
  span.end_s = t;
  span.outcome = outcome;
  if (outcome == "complete") {
    ++tally_.latency_count;
    if (registry_ != nullptr) {
      registry_
          ->histogram("sim.handover_latency_s",
                      handover_latency_buckets_s())
          ->record(span.duration_s());
      for (const auto& p : span.phases)
        registry_
            ->histogram("sim.handover_phase." + p.name + "_s",
                        handover_latency_buckets_s())
            ->record(p.end_s - p.start_s);
    }
  }
  spans_.push_back(std::move(span));
}

void SpanTracer::close_outage(double t, const std::string& outcome) {
  if (!outage_) return;
  Span span = std::move(*outage_);
  outage_.reset();
  span.end_s = t;
  span.outcome = outcome;
  span.phases.front().end_s = t;
  if (outcome == "reestablished") {
    ++tally_.reestablished;
    tally_.outage_sum_s += span.duration_s();
    if (registry_ != nullptr)
      registry_
          ->histogram("sim.outage_duration_s", outage_duration_buckets_s())
          ->record(span.duration_s());
  }
  spans_.push_back(std::move(span));
}

void SpanTracer::on_ue(int ue) {
  if (ue_ >= 0 && ue != ue_)
    throw std::logic_error(
        "SpanTracer observes exactly one UE, but saw ue=" +
        std::to_string(ue) + " after ue=" + std::to_string(ue_) +
        "; host one tracer per UE behind sim::UeObserverDemux");
  ue_ = ue;
}

void SpanTracer::on_event(const sim::SignalingEvent& e) {
  // Phases are opened with end_s < start_s as an "open" sentinel; the
  // closing transition stamps the real end.
  const auto open_phase = [&](const std::string& name, double t) {
    handover_->phases.push_back({name, t, t - 1.0});
  };
  const auto end_phase = [&](double t) {
    // Close only an *open* phase (end < start sentinel): a transition that
    // fires with no phase open must not stretch an already-closed one.
    if (handover_ && !handover_->phases.empty() &&
        handover_->phases.back().end_s < handover_->phases.back().start_s)
      handover_->phases.back().end_s = t;
  };
  switch (e.kind) {
    case sim::EventKind::kMeasurementTriggered: {
      ++tally_.triggered;
      // The simulator never triggers a new attempt while one is live, but
      // close defensively rather than leak an open span.
      close_handover(e.t_s, "superseded");
      Span span;
      span.kind = "handover";
      span.start_s = e.t_s;
      span.serving = e.serving_cell;
      span.target = e.target_cell;
      for (std::size_t k = 0; k < sim::kNumFaultKinds; ++k)
        if (fault_active_[k])
          span.faults.push_back(
              sim::fault_kind_name(static_cast<sim::FaultKind>(k)));
      handover_ = std::move(span);
      open_phase("measure", e.t_s);
      break;
    }
    case sim::EventKind::kReportRetransmit:
      ++tally_.retransmits;
      if (handover_) ++handover_->report_retransmits;
      break;
    case sim::EventKind::kReportDelivered:
      ++tally_.report_delivered;
      if (handover_) {
        end_phase(e.t_s);
        open_phase("decide", e.t_s);
      }
      break;
    case sim::EventKind::kReportLost:
      ++tally_.report_lost;
      close_handover(e.t_s, "report_lost");
      break;
    case sim::EventKind::kHoCommandDuplicate:
      ++tally_.duplicates;
      if (handover_) handover_->duplicate_command = true;
      break;
    case sim::EventKind::kHoCommandDelivered:
      ++tally_.attempts;
      if (handover_) {
        end_phase(e.t_s);
        open_phase("execute", e.t_s);
      }
      break;
    case sim::EventKind::kHoCommandLost:
      ++tally_.command_lost;
      close_handover(e.t_s, "command_lost");
      break;
    case sim::EventKind::kHandoverComplete:
      ++tally_.complete;
      close_handover(e.t_s, "complete");
      break;
    case sim::EventKind::kT304Expiry:
      ++tally_.t304_expiry;
      close_handover(e.t_s, "t304_expiry");
      // T304 expiry starts an outage (re-establishment on the prepared
      // target), exactly like an RLF does.
      close_outage(e.t_s, "superseded");
      outage_ = Span{};
      outage_->kind = "outage";
      outage_->start_s = e.t_s;
      outage_->serving = e.serving_cell;
      outage_->phases.push_back({"outage", e.t_s, e.t_s - 1.0});
      for (std::size_t k = 0; k < sim::kNumFaultKinds; ++k)
        if (fault_active_[k])
          outage_->faults.push_back(
              sim::fault_kind_name(static_cast<sim::FaultKind>(k)));
      break;
    case sim::EventKind::kRadioLinkFailure:
      ++tally_.rlf;
      close_handover(e.t_s, "rlf_interrupted");
      close_outage(e.t_s, "superseded");
      outage_ = Span{};
      outage_->kind = "outage";
      outage_->start_s = e.t_s;
      outage_->serving = e.serving_cell;
      outage_->phases.push_back({"outage", e.t_s, e.t_s - 1.0});
      for (std::size_t k = 0; k < sim::kNumFaultKinds; ++k)
        if (fault_active_[k])
          outage_->faults.push_back(
              sim::fault_kind_name(static_cast<sim::FaultKind>(k)));
      break;
    case sim::EventKind::kReestablished:
      close_outage(e.t_s, "reestablished");
      break;
    case sim::EventKind::kFaultStart:
      ++tally_.fault_windows;
      if (e.target_cell >= 0 &&
          e.target_cell < static_cast<int>(sim::kNumFaultKinds)) {
        fault_active_[static_cast<std::size_t>(e.target_cell)] = true;
        note_fault(static_cast<std::size_t>(e.target_cell));
      }
      break;
    case sim::EventKind::kFaultEnd:
      if (e.target_cell >= 0 &&
          e.target_cell < static_cast<int>(sim::kNumFaultKinds))
        fault_active_[static_cast<std::size_t>(e.target_cell)] = false;
      break;
    case sim::EventKind::kDegradedEnter:
      ++tally_.degraded_enters;
      break;
    case sim::EventKind::kDegradedExit:
      break;
    case sim::EventKind::kPrepRequest:
      ++tally_.prep_requests;
      if (handover_) {
        // Open the prepare phase on the first request; a fallback re-send
        // arrives with the prepare phase already open and extends it.
        const bool prepare_open =
            !handover_->phases.empty() &&
            handover_->phases.back().name == "prepare" &&
            handover_->phases.back().end_s < handover_->phases.back().start_s;
        if (!prepare_open) {
          end_phase(e.t_s);
          open_phase("prepare", e.t_s);
        }
      }
      break;
    case sim::EventKind::kPrepRetry:
      ++tally_.prep_retries;
      if (handover_) ++handover_->prep_retries;
      break;
    case sim::EventKind::kPrepAck:
      ++tally_.prep_acks;
      // The event carries the request->ack round trip in the SNR slot.
      // The prepare phase stays open past the ack: it runs until the
      // command reaches the UE, keeping the phase timeline contiguous.
      tally_.prep_rtt_sum_s += e.serving_snr_db;
      if (registry_ != nullptr)
        registry_->histogram("sim.backhaul.prep_rtt_s",
                             backhaul_rtt_buckets_s())
            ->record(e.serving_snr_db);
      break;
    case sim::EventKind::kPrepReject:
      ++tally_.prep_rejects;
      break;
    case sim::EventKind::kPrepFallback:
      ++tally_.prep_fallbacks;
      if (handover_) handover_->used_fallback = true;
      break;
    case sim::EventKind::kPrepFailed:
      ++tally_.prep_failures;
      close_handover(e.t_s, "prep_failed");
      break;
    case sim::EventKind::kContextFetchFailed:
      ++tally_.ctx_fetch_failures;
      break;
    case sim::EventKind::kBsQueueShed:
      ++tally_.bs_queue_sheds;
      break;
    case sim::EventKind::kBsJobDone:
      // The SNR slot carries the job's queue wait in seconds.
      ++tally_.bs_jobs_done;
      tally_.bs_queue_wait_sum_s += e.serving_snr_db;
      if (registry_ != nullptr)
        registry_->histogram("sim.bs.queue_wait_s",
                             bs_queue_wait_buckets_s())
            ->record(e.serving_snr_db);
      break;
    case sim::EventKind::kAdmissionReject:
      ++tally_.admission_rejects;
      if (handover_) handover_->admission_rejected = true;
      break;
    case sim::EventKind::kAdmissionRetry:
      ++tally_.admission_retries;
      if (handover_) ++handover_->admission_retries;
      break;
    case sim::EventKind::kBsCrash:
      ++tally_.bs_crashes;
      break;
    case sim::EventKind::kBsRestart:
      ++tally_.bs_restarts;
      break;
    case sim::EventKind::kContextStale:
      ++tally_.stale_ctx_responses;
      break;
    case sim::EventKind::kCascadeInject:
      // World-global broadcast; the payload (injected job count) rides the
      // snr slot, mirroring SimStats::cascade_jobs_injected.
      ++tally_.cascade_activations;
      tally_.cascade_jobs += static_cast<std::uint64_t>(e.serving_snr_db);
      break;
    case sim::EventKind::kBreakerTrip:
      ++tally_.breaker_trips;
      break;
    case sim::EventKind::kBreakerProbe:
      ++tally_.breaker_probes;
      break;
    case sim::EventKind::kBreakerClose:
      ++tally_.breaker_closes;
      break;
  }
}

void SpanTracer::on_tick(const sim::TickView& v) {
  last_tick_s_ = v.t_s;
  if (v.estimate_age_s > max_estimate_age_s_)
    max_estimate_age_s_ = v.estimate_age_s;
  // Out-of-sync episodes: the T310-armed interval, closed on the first
  // tick where the timer is no longer running (recovery or RLF — the RLF
  // tick itself reports t310_running == false, so episodes that end in
  // failure close at the failure time).
  if (v.t310_running && !t310_prev_) {
    t310_started_ = v.t_s;
  } else if (!v.t310_running && t310_prev_) {
    if (registry_ != nullptr)
      registry_->histogram("sim.out_of_sync_s", out_of_sync_buckets_s())
          ->record(v.t_s - t310_started_);
  }
  t310_prev_ = v.t310_running;
}

void SpanTracer::on_run_end(sim::SimStats& stats) {
  close_handover(stats.sim_time_s, "unfinished");
  close_outage(stats.sim_time_s, "unfinished");
  run_ended_ = true;
  if (registry_ == nullptr) return;
  // Counters are published once per run rather than per event: the values
  // derive from simulated time, so a post-run publish is equivalent to
  // live increments for every snapshot taken after the run.
  const auto put = [&](const char* name, std::uint64_t v) {
    registry_->counter(name)->add(v);
  };
  put("sim.handover.triggered", tally_.triggered);
  put("sim.handover.attempts", tally_.attempts);
  put("sim.handover.complete", tally_.complete);
  put("sim.handover.report_lost", tally_.report_lost);
  put("sim.handover.command_lost", tally_.command_lost);
  put("sim.handover.t304_expiry", tally_.t304_expiry);
  put("sim.report.delivered", tally_.report_delivered);
  put("sim.report.retransmits", tally_.retransmits);
  put("sim.rlf", tally_.rlf);
  put("sim.reestablished", tally_.reestablished);
  put("sim.command.duplicates", tally_.duplicates);
  put("sim.degraded.enters", tally_.degraded_enters);
  put("sim.fault.windows", tally_.fault_windows);
  put("sim.prep.requests", tally_.prep_requests);
  put("sim.prep.retries", tally_.prep_retries);
  put("sim.prep.acks", tally_.prep_acks);
  put("sim.prep.rejects", tally_.prep_rejects);
  put("sim.prep.fallbacks", tally_.prep_fallbacks);
  put("sim.prep.failures", tally_.prep_failures);
  put("sim.ctx_fetch.failures", tally_.ctx_fetch_failures);
  put("sim.bs.jobs_served", tally_.bs_jobs_done);
  put("sim.bs.queue_shed", tally_.bs_queue_sheds);
  put("sim.bs.admission_rejects", tally_.admission_rejects);
  put("sim.bs.admission_retries", tally_.admission_retries);
  put("sim.bs.crashes", tally_.bs_crashes);
  put("sim.bs.restarts", tally_.bs_restarts);
  put("sim.bs.stale_context", tally_.stale_ctx_responses);
  put("sim.cascade.activations", tally_.cascade_activations);
  put("sim.cascade.jobs_injected", tally_.cascade_jobs);
  put("sim.breaker.trips", tally_.breaker_trips);
  put("sim.breaker.probes", tally_.breaker_probes);
  put("sim.breaker.closes", tally_.breaker_closes);
  // Failure causes exist only in SimStats (events do not carry the Table 2
  // classification); reconcile() checks the totals are consistent with the
  // event-derived failure count.
  for (const auto& [cause, n] : stats.failures_by_cause)
    registry_->counter("sim.failure_cause." + failure_cause_slug(cause))
        ->add(static_cast<std::uint64_t>(n));
  const auto age = registry_->gauge("sim.estimate_age_max_s");
  if (max_estimate_age_s_ > age->value()) age->set(max_estimate_age_s_);
}

std::vector<std::string> SpanTracer::reconcile(
    const sim::SimStats& stats) const {
  std::vector<std::string> out;
  if (!run_ended_) {
    out.push_back("reconcile: on_run_end has not fired yet");
    return out;
  }
  const auto check_u = [&](const char* what, std::uint64_t trace_v,
                           long long stats_v) {
    if (static_cast<long long>(trace_v) != stats_v)
      out.push_back(std::string(what) + ": trace " +
                    std::to_string(trace_v) + " vs stats " +
                    std::to_string(stats_v));
  };
  check_u("handover attempts", tally_.attempts, stats.handovers);
  check_u("handover completions", tally_.complete,
          stats.successful_handovers);
  check_u("failures (rlf + t304)", tally_.rlf + tally_.t304_expiry,
          stats.failures);
  long long cause_sum = 0;
  for (const auto& [cause, n] : stats.failures_by_cause) cause_sum += n;
  check_u("failure-cause sum", tally_.rlf + tally_.t304_expiry, cause_sum);
  check_u("outages closed", tally_.reestablished,
          static_cast<long long>(stats.outage_durations_s.size()));
  check_u("feedback deliveries", tally_.report_delivered,
          static_cast<long long>(stats.feedback_delays_s.size()));
  check_u("latency-histogram count", tally_.latency_count,
          stats.successful_handovers);
  check_u("report retransmits", tally_.retransmits,
          stats.report_retransmits);
  check_u("duplicate commands", tally_.duplicates,
          stats.duplicate_commands);
  check_u("degraded enters", tally_.degraded_enters, stats.degraded_enters);
  check_u("prep requests", tally_.prep_requests, stats.prep_requests);
  check_u("prep retries", tally_.prep_retries, stats.prep_retries);
  check_u("prep acks", tally_.prep_acks, stats.prep_acks);
  check_u("prep rejects", tally_.prep_rejects, stats.prep_rejects);
  check_u("prep fallbacks", tally_.prep_fallbacks, stats.prep_fallbacks);
  check_u("prep failures", tally_.prep_failures, stats.prep_failures);
  check_u("context fetch failures", tally_.ctx_fetch_failures,
          stats.context_fetch_failures);
  check_u("BS jobs served", tally_.bs_jobs_done, stats.bs_jobs_served);
  check_u("BS queue sheds", tally_.bs_queue_sheds, stats.bs_queue_shed);
  check_u("admission busy rejects", tally_.admission_rejects,
          stats.admission_rejects);
  check_u("admission backoff retries", tally_.admission_retries,
          stats.admission_backoff_retries);
  check_u("BS crashes", tally_.bs_crashes, stats.bs_crashes);
  check_u("stale context responses", tally_.stale_ctx_responses,
          stats.stale_context_responses);
  check_u("cascade activations", tally_.cascade_activations,
          stats.cascade_activations);
  check_u("cascade jobs injected", tally_.cascade_jobs,
          stats.cascade_jobs_injected);
  check_u("breaker trips", tally_.breaker_trips, stats.breaker_trips);
  check_u("breaker probes", tally_.breaker_probes, stats.breaker_probes);
  check_u("breaker closes", tally_.breaker_closes, stats.breaker_closes);
  // Queue waits accumulate the identical doubles in the identical event
  // order on both sides — bit-exact, like the RTT sum.
  if (tally_.bs_queue_wait_sum_s != stats.bs_queue_wait_sum_s)
    out.push_back("BS queue wait sum: trace " +
                  fmt_double(tally_.bs_queue_wait_sum_s) + " vs stats " +
                  fmt_double(stats.bs_queue_wait_sum_s));
  // Both sides accumulate the identical RTT doubles in event order, so the
  // sums must match bit-exactly, like the outage-duration sum below.
  if (tally_.prep_rtt_sum_s != stats.prep_rtt_sum_s)
    out.push_back("prep RTT sum: trace " + fmt_double(tally_.prep_rtt_sum_s) +
                  " vs stats " + fmt_double(stats.prep_rtt_sum_s));
  // Durations use the same subtraction of the same event timestamps the
  // simulator used, so the sums must match bit-exactly, not approximately.
  double stats_outage_sum = 0.0;
  for (double v : stats.outage_durations_s) stats_outage_sum += v;
  if (tally_.outage_sum_s != stats_outage_sum)
    out.push_back("outage duration sum: trace " +
                  fmt_double(tally_.outage_sum_s) + " vs stats " +
                  fmt_double(stats_outage_sum));
  return out;
}

void SpanTracer::write_trace_jsonl(std::ostream& os,
                                   const std::string& context) const {
  for (const auto& s : spans_) {
    os << "{";
    if (!context.empty()) os << context << ", ";
    if (ue_ >= 0) os << "\"ue\": " << ue_ << ", ";
    os << "\"kind\": \"" << s.kind << "\", \"start_s\": \""
       << fmt_double(s.start_s) << "\", \"end_s\": \"" << fmt_double(s.end_s)
       << "\", \"serving\": " << s.serving << ", \"target\": " << s.target
       << ", \"outcome\": \"" << s.outcome << "\"";
    if (s.report_retransmits > 0)
      os << ", \"retransmits\": " << s.report_retransmits;
    if (s.prep_retries > 0) os << ", \"prep_retries\": " << s.prep_retries;
    if (s.used_fallback) os << ", \"used_fallback\": true";
    if (s.duplicate_command) os << ", \"duplicate_command\": true";
    if (s.admission_rejected) os << ", \"admission_rejected\": true";
    if (s.admission_retries > 0)
      os << ", \"admission_retries\": " << s.admission_retries;
    os << ", \"phases\": [";
    for (std::size_t i = 0; i < s.phases.size(); ++i) {
      const auto& p = s.phases[i];
      os << (i ? ", " : "") << "{\"name\": \"" << p.name
         << "\", \"start_s\": \"" << fmt_double(p.start_s)
         << "\", \"end_s\": \"" << fmt_double(p.end_s) << "\"}";
    }
    os << "]";
    if (!s.faults.empty()) {
      os << ", \"faults\": [";
      for (std::size_t i = 0; i < s.faults.size(); ++i)
        os << (i ? ", " : "") << "\"" << s.faults[i] << "\"";
      os << "]";
    }
    os << "}\n";
  }
}

}  // namespace rem::obs
