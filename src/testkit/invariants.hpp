// Runtime invariant checker for the network simulator.
//
// The paper's core claims are invariants, not point estimates: repaired
// pure-A3 policies are loop-free (Theorems 2/3), the delay-Doppler overlay
// never loses or double-delivers signaling it claims to carry (§5.1), and
// stale cross-band estimates must trip the degraded-mode fallback (§5.2).
// InvariantChecker subscribes to the simulator's observation hook
// (sim/observer.hpp) and machine-checks those properties over *every* run:
//
//  - event timestamps are monotonic and cell indices stay in range;
//  - handover conservation: every delivered command opens exactly one
//    execution that closes as exactly one completion or T304 expiry, and
//    at end of run attempts = successes + expiries + (<=1 in flight);
//  - timer-FSM legality: T310 arms only after N310 consecutive
//    out-of-sync ticks, never runs during execution or outage, and an RLF
//    only fires after T310 ran its full budget; re-establishment respects
//    the T304/RLF search times; no signaling is pending while idle in
//    outage or during execution;
//  - loop accounting: the checker independently recomputes loop handovers
//    and episodes from the event stream and cross-validates SimStats;
//    optionally (repaired pure-A3 REM policies on fault-free runs) it
//    asserts realized loop-freedom — no *persistent* loop episodes;
//  - degraded-mode legality: entering degraded mode requires estimates
//    staler than the configured bound at that tick; fault-free runs must
//    never see fault windows or degraded transitions;
//  - backhaul preparation legality (transport-enabled runs): prep events
//    flow only on a live idle link, every delivered command follows an
//    acked HANDOVER REQUEST, retries stay inside the configured budget
//    (no retry storms), ack round trips respect the 2x-one-way-latency
//    physical floor, and context-fetch failures occur only in outage;
//  - BS capacity legality (capacity-model runs): per-tick queue occupancy
//    never exceeds slots + queue_capacity, job conservation holds
//    (submitted = served + shed + flushed + in-flight), queue-wait totals
//    reconcile bit-for-bit against the event stream, admission busy
//    rejects answer an outstanding request, at most one BS is crashed at
//    a time (unless a region_outage schedule legally stacks a correlated
//    blackout), no handover completes against a dead BS, and crash
//    recovery respects the re-establishment search-time floors (crashes
//    surface as RLFs, which the existing timer checks already bound);
//  - cascade/breaker legality (cascade-resilience runs): every
//    kCascadeInject carries a positive job payload and reconciles against
//    SimStats job conservation; the per-target circuit-breaker FSM
//    replayed from trip/probe/close events stays legal (probe only from
//    open, close only from half-open) and matches the per-tick
//    breakers_open count; the run-end load-advertisement age never
//    exceeds the configured staleness bound;
//  - TCP sanity: every recorded outage maps to a TCP stall bounded by
//    outage <= stall <= outage + max RTO + RTT + base RTO.
//
// Violations accumulate with rich context (timestamp + state) and are
// surfaced both through violations()/report() and as the structured
// SimStats::invariant_violations counter written in on_run_end().
#pragma once

#include "sim/observer.hpp"
#include "sim/simulator.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rem::testkit {

struct CheckerConfig {
  /// Thresholds mirrored from the run's SimConfig (n310/t310_s/n311,
  /// reestablishment times, loop window, duration).
  sim::SimConfig sim;
  /// Number of cells in the deployment; 0 skips index-range checks.
  std::size_t num_cells = 0;
  /// When >= 0, degraded-mode entries must coincide with estimate age
  /// above this bound (RemConfig::estimate_staleness_s). Negative skips.
  double staleness_bound_s = -1.0;
  /// Manager has no degraded fallback (legacy): any degraded transition
  /// is a violation.
  bool expect_no_degraded = false;
  /// A fault schedule is active: fault windows and degraded transitions
  /// are legal. When false, any of those events is a violation.
  bool faults_expected = false;
  /// Repaired pure-A3 policy on a fault-free run (REM): persistent loop
  /// episodes (two or more consecutive loop handovers) violate the
  /// realized Theorem-2/3 guarantee.
  bool expect_loop_free = false;
  /// Cap on recorded violation messages (the counter keeps counting).
  std::size_t max_recorded = 32;
};

class InvariantChecker final : public sim::SimObserver {
 public:
  explicit InvariantChecker(CheckerConfig cfg);

  void on_event(const sim::SignalingEvent& e) override;
  void on_tick(const sim::TickView& v) override;
  void on_run_end(sim::SimStats& stats) override;

  /// Total violations found so far (may exceed violations().size()).
  int violation_count() const { return violation_count_; }
  /// Recorded violation messages, each with timestamp + state context.
  const std::vector<std::string>& violations() const { return violations_; }
  /// All recorded violations joined into one newline-separated report;
  /// empty string when the run was clean.
  std::string report() const;

  /// Loop accounting recomputed from the event stream (cross-validated
  /// against SimStats in on_run_end).
  int observed_loop_handovers() const { return loop_handovers_; }
  int observed_loop_episodes() const { return loop_episodes_; }
  /// Episodes with >= 2 consecutive loop handovers — a persistent
  /// ping-pong, the paper's Theorem-2 failure mode.
  int persistent_loop_episodes() const { return persistent_episodes_; }

 private:
  void violate(double t, const std::string& what);
  void check_event(const sim::SignalingEvent& e);
  void check_tick(const sim::TickView& v);

  CheckerConfig cfg_;
  int violation_count_ = 0;
  std::vector<std::string> violations_;

  // --- Event-stream state machine mirror ---
  bool saw_tick_ = false;
  bool saw_event_ = false;
  double last_event_t_ = 0.0;
  bool exec_open_ = false;       ///< command delivered, not yet closed
  bool outage_open_ = false;     ///< RLF/T304 failure, not yet reestablished
  double outage_opened_t_ = 0.0;
  double outage_min_reestablish_s_ = 0.0;
  int commands_delivered_ = 0;
  int completions_ = 0;
  int t304_expiries_ = 0;
  int rlf_events_ = 0;
  int reestablished_ = 0;
  int report_retransmits_ = 0;
  int duplicate_commands_ = 0;
  int degraded_enters_ = 0;
  int degraded_exits_ = 0;
  int fault_starts_ = 0;
  int fault_ends_ = 0;
  bool pending_degraded_enter_check_ = false;

  // --- Backhaul preparation mirror (cfg.sim.backhaul.enabled runs) ---
  bool prep_open_ = false;        ///< HANDOVER REQUEST outstanding
  bool prep_acked_ = false;       ///< an ack arrived, command not yet out
  int prep_retries_this_attempt_ = 0;
  int prep_requests_ = 0;
  int prep_retries_ = 0;
  int prep_acks_ = 0;
  int prep_rejects_ = 0;
  int prep_fallbacks_ = 0;
  int prep_failures_ = 0;
  int ctx_fetch_failures_ = 0;

  // --- BS capacity / crash-restart mirror ---
  int bs_queue_sheds_ = 0;
  int bs_jobs_done_ = 0;
  int bs_jobs_queued_ = 0;        ///< done events with nonzero queue wait
  double bs_queue_wait_sum_s_ = 0.0;
  int admission_rejects_ = 0;
  int admission_retries_ = 0;
  int bs_crashes_ = 0;
  int bs_restarts_ = 0;
  int stale_ctx_responses_ = 0;
  /// Currently-dead BSs. At most one under plain crash-restart; a
  /// region_outage schedule legally stacks several.
  std::set<int> crashed_cells_;

  // --- Cascade / circuit-breaker mirror ---
  int cascade_injects_ = 0;       ///< kCascadeInject events
  long long cascade_jobs_ = 0;    ///< sum of injected-job payloads
  int breaker_trips_ = 0;
  int breaker_probes_ = 0;
  int breaker_closes_ = 0;
  /// Per-target breaker FSM replayed from the event stream:
  /// 0 = closed, 1 = open, 2 = half-open. Keyed by target cell.
  std::map<int, int> breaker_state_;
  int breakers_open_mirror_ = 0;  ///< cells currently in state 1

  // --- Loop bookkeeping mirror (simulator's recent-serving window) ---
  std::vector<std::pair<double, int>> recent_serving_;
  bool current_loop_episode_ = false;
  int loop_handovers_ = 0;
  int loop_episodes_ = 0;
  int episode_run_length_ = 0;   ///< loop handovers in the current episode
  int persistent_episodes_ = 0;

  // --- Tick-stream timer mirror ---
  bool have_prev_tick_ = false;
  sim::TickView prev_;
  double t310_armed_t_ = -1.0;
  int events_this_tick_ = 0;          ///< events since the last TickView
  double events_tick_min_t_ = 0.0;
  double events_tick_max_t_ = 0.0;
  bool reestablished_this_tick_ = false;
};

/// Fleet-level invariants over a Simulator::run_fleet result, checked
/// after the run (the per-UE InvariantChecker instances — one per UE via
/// sim::UeObserverDemux — cover the within-UE FSM properties):
///
///  - per-UE handover conservation holds even under shared-BS contention
///    (successes + execution expiries never exceed attempts; counters are
///    non-negative);
///  - every recorded per-UE event carries that UE's id and per-UE logs
///    are time-sorted;
///  - additive aggregate fields equal the sum over per-UE stats, global
///    fields (bs_crashes, sim_time_s) equal the per-UE max, and
///    bs_crashes agrees across all UEs (crash windows are global);
///  - the merged event log has no cross-UE timestamp regression
///    (non-decreasing t_s) and filtering it by UE id reproduces each
///    per-UE log exactly, in order.
///
/// Returns one message per violation; empty means clean.
std::vector<std::string> fleet_invariant_report(const sim::FleetResult& r);

}  // namespace rem::testkit
