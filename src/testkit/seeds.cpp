#include "testkit/seeds.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rem::testkit {
namespace {

std::uint64_t parse_seed(const std::string& tok) {
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument(
        "REM_TEST_SEEDS: expected an unsigned integer, got '" + tok + "'");
  try {
    return std::stoull(tok);
  } catch (const std::exception&) {
    throw std::invalid_argument("REM_TEST_SEEDS: value out of range: '" +
                                tok + "'");
  }
}

}  // namespace

std::vector<std::uint64_t> property_seeds(
    std::vector<std::uint64_t> defaults) {
  const char* env = std::getenv("REM_TEST_SEEDS");
  if (env == nullptr || *env == '\0') return defaults;
  const std::string spec(env);

  if (spec.find(',') == std::string::npos) {
    // Bare count: widen the sweep in place, anchored at the first default
    // so the stock seeds stay covered.
    const std::uint64_t n = parse_seed(spec);
    if (n == 0)
      throw std::invalid_argument("REM_TEST_SEEDS: count must be >= 1");
    const std::uint64_t start = defaults.empty() ? 1 : defaults.front();
    std::vector<std::uint64_t> seeds;
    seeds.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) seeds.push_back(start + i);
    return seeds;
  }

  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    seeds.push_back(parse_seed(spec.substr(pos, end - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return seeds;
}

bool invariants_enabled() {
  const char* env = std::getenv("REM_CHECK_INVARIANTS");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false" || v == "OFF" ||
           v == "FALSE");
}

}  // namespace rem::testkit
