// Golden-trace regression corpus: canonical (scenario, seed, fault
// schedule) triples, exact digests of what the simulator produced for
// them, and a flat-JSON codec so the digests can live in version control.
//
// A digest captures every scalar of both managers' SimStats plus an exact
// hash of the full signaling event log, so any behavioral drift — a
// reordered RNG draw, a changed timer path, a different failure
// classification — shows up as a named field diff rather than a silently
// shifted benchmark number. `scripts/update_goldens.sh` regenerates the
// corpus when a change is intentional.
#pragma once

#include "sim/simulator.hpp"
#include "trace/scenario.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace rem::testkit {

/// One canonical corpus entry. `fault_preset` names a schedule from
/// golden_fault_preset(); the digest file is `<name>.json`.
struct GoldenCase {
  std::string name;
  trace::Route route = trace::Route::kLowMobilityLA;
  double speed_kmh = 60.0;
  double duration_s = 120.0;
  std::uint64_t seed = 1;
  std::string fault_preset = "none";
};

/// The committed corpus: all three routes across the four speed buckets
/// (low-mobility LA, 220-250, 300, 330 km/h), fault-free and mixed-fault
/// schedules, distinct seeds.
std::vector<GoldenCase> golden_corpus();

/// One fleet corpus entry: a multi-UE run_fleet scenario digested for
/// regression. The digest file is `<name>.json` alongside the single-UE
/// corpus; names carry a `fleet_` prefix.
struct FleetGoldenCase {
  std::string name;
  trace::Route route = trace::Route::kBeijingShanghai;
  double speed_kmh = 300.0;
  double duration_s = 60.0;
  std::uint64_t seed = 15;
  std::string fault_preset = "none";
  int fleet_size = 8;
};

/// The committed fleet corpus: a small fleet contending for BS capacity
/// under the overload/shed schedule, and a fleet riding out backhaul
/// partitions. Fleet digests are thread-count-stable by construction
/// (per-UE stats merge in UE-id order).
std::vector<FleetGoldenCase> fleet_golden_corpus();

/// Named fault schedules shared by the generator and the replay test.
/// "none" is empty; "mixed" scripts one window of every fault kind inside
/// [0, horizon_s) plus a seeded random duplication spec. Throws
/// std::invalid_argument for unknown names.
sim::FaultConfig golden_fault_preset(const std::string& name,
                                     double horizon_s);

/// Order-sensitive FNV-1a hash over the raw bits of every event field.
/// Hashing bits (not formatted text) keeps the digest independent of
/// float-printing choices while still catching any numeric drift.
std::uint64_t hash_event_log(const sim::EventLog& log);

/// Exact, diffable snapshot of one golden run: ordered (field, value)
/// pairs. Values are pre-formatted strings — integers in decimal, doubles
/// as %.17g (lossless round-trip), hashes in hex — so comparison is exact
/// string equality with no reparsing tolerance.
struct TraceDigest {
  std::string case_name;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Build the digest for a golden case from both managers' stats (event
/// logs must have been recorded: SimConfig::record_events on).
TraceDigest make_digest(const GoldenCase& c, const sim::SimStats& legacy,
                        const sim::SimStats& rem);

/// Build the digest for a fleet case from both managers' fleet results:
/// the full aggregate stats per manager plus a compact per-UE pin
/// (handovers, failures, event-log hash — bit-exact) so drift in any
/// single UE's behavior names that UE.
TraceDigest make_fleet_digest(const FleetGoldenCase& c,
                              const sim::FleetResult& legacy,
                              const sim::FleetResult& rem);

/// Flat-JSON codec for digests (one string value per field, sorted as
/// produced). The reader rejects malformed input with line/context
/// detail, mirroring the trace CSV parser's error discipline.
void write_digest_json(const TraceDigest& d, std::ostream& os);
TraceDigest read_digest_json(std::istream& is);
TraceDigest read_digest_json_file(const std::string& path);
void write_digest_json_file(const TraceDigest& d, const std::string& path);

/// Per-field comparison: one human-readable line per missing, extra, or
/// differing field. Empty result means the digests match exactly.
std::vector<std::string> diff_digests(const TraceDigest& expected,
                                      const TraceDigest& actual);

}  // namespace rem::testkit
