#include "testkit/golden.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace rem::testkit {
namespace {

std::string fmt_int(long long v) { return std::to_string(v); }

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_stats_fields(const std::string& prefix, const sim::SimStats& s,
                         TraceDigest& d) {
  auto put = [&](const std::string& k, std::string v) {
    d.fields.emplace_back(prefix + k, std::move(v));
  };
  put("handovers", fmt_int(s.handovers));
  put("successful_handovers", fmt_int(s.successful_handovers));
  put("failures", fmt_int(s.failures));
  const auto cause = [&](sim::FailureCause c) {
    const auto it = s.failures_by_cause.find(c);
    return fmt_int(it != s.failures_by_cause.end() ? it->second : 0);
  };
  put("failures.feedback", cause(sim::FailureCause::kFeedbackDelayLoss));
  put("failures.missed_cell", cause(sim::FailureCause::kMissedCell));
  put("failures.cmd_loss", cause(sim::FailureCause::kHoCommandLoss));
  put("failures.hole", cause(sim::FailureCause::kCoverageHole));
  put("loop_handovers", fmt_int(s.loop_handovers));
  put("loop_episodes", fmt_int(s.loop_episodes));
  put("intra_freq_loop_episodes", fmt_int(s.intra_freq_loop_episodes));
  put("conflict_loop_episodes", fmt_int(s.conflict_loop_episodes));
  put("conflict_loop_handovers", fmt_int(s.conflict_loop_handovers));
  put("t304_expiries", fmt_int(s.t304_expiries));
  put("t304_fallback_success", fmt_int(s.t304_fallback_success));
  put("report_retransmits", fmt_int(s.report_retransmits));
  put("duplicate_commands", fmt_int(s.duplicate_commands));
  put("prep_requests", fmt_int(s.prep_requests));
  put("prep_retries", fmt_int(s.prep_retries));
  put("prep_acks", fmt_int(s.prep_acks));
  put("prep_rejects", fmt_int(s.prep_rejects));
  put("prep_fallbacks", fmt_int(s.prep_fallbacks));
  put("prep_failures", fmt_int(s.prep_failures));
  put("prep_rtt_sum_s", fmt_double(s.prep_rtt_sum_s));
  put("context_fetch_failures", fmt_int(s.context_fetch_failures));
  put("backhaul_sent", fmt_int(static_cast<long long>(s.backhaul_sent)));
  put("backhaul_delivered",
      fmt_int(static_cast<long long>(s.backhaul_delivered)));
  put("backhaul_dropped_loss",
      fmt_int(static_cast<long long>(s.backhaul_dropped_loss)));
  put("backhaul_dropped_partition",
      fmt_int(static_cast<long long>(s.backhaul_dropped_partition)));
  put("backhaul_dropped_queue",
      fmt_int(static_cast<long long>(s.backhaul_dropped_queue)));
  put("backhaul_dropped_crash",
      fmt_int(static_cast<long long>(s.backhaul_dropped_crash)));
  put("backhaul_duplicated",
      fmt_int(static_cast<long long>(s.backhaul_duplicated)));
  put("backhaul_reordered",
      fmt_int(static_cast<long long>(s.backhaul_reordered)));
  put("backhaul_latency_sum_s", fmt_double(s.backhaul_latency_sum_s));
  put("bs_jobs_submitted", fmt_int(s.bs_jobs_submitted));
  put("bs_jobs_served", fmt_int(s.bs_jobs_served));
  put("bs_jobs_queued", fmt_int(s.bs_jobs_queued));
  put("bs_queue_shed", fmt_int(s.bs_queue_shed));
  put("bs_jobs_flushed", fmt_int(s.bs_jobs_flushed));
  put("bs_jobs_inflight_end", fmt_int(s.bs_jobs_inflight_end));
  put("bs_queue_wait_sum_s", fmt_double(s.bs_queue_wait_sum_s));
  put("admission_rejects", fmt_int(s.admission_rejects));
  put("admission_backoff_retries", fmt_int(s.admission_backoff_retries));
  put("bs_crashes", fmt_int(s.bs_crashes));
  put("bs_crash_dropped_msgs", fmt_int(s.bs_crash_dropped_msgs));
  put("stale_context_responses", fmt_int(s.stale_context_responses));
  // Cascade-resilience counters are emitted only when non-zero so the
  // pre-existing corpus stays byte-identical: a case that never schedules
  // region_outage/cascade_overload or arms the resilience knobs digests
  // exactly as it did before those counters existed.
  if (s.cascade_jobs_injected != 0)
    put("cascade_jobs_injected", fmt_int(s.cascade_jobs_injected));
  if (s.cascade_activations != 0)
    put("cascade_activations", fmt_int(s.cascade_activations));
  if (s.breaker_trips != 0) put("breaker_trips", fmt_int(s.breaker_trips));
  if (s.breaker_probes != 0) put("breaker_probes", fmt_int(s.breaker_probes));
  if (s.breaker_closes != 0) put("breaker_closes", fmt_int(s.breaker_closes));
  if (s.breaker_skips != 0) put("breaker_skips", fmt_int(s.breaker_skips));
  if (s.load_ads_received != 0)
    put("load_ads_received", fmt_int(s.load_ads_received));
  if (s.storm_jitter_applied != 0)
    put("storm_jitter_applied", fmt_int(s.storm_jitter_applied));
  if (s.load_ad_age_max_s != 0.0)
    put("load_ad_age_max_s", fmt_double(s.load_ad_age_max_s));
  put("degraded_enters", fmt_int(s.degraded_enters));
  put("degraded_time_s", fmt_double(s.degraded_time_s));
  put("avg_handover_interval_s", fmt_double(s.avg_handover_interval_s));
  put("mean_throughput_bps", fmt_double(s.mean_throughput_bps));
  put("downtime_fraction", fmt_double(s.downtime_fraction));
  put("invariant_violations", fmt_int(s.invariant_violations));
  put("outage_count", fmt_int(static_cast<long long>(
                          s.outage_durations_s.size())));
  double outage_sum = 0.0;
  for (double v : s.outage_durations_s) outage_sum += v;
  put("outage_sum_s", fmt_double(outage_sum));
  put("feedback_count", fmt_int(static_cast<long long>(
                            s.feedback_delays_s.size())));
  double fb_sum = 0.0;
  for (double v : s.feedback_delays_s) fb_sum += v;
  put("feedback_sum_s", fmt_double(fb_sum));
  put("pre_failure_snr_count",
      fmt_int(static_cast<long long>(s.pre_failure_snrs_db.size())));
  put("event_count", fmt_int(static_cast<long long>(s.events.size())));
  put("event_hash", fmt_hex(hash_event_log(s.events)));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::vector<GoldenCase> golden_corpus() {
  using trace::Route;
  return {
      {"la_30_s9_none", Route::kLowMobilityLA, 30.0, 120.0, 9, "none"},
      {"la_60_s1_none", Route::kLowMobilityLA, 60.0, 120.0, 1, "none"},
      {"la_60_s2_mixed", Route::kLowMobilityLA, 60.0, 120.0, 2, "mixed"},
      {"bt_220_s10_mixed", Route::kBeijingTaiyuan, 220.0, 120.0, 10,
       "mixed"},
      {"bt_250_s3_none", Route::kBeijingTaiyuan, 250.0, 120.0, 3, "none"},
      {"bt_250_s4_mixed", Route::kBeijingTaiyuan, 250.0, 120.0, 4, "mixed"},
      {"bs_300_s5_none", Route::kBeijingShanghai, 300.0, 120.0, 5, "none"},
      {"bs_300_s6_mixed", Route::kBeijingShanghai, 300.0, 120.0, 6, "mixed"},
      {"bs_330_s7_none", Route::kBeijingShanghai, 330.0, 120.0, 7, "none"},
      {"bs_330_s8_mixed", Route::kBeijingShanghai, 330.0, 120.0, 8, "mixed"},
      {"bs_300_s11_backhaul_partition", Route::kBeijingShanghai, 300.0,
       120.0, 11, "backhaul_partition"},
      {"bt_250_s12_backhaul_loss_reorder", Route::kBeijingTaiyuan, 250.0,
       120.0, 12, "backhaul_loss_reorder"},
      {"bs_300_s13_bs_overload_shed", Route::kBeijingShanghai, 300.0, 120.0,
       13, "bs_overload_shed"},
      {"bt_250_s14_bs_crash_restart", Route::kBeijingTaiyuan, 250.0, 120.0,
       14, "bs_crash_restart"},
  };
}

std::vector<FleetGoldenCase> fleet_golden_corpus() {
  using trace::Route;
  return {
      {"fleet_bs_300_s15_bs_overload_shed", Route::kBeijingShanghai, 300.0,
       60.0, 15, "bs_overload_shed", 6},
      {"fleet_bt_250_s16_backhaul_partition", Route::kBeijingTaiyuan, 250.0,
       60.0, 16, "backhaul_partition", 8},
      {"fleet_bt_250_s17_region_outage", Route::kBeijingTaiyuan, 250.0,
       60.0, 17, "region_outage", 8},
      {"fleet_bs_300_s18_cascade_storm", Route::kBeijingShanghai, 300.0,
       60.0, 18, "cascade_storm", 6},
  };
}

sim::FaultConfig golden_fault_preset(const std::string& name,
                                     double horizon_s) {
  if (name == "none") return {};
  if (name == "mixed") {
    // One scripted window of every fault kind, spread across the horizon
    // (fractions of the horizon so shorter runs still see every kind),
    // plus a seeded random duplication spec exercising the generated path.
    sim::FaultConfig fc;
    fc.windows = {
        {sim::FaultKind::kSignalingLoss, 0.10 * horizon_s, 2.0, 0.6},
        {sim::FaultKind::kSignalingLoss, 0.55 * horizon_s, 2.0, 0.8},
        {sim::FaultKind::kPilotOutage, 0.25 * horizon_s, 3.0, 4.0},
        {sim::FaultKind::kProcessingStall, 0.40 * horizon_s, 2.0, 0.35},
        {sim::FaultKind::kCoverageBlackout, 0.70 * horizon_s, 1.5, 25.0},
    };
    sim::RandomFaultSpec dup;
    dup.kind = sim::FaultKind::kCommandDuplication;
    dup.mean_gap_s = 0.4 * horizon_s;
    dup.duration_lo_s = 1.0;
    dup.duration_hi_s = 3.0;
    dup.magnitude_lo = 0.3;
    dup.magnitude_hi = 0.7;
    fc.random = {dup};
    return fc;
  }
  if (name == "backhaul_partition") {
    // Two backhaul partition windows, each spanning a tenth of the run so
    // they reliably straddle handover preparations — the first long enough
    // to exhaust the prep retry budget (fallback/failure paths), the
    // second shorter — plus a delay spike between them.
    sim::FaultConfig fc;
    fc.windows = {
        {sim::FaultKind::kBackhaulPartition, 0.15 * horizon_s,
         0.10 * horizon_s, 1.0},
        {sim::FaultKind::kBackhaulDelay, 0.45 * horizon_s, 4.0, 0.020},
        {sim::FaultKind::kBackhaulPartition, 0.70 * horizon_s,
         0.05 * horizon_s, 1.0},
    };
    return fc;
  }
  if (name == "backhaul_loss_reorder") {
    // Sustained 10% extra frame loss (the acceptance bound) over most of
    // the horizon, with a heavier burst on top and a delay wobble. The
    // golden runner pairs this preset with a lossy BackhaulConfig
    // (reorder/duplicate probabilities raised) so both transport paths
    // land in the digest.
    sim::FaultConfig fc;
    fc.windows = {
        {sim::FaultKind::kBackhaulLoss, 0.10 * horizon_s, 0.60 * horizon_s,
         0.10},
        {sim::FaultKind::kBackhaulLoss, 0.75 * horizon_s, 2.0, 0.50},
        {sim::FaultKind::kBackhaulDelay, 0.30 * horizon_s, 3.0, 0.008},
    };
    return fc;
  }
  if (name == "bs_overload_shed") {
    // Two capacity squeezes on the serving-side control plane: a full
    // saturation window (u = 1.0 fills every slot and queue position, so
    // UE jobs are shed) and a long near-saturation window (u = 0.85:
    // long queue waits and admission busy-rejects, not sheds).
    sim::FaultConfig fc;
    fc.windows = {
        {sim::FaultKind::kBsOverload, 0.15 * horizon_s, 0.30 * horizon_s,
         1.0},
        {sim::FaultKind::kBsOverload, 0.60 * horizon_s, 0.25 * horizon_s,
         0.85},
    };
    return fc;
  }
  if (name == "bs_crash_restart") {
    // Two crash-restart windows on the serving BS (magnitude < 2 picks
    // whatever is serving at window open): a long one where the UE's
    // context fetch hits the still-dead BS (dropped in flight, fetch
    // times out), and a short one where the victim restarts before the
    // fetch arrives — answering stale, the restart-recovery path.
    sim::FaultConfig fc;
    fc.windows = {
        {sim::FaultKind::kBsCrashRestart, 0.25 * horizon_s,
         0.08 * horizon_s, 1.0},
        {sim::FaultKind::kBsCrashRestart, 0.65 * horizon_s, 1.5, 1.0},
    };
    return fc;
  }
  if (name == "region_outage") {
    // Two correlated domain blackouts with staggered member onsets
    // (magnitude < 2 picks the serving cell's whole failure domain at
    // window open); the second window is shorter, exercising revive
    // ordering while the fleet is still re-attaching.
    sim::FaultConfig fc;
    fc.domain_size = 3;
    fc.region_stagger_s = 0.02 * horizon_s;
    fc.windows = {
        {sim::FaultKind::kRegionOutage, 0.25 * horizon_s, 0.12 * horizon_s,
         1.0},
        {sim::FaultKind::kRegionOutage, 0.65 * horizon_s, 0.08 * horizon_s,
         1.0},
    };
    return fc;
  }
  if (name == "cascade_storm") {
    // A serving-BS crash whose shed load floods the surviving neighbors:
    // the cascade window brackets the crash (its trigger) so background
    // jobs keep topping the neighbors up while the fleet steers around
    // them; breakers and storm damping are armed by the golden runner.
    sim::FaultConfig fc;
    fc.cascade_neighbor_radius = 2;
    fc.windows = {
        {sim::FaultKind::kBsCrashRestart, 0.25 * horizon_s,
         0.15 * horizon_s, 1.0},
        {sim::FaultKind::kCascadeOverload, 0.25 * horizon_s,
         0.40 * horizon_s, 0.9},
    };
    return fc;
  }
  throw std::invalid_argument("golden_fault_preset: unknown preset '" +
                              name + "'");
}

std::uint64_t hash_event_log(const sim::EventLog& log) {
  // FNV-1a, 64-bit. Mix every field of every event through the raw bytes
  // of its in-memory value; doubles hash their bit pattern.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(&bits, sizeof(bits));
  };
  const auto mix_int = [&](int v) {
    const std::int64_t w = v;
    mix(&w, sizeof(w));
  };
  for (const auto& e : log) {
    mix_double(e.t_s);
    mix_int(static_cast<int>(e.kind));
    mix_int(e.serving_cell);
    mix_int(e.target_cell);
    mix_double(e.serving_snr_db);
  }
  return h;
}

TraceDigest make_digest(const GoldenCase& c, const sim::SimStats& legacy,
                        const sim::SimStats& rem) {
  TraceDigest d;
  d.case_name = c.name;
  d.fields.emplace_back("route", trace::route_name(c.route));
  d.fields.emplace_back("speed_kmh", fmt_double(c.speed_kmh));
  d.fields.emplace_back("duration_s", fmt_double(c.duration_s));
  d.fields.emplace_back("seed", fmt_int(static_cast<long long>(c.seed)));
  d.fields.emplace_back("faults", c.fault_preset);
  append_stats_fields("legacy.", legacy, d);
  append_stats_fields("rem.", rem, d);
  return d;
}

TraceDigest make_fleet_digest(const FleetGoldenCase& c,
                              const sim::FleetResult& legacy,
                              const sim::FleetResult& rem) {
  TraceDigest d;
  d.case_name = c.name;
  d.fields.emplace_back("route", trace::route_name(c.route));
  d.fields.emplace_back("speed_kmh", fmt_double(c.speed_kmh));
  d.fields.emplace_back("duration_s", fmt_double(c.duration_s));
  d.fields.emplace_back("seed", fmt_int(static_cast<long long>(c.seed)));
  d.fields.emplace_back("faults", c.fault_preset);
  d.fields.emplace_back("fleet_size", fmt_int(c.fleet_size));
  const auto append_fleet = [&](const std::string& prefix,
                                const sim::FleetResult& r) {
    append_stats_fields(prefix + "fleet.", r.aggregate, d);
    for (std::size_t k = 0; k < r.per_ue.size(); ++k) {
      const auto& s = r.per_ue[k];
      const std::string ue = prefix + "ue" + std::to_string(k) + ".";
      d.fields.emplace_back(ue + "handovers", fmt_int(s.handovers));
      d.fields.emplace_back(ue + "failures", fmt_int(s.failures));
      d.fields.emplace_back(ue + "event_hash",
                            fmt_hex(hash_event_log(s.events)));
    }
  };
  append_fleet("legacy.", legacy);
  append_fleet("rem.", rem);
  return d;
}

void write_digest_json(const TraceDigest& d, std::ostream& os) {
  os << "{\n";
  os << "  \"case\": \"" << json_escape(d.case_name) << "\"";
  for (const auto& [k, v] : d.fields)
    os << ",\n  \"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
  os << "\n}\n";
}

void write_digest_json_file(const TraceDigest& d, const std::string& path) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_digest_json_file: cannot open " + path);
  write_digest_json(d, os);
  if (!os)
    throw std::runtime_error("write_digest_json_file: write failed for " +
                             path);
}

TraceDigest read_digest_json(std::istream& is) {
  // Minimal parser for exactly the flat shape write_digest_json emits:
  // one `"key": "value"` pair per line inside a single object. Anything
  // else is rejected with the offending line number and content.
  TraceDigest d;
  std::string line;
  int line_no = 0;
  bool in_object = false, closed = false, have_case = false;
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error("digest JSON line " + std::to_string(line_no) +
                             ": " + why + " in '" + line + "'");
  };
  const auto unquote = [&](std::string_view sv) {
    if (sv.size() < 2 || sv.front() != '"' || sv.back() != '"')
      fail("expected a double-quoted string");
    std::string out;
    for (std::size_t i = 1; i + 1 < sv.size(); ++i) {
      if (sv[i] == '\\') {
        if (i + 2 >= sv.size()) fail("dangling escape");
        out.push_back(sv[++i]);
      } else {
        out.push_back(sv[i]);
      }
    }
    return out;
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv(line);
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t'))
      sv.remove_prefix(1);
    while (!sv.empty() && (sv.back() == ' ' || sv.back() == '\t' ||
                           sv.back() == '\r'))
      sv.remove_suffix(1);
    if (sv.empty()) continue;
    if (sv == "{") {
      if (in_object || closed) fail("unexpected '{'");
      in_object = true;
      continue;
    }
    if (sv == "}") {
      if (!in_object || closed) fail("unexpected '}'");
      closed = true;
      in_object = false;
      continue;
    }
    if (!in_object) fail("content outside the digest object");
    if (sv.back() == ',') sv.remove_suffix(1);
    const std::size_t colon = sv.find("\": \"");
    if (colon == std::string_view::npos)
      fail("expected a '\"key\": \"value\"' pair");
    const std::string key = unquote(sv.substr(0, colon + 1));
    const std::string value = unquote(sv.substr(colon + 3));
    if (key == "case") {
      if (have_case) fail("duplicate 'case' key");
      d.case_name = value;
      have_case = true;
    } else {
      d.fields.emplace_back(key, value);
    }
  }
  if (!closed)
    throw std::runtime_error("digest JSON: unterminated object (no '}')");
  if (!have_case)
    throw std::runtime_error("digest JSON: missing the 'case' key");
  return d;
}

TraceDigest read_digest_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("read_digest_json_file: cannot open " + path);
  try {
    return read_digest_json(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<std::string> diff_digests(const TraceDigest& expected,
                                      const TraceDigest& actual) {
  std::vector<std::string> out;
  if (expected.case_name != actual.case_name)
    out.push_back("case: expected '" + expected.case_name + "', got '" +
                  actual.case_name + "'");
  std::map<std::string, std::string> exp, act;
  for (const auto& [k, v] : expected.fields) exp[k] = v;
  for (const auto& [k, v] : actual.fields) act[k] = v;
  for (const auto& [k, v] : exp) {
    const auto it = act.find(k);
    if (it == act.end())
      out.push_back(k + ": missing from the new run (expected '" + v + "')");
    else if (it->second != v)
      out.push_back(k + ": expected '" + v + "', got '" + it->second + "'");
  }
  for (const auto& [k, v] : act)
    if (exp.find(k) == exp.end())
      out.push_back(k + ": new field not in the golden digest (value '" + v +
                    "')");
  return out;
}

}  // namespace rem::testkit
