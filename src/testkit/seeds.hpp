// Environment-driven test knobs: seed sweeps and the invariant-checker
// kill switch. Kept in testkit so tests and benches share one parser.
#pragma once

#include <cstdint>
#include <vector>

namespace rem::testkit {

/// Seed list for randomized property tests. Reads the `REM_TEST_SEEDS`
/// environment variable:
///  - unset or empty  -> `defaults`, unchanged;
///  - a bare count N  -> N consecutive seeds starting at defaults.front()
///    (or 1 when `defaults` is empty);
///  - a comma list    -> exactly those seed values.
/// Throws std::invalid_argument on anything unparseable — a typo in CI
/// configuration must fail loudly, not silently shrink the sweep.
std::vector<std::uint64_t> property_seeds(
    std::vector<std::uint64_t> defaults);

/// Invariant-checker master switch: true unless the `REM_CHECK_INVARIANTS`
/// environment variable is set to `0`, `off`, or `false`. The checker
/// defaults ON in every test and bench run.
bool invariants_enabled();

}  // namespace rem::testkit
