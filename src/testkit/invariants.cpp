#include "testkit/invariants.hpp"

#include "sim/tcp.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <sstream>

namespace rem::testkit {
namespace {

/// Slack for timer-duration comparisons: `t` accumulates via repeated
/// `t += dt`, so durations carry a few ULP of drift per thousand ticks.
constexpr double kTimeEps = 1e-6;

}  // namespace

InvariantChecker::InvariantChecker(CheckerConfig cfg) : cfg_(std::move(cfg)) {}

void InvariantChecker::violate(double t, const std::string& what) {
  ++violation_count_;
  if (violations_.size() >= cfg_.max_recorded) return;
  std::ostringstream os;
  os << "[t=" << std::fixed << std::setprecision(3) << t << "s] " << what
     << " | state: exec=" << exec_open_ << " outage=" << outage_open_
     << " cmds=" << commands_delivered_ << " complete=" << completions_
     << " t304=" << t304_expiries_ << " rlf=" << rlf_events_
     << " reest=" << reestablished_ << " loops=" << loop_handovers_ << "/"
     << loop_episodes_;
  violations_.push_back(os.str());
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations_[i];
  }
  if (violation_count_ > static_cast<int>(violations_.size()))
    os << "\n... and "
       << violation_count_ - static_cast<int>(violations_.size())
       << " more violation(s)";
  return violation_count_ > 0 ? os.str() : std::string();
}

void InvariantChecker::on_event(const sim::SignalingEvent& e) {
  check_event(e);
}

void InvariantChecker::on_tick(const sim::TickView& v) {
  check_tick(v);
}

void InvariantChecker::check_event(const sim::SignalingEvent& e) {
  using sim::EventKind;
  const double t = e.t_s;

  // Timestamps never go backwards within the event stream, and no event
  // may carry a timestamp at or before the last completed tick.
  if (saw_event_ && t < last_event_t_ - kTimeEps)
    violate(t, "event timestamp went backwards (prev " +
                   std::to_string(last_event_t_) + "s, kind " +
                   sim::event_kind_name(e.kind) + ")");
  if (have_prev_tick_ && t <= prev_.t_s - kTimeEps)
    violate(t, "event timestamp predates the last completed tick (" +
                   std::to_string(prev_.t_s) + "s)");
  saw_event_ = true;
  last_event_t_ = t;

  // Cell-index ranges. Fault-window events reuse target_cell as the
  // FaultKind, everything else indexes the deployment (or -1 = n/a).
  const bool fault_event =
      e.kind == EventKind::kFaultStart || e.kind == EventKind::kFaultEnd;
  if (cfg_.num_cells > 0) {
    if (e.serving_cell < 0 ||
        e.serving_cell >= static_cast<int>(cfg_.num_cells))
      violate(t, "serving_cell " + std::to_string(e.serving_cell) +
                     " out of range in " + sim::event_kind_name(e.kind));
    if (!fault_event &&
        (e.target_cell < -1 ||
         e.target_cell >= static_cast<int>(cfg_.num_cells)))
      violate(t, "target_cell " + std::to_string(e.target_cell) +
                     " out of range in " + sim::event_kind_name(e.kind));
  }
  if (fault_event && (e.target_cell < 0 ||
                      e.target_cell >= static_cast<int>(sim::kNumFaultKinds)))
    violate(t, "fault event carries invalid FaultKind " +
                   std::to_string(e.target_cell));

  switch (e.kind) {
    case EventKind::kMeasurementTriggered:
      // A fresh attempt resets the preparation mirror (a superseded
      // attempt's outstanding request can never ack into the new one).
      prep_open_ = false;
      prep_retries_this_attempt_ = 0;
      [[fallthrough]];
    case EventKind::kReportDelivered:
    case EventKind::kReportLost:
    case EventKind::kHoCommandLost:
      // Signaling only flows on a live, non-executing link.
      if (outage_open_)
        violate(t, sim::event_kind_name(e.kind) + " during outage");
      if (exec_open_)
        violate(t, sim::event_kind_name(e.kind) + " during execution");
      break;

    case EventKind::kReportRetransmit:
      if (outage_open_ || exec_open_)
        violate(t, "report retransmit outside a live idle link");
      ++report_retransmits_;
      break;

    case EventKind::kHoCommandDuplicate:
      if (outage_open_ || exec_open_)
        violate(t, "duplicate command outside a live idle link");
      ++duplicate_commands_;
      break;

    case EventKind::kHoCommandDelivered:
      if (outage_open_) violate(t, "handover command delivered during outage");
      if (exec_open_)
        violate(t, "handover command delivered with an execution already "
                   "in flight (overlapping T304 windows)");
      if (cfg_.sim.backhaul.enabled && !prep_acked_)
        violate(t, "handover command delivered without an acked "
                   "HANDOVER REQUEST (backhaul transport enabled)");
      prep_acked_ = false;
      exec_open_ = true;
      ++commands_delivered_;
      break;

    case EventKind::kHandoverComplete: {
      if (!exec_open_)
        violate(t, "handover completion without a delivered command");
      if (outage_open_) violate(t, "handover completion during outage");
      if (crashed_cells_.count(e.target_cell) > 0)
        violate(t, "handover completed against crashed BS " +
                       std::to_string(e.target_cell));
      exec_open_ = false;
      ++completions_;
      // Loop bookkeeping mirror — byte-for-byte the simulator's logic:
      // loop test against the recent-serving window *before* pushing the
      // new serving cell, trim only here (not on re-establishment).
      bool is_loop = false;
      for (const auto& [ts, idx] : recent_serving_) {
        if (t - ts <= cfg_.sim.loop_window_s && idx == e.target_cell) {
          is_loop = true;
          break;
        }
      }
      recent_serving_.push_back({t, e.target_cell});
      while (!recent_serving_.empty() &&
             t - recent_serving_.front().first > cfg_.sim.loop_window_s)
        recent_serving_.erase(recent_serving_.begin());
      if (is_loop) {
        ++loop_handovers_;
        if (!current_loop_episode_) {
          ++loop_episodes_;
          current_loop_episode_ = true;
          episode_run_length_ = 1;
        } else if (++episode_run_length_ == 2) {
          // Second consecutive loop handover: the ping-pong persisted.
          ++persistent_episodes_;
        }
      } else {
        current_loop_episode_ = false;
        episode_run_length_ = 0;
      }
      break;
    }

    case EventKind::kT304Expiry:
      if (!exec_open_)
        violate(t, "T304 expiry without a handover execution in flight");
      if (outage_open_) violate(t, "T304 expiry during outage");
      exec_open_ = false;
      outage_open_ = true;
      outage_opened_t_ = t;
      // Fallback re-establishes on the prepared target, which is faster
      // than the full RLF search (weakest valid lower bound either way).
      outage_min_reestablish_s_ = cfg_.sim.t304_reestablish_s;
      ++t304_expiries_;
      break;

    case EventKind::kRadioLinkFailure:
      if (exec_open_)
        violate(t, "RLF declared during handover execution (T304, not "
                   "T310, owns this window)");
      if (outage_open_) violate(t, "RLF declared while already in outage");
      // T310 must have been armed (N310 reached) and run its full budget.
      if (cfg_.sim.t310_s > 0.0) {
        if (t310_armed_t_ < 0.0 || (have_prev_tick_ && !prev_.t310_running))
          violate(t, "RLF without a running T310 timer");
        else if (t - t310_armed_t_ < cfg_.sim.t310_s - kTimeEps)
          violate(t, "RLF after only " + std::to_string(t - t310_armed_t_) +
                         "s of T310 (budget " +
                         std::to_string(cfg_.sim.t310_s) + "s)");
      }
      outage_open_ = true;
      outage_opened_t_ = t;
      outage_min_reestablish_s_ = cfg_.sim.reestablish_s;
      // The failure drops any in-flight preparation with the attempt.
      prep_open_ = false;
      prep_acked_ = false;
      prep_retries_this_attempt_ = 0;
      ++rlf_events_;
      break;

    case EventKind::kReestablished:
      if (!outage_open_)
        violate(t, "re-establishment without a preceding failure");
      else if (t - outage_opened_t_ < outage_min_reestablish_s_ - kTimeEps)
        violate(t, "re-established after " +
                       std::to_string(t - outage_opened_t_) +
                       "s, below the " +
                       std::to_string(outage_min_reestablish_s_) +
                       "s search-time floor");
      outage_open_ = false;
      ++reestablished_;
      reestablished_this_tick_ = true;
      // camp_on() records the new serving cell for loop detection but does
      // not trim the window; mirror exactly.
      recent_serving_.push_back({t, e.serving_cell});
      break;

    case EventKind::kFaultStart:
      ++fault_starts_;
      if (!cfg_.faults_expected)
        violate(t, "fault window opened on a fault-free run");
      break;
    case EventKind::kFaultEnd:
      ++fault_ends_;
      if (!cfg_.faults_expected)
        violate(t, "fault window closed on a fault-free run");
      break;

    case EventKind::kDegradedEnter:
      ++degraded_enters_;
      if (cfg_.expect_no_degraded)
        violate(t, "degraded-mode entry from a manager with no fallback");
      if (!cfg_.faults_expected)
        violate(t, "degraded-mode entry on a fault-free run (estimates "
                   "can only go stale under a pilot outage)");
      if (degraded_enters_ != degraded_exits_ + 1)
        violate(t, "degraded enter without matching exit (enters=" +
                       std::to_string(degraded_enters_) + " exits=" +
                       std::to_string(degraded_exits_) + ")");
      if (cfg_.staleness_bound_s >= 0.0) pending_degraded_enter_check_ = true;
      break;
    case EventKind::kDegradedExit:
      ++degraded_exits_;
      if (degraded_exits_ != degraded_enters_)
        violate(t, "degraded exit without matching enter (enters=" +
                       std::to_string(degraded_enters_) + " exits=" +
                       std::to_string(degraded_exits_) + ")");
      break;

    case EventKind::kPrepRequest:
      if (outage_open_ || exec_open_)
        violate(t, "HANDOVER REQUEST outside a live idle link");
      if (!cfg_.sim.backhaul.enabled)
        violate(t, "HANDOVER REQUEST with the backhaul transport disabled");
      prep_open_ = true;
      prep_retries_this_attempt_ = 0;
      ++prep_requests_;
      break;

    case EventKind::kPrepRetry:
      if (outage_open_ || exec_open_)
        violate(t, "prep retry outside a live idle link");
      if (!prep_open_)
        violate(t, "prep retry without an outstanding HANDOVER REQUEST");
      ++prep_retries_;
      if (++prep_retries_this_attempt_ > cfg_.sim.prep_max_retries)
        violate(t, "prep retry storm: " +
                       std::to_string(prep_retries_this_attempt_) +
                       " retries exceed the budget of " +
                       std::to_string(cfg_.sim.prep_max_retries));
      break;

    case EventKind::kPrepAck:
      if (outage_open_ || exec_open_)
        violate(t, "prep ack outside a live idle link");
      if (!prep_open_)
        violate(t, "prep ack without an outstanding HANDOVER REQUEST");
      // The event's SNR slot carries the request->ack round trip, which
      // cannot beat the two one-way base latencies. On an asymmetric
      // link (reverse_latency_scale != 1) the return leg pays the scale,
      // so the floor is (1 + scale) x base latency.
      if (e.serving_snr_db <
          (1.0 + std::min(1.0, cfg_.sim.backhaul.reverse_latency_scale)) *
                  cfg_.sim.backhaul.base_latency_s -
              kTimeEps)
        violate(t, "prep RTT " + std::to_string(e.serving_snr_db) +
                       "s below the physical floor of (1+reverse_scale)x "
                       "base latency (" +
                       std::to_string(cfg_.sim.backhaul.base_latency_s) +
                       "s one-way)");
      prep_open_ = false;
      prep_acked_ = true;
      ++prep_acks_;
      break;

    case EventKind::kPrepReject:
      if (outage_open_ || exec_open_)
        violate(t, "prep reject outside a live idle link");
      if (!prep_open_)
        violate(t, "prep reject without an outstanding HANDOVER REQUEST");
      ++prep_rejects_;
      break;

    case EventKind::kPrepFallback:
      if (outage_open_ || exec_open_)
        violate(t, "prep fallback outside a live idle link");
      if (!prep_open_)
        violate(t, "prep fallback without an outstanding HANDOVER REQUEST");
      ++prep_fallbacks_;
      prep_retries_this_attempt_ = 0;
      break;

    case EventKind::kPrepFailed:
      if (outage_open_ || exec_open_)
        violate(t, "prep failure outside a live idle link");
      if (!prep_open_)
        violate(t, "prep failure without an outstanding HANDOVER REQUEST");
      prep_open_ = false;
      ++prep_failures_;
      break;

    case EventKind::kContextFetchFailed:
      if (!outage_open_)
        violate(t, "context-fetch failure outside an outage");
      ++ctx_fetch_failures_;
      break;

    case EventKind::kBsQueueShed:
      // An explicit reject at a full signaling queue; the event's SNR
      // slot carries the station load, a fraction of the physical bound.
      if (!cfg_.sim.bs_capacity.enabled)
        violate(t, "BS queue shed with the capacity model disabled");
      if (e.serving_snr_db < 0.0 || e.serving_snr_db > 1.0 + kTimeEps)
        violate(t, "shed event load " + std::to_string(e.serving_snr_db) +
                       " outside [0, 1]");
      ++bs_queue_sheds_;
      break;

    case EventKind::kBsJobDone:
      // The SNR slot carries the job's queue wait.
      if (!cfg_.sim.bs_capacity.enabled)
        violate(t, "BS job completion with the capacity model disabled");
      if (e.serving_snr_db < 0.0)
        violate(t, "negative BS queue wait " +
                       std::to_string(e.serving_snr_db) + "s");
      ++bs_jobs_done_;
      if (e.serving_snr_db > 0.0) ++bs_jobs_queued_;
      bs_queue_wait_sum_s_ += e.serving_snr_db;
      break;

    case EventKind::kAdmissionReject:
      // A busy reject answers an outstanding HANDOVER REQUEST, like an
      // ack/reject; the SNR slot carries the (non-negative) backoff hint.
      if (outage_open_ || exec_open_)
        violate(t, "admission busy-reject outside a live idle link");
      if (!prep_open_)
        violate(t, "admission busy-reject without an outstanding "
                   "HANDOVER REQUEST");
      if (!cfg_.sim.bs_capacity.enabled)
        violate(t, "admission busy-reject with the capacity model disabled");
      if (e.serving_snr_db < 0.0)
        violate(t, "negative admission backoff hint " +
                       std::to_string(e.serving_snr_db) + "s");
      ++admission_rejects_;
      break;

    case EventKind::kAdmissionRetry:
      // The source backs off and will re-send: the outstanding request is
      // closed, so the subsequent kPrepRequest is a fresh send.
      if (outage_open_ || exec_open_)
        violate(t, "admission backoff retry outside a live idle link");
      if (!prep_open_)
        violate(t, "admission backoff retry without an outstanding "
                   "HANDOVER REQUEST");
      prep_open_ = false;
      prep_retries_this_attempt_ = 0;
      ++admission_retries_;
      break;

    case EventKind::kBsCrash:
      if (!cfg_.faults_expected)
        violate(t, "BS crash on a fault-free run");
      // Only a region_outage schedule may stack correlated blackouts;
      // plain crash-restart keeps at most one BS down at a time.
      if (!crashed_cells_.empty() &&
          !cfg_.sim.faults.schedules_region_outage())
        violate(t, "BS crash with another BS already down (cell " +
                       std::to_string(*crashed_cells_.begin()) + ")");
      if (crashed_cells_.count(e.target_cell) > 0)
        violate(t, "BS crash for cell " + std::to_string(e.target_cell) +
                       " that is already down");
      crashed_cells_.insert(e.target_cell);
      ++bs_crashes_;
      break;

    case EventKind::kBsRestart:
      if (crashed_cells_.count(e.target_cell) == 0)
        violate(t, "BS restart for cell " + std::to_string(e.target_cell) +
                       " that was never crashed");
      crashed_cells_.erase(e.target_cell);
      ++bs_restarts_;
      break;

    case EventKind::kContextStale:
      // Stale replies only make sense while re-establishing after a
      // failure (the fetch exists only in outage).
      if (!outage_open_)
        violate(t, "stale-context response outside an outage");
      if (!cfg_.faults_expected)
        violate(t, "stale-context response on a fault-free run");
      ++stale_ctx_responses_;
      break;

    case EventKind::kCascadeInject:
      // Displaced load flooding a surviving neighbor: capacity model on,
      // faults scheduled, and the payload (jobs injected) is positive —
      // zero-job top-ups are never logged.
      if (!cfg_.sim.bs_capacity.enabled)
        violate(t, "cascade injection with the capacity model disabled");
      if (!cfg_.faults_expected)
        violate(t, "cascade injection on a fault-free run");
      if (e.serving_snr_db < 1.0)
        violate(t, "cascade injection with non-positive job payload " +
                       std::to_string(e.serving_snr_db));
      if (crashed_cells_.count(e.target_cell) > 0)
        violate(t, "cascade injection into dead BS " +
                       std::to_string(e.target_cell));
      ++cascade_injects_;
      cascade_jobs_ += static_cast<long long>(e.serving_snr_db);
      break;

    case EventKind::kBreakerTrip: {
      // Legal from closed (K-th consecutive failure) or half-open (the
      // probe failed); an already-open breaker cannot trip again.
      if (cfg_.sim.breaker_trip_k <= 0)
        violate(t, "breaker trip with circuit breakers disabled");
      int& st = breaker_state_[e.target_cell];
      if (st == 1)
        violate(t, "breaker trip for cell " + std::to_string(e.target_cell) +
                       " that is already open");
      st = 1;
      ++breakers_open_mirror_;
      ++breaker_trips_;
      break;
    }

    case EventKind::kBreakerProbe: {
      // The half-open probe admission: only an open breaker past its
      // cool-down may admit one.
      if (cfg_.sim.breaker_trip_k <= 0)
        violate(t, "breaker probe with circuit breakers disabled");
      int& st = breaker_state_[e.target_cell];
      if (st != 1)
        violate(t, "breaker probe for cell " + std::to_string(e.target_cell) +
                       " that is not open");
      else
        --breakers_open_mirror_;
      st = 2;
      ++breaker_probes_;
      break;
    }

    case EventKind::kBreakerClose: {
      // Close only on a successful half-open probe.
      if (cfg_.sim.breaker_trip_k <= 0)
        violate(t, "breaker close with circuit breakers disabled");
      int& st = breaker_state_[e.target_cell];
      if (st != 2)
        violate(t, "breaker close for cell " + std::to_string(e.target_cell) +
                       " without a probe in flight");
      st = 0;
      ++breaker_closes_;
      break;
    }
  }

  if (events_this_tick_ == 0) {
    events_tick_min_t_ = events_tick_max_t_ = t;
  } else {
    events_tick_min_t_ = std::min(events_tick_min_t_, t);
    events_tick_max_t_ = std::max(events_tick_max_t_, t);
  }
  ++events_this_tick_;
}

void InvariantChecker::check_tick(const sim::TickView& v) {
  const double t = v.t_s;

  if (have_prev_tick_ && t <= prev_.t_s)
    violate(t, "tick timestamp not strictly increasing (prev " +
                   std::to_string(prev_.t_s) + "s)");
  // Every event since the last tick belongs to *this* tick's timestamp.
  if (events_this_tick_ > 0 &&
      (events_tick_min_t_ < t - kTimeEps ||
       events_tick_max_t_ > t + kTimeEps))
    violate(t, "events emitted between ticks carry a different timestamp "
               "(range " + std::to_string(events_tick_min_t_) + ".." +
               std::to_string(events_tick_max_t_) + "s)");

  if (cfg_.num_cells > 0 &&
      (v.serving < 0 || v.serving >= static_cast<int>(cfg_.num_cells)))
    violate(t, "serving cell " + std::to_string(v.serving) + " out of range");

  // Counter ranges: N310 freezes at the arming threshold, N311 resets the
  // moment it disarms T310.
  if (v.oos_count < 0 || v.oos_count > cfg_.sim.n310)
    violate(t, "out-of-sync count " + std::to_string(v.oos_count) +
                   " outside [0, N310=" + std::to_string(cfg_.sim.n310) + "]");
  if (v.is_count < 0 || v.is_count >= std::max(cfg_.sim.n311, 1))
    violate(t, "in-sync count " + std::to_string(v.is_count) +
                   " outside [0, N311=" + std::to_string(cfg_.sim.n311) + ")");
  if (v.is_count > 0 && !v.t310_running)
    violate(t, "in-sync counting (N311) without T310 running");

  // Timer/FSM legality: at most one of {outage, execution} holds, T310
  // runs only on a live idle link, and nothing is pending while the link
  // is down or an execution is in flight.
  if (v.t310_running && (v.in_outage || v.executing))
    violate(t, "T310 running outside a live idle link");
  if (v.executing && v.in_outage)
    violate(t, "handover execution while in outage");
  if (v.executing && (v.report_pending || v.command_pending))
    violate(t, "signaling pending during handover execution");
  if (v.in_outage && (v.report_pending || v.command_pending))
    violate(t, "signaling pending during outage");
  if (v.in_outage && (v.oos_count != 0 || v.is_count != 0))
    violate(t, "sync counters not cleared in outage");
  if (v.report_pending && v.command_pending)
    violate(t, "report and command simultaneously in flight for one "
               "handover attempt");
  // Backhaul preparation occupies its own FSM slot: never while the link
  // is down or executing, never overlapping the report or command legs,
  // and never at all when the transport is disabled.
  if (v.prep_pending && (v.in_outage || v.executing))
    violate(t, "handover preparation pending outside a live idle link");
  if (v.prep_pending && (v.report_pending || v.command_pending))
    violate(t, "preparation overlapping another signaling leg for one "
               "handover attempt");
  if (v.prep_pending && !cfg_.sim.backhaul.enabled)
    violate(t, "preparation pending with the backhaul transport disabled");
  if (v.executing != exec_open_)
    violate(t, "tick execution state disagrees with the event stream");
  if (v.in_outage != outage_open_)
    violate(t, "tick outage state disagrees with the event stream");

  // BS capacity: per-tick peak occupancy is physically bounded by
  // slots + queue_capacity, and a crashed cell exists only under faults.
  if (cfg_.sim.bs_capacity.enabled) {
    const int cap_bound =
        cfg_.sim.bs_capacity.slots +
        static_cast<int>(cfg_.sim.bs_capacity.queue_capacity);
    if (v.bs_queue_peak < 0 || v.bs_queue_peak > cap_bound)
      violate(t, "BS queue occupancy " + std::to_string(v.bs_queue_peak) +
                     " outside [0, slots+queue=" +
                     std::to_string(cap_bound) + "]");
  } else if (v.bs_queue_peak != 0) {
    violate(t, "nonzero BS queue occupancy with the capacity model "
               "disabled");
  }
  if (v.crashed_cells != static_cast<int>(crashed_cells_.size()))
    violate(t, "tick crashed-cell count " + std::to_string(v.crashed_cells) +
                   " disagrees with the event stream (" +
                   std::to_string(crashed_cells_.size()) + ")");
  if (!cfg_.faults_expected && v.crashed_cells != 0)
    violate(t, "crashed BS on a fault-free run");
  if (v.breakers_open != breakers_open_mirror_)
    violate(t, "tick open-breaker count " + std::to_string(v.breakers_open) +
                   " disagrees with the event stream (" +
                   std::to_string(breakers_open_mirror_) + ")");
  if (cfg_.sim.breaker_trip_k <= 0 && v.breakers_open != 0)
    violate(t, "open breaker with circuit breakers disabled");

  // Cross-band staleness: ages only accumulate under a pilot fault.
  if (v.estimate_age_s < 0.0)
    violate(t, "negative estimate age " + std::to_string(v.estimate_age_s));
  if (!v.pilot_fault && v.estimate_age_s != 0.0)
    violate(t, "stale estimate age " + std::to_string(v.estimate_age_s) +
                   "s with fresh pilots");
  if (!cfg_.faults_expected && (v.pilot_fault || v.blackout))
    violate(t, "fault flag raised on a fault-free run");
  if (pending_degraded_enter_check_) {
    // The manager entered degraded mode this tick: the estimates it saw
    // must actually have been past the staleness bound.
    if (v.estimate_age_s <= cfg_.staleness_bound_s - kTimeEps)
      violate(t, "degraded-mode entry with estimate age " +
                     std::to_string(v.estimate_age_s) + "s within the " +
                     std::to_string(cfg_.staleness_bound_s) + "s bound");
    pending_degraded_enter_check_ = false;
  }

  // NaN serving SNR is legal only when no radio state was sampled this
  // tick: still in outage, or the tick that re-established.
  if (std::isnan(v.serving_snr_db) && !v.in_outage && !reestablished_this_tick_)
    violate(t, "no serving SNR sampled on a connected tick");

  // T310 arming edge: requires N310 consecutive out-of-sync ticks.
  if (v.t310_running) {
    if (!have_prev_tick_ || !prev_.t310_running) {
      if (v.oos_count < cfg_.sim.n310)
        violate(t, "T310 armed after only " + std::to_string(v.oos_count) +
                       " out-of-sync ticks (N310=" +
                       std::to_string(cfg_.sim.n310) + ")");
      t310_armed_t_ = t;
    }
  } else {
    t310_armed_t_ = -1.0;
  }

  saw_tick_ = true;
  have_prev_tick_ = true;
  prev_ = v;
  events_this_tick_ = 0;
  reestablished_this_tick_ = false;
}

void InvariantChecker::on_run_end(sim::SimStats& stats) {
  const double t_end = cfg_.sim.duration_s;
  const auto expect_eq = [&](long long got, long long want,
                             const std::string& what) {
    if (got != want)
      violate(t_end, what + ": got " + std::to_string(got) + ", expected " +
                         std::to_string(want));
  };

  // --- Handover conservation ---
  // Every attempt the stats report was a delivered command the checker
  // saw, and every delivered command closed as exactly one completion or
  // T304 expiry (or is still in flight at the horizon).
  expect_eq(stats.handovers, commands_delivered_,
            "SimStats::handovers vs delivered commands");
  expect_eq(stats.successful_handovers, completions_,
            "SimStats::successful_handovers vs completions");
  expect_eq(stats.t304_expiries, t304_expiries_,
            "SimStats::t304_expiries vs T304 events");
  expect_eq(stats.failures, rlf_events_ + t304_expiries_,
            "SimStats::failures vs RLF + T304 events");
  expect_eq(commands_delivered_,
            completions_ + t304_expiries_ + (exec_open_ ? 1 : 0),
            "command conservation (attempts = successes + expiries + "
            "in-flight)");
  expect_eq(reestablished_, rlf_events_ + t304_expiries_ -
                                (outage_open_ ? 1 : 0),
            "re-establishment conservation (failures = recoveries + open "
            "outage)");
  expect_eq(static_cast<long long>(stats.outage_durations_s.size()),
            reestablished_, "outage duration samples vs re-establishments");
  expect_eq(stats.report_retransmits, report_retransmits_,
            "SimStats::report_retransmits vs retransmit events");
  expect_eq(stats.duplicate_commands, duplicate_commands_,
            "SimStats::duplicate_commands vs duplicate events");
  expect_eq(stats.degraded_enters, degraded_enters_,
            "SimStats::degraded_enters vs enter events");
  if (degraded_enters_ - degraded_exits_ != 0 &&
      degraded_enters_ - degraded_exits_ != 1)
    violate(t_end, "unbalanced degraded enter/exit events (enters=" +
                       std::to_string(degraded_enters_) + " exits=" +
                       std::to_string(degraded_exits_) + ")");
  if (fault_starts_ < fault_ends_)
    violate(t_end, "more fault-window closes than opens");

  // --- Backhaul preparation conservation ---
  expect_eq(stats.prep_requests, prep_requests_,
            "SimStats::prep_requests vs prep-request events");
  expect_eq(stats.prep_retries, prep_retries_,
            "SimStats::prep_retries vs prep-retry events");
  expect_eq(stats.prep_acks, prep_acks_,
            "SimStats::prep_acks vs prep-ack events");
  expect_eq(stats.prep_rejects, prep_rejects_,
            "SimStats::prep_rejects vs prep-reject events");
  expect_eq(stats.prep_fallbacks, prep_fallbacks_,
            "SimStats::prep_fallbacks vs prep-fallback events");
  expect_eq(stats.prep_failures, prep_failures_,
            "SimStats::prep_failures vs prep-failure events");
  expect_eq(stats.context_fetch_failures, ctx_fetch_failures_,
            "SimStats::context_fetch_failures vs context-fetch events");
  if (cfg_.sim.backhaul.enabled) {
    // Every delivered command rode an ack, and every ack/reject answers a
    // request the source actually put on the wire (original or retry).
    if (commands_delivered_ > prep_acks_)
      violate(t_end, "more delivered commands (" +
                         std::to_string(commands_delivered_) +
                         ") than prep acks (" + std::to_string(prep_acks_) +
                         ")");
    if (prep_acks_ + prep_rejects_ > prep_requests_ + prep_retries_)
      violate(t_end, "more prep outcomes (" +
                         std::to_string(prep_acks_ + prep_rejects_) +
                         ") than requests sent (" +
                         std::to_string(prep_requests_ + prep_retries_) + ")");
    // Retry-storm bound: the backoff budget caps total resends.
    if (prep_retries_ >
        prep_requests_ * std::max(cfg_.sim.prep_max_retries, 0))
      violate(t_end, "prep retry storm: " + std::to_string(prep_retries_) +
                         " retries for " + std::to_string(prep_requests_) +
                         " requests (budget " +
                         std::to_string(cfg_.sim.prep_max_retries) +
                         " per attempt)");
    // Transport conservation: deliveries never exceed what entered the
    // network, and drops never exceed send attempts.
    if (stats.backhaul_delivered >
        stats.backhaul_sent + stats.backhaul_duplicated)
      violate(t_end, "backhaul delivered " +
                         std::to_string(stats.backhaul_delivered) +
                         " frames but only " +
                         std::to_string(stats.backhaul_sent) + "+" +
                         std::to_string(stats.backhaul_duplicated) +
                         " entered the network");
    if (stats.backhaul_dropped_loss + stats.backhaul_dropped_partition +
            stats.backhaul_dropped_queue + stats.backhaul_dropped_crash >
        stats.backhaul_sent + stats.backhaul_duplicated)
      violate(t_end, "backhaul drop counters exceed send attempts");
  }

  // --- BS capacity conservation ---
  expect_eq(stats.bs_jobs_served, bs_jobs_done_,
            "SimStats::bs_jobs_served vs job-done events");
  expect_eq(stats.bs_jobs_queued, bs_jobs_queued_,
            "SimStats::bs_jobs_queued vs job-done events with queue wait");
  expect_eq(stats.bs_queue_shed, bs_queue_sheds_,
            "SimStats::bs_queue_shed vs shed events");
  expect_eq(stats.admission_rejects, admission_rejects_,
            "SimStats::admission_rejects vs busy-reject events");
  expect_eq(stats.admission_backoff_retries, admission_retries_,
            "SimStats::admission_backoff_retries vs backoff events");
  expect_eq(stats.bs_crashes, bs_crashes_,
            "SimStats::bs_crashes vs crash events");
  expect_eq(stats.stale_context_responses, stale_ctx_responses_,
            "SimStats::stale_context_responses vs stale-context events");
  if (bs_restarts_ > bs_crashes_)
    violate(t_end, "more BS restarts than crashes");
  expect_eq(static_cast<long long>(crashed_cells_.size()),
            bs_crashes_ - bs_restarts_,
            "open crash windows vs crash/restart events");
  // Every job offered to a station is accounted for exactly once:
  // served, shed at a full queue, flushed by a crash, or still in flight
  // at the horizon. Background filler is excluded from all four.
  expect_eq(stats.bs_jobs_submitted,
            static_cast<long long>(stats.bs_jobs_served) +
                stats.bs_queue_shed + stats.bs_jobs_flushed +
                stats.bs_jobs_inflight_end,
            "BS job conservation (submitted = served + shed + flushed + "
            "in-flight)");
  // --- Cascade / circuit-breaker conservation ---
  expect_eq(stats.cascade_activations, cascade_injects_,
            "SimStats::cascade_activations vs cascade-inject events");
  expect_eq(stats.cascade_jobs_injected, cascade_jobs_,
            "SimStats::cascade_jobs_injected vs injected-job payload sum");
  expect_eq(stats.breaker_trips, breaker_trips_,
            "SimStats::breaker_trips vs trip events");
  expect_eq(stats.breaker_probes, breaker_probes_,
            "SimStats::breaker_probes vs probe events");
  expect_eq(stats.breaker_closes, breaker_closes_,
            "SimStats::breaker_closes vs close events");
  if (breaker_probes_ > breaker_trips_)
    violate(t_end, "more breaker probes than trips");
  if (breaker_closes_ > breaker_probes_)
    violate(t_end, "more breaker closes than probes");
  // Load-advertisement staleness contract: the simulator never surfaces
  // an ad older than the configured bound, and the recorded maximum age
  // proves it.
  if (stats.load_ad_age_max_s < 0.0)
    violate(t_end, "negative load-advertisement age " +
                       std::to_string(stats.load_ad_age_max_s) + "s");
  if (cfg_.sim.load_ad_staleness_s > 0.0 &&
      stats.load_ad_age_max_s > cfg_.sim.load_ad_staleness_s + kTimeEps)
    violate(t_end, "surfaced load advertisement aged " +
                       std::to_string(stats.load_ad_age_max_s) +
                       "s beyond the " +
                       std::to_string(cfg_.sim.load_ad_staleness_s) +
                       "s staleness bound");
  if (cfg_.sim.load_ad_staleness_s <= 0.0 &&
      (stats.load_ads_received != 0 || stats.load_ad_age_max_s != 0.0))
    violate(t_end, "load-advertisement activity with advertisement "
                   "disabled");

  // The wait total must reconcile bit-for-bit: the simulator sums waits
  // in completion order, the checker sums the same values from the same
  // events in the same order.
  if (stats.bs_queue_wait_sum_s != bs_queue_wait_sum_s_)
    violate(t_end, "BS queue wait total " +
                       std::to_string(stats.bs_queue_wait_sum_s) +
                       "s disagrees with the event stream (" +
                       std::to_string(bs_queue_wait_sum_s_) + "s)");

  // --- Loop accounting, recomputed independently from the event stream ---
  expect_eq(stats.loop_handovers, loop_handovers_,
            "SimStats::loop_handovers vs event-stream recount");
  expect_eq(stats.loop_episodes, loop_episodes_,
            "SimStats::loop_episodes vs event-stream recount");
  if (cfg_.expect_loop_free && persistent_episodes_ > 0)
    violate(t_end, "Theorem-2 violation: " +
                       std::to_string(persistent_episodes_) +
                       " persistent ping-pong episode(s) under a repaired "
                       "pure-A3 policy");

  // --- Stats sanity ---
  if (stats.failure_ratio() < 0.0 || stats.failure_ratio() > 1.0)
    violate(t_end,
            "failure ratio " + std::to_string(stats.failure_ratio()) +
                " outside [0, 1]");
  for (double d : stats.outage_durations_s)
    if (!(d > 0.0) || d > cfg_.sim.duration_s + kTimeEps)
      violate(t_end, "outage duration " + std::to_string(d) +
                         "s outside (0, horizon]");
  for (double d : stats.feedback_delays_s)
    if (!(d >= 0.0) || d > cfg_.sim.duration_s + kTimeEps)
      violate(t_end, "feedback delay " + std::to_string(d) +
                         "s outside [0, horizon]");
  if (stats.degraded_time_s < 0.0 ||
      stats.degraded_time_s > cfg_.sim.duration_s + kTimeEps)
    violate(t_end, "degraded time " + std::to_string(stats.degraded_time_s) +
                       "s outside [0, horizon]");
  if (stats.downtime_fraction < 0.0 || stats.downtime_fraction > 1.0)
    violate(t_end, "downtime fraction outside [0, 1]");
  if (!cfg_.faults_expected &&
      (fault_starts_ > 0 || degraded_enters_ > 0 ||
       stats.degraded_time_s > 0.0))
    violate(t_end, "fault/degraded activity recorded on a fault-free run");

  // --- TCP sequence/ack sanity over every recovered outage ---
  // Whatever phase of the RTO cycle the outage lands in, the stall covers
  // the outage and exceeds it by at most one maximal residual backoff.
  const sim::TcpConfig tcp;
  for (double outage : stats.outage_durations_s) {
    for (double phase : {0.0, 0.37, 0.93}) {
      const double stall = sim::tcp_stall_for_outage(outage, tcp, phase);
      if (stall < outage - kTimeEps ||
          stall > outage + tcp.max_rto_s + tcp.rtt_s + tcp.base_rto_s +
                      kTimeEps)
        violate(t_end, "TCP stall " + std::to_string(stall) +
                           "s out of bounds for a " + std::to_string(outage) +
                           "s outage at phase " + std::to_string(phase));
    }
  }

  stats.invariant_violations = violation_count_;
}

std::vector<std::string> fleet_invariant_report(const sim::FleetResult& r) {
  std::vector<std::string> out;
  const auto flag = [&out](const std::string& what) { out.push_back(what); };
  if (r.per_ue.empty()) {
    flag("fleet result carries no per-UE stats");
    return out;
  }
  const int n = static_cast<int>(r.per_ue.size());

  // --- Per-UE handover conservation + event-log hygiene ---
  for (int k = 0; k < n; ++k) {
    const auto& s = r.per_ue[static_cast<std::size_t>(k)];
    const std::string who = "UE " + std::to_string(k);
    if (s.handovers < 0 || s.successful_handovers < 0 || s.t304_expiries < 0)
      flag(who + ": negative handover counter");
    if (s.successful_handovers + s.t304_expiries > s.handovers)
      flag(who + ": successes (" + std::to_string(s.successful_handovers) +
           ") + T304 expiries (" + std::to_string(s.t304_expiries) +
           ") exceed attempts (" + std::to_string(s.handovers) + ")");
    double prev_t = 0.0;
    for (std::size_t i = 0; i < s.events.size(); ++i) {
      const auto& e = s.events[i];
      if (e.ue != k) {
        flag(who + ": event " + std::to_string(i) + " tagged ue=" +
             std::to_string(e.ue));
        break;
      }
      if (i > 0 && e.t_s < prev_t) {
        flag(who + ": event log regresses from t=" + std::to_string(prev_t) +
             " to t=" + std::to_string(e.t_s));
        break;
      }
      prev_t = e.t_s;
    }
  }

  // --- Aggregate reconciliation against the per-UE fold ---
  const auto expect_sum = [&](const std::string& name, long long agg,
                              const std::function<long long(
                                  const sim::SimStats&)>& field) {
    long long sum = 0;
    for (const auto& s : r.per_ue) sum += field(s);
    if (agg != sum)
      flag("aggregate." + name + " = " + std::to_string(agg) +
           " but per-UE sum = " + std::to_string(sum));
  };
  const auto& a = r.aggregate;
  expect_sum("handovers", a.handovers,
             [](const sim::SimStats& s) { return s.handovers; });
  expect_sum("successful_handovers", a.successful_handovers,
             [](const sim::SimStats& s) { return s.successful_handovers; });
  expect_sum("failures", a.failures,
             [](const sim::SimStats& s) { return s.failures; });
  expect_sum("t304_expiries", a.t304_expiries,
             [](const sim::SimStats& s) { return s.t304_expiries; });
  expect_sum("prep_requests", a.prep_requests,
             [](const sim::SimStats& s) { return s.prep_requests; });
  expect_sum("bs_jobs_submitted", a.bs_jobs_submitted,
             [](const sim::SimStats& s) { return s.bs_jobs_submitted; });
  expect_sum("admission_rejects", a.admission_rejects,
             [](const sim::SimStats& s) { return s.admission_rejects; });
  expect_sum("invariant_violations", a.invariant_violations,
             [](const sim::SimStats& s) { return s.invariant_violations; });
  expect_sum("breaker_trips", a.breaker_trips,
             [](const sim::SimStats& s) { return s.breaker_trips; });
  expect_sum("breaker_probes", a.breaker_probes,
             [](const sim::SimStats& s) { return s.breaker_probes; });
  expect_sum("breaker_closes", a.breaker_closes,
             [](const sim::SimStats& s) { return s.breaker_closes; });
  expect_sum("breaker_skips", a.breaker_skips,
             [](const sim::SimStats& s) { return s.breaker_skips; });
  expect_sum("load_ads_received", a.load_ads_received,
             [](const sim::SimStats& s) { return s.load_ads_received; });
  expect_sum("storm_jitter_applied", a.storm_jitter_applied,
             [](const sim::SimStats& s) { return s.storm_jitter_applied; });

  double max_time = 0.0;
  for (const auto& s : r.per_ue) max_time = std::max(max_time, s.sim_time_s);
  if (a.sim_time_s != max_time)
    flag("aggregate.sim_time_s = " + std::to_string(a.sim_time_s) +
         " but per-UE max = " + std::to_string(max_time));
  // Crash windows are global: every UE observes the same count.
  for (int k = 1; k < n; ++k) {
    if (r.per_ue[static_cast<std::size_t>(k)].bs_crashes !=
        r.per_ue[0].bs_crashes) {
      flag("bs_crashes disagree across UEs: UE 0 saw " +
           std::to_string(r.per_ue[0].bs_crashes) + ", UE " +
           std::to_string(k) + " saw " +
           std::to_string(r.per_ue[static_cast<std::size_t>(k)].bs_crashes));
      break;
    }
  }
  if (a.bs_crashes != r.per_ue[0].bs_crashes)
    flag("aggregate.bs_crashes = " + std::to_string(a.bs_crashes) +
         " but per-UE value = " + std::to_string(r.per_ue[0].bs_crashes));
  // Cascade injections are world-global like crash windows: every UE
  // observes the identical counts, and the aggregate carries that value.
  for (int k = 1; k < n; ++k) {
    const auto& s = r.per_ue[static_cast<std::size_t>(k)];
    if (s.cascade_activations != r.per_ue[0].cascade_activations ||
        s.cascade_jobs_injected != r.per_ue[0].cascade_jobs_injected) {
      flag("cascade counters disagree across UEs: UE 0 saw " +
           std::to_string(r.per_ue[0].cascade_activations) + "/" +
           std::to_string(r.per_ue[0].cascade_jobs_injected) + ", UE " +
           std::to_string(k) + " saw " +
           std::to_string(s.cascade_activations) + "/" +
           std::to_string(s.cascade_jobs_injected));
      break;
    }
  }
  if (a.cascade_activations != r.per_ue[0].cascade_activations ||
      a.cascade_jobs_injected != r.per_ue[0].cascade_jobs_injected)
    flag("aggregate cascade counters (" +
         std::to_string(a.cascade_activations) + "/" +
         std::to_string(a.cascade_jobs_injected) +
         ") differ from the per-UE value (" +
         std::to_string(r.per_ue[0].cascade_activations) + "/" +
         std::to_string(r.per_ue[0].cascade_jobs_injected) + ")");

  // --- Merged event log: no cross-UE regression, exact per-UE recovery ---
  std::size_t total_events = 0;
  for (const auto& s : r.per_ue) total_events += s.events.size();
  if (a.events.size() != total_events) {
    flag("merged log has " + std::to_string(a.events.size()) +
         " events but per-UE logs total " + std::to_string(total_events));
    return out;
  }
  std::vector<std::size_t> next(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const auto& e = a.events[i];
    if (i > 0 && e.t_s < a.events[i - 1].t_s) {
      flag("merged log regresses at index " + std::to_string(i) + " (t=" +
           std::to_string(e.t_s) + " after t=" +
           std::to_string(a.events[i - 1].t_s) + ")");
      break;
    }
    if (e.ue < 0 || e.ue >= n) {
      flag("merged log event " + std::to_string(i) + " tagged unknown ue=" +
           std::to_string(e.ue));
      break;
    }
    const auto& own = r.per_ue[static_cast<std::size_t>(e.ue)].events;
    auto& cursor = next[static_cast<std::size_t>(e.ue)];
    if (cursor >= own.size()) {
      flag("merged log has extra events for UE " + std::to_string(e.ue));
      break;
    }
    const auto& want = own[cursor];
    if (e.t_s != want.t_s || e.kind != want.kind ||
        e.serving_cell != want.serving_cell ||
        e.target_cell != want.target_cell ||
        e.serving_snr_db != want.serving_snr_db) {
      flag("merged log event " + std::to_string(i) + " for UE " +
           std::to_string(e.ue) + " does not match that UE's log entry " +
           std::to_string(cursor) + " — per-UE order not preserved");
      break;
    }
    ++cursor;
  }
  return out;
}

}  // namespace rem::testkit
