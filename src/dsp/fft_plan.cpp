#include "dsp/fft_plan.hpp"

#include "dsp/fft.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace rem::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct PlanCache {
  std::mutex mu;
  std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> plans;
};

PlanCache& cache() {
  static PlanCache c;
  return c;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("FftPlan: n must be >= 1");
  if (is_pow2(n)) {
    // Bit-reversal permutation.
    bitrev_.resize(n);
    for (std::size_t i = 0, j = 0; i < n; ++i) {
      bitrev_[i] = static_cast<std::uint32_t>(j);
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
    }
    // Forward twiddles for the largest stage; stage `len` uses every
    // (n/len)-th entry. Each value comes straight from cos/sin, so there is
    // no accumulated recurrence error even at n = 2^16 and beyond.
    twiddle_.resize(n / 2);
    for (std::size_t j = 0; j < n / 2; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j) /
                         static_cast<double>(n);
      twiddle_[j] = cd(std::cos(ang), std::sin(ang));
    }
    return;
  }

  // Direct DFT table for tiny non-pow2 sizes: the split path prefers n^2
  // tabulated MACs over the chirp-z machinery below kDirectDftMax.
  if (n <= kDirectDftMax) {
    dft_re_.resize(n * n);
    dft_im_.resize(n * n);
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t t = 0; t < n; ++t) {
        const double ang = -2.0 * kPi * static_cast<double>((k * t) % n) /
                           static_cast<double>(n);
        dft_re_[k * n + t] = std::cos(ang);
        dft_im_[k * n + t] = std::sin(ang);
      }
  }

  // Bluestein chirp-z tables. chirp[k] = e^{-j pi k^2 / n}, with k^2 taken
  // mod 2n to keep the angle bounded (avoids precision loss for large k).
  chirp_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = -kPi * static_cast<double>(k2) /
                       static_cast<double>(n);
    chirp_[k] = cd(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = next_pow2(2 * n - 1);
  conv_plan_ = FftPlan::get(m);
  // Convolution kernel b[k] = conj(chirp[k]) wrapped circularly, stored
  // already transformed so each call pays one forward FFT instead of two.
  kernel_.assign(m, cd(0, 0));
  kernel_[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n; ++k)
    kernel_[k] = kernel_[m - k] = std::conj(chirp_[k]);
  conv_plan_->pow2_exec(kernel_.data(), false);
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n) {
  auto& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    const auto it = c.plans.find(n);
    if (it != c.plans.end()) return it->second;
  }
  // Build outside the lock: Bluestein construction recursively fetches the
  // power-of-two convolution plan. Two threads may race to build the same
  // plan; the first insert wins and the loser's copy is dropped.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(c.mu);
  return c.plans.emplace(n, std::move(plan)).first->second;
}

std::size_t FftPlan::cache_size() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.plans.size();
}

void FftPlan::pow2_exec(cd* a, bool invert) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        cd w = twiddle_[k * step];
        if (invert) w = std::conj(w);
        const cd u = a[i + k];
        const cd v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

void FftPlan::bluestein_forward(cd* a, FftScratch& scratch) const {
  const std::size_t n = n_;
  const std::size_t m = conv_plan_->size();
  scratch.work.assign(m, cd(0, 0));
  cd* fa = scratch.work.data();
  for (std::size_t k = 0; k < n; ++k) fa[k] = a[k] * chirp_[k];
  conv_plan_->pow2_exec(fa, false);
  for (std::size_t k = 0; k < m; ++k) fa[k] *= kernel_[k];
  conv_plan_->pow2_exec(fa, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = fa[k] * inv_m * chirp_[k];
}

void FftPlan::exec(cd* a, bool invert, FftScratch& scratch) const {
  if (conv_plan_ == nullptr) {
    pow2_exec(a, invert);
    return;
  }
  if (!invert) {
    bluestein_forward(a, scratch);
    return;
  }
  // Unnormalized inverse via conjugation: idft(x) = conj(dft(conj(x))).
  for (std::size_t k = 0; k < n_; ++k) a[k] = std::conj(a[k]);
  bluestein_forward(a, scratch);
  for (std::size_t k = 0; k < n_; ++k) a[k] = std::conj(a[k]);
}

void FftPlan::transform(cd* base, std::size_t stride, bool invert,
                        double scale, FftScratch& scratch) const {
  const std::size_t n = n_;
  const double eff_scale =
      invert ? scale / static_cast<double>(n) : scale;
  if (stride == 1) {
    exec(base, invert, scratch);
    if (eff_scale != 1.0)
      for (std::size_t k = 0; k < n; ++k) base[k] *= eff_scale;
    return;
  }
  scratch.gather.resize(n);
  cd* g = scratch.gather.data();
  for (std::size_t k = 0; k < n; ++k) g[k] = base[k * stride];
  exec(g, invert, scratch);
  if (eff_scale != 1.0)
    for (std::size_t k = 0; k < n; ++k) base[k * stride] = g[k] * eff_scale;
  else
    for (std::size_t k = 0; k < n; ++k) base[k * stride] = g[k];
}

}  // namespace rem::dsp
