#include "dsp/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rem::dsp {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cd(1, 0);
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& d, std::size_t rows,
                        std::size_t cols) {
  Matrix m(rows, cols);
  const std::size_t n = std::min({d.size(), rows, cols});
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cd(d[i], 0);
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cd a = (*this)(i, k);
      if (a == cd(0, 0)) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix sum shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix difference shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(cd scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

std::vector<cd> Matrix::col(std::size_t c) const {
  std::vector<cd> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

std::vector<cd> Matrix::row(std::size_t r) const {
  std::vector<cd> out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(r, j);
  return out;
}

}  // namespace rem::dsp
