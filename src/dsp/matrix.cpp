#include "dsp/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rem::dsp {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cd(1, 0);
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& d, std::size_t rows,
                        std::size_t cols) {
  Matrix m(rows, cols);
  const std::size_t n = std::min({d.size(), rows, cols});
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cd(d[i], 0);
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cd a = (*this)(i, k);
      if (a == cd(0, 0)) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix sum shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix difference shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(cd scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

std::vector<cd> Matrix::col(std::size_t c) const {
  std::vector<cd> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

std::vector<cd> Matrix::row(std::size_t r) const {
  std::vector<cd> out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(r, j);
  return out;
}

std::size_t BatchMatrix::padded_ld(std::size_t rows) {
  std::size_t ld = (rows + 3) & ~std::size_t{3};
  if (ld == 0) ld = 4;
  // 256 doubles = 2 KiB: same-index columns of consecutive matrices at a
  // large power-of-two stride would collide in the same cache sets.
  if (ld % 256 == 0) ld += 4;
  return ld;
}

BatchMatrix::BatchMatrix(Arena& arena, std::size_t batch, std::size_t rows,
                         std::size_t cols)
    : batch_(batch), rows_(rows), cols_(cols), ld_(padded_ld(rows)) {
  plane_ = cols_ * ld_;
  const std::size_t total = batch_ * plane_;
  re_ = arena.alloc<double>(total);
  im_ = arena.alloc<double>(total);
}

void BatchMatrix::load(std::size_t b, const Matrix& m) {
  if (m.rows() != rows_ || m.cols() != cols_)
    throw std::invalid_argument("BatchMatrix::load shape mismatch");
  for (std::size_t j = 0; j < cols_; ++j) {
    double* re = re_col(b, j);
    double* im = im_col(b, j);
    for (std::size_t i = 0; i < rows_; ++i) {
      const cd v = m(i, j);
      re[i] = v.real();
      im[i] = v.imag();
    }
  }
}

void BatchMatrix::load_adjoint(std::size_t b, const Matrix& m) {
  if (m.rows() != cols_ || m.cols() != rows_)
    throw std::invalid_argument("BatchMatrix::load_adjoint shape mismatch");
  for (std::size_t j = 0; j < cols_; ++j) {
    double* re = re_col(b, j);
    double* im = im_col(b, j);
    for (std::size_t i = 0; i < rows_; ++i) {
      const cd v = m(j, i);
      re[i] = v.real();
      im[i] = -v.imag();
    }
  }
}

void BatchMatrix::store(std::size_t b, Matrix& out) const {
  if (out.rows() != rows_ || out.cols() != cols_) out = Matrix(rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const double* re = re_col(b, j);
    const double* im = im_col(b, j);
    for (std::size_t i = 0; i < rows_; ++i) out(i, j) = cd(re[i], im[i]);
  }
}

Matrix BatchMatrix::to_matrix(std::size_t b) const {
  Matrix out(rows_, cols_);
  store(b, out);
  return out;
}

}  // namespace rem::dsp
