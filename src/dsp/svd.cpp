#include "dsp/svd.hpp"

#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rem::dsp {
namespace {

// One-sided Jacobi on the columns of A (rows >= cols assumed by caller):
// repeatedly apply complex plane rotations to orthogonalize column pairs.
// On convergence the column norms are the singular values, the normalized
// columns form U, and the accumulated rotations form V.
void one_sided_jacobi(Matrix& a, Matrix& v) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  v = Matrix::identity(n);
  const int max_sweeps = 60;
  const double eps = 1e-13;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Compute the 2x2 Gram submatrix for columns p, q.
        double app = 0.0, aqq = 0.0;
        cd apq(0, 0);
        for (std::size_t i = 0; i < m; ++i) {
          app += std::norm(a(i, p));
          aqq += std::norm(a(i, q));
          apq += std::conj(a(i, p)) * a(i, q);
        }
        const double abs_apq = std::abs(apq);
        off = std::max(off, abs_apq / (std::sqrt(app * aqq) + 1e-300));
        if (abs_apq <= eps * std::sqrt(app * aqq)) continue;

        // Complex Jacobi rotation: first remove the phase of apq, then a
        // real rotation diagonalizing [[app, |apq|], [|apq|, aqq]].
        const cd phase = apq / abs_apq;
        const double tau = (aqq - app) / (2.0 * abs_apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const cd sp = s * phase;  // rotation applied with phase correction
        for (std::size_t i = 0; i < m; ++i) {
          const cd aip = a(i, p);
          const cd aiq = a(i, q);
          a(i, p) = c * aip - std::conj(sp) * aiq;
          a(i, q) = sp * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const cd vip = v(i, p);
          const cd viq = v(i, q);
          v(i, p) = c * vip - std::conj(sp) * viq;
          v(i, q) = sp * vip + c * viq;
        }
      }
    }
    if (off < 1e-12) break;
  }
}

}  // namespace

Matrix SvdResult::reconstruct() const {
  const std::size_t rank = sigma.size();
  Matrix us = u;  // scale U's columns by sigma
  for (std::size_t j = 0; j < rank; ++j)
    for (std::size_t i = 0; i < us.rows(); ++i) us(i, j) *= sigma[j];
  return us * v.adjoint();
}

SvdResult svd(const Matrix& a_in, std::size_t rank_limit,
              double truncate_below) {
  static obs::Histogram* const timer_hist = obs::kernel_timer("dsp.svd_ns");
  obs::ScopedTimer timer(timer_hist);
  // Work on the tall orientation; transpose back at the end if needed.
  const bool transposed = a_in.rows() < a_in.cols();
  Matrix a = transposed ? a_in.adjoint() : a_in;
  Matrix v;
  one_sided_jacobi(a, v);

  const std::size_t n = a.cols();
  // Column norms = singular values.
  std::vector<double> sig(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::norm(a(i, j));
    sig[j] = std::sqrt(s);
  }
  // Sort descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sig[x] > sig[y]; });

  std::size_t rank = n;
  if (rank_limit > 0) rank = std::min(rank, rank_limit);
  // Drop numerically-zero (or user-truncated) singular values.
  std::size_t keep = 0;
  const double tiny = std::max(truncate_below, sig.empty() ? 0.0
                                               : sig[order[0]] * 1e-12);
  while (keep < rank && sig[order[keep]] > tiny) ++keep;
  rank = std::max<std::size_t>(keep, 1);
  rank = std::min(rank, n);

  SvdResult r;
  r.sigma.resize(rank);
  r.u = Matrix(a.rows(), rank);
  r.v = Matrix(n, rank);
  for (std::size_t j = 0; j < rank; ++j) {
    const std::size_t src = order[j];
    r.sigma[j] = sig[src];
    const double inv = sig[src] > 0 ? 1.0 / sig[src] : 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) r.u(i, j) = a(i, src) * inv;
    for (std::size_t i = 0; i < n; ++i) r.v(i, j) = v(i, src);
  }
  if (transposed) std::swap(r.u, r.v);
  return r;
}

}  // namespace rem::dsp
