// Discrete Fourier transforms.
//
// The OFDM/OTFS modems need forward/inverse DFTs of arbitrary length (LTE
// grids are e.g. 1200x14, neither dimension a power of two), so we provide
// an iterative radix-2 Cooley-Tukey fast path and a Bluestein chirp-z
// fallback for other lengths. Both are O(n log n).
//
// These free functions are thin wrappers over the size-keyed plan cache in
// dsp/fft_plan.hpp (precomputed twiddles, bit-reversal, Bluestein kernels);
// hot loops that transform many rows/columns of one size should fetch an
// FftPlan directly and reuse an FftScratch.
#pragma once

#include <complex>
#include <vector>

namespace rem::dsp {

using cd = std::complex<double>;
using CVec = std::vector<cd>;

/// In-place forward DFT: X[k] = sum_n x[n] e^{-j 2 pi k n / N}. Any length.
void fft(CVec& data);

/// In-place inverse DFT with 1/N normalization.
void ifft(CVec& data);

/// Out-of-place convenience wrappers.
CVec fft_copy(const CVec& data);
CVec ifft_copy(const CVec& data);

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

}  // namespace rem::dsp
