// Dense complex matrix with the small set of operations REM needs:
// products, adjoints, norms, and element access. Row-major storage.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace rem::dsp {

using cd = std::complex<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cd(0, 0)) {}

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from real singular-value-style entries.
  static Matrix diagonal(const std::vector<double>& d, std::size_t rows,
                         std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cd& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cd& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<cd>& data() const { return data_; }
  std::vector<cd>& data() { return data_; }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(cd scalar);

  /// Conjugate transpose.
  Matrix adjoint() const;
  /// Plain transpose.
  Matrix transpose() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij| between two same-shape matrices.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Extract a column / row as a vector.
  std::vector<cd> col(std::size_t c) const;
  std::vector<cd> row(std::size_t r) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cd> data_;
};

}  // namespace rem::dsp
