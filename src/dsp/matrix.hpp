// Dense complex matrix with the small set of operations REM needs:
// products, adjoints, norms, and element access. Row-major storage.
//
// BatchMatrix is the throughput counterpart: a batch of same-shape complex
// matrices in structure-of-arrays form (separate re/im double planes,
// column-major, padded leading dimension) so the batched SFFT/SVD kernels
// stream contiguous columns through plain double arrays the compiler can
// vectorize. Storage comes from a caller-owned Arena (dsp/arena.hpp) and a
// BatchMatrix is only a view — it dies with the arena's next reset().
#pragma once

#include "dsp/arena.hpp"

#include <complex>
#include <cstddef>
#include <vector>

namespace rem::dsp {

using cd = std::complex<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cd(0, 0)) {}

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from real singular-value-style entries.
  static Matrix diagonal(const std::vector<double>& d, std::size_t rows,
                         std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cd& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cd& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<cd>& data() const { return data_; }
  std::vector<cd>& data() { return data_; }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(cd scalar);

  /// Conjugate transpose.
  Matrix adjoint() const;
  /// Plain transpose.
  Matrix transpose() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij| between two same-shape matrices.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Extract a column / row as a vector.
  std::vector<cd> col(std::size_t c) const;
  std::vector<cd> row(std::size_t r) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cd> data_;
};

/// A batch of same-shape complex matrices in SoA split re/im layout.
///
/// Element (b, i, j) lives at plane[b * plane_stride + j * ld + i] in each
/// of the two double planes: columns are contiguous runs of `ld` doubles
/// (`ld` = rows padded up, so successive columns start aligned), matrices
/// are contiguous blocks of `cols * ld`. The batched Jacobi/SFFT kernels
/// exploit exactly this: a column pair (p, q) is four contiguous double
/// streams, and "the same column of every matrix" is a fixed-stride walk.
///
/// View semantics: the planes belong to the Arena passed at construction;
/// copying a BatchMatrix copies the view, not the data. Do not use a
/// BatchMatrix after its arena was reset.
class BatchMatrix {
 public:
  BatchMatrix() = default;
  /// Allocate (zeroed) planes for `batch` matrices of rows x cols.
  BatchMatrix(Arena& arena, std::size_t batch, std::size_t rows,
              std::size_t cols);

  /// Leading dimension used for `rows`: rounded up to a multiple of 4
  /// doubles, nudged off large power-of-two strides to dodge cache-set
  /// aliasing between same-index columns of consecutive matrices.
  static std::size_t padded_ld(std::size_t rows);

  std::size_t batch() const { return batch_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  /// Doubles per matrix per plane (cols * ld).
  std::size_t plane_stride() const { return plane_; }
  bool empty() const { return batch_ == 0; }

  double* re_col(std::size_t b, std::size_t j) {
    return re_ + b * plane_ + j * ld_;
  }
  double* im_col(std::size_t b, std::size_t j) {
    return im_ + b * plane_ + j * ld_;
  }
  const double* re_col(std::size_t b, std::size_t j) const {
    return re_ + b * plane_ + j * ld_;
  }
  const double* im_col(std::size_t b, std::size_t j) const {
    return im_ + b * plane_ + j * ld_;
  }

  cd at(std::size_t b, std::size_t i, std::size_t j) const {
    const std::size_t o = b * plane_ + j * ld_ + i;
    return cd(re_[o], im_[o]);
  }
  void set(std::size_t b, std::size_t i, std::size_t j, cd v) {
    const std::size_t o = b * plane_ + j * ld_ + i;
    re_[o] = v.real();
    im_[o] = v.imag();
  }

  /// Copy a row-major Matrix into slot b (shapes must match).
  void load(std::size_t b, const Matrix& m);
  /// Copy the conjugate transpose of `m` into slot b (m is cols x rows).
  void load_adjoint(std::size_t b, const Matrix& m);
  /// Copy slot b out into a row-major Matrix (reuses `out`'s storage when
  /// the shape already matches — no allocation on the steady state).
  void store(std::size_t b, Matrix& out) const;
  Matrix to_matrix(std::size_t b) const;

 private:
  double* re_ = nullptr;
  double* im_ = nullptr;
  std::size_t batch_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
  std::size_t plane_ = 0;
};

}  // namespace rem::dsp
