// Complex singular value decomposition.
//
// REM's cross-band estimation (Algorithm 1) factorizes the delay-Doppler
// channel matrix H = U Σ V* and interprets the factors as path delay (U),
// attenuation (Σ), and Doppler (V*) structure. We implement a one-sided
// Jacobi SVD: numerically robust, no external dependency, and fast enough
// for the grid sizes used here (up to ~1200x560 in offline benches,
// 12x14..128x64 in the hot path).
#pragma once

#include "dsp/matrix.hpp"

#include <vector>

namespace rem::dsp {

struct SvdResult {
  Matrix u;                       ///< rows x rank, orthonormal columns
  std::vector<double> sigma;      ///< rank singular values, descending
  Matrix v;                       ///< cols x rank, orthonormal columns (V, not V*)

  /// Reconstruct U * diag(sigma) * V^* (possibly rank-truncated).
  Matrix reconstruct() const;
};

/// Thin SVD of `a`. If `rank_limit` > 0, only the strongest `rank_limit`
/// singular triplets are kept; otherwise all min(rows, cols) are returned.
/// Singular values below `truncate_below` (absolute) are dropped.
SvdResult svd(const Matrix& a, std::size_t rank_limit = 0,
              double truncate_below = 0.0);

}  // namespace rem::dsp
