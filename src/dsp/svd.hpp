// Complex singular value decomposition.
//
// REM's cross-band estimation (Algorithm 1) factorizes the delay-Doppler
// channel matrix H = U Σ V* and interprets the factors as path delay (U),
// attenuation (Σ), and Doppler (V*) structure. We implement a one-sided
// Jacobi SVD: numerically robust, no external dependency, and fast enough
// for the grid sizes used here (up to ~1200x560 in offline benches,
// 12x14..128x64 in the hot path).
#pragma once

#include "dsp/arena.hpp"
#include "dsp/matrix.hpp"

#include <cstdint>
#include <vector>

namespace rem::dsp {

struct SvdResult {
  Matrix u;                       ///< rows x rank, orthonormal columns
  std::vector<double> sigma;      ///< rank singular values, descending
  Matrix v;                       ///< cols x rank, orthonormal columns (V, not V*)

  /// Reconstruct U * diag(sigma) * V^* (possibly rank-truncated).
  Matrix reconstruct() const;
};

/// Thin SVD of `a`. If `rank_limit` > 0, only the strongest `rank_limit`
/// singular triplets are kept; otherwise all min(rows, cols) are returned.
/// Singular values below `truncate_below` (absolute) are dropped.
SvdResult svd(const Matrix& a, std::size_t rank_limit = 0,
              double truncate_below = 0.0);

/// Batched thin SVD results, SoA, arena-backed (views die with the arena's
/// next reset). Every matrix gets `r_max` triplet slots; slots at or past
/// rank[b] are zero-filled so downstream loops can be branch-light.
struct BatchSvd {
  BatchMatrix u;               ///< batch x rows x r_max, orthonormal columns
  BatchMatrix v;               ///< batch x cols x r_max (V, not V*)
  double* sigma = nullptr;     ///< sigma[b * r_max + j], descending per b
  std::uint32_t* rank = nullptr;  ///< kept triplets per matrix (>= 1)
  std::size_t r_max = 0;
};

/// Batched one-sided Jacobi SVD over same-shape matrices: the same (p, q)
/// column rotation sweeps every matrix of a block before moving on (hot
/// rotation code, per-matrix convergence masks), with all column work
/// running over the contiguous split-plane BatchMatrix layout. Matches
/// svd() semantics per matrix: tall orientation internally, descending
/// singular values, rank_limit/truncate_below as in svd().
/// `block` caps how many matrices share one sweep pass (clamped to 32;
/// block sizes profiled via the dsp.svd_batch_ns kernel histogram).
BatchSvd svd_batch(const BatchMatrix& a, Arena& arena,
                   std::size_t rank_limit = 0, double truncate_below = 0.0,
                   std::size_t block = 8);

}  // namespace rem::dsp
