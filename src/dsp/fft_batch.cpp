#include "dsp/fft_batch.hpp"

#include "dsp/fft_plan.hpp"
#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>

namespace rem::dsp {
namespace {

// Both directions decompose into a DFT along the rows axis (contiguous
// within each column) and a DFT along the cols axis (vector butterflies
// over whole columns). `rows_invert` selects sfft (false: forward delay
// DFT, inverse Doppler DFT) vs isfft.
void sfft_impl(BatchMatrix& g, Arena& arena, bool inverse) {
  const std::size_t rows = g.rows();
  const std::size_t cols = g.cols();
  if (g.batch() == 0 || rows == 0 || cols == 0) return;
  const auto plan_r = FftPlan::get(rows);
  const auto plan_c = FftPlan::get(cols);
  // Unitary convention: forward axes scale 1/sqrt(N); inverse axes pass
  // scale sqrt(N) so the plan's folded 1/N nets to 1/sqrt(N).
  const double fwd_r = 1.0 / std::sqrt(static_cast<double>(rows));
  const double inv_r = std::sqrt(static_cast<double>(rows));
  const double fwd_c = 1.0 / std::sqrt(static_cast<double>(cols));
  const double inv_c = std::sqrt(static_cast<double>(cols));

  const std::size_t scratch = std::max(plan_r->split_scratch_doubles(),
                                       plan_c->cols_scratch_doubles());
  double* wre = scratch > 0 ? arena.alloc<double>(scratch) : nullptr;
  double* wim = scratch > 0 ? arena.alloc<double>(scratch) : nullptr;

  for (std::size_t b = 0; b < g.batch(); ++b) {
    double* re0 = g.re_col(b, 0);
    double* im0 = g.im_col(b, 0);
    if (!inverse) {
      // sfft: forward DFT along the delay axis (within columns)...
      for (std::size_t j = 0; j < cols; ++j)
        plan_r->transform_split(re0 + j * g.ld(), im0 + j * g.ld(), false,
                                fwd_r, wre, wim);
      // ...then inverse DFT along the Doppler axis (across columns).
      plan_c->transform_cols(re0, im0, g.ld(), rows, true, inv_c, wre, wim);
    } else {
      // isfft mirrors phy::isfft's axis order: forward across columns
      // first, then inverse within columns.
      plan_c->transform_cols(re0, im0, g.ld(), rows, false, fwd_c, wre, wim);
      for (std::size_t j = 0; j < cols; ++j)
        plan_r->transform_split(re0 + j * g.ld(), im0 + j * g.ld(), true,
                                inv_r, wre, wim);
    }
  }
}

}  // namespace

void sfft_batch(BatchMatrix& grid, Arena& arena) {
  static obs::Histogram* const timer_hist =
      obs::kernel_timer("dsp.sfft_batch_ns");
  obs::ScopedTimer timer(timer_hist);
  sfft_impl(grid, arena, false);
}

void isfft_batch(BatchMatrix& grid, Arena& arena) {
  static obs::Histogram* const timer_hist =
      obs::kernel_timer("dsp.isfft_batch_ns");
  obs::ScopedTimer timer(timer_hist);
  sfft_impl(grid, arena, true);
}

}  // namespace rem::dsp
