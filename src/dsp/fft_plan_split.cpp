// Split-complex (SoA) execution paths of FftPlan, used by the batched DSP
// pipeline (dsp/fft_batch.hpp). Kept in their own translation unit so the
// batch kernels can be compiled with stronger vectorization flags without
// perturbing the scalar singles path that serves as the bench baseline.
//
// Two layouts are covered:
//   * transform_split — one contiguous split vector (re[0..n), im[0..n)),
//     the within-column axis of a column-major BatchMatrix;
//   * transform_cols — the across-columns axis: one butterfly touches two
//     whole contiguous columns, so every inner loop is an elementwise walk
//     over `rows` doubles. Work is tiled into kRowBlock-row blocks so all
//     log2(n) stages of a block run out of cache (including the Bluestein
//     convolution, whose scratch is conv_size x kRowBlock, not
//     conv_size x ld).
#include "dsp/fft_plan.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace rem::dsp {

std::size_t FftPlan::split_scratch_doubles() const {
  return conv_plan_ == nullptr ? 0 : conv_plan_->size();
}

std::size_t FftPlan::cols_scratch_doubles() const {
  return conv_plan_ == nullptr ? 0 : conv_plan_->size() * kRowBlock;
}

void FftPlan::direct_dft_split(double* re, double* im, bool invert,
                               double eff, double* wre, double* wim) const {
  const std::size_t n = n_;
  std::memcpy(wre, re, n * sizeof(double));
  std::memcpy(wim, im, n * sizeof(double));
  for (std::size_t k = 0; k < n; ++k) {
    const double* __restrict tr = dft_re_.data() + k * n;
    const double* __restrict ti = dft_im_.data() + k * n;
    double ar = 0.0, ai = 0.0;
    if (!invert) {
#pragma omp simd reduction(+ : ar, ai)
      for (std::size_t t = 0; t < n; ++t) {
        ar += wre[t] * tr[t] - wim[t] * ti[t];
        ai += wre[t] * ti[t] + wim[t] * tr[t];
      }
    } else {
#pragma omp simd reduction(+ : ar, ai)
      for (std::size_t t = 0; t < n; ++t) {
        ar += wre[t] * tr[t] + wim[t] * ti[t];
        ai += wim[t] * tr[t] - wre[t] * ti[t];
      }
    }
    re[k] = ar * eff;
    im[k] = ai * eff;
  }
}

void FftPlan::pow2_exec_split(double* re, double* im, bool invert) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cd w = twiddle_[k * step];
        const double wr = w.real();
        const double wi = invert ? -w.imag() : w.imag();
        const std::size_t a = i + k;
        const std::size_t b = a + half;
        const double vr = re[b] * wr - im[b] * wi;
        const double vi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - vr;
        im[b] = im[a] - vi;
        re[a] += vr;
        im[a] += vi;
      }
    }
  }
}

void FftPlan::bluestein_forward_split(double* re, double* im, double* wre,
                                      double* wim) const {
  const std::size_t n = n_;
  const std::size_t m = conv_plan_->size();
  std::memset(wre, 0, m * sizeof(double));
  std::memset(wim, 0, m * sizeof(double));
  for (std::size_t k = 0; k < n; ++k) {
    const double cr = chirp_[k].real();
    const double ci = chirp_[k].imag();
    wre[k] = re[k] * cr - im[k] * ci;
    wim[k] = re[k] * ci + im[k] * cr;
  }
  conv_plan_->pow2_exec_split(wre, wim, false);
  for (std::size_t k = 0; k < m; ++k) {
    const double kr = kernel_[k].real();
    const double ki = kernel_[k].imag();
    const double tr = wre[k] * kr - wim[k] * ki;
    wim[k] = wre[k] * ki + wim[k] * kr;
    wre[k] = tr;
  }
  conv_plan_->pow2_exec_split(wre, wim, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    const double cr = chirp_[k].real();
    const double ci = chirp_[k].imag();
    const double tr = wre[k] * inv_m;
    const double ti = wim[k] * inv_m;
    re[k] = tr * cr - ti * ci;
    im[k] = tr * ci + ti * cr;
  }
}

void FftPlan::transform_split(double* re, double* im, bool invert,
                              double scale, double* wre, double* wim) const {
  const std::size_t n = n_;
  const double eff = invert ? scale / static_cast<double>(n) : scale;
  if (!dft_re_.empty()) {
    direct_dft_split(re, im, invert, eff, wre, wim);
    return;
  }
  if (conv_plan_ == nullptr) {
    pow2_exec_split(re, im, invert);
  } else if (!invert) {
    bluestein_forward_split(re, im, wre, wim);
  } else {
    // Unnormalized inverse via conjugation, as in the interleaved path.
    for (std::size_t k = 0; k < n; ++k) im[k] = -im[k];
    bluestein_forward_split(re, im, wre, wim);
    for (std::size_t k = 0; k < n; ++k) im[k] = -im[k];
  }
  if (eff != 1.0) {
    for (std::size_t k = 0; k < n; ++k) {
      re[k] *= eff;
      im[k] *= eff;
    }
  }
}

void FftPlan::pow2_exec_cols(double* re, double* im, std::size_t ld,
                             std::size_t rows, bool invert) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      double* __restrict ar = re + i * ld;
      double* __restrict ai = im + i * ld;
      double* __restrict br = re + j * ld;
      double* __restrict bi = im + j * ld;
#pragma omp simd
      for (std::size_t r = 0; r < rows; ++r) {
        const double tr = ar[r];
        const double ti = ai[r];
        ar[r] = br[r];
        ai[r] = bi[r];
        br[r] = tr;
        bi[r] = ti;
      }
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cd w = twiddle_[k * step];
        const double wr = w.real();
        const double wi = invert ? -w.imag() : w.imag();
        double* __restrict ar = re + (i + k) * ld;
        double* __restrict ai = im + (i + k) * ld;
        double* __restrict br = re + (i + k + half) * ld;
        double* __restrict bi = im + (i + k + half) * ld;
#pragma omp simd
        for (std::size_t r = 0; r < rows; ++r) {
          const double vr = br[r] * wr - bi[r] * wi;
          const double vi = br[r] * wi + bi[r] * wr;
          br[r] = ar[r] - vr;
          bi[r] = ai[r] - vi;
          ar[r] += vr;
          ai[r] += vi;
        }
      }
    }
  }
}

void FftPlan::bluestein_forward_cols(double* re, double* im, std::size_t ld,
                                     std::size_t rows, double* wre,
                                     double* wim) const {
  const std::size_t n = n_;
  const std::size_t m = conv_plan_->size();
  // Scratch layout: m columns with a tight leading dimension of `rows`.
  std::memset(wre, 0, m * rows * sizeof(double));
  std::memset(wim, 0, m * rows * sizeof(double));
  for (std::size_t k = 0; k < n; ++k) {
    const double cr = chirp_[k].real();
    const double ci = chirp_[k].imag();
    const double* __restrict ar = re + k * ld;
    const double* __restrict ai = im + k * ld;
    double* __restrict dr = wre + k * rows;
    double* __restrict di = wim + k * rows;
#pragma omp simd
    for (std::size_t r = 0; r < rows; ++r) {
      dr[r] = ar[r] * cr - ai[r] * ci;
      di[r] = ar[r] * ci + ai[r] * cr;
    }
  }
  conv_plan_->pow2_exec_cols(wre, wim, rows, rows, false);
  for (std::size_t k = 0; k < m; ++k) {
    const double kr = kernel_[k].real();
    const double ki = kernel_[k].imag();
    double* __restrict dr = wre + k * rows;
    double* __restrict di = wim + k * rows;
#pragma omp simd
    for (std::size_t r = 0; r < rows; ++r) {
      const double tr = dr[r] * kr - di[r] * ki;
      di[r] = dr[r] * ki + di[r] * kr;
      dr[r] = tr;
    }
  }
  conv_plan_->pow2_exec_cols(wre, wim, rows, rows, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    const double cr = chirp_[k].real();
    const double ci = chirp_[k].imag();
    double* __restrict ar = re + k * ld;
    double* __restrict ai = im + k * ld;
    const double* __restrict dr = wre + k * rows;
    const double* __restrict di = wim + k * rows;
#pragma omp simd
    for (std::size_t r = 0; r < rows; ++r) {
      const double tr = dr[r] * inv_m;
      const double ti = di[r] * inv_m;
      ar[r] = tr * cr - ti * ci;
      ai[r] = tr * ci + ti * cr;
    }
  }
}

void FftPlan::transform_cols(double* re, double* im, std::size_t ld,
                             std::size_t rows, bool invert, double scale,
                             double* wre, double* wim) const {
  const std::size_t n = n_;
  const double eff = invert ? scale / static_cast<double>(n) : scale;
  for (std::size_t r0 = 0; r0 < rows; r0 += kRowBlock) {
    const std::size_t rb = std::min(kRowBlock, rows - r0);
    double* bre = re + r0;
    double* bim = im + r0;
    if (conv_plan_ == nullptr) {
      pow2_exec_cols(bre, bim, ld, rb, invert);
    } else if (!invert) {
      bluestein_forward_cols(bre, bim, ld, rb, wre, wim);
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        double* __restrict bi = bim + j * ld;
        for (std::size_t r = 0; r < rb; ++r) bi[r] = -bi[r];
      }
      bluestein_forward_cols(bre, bim, ld, rb, wre, wim);
      for (std::size_t j = 0; j < n; ++j) {
        double* __restrict bi = bim + j * ld;
        for (std::size_t r = 0; r < rb; ++r) bi[r] = -bi[r];
      }
    }
    if (eff != 1.0) {
      for (std::size_t j = 0; j < n; ++j) {
        double* __restrict br = bre + j * ld;
        double* __restrict bi = bim + j * ld;
#pragma omp simd
        for (std::size_t r = 0; r < rb; ++r) {
          br[r] *= eff;
          bi[r] *= eff;
        }
      }
    }
  }
}

}  // namespace rem::dsp
