// Sparse exponential modeling of short sequences (matrix-pencil / Prony).
//
// Models x[c] = sum_{p=1}^{K} a_p z_p^c with K small (<= 4 here). Used by
// REM's cross-band estimator: an SVD triplet of the delay-Doppler matrix
// whose paths share a delay carries a Doppler factor that is a *sum* of
// complex exponentials; the matrix-pencil method separates them so each
// Doppler can be rescaled to the target band individually.
#pragma once

#include "dsp/arena.hpp"

#include <complex>
#include <cstddef>
#include <vector>

namespace rem::dsp {

struct ExponentialComponent {
  std::complex<double> amplitude;  ///< a_p
  std::complex<double> pole;       ///< z_p (|z| ~ 1 for pure oscillations)
};

/// Fit up to `max_components` exponentials to `seq` with the matrix-pencil
/// method. Components whose singular value falls below
/// `rel_threshold` * (largest) are dropped. Returns components sorted by
/// descending |amplitude|. Sequences shorter than 4 samples fall back to a
/// single weighted-ratio component.
std::vector<ExponentialComponent> fit_exponentials(
    const std::vector<std::complex<double>>& seq,
    std::size_t max_components = 3, double rel_threshold = 0.08);

/// Evaluate a fitted model at integer samples 0..n-1, with each pole's
/// *angle* scaled by `angle_scale` (|z| preserved). angle_scale = 1
/// reproduces the fit; REM uses f2/f1 to retarget Dopplers.
std::vector<std::complex<double>> eval_exponentials(
    const std::vector<ExponentialComponent>& comps, std::size_t n,
    double angle_scale = 1.0);

/// Allocation-free variant of fit_exponentials for the batched estimator:
/// the sequence arrives as split re/im planes (length n), workspace comes
/// from `arena` (the Hankel SVD runs through svd_batch), and up to 3
/// components are written to `out`. Returns the component count. Same
/// algorithm and thresholds as fit_exponentials.
std::size_t fit_exponentials_split(const double* re, const double* im,
                                   std::size_t n, std::size_t max_components,
                                   double rel_threshold, Arena& arena,
                                   ExponentialComponent* out);

// --- Staged pencil fit -----------------------------------------------------
// The batched estimator factorizes MANY same-length sequences at once: it
// sizes the Hankel with pencil_shape(), packs every sequence as one batch
// slot with pack_hankel_split(), runs a single svd_batch over all of them,
// and finishes each fit from its slot with fit_exponentials_from_svd().
// fit_exponentials_split() is these pieces composed at batch size 1.

class BatchMatrix;
struct BatchSvd;

/// Hankel geometry of the matrix-pencil fit for a length-n sequence.
/// rows == 0 means no pencil applies (n < 4 or max_components == 1); use
/// fit_exponential_ratio() instead.
struct PencilShape {
  std::size_t rows = 0;  ///< Hankel row count (n - l)
  std::size_t l = 0;     ///< pencil parameter; Hankel has l + 1 columns
};
PencilShape pencil_shape(std::size_t n, std::size_t max_components);

/// Pack sequence `seq` (length ps.rows + ps.l) into batch slot `b` of the
/// split Hankel planes `y` (a BatchMatrix of shape ps.rows x (ps.l + 1)).
void pack_hankel_split(const std::complex<double>* seq, const PencilShape& ps,
                       BatchMatrix& y, std::size_t b);

/// Finish a pencil fit from slot `b` of the factorized Hankel batch `s`:
/// pick k from the singular-value threshold, recover poles from the right
/// singular vectors, fit amplitudes against `seq` (length n). Writes up to
/// 3 components to `out`, sorted by descending |amplitude|; returns k.
std::size_t fit_exponentials_from_svd(const std::complex<double>* seq,
                                      std::size_t n,
                                      std::size_t max_components,
                                      double rel_threshold, const BatchSvd& s,
                                      std::size_t b, std::size_t l,
                                      ExponentialComponent* out);

/// The short-sequence fallback (n < 4 or max_components == 1): one
/// weighted-ratio component. Writes out[0]; returns 1.
std::size_t fit_exponential_ratio(const std::complex<double>* seq,
                                  std::size_t n, ExponentialComponent* out);

/// Allocation-free eval_exponentials: writes the model into split re/im
/// planes of length n (overwriting them).
void eval_exponentials_into(const ExponentialComponent* comps, std::size_t k,
                            std::size_t n, double angle_scale, double* re,
                            double* im);

}  // namespace rem::dsp
