// Sparse exponential modeling of short sequences (matrix-pencil / Prony).
//
// Models x[c] = sum_{p=1}^{K} a_p z_p^c with K small (<= 4 here). Used by
// REM's cross-band estimator: an SVD triplet of the delay-Doppler matrix
// whose paths share a delay carries a Doppler factor that is a *sum* of
// complex exponentials; the matrix-pencil method separates them so each
// Doppler can be rescaled to the target band individually.
#pragma once

#include <complex>
#include <vector>

namespace rem::dsp {

struct ExponentialComponent {
  std::complex<double> amplitude;  ///< a_p
  std::complex<double> pole;       ///< z_p (|z| ~ 1 for pure oscillations)
};

/// Fit up to `max_components` exponentials to `seq` with the matrix-pencil
/// method. Components whose singular value falls below
/// `rel_threshold` * (largest) are dropped. Returns components sorted by
/// descending |amplitude|. Sequences shorter than 4 samples fall back to a
/// single weighted-ratio component.
std::vector<ExponentialComponent> fit_exponentials(
    const std::vector<std::complex<double>>& seq,
    std::size_t max_components = 3, double rel_threshold = 0.08);

/// Evaluate a fitted model at integer samples 0..n-1, with each pole's
/// *angle* scaled by `angle_scale` (|z| preserved). angle_scale = 1
/// reproduces the fit; REM uses f2/f1 to retarget Dopplers.
std::vector<std::complex<double>> eval_exponentials(
    const std::vector<ExponentialComponent>& comps, std::size_t n,
    double angle_scale = 1.0);

}  // namespace rem::dsp
