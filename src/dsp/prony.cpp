#include "dsp/prony.hpp"

#include "dsp/matrix.hpp"
#include "dsp/svd.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

namespace rem::dsp {
namespace {

using std::complex;

// The solvers below operate on raw pointers with k <= 4 so both the
// vector-based fit_exponentials and the arena-based
// fit_exponentials_split share one implementation (and stay bit-identical
// between the two paths).

// Solve the small (n <= 4) linear system A x = b by Gaussian elimination
// with partial pivoting. A is n x n complex, row-major; a and b are
// clobbered. Returns false (x untouched) if singular.
bool solve_small_ptr(cd* a, cd* b, std::size_t n, cd* x) {
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    if (std::abs(a[piv * n + col]) < 1e-14) return false;  // singular
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[col * n + c], a[piv * n + c]);
      std::swap(b[col], b[piv]);
    }
    const cd inv = cd(1, 0) / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const cd f = a[r * n + col] * inv;
      if (f == cd(0, 0)) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t row = n; row-- > 0;) {
    cd s = b[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row * n + c] * x[c];
    x[row] = s / a[row * n + row];
  }
  return true;
}

// Eigenvalues of a k x k complex matrix (row-major) for k <= 3 via the
// characteristic polynomial (closed forms). Writes k roots.
void small_eigenvalues_ptr(const cd* m, std::size_t k, cd* roots) {
  if (k == 1) {
    roots[0] = m[0];
    return;
  }
  if (k == 2) {
    const cd tr = m[0] + m[3];
    const cd det = m[0] * m[3] - m[1] * m[2];
    const cd disc = std::sqrt(tr * tr - 4.0 * det);
    roots[0] = (tr + disc) / 2.0;
    roots[1] = (tr - disc) / 2.0;
    return;
  }
  // k == 3: lambda^3 - c2 lambda^2 + c1 lambda - c0 = 0.
  const cd a = m[0], b = m[1], c = m[2];
  const cd d = m[3], e = m[4], f = m[5];
  const cd g = m[6], h = m[7], i = m[8];
  const cd c2 = a + e + i;
  const cd c1 = a * e + a * i + e * i - b * d - c * g - f * h;
  const cd c0 = a * (e * i - f * h) - b * (d * i - f * g) +
                c * (d * h - e * g);
  // Depressed cubic: lambda = t + c2/3.
  const cd p = c1 - c2 * c2 / 3.0;
  const cd q = -c0 + c1 * c2 / 3.0 - 2.0 * c2 * c2 * c2 / 27.0;
  // t^3 + p t + q = 0; Cardano with complex arithmetic.
  const cd sq = std::sqrt(q * q / 4.0 + p * p * p / 27.0);
  cd u3 = -q / 2.0 + sq;
  if (std::abs(u3) < 1e-18) u3 = -q / 2.0 - sq;
  const cd u = std::pow(u3, 1.0 / 3.0);
  const cd omega(-0.5, std::sqrt(3.0) / 2.0);
  for (int r = 0; r < 3; ++r) {
    const cd ur = u * std::pow(omega, r);
    const cd t = std::abs(ur) > 1e-18 ? ur - p / (3.0 * ur) : cd(0, 0);
    roots[r] = t + c2 / 3.0;
  }
}

// Least-squares amplitudes for x[c] ~= sum a_p z_p^c (Vandermonde fit).
// k <= 4; writes k amplitudes (zeros if the normal equations are singular).
void fit_amplitudes_ptr(const cd* seq, std::size_t n, const cd* poles,
                        std::size_t k, cd* amps) {
  // Normal equations: (V* V) a = V* x, V[c][p] = z_p^c.
  std::array<cd, 16> vtv{};
  std::array<cd, 4> vtx{};
  std::array<cd, 4> pw;
  pw.fill(cd(1, 0));
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t p = 0; p < k; ++p) {
      vtx[p] += std::conj(pw[p]) * seq[c];
      for (std::size_t q = 0; q < k; ++q)
        vtv[p * k + q] += std::conj(pw[p]) * pw[q];
    }
    for (std::size_t p = 0; p < k; ++p) pw[p] *= poles[p];
  }
  if (!solve_small_ptr(vtv.data(), vtx.data(), k, amps))
    for (std::size_t p = 0; p < k; ++p) amps[p] = cd(0, 0);
}

// Shared post-SVD pencil step: given the right singular vectors of the
// Hankel matrix through `v_at(r, p)` (r < l + 1, p < k), recover the k
// poles. Phase-invariant in the V columns, so the scalar and batched SVDs
// feed it interchangeably.
template <typename VAt>
void pencil_poles(VAt&& v_at, std::size_t l, std::size_t k, cd* poles) {
  // V1 = V_s without last row, V2 = V_s without first row; poles are the
  // eigenvalues of pinv(V1) V2.
  // Normal equations: (V1* V1) F = V1* V2, F is k x k.
  std::array<cd, 9> v1tv1{};
  std::array<cd, 9> f{};
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t q = 0; q < k; ++q) {
      cd acc(0, 0);
      for (std::size_t r = 0; r < l; ++r)
        acc += std::conj(v_at(r, p)) * v_at(r, q);
      v1tv1[p * k + q] = acc;
    }
  for (std::size_t col = 0; col < k; ++col) {
    std::array<cd, 9> a = v1tv1;  // solve clobbers its inputs
    std::array<cd, 3> rhs{};
    std::array<cd, 3> x{};
    for (std::size_t p = 0; p < k; ++p) {
      cd acc(0, 0);
      for (std::size_t r = 0; r < l; ++r)
        acc += std::conj(v_at(r, p)) * v_at(r + 1, col);
      rhs[p] = acc;
    }
    if (!solve_small_ptr(a.data(), rhs.data(), k, x.data())) x.fill(cd(0, 0));
    for (std::size_t p = 0; p < k; ++p) f[p * k + col] = x[p];
  }
  small_eigenvalues_ptr(f.data(), k, poles);
  // Y(r,c) = sum u_r sigma v*_c, so V's columns carry conj(z)^c and the
  // pencil eigenvalues come out conjugated — undo that.
  for (std::size_t p = 0; p < k; ++p) poles[p] = std::conj(poles[p]);
  // Clamp pole magnitudes near the unit circle (oscillations, not decays;
  // keeps the band-2 extrapolation stable).
  for (std::size_t p = 0; p < k; ++p) {
    const double mag = std::abs(poles[p]);
    if (mag > 1e-12) poles[p] *= std::clamp(mag, 0.8, 1.2) / mag;
  }
}

// Weighted single-ratio fallback for short sequences.
cd ratio_pole(const cd* seq, std::size_t n) {
  cd acc(0, 0);
  for (std::size_t c = 0; c + 1 < n; ++c)
    acc += seq[c + 1] * std::conj(seq[c]);
  return std::abs(acc) > 1e-15 ? acc / std::abs(acc) : cd(1, 0);
}

void sort_components(ExponentialComponent* out, std::size_t k) {
  std::sort(out, out + k,
            [](const ExponentialComponent& a, const ExponentialComponent& b) {
              return std::abs(a.amplitude) > std::abs(b.amplitude);
            });
}

}  // namespace

std::vector<ExponentialComponent> fit_exponentials(
    const std::vector<cd>& seq, std::size_t max_components,
    double rel_threshold) {
  const std::size_t n = seq.size();
  std::vector<ExponentialComponent> out;
  if (n == 0) return out;
  if (n < 4 || max_components == 1) {
    const cd pole = ratio_pole(seq.data(), n);
    cd amp;
    fit_amplitudes_ptr(seq.data(), n, &pole, 1, &amp);
    out.push_back({amp, pole});
    return out;
  }

  // Matrix pencil: Hankel Y (rows x (L+1)), signal subspace from SVD.
  const std::size_t max_k = std::min<std::size_t>(max_components, 3);
  const std::size_t l = std::min(n / 2, max_k + 2);  // pencil parameter
  const std::size_t rows = n - l;
  Matrix y(rows, l + 1);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c <= l; ++c) y(r, c) = seq[r + c];
  const auto s = svd(y);
  std::size_t k = 0;
  while (k < s.sigma.size() && k < max_k &&
         s.sigma[k] > rel_threshold * s.sigma[0])
    ++k;
  if (k == 0) k = 1;

  std::array<cd, 3> poles{};
  pencil_poles([&](std::size_t r, std::size_t p) { return s.v(r, p); }, l, k,
               poles.data());
  std::array<cd, 3> amps{};
  fit_amplitudes_ptr(seq.data(), n, poles.data(), k, amps.data());
  for (std::size_t p = 0; p < k; ++p) out.push_back({amps[p], poles[p]});
  sort_components(out.data(), out.size());
  return out;
}

PencilShape pencil_shape(std::size_t n, std::size_t max_components) {
  PencilShape ps;
  if (n < 4 || max_components == 1) return ps;  // ratio fallback
  const std::size_t max_k = std::min<std::size_t>(max_components, 3);
  ps.l = std::min(n / 2, max_k + 2);
  ps.rows = n - ps.l;
  return ps;
}

void pack_hankel_split(const cd* seq, const PencilShape& ps, BatchMatrix& y,
                       std::size_t b) {
  for (std::size_t c = 0; c <= ps.l; ++c) {
    double* __restrict yre = y.re_col(b, c);
    double* __restrict yim = y.im_col(b, c);
    for (std::size_t r = 0; r < ps.rows; ++r) {
      yre[r] = seq[r + c].real();
      yim[r] = seq[r + c].imag();
    }
  }
}

std::size_t fit_exponentials_from_svd(const cd* seq, std::size_t n,
                                      std::size_t max_components,
                                      double rel_threshold, const BatchSvd& s,
                                      std::size_t b, std::size_t l,
                                      ExponentialComponent* out) {
  const std::size_t max_k = std::min<std::size_t>(max_components, 3);
  const double* sig = s.sigma + b * s.r_max;
  std::size_t k = 0;
  while (k < s.rank[b] && k < max_k && sig[k] > rel_threshold * sig[0]) ++k;
  if (k == 0) k = 1;

  std::array<cd, 3> poles{};
  pencil_poles([&](std::size_t r, std::size_t p) { return s.v.at(b, r, p); },
               l, k, poles.data());
  std::array<cd, 3> amps{};
  fit_amplitudes_ptr(seq, n, poles.data(), k, amps.data());
  for (std::size_t p = 0; p < k; ++p) out[p] = {amps[p], poles[p]};
  sort_components(out, k);
  return k;
}

std::size_t fit_exponential_ratio(const cd* seq, std::size_t n,
                                  ExponentialComponent* out) {
  const cd pole = ratio_pole(seq, n);
  cd amp;
  fit_amplitudes_ptr(seq, n, &pole, 1, &amp);
  out[0] = {amp, pole};
  return 1;
}

std::size_t fit_exponentials_split(const double* re, const double* im,
                                   std::size_t n, std::size_t max_components,
                                   double rel_threshold, Arena& arena,
                                   ExponentialComponent* out) {
  if (n == 0) return 0;
  // Interleave once; everything downstream (Hankel fill, amplitude fit)
  // reads the sequence as cd.
  cd* seq = arena.alloc<cd>(n);
  for (std::size_t c = 0; c < n; ++c) seq[c] = cd(re[c], im[c]);

  const PencilShape ps = pencil_shape(n, max_components);
  if (ps.rows == 0) return fit_exponential_ratio(seq, n, out);

  BatchMatrix y(arena, 1, ps.rows, ps.l + 1);
  pack_hankel_split(seq, ps, y, 0);
  const BatchSvd s = svd_batch(y, arena);
  return fit_exponentials_from_svd(seq, n, max_components, rel_threshold, s,
                                   0, ps.l, out);
}

std::vector<cd> eval_exponentials(
    const std::vector<ExponentialComponent>& comps, std::size_t n,
    double angle_scale) {
  std::vector<cd> seq(n, cd(0, 0));
  for (const auto& comp : comps) {
    const double mag = std::abs(comp.pole);
    const double ang = std::arg(comp.pole) * angle_scale;
    const cd z = mag * cd(std::cos(ang), std::sin(ang));
    cd pw(1, 0);
    for (std::size_t c = 0; c < n; ++c) {
      seq[c] += comp.amplitude * pw;
      pw *= z;
    }
  }
  return seq;
}

void eval_exponentials_into(const ExponentialComponent* comps, std::size_t k,
                            std::size_t n, double angle_scale, double* re,
                            double* im) {
  for (std::size_t c = 0; c < n; ++c) {
    re[c] = 0.0;
    im[c] = 0.0;
  }
  for (std::size_t p = 0; p < k; ++p) {
    const double mag = std::abs(comps[p].pole);
    const double ang = std::arg(comps[p].pole) * angle_scale;
    const cd z = mag * cd(std::cos(ang), std::sin(ang));
    cd pw(1, 0);
    for (std::size_t c = 0; c < n; ++c) {
      const cd val = comps[p].amplitude * pw;
      re[c] += val.real();
      im[c] += val.imag();
      pw *= z;
    }
  }
}

}  // namespace rem::dsp
