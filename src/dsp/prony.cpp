#include "dsp/prony.hpp"

#include "dsp/matrix.hpp"
#include "dsp/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace rem::dsp {
namespace {

using std::complex;

// Solve the small (n <= 4) linear system A x = b by Gaussian elimination
// with partial pivoting. A is n x n complex, row-major.
std::vector<cd> solve_small(std::vector<cd> a, std::vector<cd> b,
                            std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    if (std::abs(a[piv * n + col]) < 1e-14) return {};  // singular
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[col * n + c], a[piv * n + c]);
      std::swap(b[col], b[piv]);
    }
    const cd inv = cd(1, 0) / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const cd f = a[r * n + col] * inv;
      if (f == cd(0, 0)) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<cd> x(n);
  for (std::size_t row = n; row-- > 0;) {
    cd s = b[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row * n + c] * x[c];
    x[row] = s / a[row * n + row];
  }
  return x;
}

// Eigenvalues of a k x k complex matrix for k <= 3 via the characteristic
// polynomial (closed forms).
std::vector<cd> small_eigenvalues(const Matrix& m) {
  const std::size_t k = m.rows();
  if (k == 1) return {m(0, 0)};
  if (k == 2) {
    const cd tr = m(0, 0) + m(1, 1);
    const cd det = m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0);
    const cd disc = std::sqrt(tr * tr - 4.0 * det);
    return {(tr + disc) / 2.0, (tr - disc) / 2.0};
  }
  // k == 3: lambda^3 - c2 lambda^2 + c1 lambda - c0 = 0.
  const cd a = m(0, 0), b = m(0, 1), c = m(0, 2);
  const cd d = m(1, 0), e = m(1, 1), f = m(1, 2);
  const cd g = m(2, 0), h = m(2, 1), i = m(2, 2);
  const cd c2 = a + e + i;
  const cd c1 = a * e + a * i + e * i - b * d - c * g - f * h;
  const cd c0 = a * (e * i - f * h) - b * (d * i - f * g) +
                c * (d * h - e * g);
  // Depressed cubic: lambda = t + c2/3.
  const cd p = c1 - c2 * c2 / 3.0;
  const cd q = -c0 + c1 * c2 / 3.0 - 2.0 * c2 * c2 * c2 / 27.0;
  // t^3 + p t + q = 0; Cardano with complex arithmetic.
  const cd sq = std::sqrt(q * q / 4.0 + p * p * p / 27.0);
  cd u3 = -q / 2.0 + sq;
  if (std::abs(u3) < 1e-18) u3 = -q / 2.0 - sq;
  const cd u = std::pow(u3, 1.0 / 3.0);
  const cd omega(-0.5, std::sqrt(3.0) / 2.0);
  std::vector<cd> roots;
  for (int r = 0; r < 3; ++r) {
    const cd ur = u * std::pow(omega, r);
    const cd t = std::abs(ur) > 1e-18 ? ur - p / (3.0 * ur) : cd(0, 0);
    roots.push_back(t + c2 / 3.0);
  }
  return roots;
}

// Least-squares amplitudes for x[c] ~= sum a_p z_p^c (Vandermonde fit).
std::vector<cd> fit_amplitudes(const std::vector<cd>& seq,
                               const std::vector<cd>& poles) {
  const std::size_t n = seq.size();
  const std::size_t k = poles.size();
  // Normal equations: (V* V) a = V* x, V[c][p] = z_p^c.
  std::vector<cd> vtv(k * k, cd(0, 0)), vtx(k, cd(0, 0));
  std::vector<cd> pw(k, cd(1, 0));
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t p = 0; p < k; ++p) {
      vtx[p] += std::conj(pw[p]) * seq[c];
      for (std::size_t q = 0; q < k; ++q)
        vtv[p * k + q] += std::conj(pw[p]) * pw[q];
    }
    for (std::size_t p = 0; p < k; ++p) pw[p] *= poles[p];
  }
  auto a = solve_small(std::move(vtv), std::move(vtx), k);
  if (a.empty()) a.assign(k, cd(0, 0));
  return a;
}

}  // namespace

std::vector<ExponentialComponent> fit_exponentials(
    const std::vector<cd>& seq, std::size_t max_components,
    double rel_threshold) {
  const std::size_t n = seq.size();
  std::vector<ExponentialComponent> out;
  if (n == 0) return out;
  if (n < 4 || max_components == 1) {
    // Weighted single-ratio fallback.
    cd acc(0, 0);
    for (std::size_t c = 0; c + 1 < n; ++c)
      acc += seq[c + 1] * std::conj(seq[c]);
    cd pole = std::abs(acc) > 1e-15 ? acc / std::abs(acc) : cd(1, 0);
    const auto amps = fit_amplitudes(seq, {pole});
    out.push_back({amps[0], pole});
    return out;
  }

  // Matrix pencil: Hankel Y (rows x (L+1)), signal subspace from SVD.
  const std::size_t max_k = std::min<std::size_t>(max_components, 3);
  const std::size_t l = std::min(n / 2, max_k + 2);  // pencil parameter
  const std::size_t rows = n - l;
  Matrix y(rows, l + 1);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c <= l; ++c) y(r, c) = seq[r + c];
  const auto s = svd(y);
  std::size_t k = 0;
  while (k < s.sigma.size() && k < max_k &&
         s.sigma[k] > rel_threshold * s.sigma[0])
    ++k;
  if (k == 0) k = 1;

  // V1 = V_s without last row, V2 = V_s without first row; poles are the
  // eigenvalues of pinv(V1) V2.
  // Normal equations: (V1* V1) F = V1* V2, F is k x k.
  std::vector<cd> v1tv1(k * k, cd(0, 0));
  Matrix f(k, k);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t q = 0; q < k; ++q) {
      cd acc(0, 0);
      for (std::size_t r = 0; r < l; ++r)
        acc += std::conj(s.v(r, p)) * s.v(r, q);
      v1tv1[p * k + q] = acc;
    }
  for (std::size_t col = 0; col < k; ++col) {
    std::vector<cd> rhs(k, cd(0, 0));
    for (std::size_t p = 0; p < k; ++p) {
      cd acc(0, 0);
      for (std::size_t r = 0; r < l; ++r)
        acc += std::conj(s.v(r, p)) * s.v(r + 1, col);
      rhs[p] = acc;
    }
    auto x = solve_small(v1tv1, std::move(rhs), k);
    if (x.empty()) x.assign(k, cd(0, 0));
    for (std::size_t p = 0; p < k; ++p) f(p, col) = x[p];
  }
  auto poles = small_eigenvalues(f);
  poles.resize(k);
  // Y(r,c) = sum u_r sigma v*_c, so V's columns carry conj(z)^c and the
  // pencil eigenvalues come out conjugated — undo that.
  for (auto& z : poles) z = std::conj(z);
  // Clamp pole magnitudes near the unit circle (oscillations, not decays;
  // keeps the band-2 extrapolation stable).
  for (auto& z : poles) {
    const double mag = std::abs(z);
    if (mag > 1e-12) z *= std::clamp(mag, 0.8, 1.2) / mag;
  }

  const auto amps = fit_amplitudes(seq, poles);
  for (std::size_t p = 0; p < k; ++p) out.push_back({amps[p], poles[p]});
  std::sort(out.begin(), out.end(),
            [](const ExponentialComponent& a, const ExponentialComponent& b) {
              return std::abs(a.amplitude) > std::abs(b.amplitude);
            });
  return out;
}

std::vector<cd> eval_exponentials(
    const std::vector<ExponentialComponent>& comps, std::size_t n,
    double angle_scale) {
  std::vector<cd> seq(n, cd(0, 0));
  for (const auto& comp : comps) {
    const double mag = std::abs(comp.pole);
    const double ang = std::arg(comp.pole) * angle_scale;
    const cd z = mag * cd(std::cos(ang), std::sin(ang));
    cd pw(1, 0);
    for (std::size_t c = 0; c < n; ++c) {
      seq[c] += comp.amplitude * pw;
      pw *= z;
    }
  }
  return seq;
}

}  // namespace rem::dsp
