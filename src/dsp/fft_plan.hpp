// Precomputed FFT plans with a process-wide, thread-safe cache.
//
// The OFDM/OTFS hot loops transform the same handful of lengths (grid
// dimensions like 1200, 600, 64, 14) millions of times per run. A plan
// precomputes everything that depends only on the transform size:
//   * the bit-reversal permutation and a twiddle-factor table for the
//     radix-2 Cooley-Tukey path (table lookups replace the incremental
//     `w *= wlen` recurrence, which accumulates rounding error for large
//     transforms);
//   * for non-power-of-two sizes, the Bluestein chirp vector and the
//     *pre-transformed* spectrum of the chirp convolution kernel, plus a
//     handle to the power-of-two plan used for the convolution.
// Plans are immutable after construction, so a cached plan can be shared
// freely across threads; per-call mutable state lives in an FftScratch the
// caller owns (the free fft()/ifft() wrappers use a thread_local one).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace rem::dsp {

using cd = std::complex<double>;
using CVec = std::vector<cd>;

/// Reusable per-caller workspace. One instance may be reused across any
/// number of transform calls (buffers grow to the largest size seen); it
/// must not be shared between threads concurrently.
struct FftScratch {
  CVec gather;  ///< gather/scatter buffer for strided transforms
  CVec work;    ///< Bluestein convolution buffer (power-of-two length)
};

class FftPlan {
 public:
  /// Build a plan for length-n transforms (n >= 1, any length).
  explicit FftPlan(std::size_t n);

  /// Fetch (or build and cache) the plan for length n. Thread-safe; the
  /// returned plan is immutable and may be shared across threads.
  static std::shared_ptr<const FftPlan> get(std::size_t n);

  /// Number of plans currently cached (for tests/introspection).
  static std::size_t cache_size();

  std::size_t size() const { return n_; }
  bool uses_bluestein() const { return conv_plan_ != nullptr; }

  /// In-place DFT of the n elements base[0], base[stride], ...,
  /// base[(n-1)*stride].
  ///
  /// Forward (invert == false): X[k] = sum_t x[t] e^{-j2pi kt/n}, then each
  /// output is multiplied by `scale`.
  /// Inverse (invert == true): the conventional normalized inverse (1/n
  /// included) multiplied by `scale`; pass scale = 1.0 for a plain ifft.
  void transform(cd* base, std::size_t stride, bool invert, double scale,
                 FftScratch& scratch) const;

  // --- Split-complex (SoA) entry points for the batched pipeline --------
  // These operate on separate re/im double planes (dsp::BatchMatrix
  // layout) so the butterflies compile to vectorizable double-array code.
  // Scratch planes are caller-owned raw spans (arena-allocated by
  // fft_batch.cpp); size them with the *_scratch_doubles() queries.

  /// Row-block height used by transform_cols; the scratch planes and the
  /// cache-blocking granularity both derive from it (profiled via the
  /// dsp.sfft_batch_ns kernel histogram).
  static constexpr std::size_t kRowBlock = 128;

  /// Largest non-power-of-two length that transform_split executes as a
  /// direct tabulated DFT (n^2 MACs) instead of the Bluestein chirp-z
  /// (three pow2 FFTs plus chirp multiplies): at these sizes the direct
  /// form is both faster and shorter — it carries the tiny per-triplet
  /// transforms of the batched estimator. The interleaved transform() keeps
  /// Bluestein everywhere so the singles baseline is untouched.
  static constexpr std::size_t kDirectDftMax = 16;

  /// Doubles per scratch plane needed by transform_split (0 for pow2).
  std::size_t split_scratch_doubles() const;
  /// Doubles per scratch plane needed by transform_cols (0 for pow2).
  std::size_t cols_scratch_doubles() const;

  /// In-place DFT of the contiguous split vector re[0..n), im[0..n).
  /// Same forward/inverse scale conventions as transform().
  void transform_split(double* re, double* im, bool invert, double scale,
                       double* wre, double* wim) const;

  /// Columnwise vector DFT: treats a column-major split plane of n (the
  /// plan size) columns, each `rows` active doubles starting every `ld`
  /// doubles, as one length-n transform per row, executed as butterflies
  /// over whole contiguous columns in cache-friendly row blocks.
  void transform_cols(double* re, double* im, std::size_t ld,
                      std::size_t rows, bool invert, double scale,
                      double* wre, double* wim) const;

 private:
  // Unnormalized in-place radix-2 transform of contiguous data (power-of-two
  // plans only).
  void pow2_exec(cd* a, bool invert) const;
  // Split-complex counterparts (fft_plan_split.cpp).
  void direct_dft_split(double* re, double* im, bool invert, double eff,
                        double* wre, double* wim) const;
  void pow2_exec_split(double* re, double* im, bool invert) const;
  void bluestein_forward_split(double* re, double* im, double* wre,
                               double* wim) const;
  void pow2_exec_cols(double* re, double* im, std::size_t ld,
                      std::size_t rows, bool invert) const;
  void bluestein_forward_cols(double* re, double* im, std::size_t ld,
                              std::size_t rows, double* wre,
                              double* wim) const;
  // Unnormalized in-place forward Bluestein transform of contiguous data.
  void bluestein_forward(cd* a, FftScratch& scratch) const;
  // Unnormalized contiguous transform (either path).
  void exec(cd* a, bool invert, FftScratch& scratch) const;

  std::size_t n_ = 0;

  // Radix-2 tables (power-of-two sizes).
  std::vector<std::uint32_t> bitrev_;  ///< bit-reversal permutation
  CVec twiddle_;                       ///< twiddle_[j] = e^{-j2pi j/n}, j < n/2

  // Bluestein tables (other sizes).
  // Direct DFT table, split re/im so the MAC loops vectorize; rows are
  // W^{kt} for fixed k. Only built for n <= kDirectDftMax non-pow2.
  std::vector<double> dft_re_, dft_im_;
  CVec chirp_;    ///< chirp_[k] = e^{-j pi k^2 / n}
  CVec kernel_;   ///< FFT of the chirp convolution kernel (length conv size)
  std::shared_ptr<const FftPlan> conv_plan_;  ///< pow2 plan for convolution
};

}  // namespace rem::dsp
