// Bump-pointer arena for the batched DSP pipeline.
//
// The batched kernels (BatchMatrix packing, svd_batch workspaces, the
// per-path extraction scratch in RemSvdEstimator::estimate_batch) need many
// short-lived buffers per call whose sizes repeat exactly from call to call.
// An Arena hands them out by bumping a pointer into a retained chunk, so a
// steady-state batch call performs zero heap allocations: the first call
// (or the first call after a workload-shape change) grows the arena, every
// later call reuses the high-water chunk. This reuses the FFT plan-cache
// idea from dsp/fft_plan.hpp — pay the setup cost once, amortize forever —
// applied to workspace memory instead of twiddle tables.
//
// Lifetime rules (see DESIGN.md §10):
//   * alloc<T>() spans stay valid until the next reset() — there is no
//     per-span free. BatchMatrix and BatchSvd are *views* into the arena
//     that handed them out and die with its reset.
//   * reset() is cheap (used := 0). If the previous cycle spilled into
//     overflow chunks, reset() coalesces them into one contiguous chunk
//     sized to the observed high-water mark (one final grow, then steady).
//   * An Arena is single-threaded; sharded callers keep one Arena per
//     shard (RemSvdEstimator holds a vector<Arena>, one per worker).
//
// stats() exposes the allocation trajectory so tests can assert the
// zero-steady-state-alloc contract: `grow_count` increments on every heap
// allocation the arena makes; it must stay flat across warm calls.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace rem::dsp {

class Arena {
 public:
  struct Stats {
    std::uint64_t grow_count = 0;     ///< heap allocations performed
    std::uint64_t reset_count = 0;    ///< reset() calls
    std::size_t reserved_bytes = 0;   ///< total capacity currently held
    std::size_t used_bytes = 0;       ///< bytes handed out since last reset
    std::size_t high_water_bytes = 0; ///< max used_bytes over all cycles
  };

  Arena() = default;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Hand out `count` default-constructible, trivially-destructible Ts,
  /// zero-initialized, aligned to 64 bytes. Valid until the next reset().
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "Arena only holds trivial types");
    const std::size_t bytes = align_up(count * sizeof(T));
    std::byte* p = take(bytes);
    std::memset(p, 0, bytes);
    return reinterpret_cast<T*>(p);
  }

  /// Recycle the arena for the next call cycle. Coalesces overflow chunks
  /// into one high-water-sized chunk so the next cycle bumps through a
  /// single contiguous block.
  void reset() {
    ++stats_.reset_count;
    if (stats_.used_bytes > stats_.high_water_bytes)
      stats_.high_water_bytes = stats_.used_bytes;
    if (chunks_.size() > 1 ||
        (chunks_.size() == 1 && chunks_[0].size < stats_.high_water_bytes)) {
      chunks_.clear();
      stats_.reserved_bytes = 0;
      push_chunk(align_up(stats_.high_water_bytes));
    }
    for (auto& c : chunks_) c.used = 0;
    stats_.used_bytes = 0;
  }

  /// Pre-reserve capacity in the current chunk (counts as one grow if it
  /// allocates).
  void reserve(std::size_t bytes) {
    if (!chunks_.empty() &&
        chunks_.back().size - chunks_.back().used >= bytes)
      return;
    push_chunk(align_up(bytes));
  }

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kAlign = 64;

  static std::size_t align_up(std::size_t n) {
    return (n + (kAlign - 1)) & ~(kAlign - 1);
  }

  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void push_chunk(std::size_t bytes) {
    if (bytes == 0) bytes = kAlign;
    Chunk c;
    // Over-align the chunk start by allocating slack and rounding the base.
    c.mem = std::make_unique<std::byte[]>(bytes + kAlign);
    c.size = bytes;
    chunks_.push_back(std::move(c));
    ++stats_.grow_count;
    stats_.reserved_bytes += bytes;
  }

  std::byte* base(Chunk& c) {
    auto addr = reinterpret_cast<std::uintptr_t>(c.mem.get());
    return c.mem.get() + (align_up(addr) - addr);
  }

  std::byte* take(std::size_t bytes) {
    if (chunks_.empty() || chunks_.back().used + bytes > chunks_.back().size) {
      // Grow: at least double the total reservation so repeated spills
      // converge in O(log) grows.
      push_chunk(std::max({bytes, stats_.reserved_bytes, std::size_t{4096}}));
    }
    Chunk& c = chunks_.back();
    std::byte* p = base(c) + c.used;
    c.used += bytes;
    stats_.used_bytes += bytes;
    return p;
  }

  std::vector<Chunk> chunks_;
  Stats stats_;
};

}  // namespace rem::dsp
