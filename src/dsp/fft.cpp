#include "dsp/fft.hpp"

#include "dsp/fft_plan.hpp"

namespace rem::dsp {
namespace {

// Per-thread workspace so the free-function API stays allocation-free on
// the steady state without threading a scratch through every caller.
FftScratch& tls_scratch() {
  thread_local FftScratch scratch;
  return scratch;
}

}  // namespace

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft(CVec& data) {
  if (data.empty()) return;
  FftPlan::get(data.size())->transform(data.data(), 1, false, 1.0,
                                       tls_scratch());
}

void ifft(CVec& data) {
  if (data.empty()) return;
  FftPlan::get(data.size())->transform(data.data(), 1, true, 1.0,
                                       tls_scratch());
}

CVec fft_copy(const CVec& data) {
  CVec out = data;
  fft(out);
  return out;
}

CVec ifft_copy(const CVec& data) {
  CVec out = data;
  ifft(out);
  return out;
}

}  // namespace rem::dsp
