#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rem::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

// Iterative radix-2 Cooley-Tukey; `invert` selects the inverse transform
// (without normalization — callers normalize).
void fft_pow2(CVec& a, bool invert) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (invert ? 1.0 : -1.0);
    const cd wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cd w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cd u = a[i + k];
        const cd v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Bluestein chirp-z: express a length-n DFT as a convolution, evaluated with
// power-of-two FFTs. Handles arbitrary n.
void fft_bluestein(CVec& a, bool invert) {
  const std::size_t n = a.size();
  const double sign = invert ? 1.0 : -1.0;
  // Chirp factors w[k] = e^{sign * j * pi * k^2 / n}. Use k^2 mod 2n to keep
  // the angle argument bounded (avoids precision loss for large k).
  CVec w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = sign * kPi * static_cast<double>(k2) /
                       static_cast<double>(n);
    w[k] = cd(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = next_pow2(2 * n - 1);
  CVec fa(m, cd(0, 0)), fb(m, cd(0, 0));
  for (std::size_t k = 0; k < n; ++k) fa[k] = a[k] * w[k];
  fb[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k)
    fb[k] = fb[m - k] = std::conj(w[k]);
  fft_pow2(fa, false);
  fft_pow2(fb, false);
  for (std::size_t k = 0; k < m; ++k) fa[k] *= fb[k];
  fft_pow2(fa, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = fa[k] * inv_m * w[k];
}

}  // namespace

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft(CVec& data) {
  if (data.empty()) return;
  if (is_pow2(data.size()))
    fft_pow2(data, false);
  else
    fft_bluestein(data, false);
}

void ifft(CVec& data) {
  if (data.empty()) return;
  if (is_pow2(data.size()))
    fft_pow2(data, true);
  else
    fft_bluestein(data, true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= inv_n;
}

CVec fft_copy(const CVec& data) {
  CVec out = data;
  fft(out);
  return out;
}

CVec ifft_copy(const CVec& data) {
  CVec out = data;
  ifft(out);
  return out;
}

}  // namespace rem::dsp
