// Batched symplectic finite Fourier transforms over BatchMatrix.
//
// sfft_batch/isfft_batch apply the same unitary SFFT/ISFFT as
// phy::sfft/phy::isfft (Eq. 2-3 of the paper) to every matrix of a batch
// in place, amortizing one FftPlan lookup per axis across the whole batch
// and running the across-columns axis as cache-blocked vector butterflies
// over contiguous same-index columns (see FftPlan::transform_cols).
// Scratch comes from the caller's Arena, so steady-state calls are
// allocation-free.
//
// Layout note: a BatchMatrix is column-major, so the delay axis (rows) is
// the contiguous within-column direction and the Doppler axis (cols) is
// the across-columns direction — the exact transpose of the row-major
// singles path, which is what makes both axes stream contiguously here.
#pragma once

#include "dsp/arena.hpp"
#include "dsp/matrix.hpp"

namespace rem::dsp {

/// Delay-Doppler -> time-frequency (unitary), every matrix in place.
void sfft_batch(BatchMatrix& grid, Arena& arena);

/// Time-frequency -> delay-Doppler (unitary inverse), every matrix in place.
void isfft_batch(BatchMatrix& grid, Arena& arena);

}  // namespace rem::dsp
