// Batched one-sided Jacobi SVD (see svd.hpp). Own translation unit so the
// rotation kernels get the batch-pipeline vectorization flags while the
// scalar svd() baseline keeps the default ones.
#include "dsp/svd.hpp"

#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace rem::dsp {
namespace {

constexpr std::size_t kMaxBlock = 32;
constexpr int kMaxSweeps = 60;
constexpr double kPairEps = 1e-13;   // per-pair rotation threshold
constexpr double kSweepTol = 1e-12;  // per-matrix sweep convergence
// The skip/convergence tests compare SQUARED magnitudes against these so a
// pair that needs no rotation costs zero square roots (most pairs, once a
// matrix is nearly converged).
constexpr double kPairEps2 = kPairEps * kPairEps;
constexpr double kSweepTol2 = kSweepTol * kSweepTol;

// One-sided Jacobi over the matrices [b0, b1) of `a`, accumulating
// rotations into `v`. The same (p, q) pair is applied to every live matrix
// of the block before advancing, so the rotation kernel and its decision
// data stay hot; `done` masks matrices individually as their off-diagonal
// coupling drops below kSweepTol.
//
// Column squared norms (the Gram diagonal) are computed once up front and
// maintained through the closed-form rotation update, so each pair visit
// pays one cross-product reduction instead of three; a rotation only
// touches columns p and q, leaving the other cached norms exact. The
// values are used for rotation decisions only — the final singular values
// are recomputed from the converged columns in svd_batch().
// `norms` is caller scratch of (b1 - b0) * n doubles.
void jacobi_block(BatchMatrix& a, BatchMatrix& v, std::size_t b0,
                  std::size_t b1, std::uint8_t* done, double* norms) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  double off[kMaxBlock];
  for (std::size_t b = b0; b < b1; ++b) {
    double* __restrict nb = norms + (b - b0) * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* __restrict cr = a.re_col(b, j);
      const double* __restrict ci = a.im_col(b, j);
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t i = 0; i < m; ++i) s += cr[i] * cr[i] + ci[i] * ci[i];
      nb[j] = s;
    }
  }
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool any_live = false;
    for (std::size_t b = b0; b < b1; ++b) {
      off[b - b0] = 0.0;
      if (!done[b]) any_live = true;
    }
    if (!any_live) break;
    const std::size_t nb_count = b1 - b0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Phase 1 (per matrix): cross term of the 2x2 Gram submatrix of
        // columns p, q (the diagonal comes from the cached norms) and the
        // rotate/skip decision, on squared magnitudes only.
        double cre_a[kMaxBlock], cim_a[kMaxBlock], abs2_a[kMaxBlock];
        double app_a[kMaxBlock], aqq_a[kMaxBlock];
        std::uint8_t rot[kMaxBlock];
        for (std::size_t b = b0; b < b1; ++b) {
          const std::size_t j = b - b0;
          rot[j] = 0;
          cre_a[j] = 1.0;
          cim_a[j] = 0.0;
          abs2_a[j] = 1.0;
          app_a[j] = 1.0;
          aqq_a[j] = 1.0;  // benign lane values for phase 2
          if (done[b]) continue;
          const double* __restrict pr = a.re_col(b, p);
          const double* __restrict pi = a.im_col(b, p);
          const double* __restrict qr = a.re_col(b, q);
          const double* __restrict qi = a.im_col(b, q);
          const double* __restrict nb = norms + j * n;
          double cre = 0.0, cim = 0.0;
#pragma omp simd reduction(+ : cre, cim)
          for (std::size_t i = 0; i < m; ++i) {
            cre += pr[i] * qr[i] + pi[i] * qi[i];
            cim += pr[i] * qi[i] - pi[i] * qr[i];
          }
          const double abs2_apq = cre * cre + cim * cim;
          const double denom2 = nb[p] * nb[q];
          off[j] = std::max(off[j], abs2_apq / (denom2 + 1e-300));
          if (abs2_apq <= kPairEps2 * denom2) continue;
          rot[j] = 1;
          cre_a[j] = cre;
          cim_a[j] = cim;
          abs2_a[j] = abs2_apq;
          app_a[j] = nb[p];
          aqq_a[j] = nb[q];
        }

        // Phase 2: rotation coefficients for the whole block in one simd
        // loop, so the sqrt/div dependency chains of different matrices
        // run in parallel lanes instead of back to back. The complex
        // rotation strips the phase of apq, then applies the real Jacobi
        // rotation for [[app, |apq|], [|apq|, aqq]]. Lane-wise results are
        // identical to the scalar chain (IEEE sqrt/div round the same).
        double abs_a[kMaxBlock], c_a[kMaxBlock], s_a[kMaxBlock];
        double spr_a[kMaxBlock], spi_a[kMaxBlock];
#pragma omp simd
        for (std::size_t j = 0; j < nb_count; ++j) {
          const double abs_apq = std::sqrt(abs2_a[j]);
          const double phr = cre_a[j] / abs_apq;
          const double phi = cim_a[j] / abs_apq;
          const double tau = (aqq_a[j] - app_a[j]) / (2.0 * abs_apq);
          const double t = (tau >= 0 ? 1.0 : -1.0) /
                           (std::abs(tau) + std::sqrt(1.0 + tau * tau));
          const double c = 1.0 / std::sqrt(1.0 + t * t);
          abs_a[j] = abs_apq;
          c_a[j] = c;
          s_a[j] = c * t;
          spr_a[j] = s_a[j] * phr;
          spi_a[j] = s_a[j] * phi;
        }

        // Phase 3 (per matrix): apply the rotation to columns p, q of a
        // and v and push it through the cached norms.
        for (std::size_t b = b0; b < b1; ++b) {
          const std::size_t j = b - b0;
          if (!rot[j]) continue;
          const double c = c_a[j], s = s_a[j];
          const double spr = spr_a[j], spi = spi_a[j];
          double* __restrict nb = norms + j * n;
          // Closed-form norm update under the rotation (r = |apq|):
          //   ‖p'‖² = c²·app − 2cs·r + s²·aqq,
          //   ‖q'‖² = s²·app + 2cs·r + c²·aqq.
          // Clamped at 0 against cancellation when columns are
          // near-parallel.
          nb[p] = std::max(0.0, c * c * app_a[j] - 2.0 * c * s * abs_a[j] +
                                    s * s * aqq_a[j]);
          nb[q] = std::max(0.0, s * s * app_a[j] + 2.0 * c * s * abs_a[j] +
                                    c * c * aqq_a[j]);
          double* __restrict pr = a.re_col(b, p);
          double* __restrict pi = a.im_col(b, p);
          double* __restrict qr = a.re_col(b, q);
          double* __restrict qi = a.im_col(b, q);
#pragma omp simd
          for (std::size_t i = 0; i < m; ++i) {
            const double tpr = pr[i], tpi = pi[i];
            const double tqr = qr[i], tqi = qi[i];
            pr[i] = c * tpr - (spr * tqr + spi * tqi);
            pi[i] = c * tpi - (spr * tqi - spi * tqr);
            qr[i] = spr * tpr - spi * tpi + c * tqr;
            qi[i] = spr * tpi + spi * tpr + c * tqi;
          }
          double* __restrict vpr = v.re_col(b, p);
          double* __restrict vpi = v.im_col(b, p);
          double* __restrict vqr = v.re_col(b, q);
          double* __restrict vqi = v.im_col(b, q);
#pragma omp simd
          for (std::size_t i = 0; i < n; ++i) {
            const double tpr = vpr[i], tpi = vpi[i];
            const double tqr = vqr[i], tqi = vqi[i];
            vpr[i] = c * tpr - (spr * tqr + spi * tqi);
            vpi[i] = c * tpi - (spr * tqi - spi * tqr);
            vqr[i] = spr * tpr - spi * tpi + c * tqr;
            vqi[i] = spr * tpi + spi * tpr + c * tqi;
          }
        }
      }
    }
    for (std::size_t b = b0; b < b1; ++b)
      if (!done[b] && off[b - b0] < kSweepTol2) done[b] = 1;
  }
}

}  // namespace

BatchSvd svd_batch(const BatchMatrix& input, Arena& arena,
                   std::size_t rank_limit, double truncate_below,
                   std::size_t block) {
  static obs::Histogram* const timer_hist =
      obs::kernel_timer("dsp.svd_batch_ns");
  obs::ScopedTimer timer(timer_hist);

  const std::size_t batch = input.batch();
  if (input.rows() == 0 || input.cols() == 0)
    throw std::invalid_argument("svd_batch: empty matrices");
  block = std::clamp<std::size_t>(block, 1, kMaxBlock);

  // Work in the tall orientation, like svd().
  const bool transposed = input.rows() < input.cols();
  const std::size_t m = transposed ? input.cols() : input.rows();
  const std::size_t n = transposed ? input.rows() : input.cols();

  BatchMatrix a(arena, batch, m, n);
  BatchMatrix v(arena, batch, n, n);
  for (std::size_t b = 0; b < batch; ++b) {
    if (!transposed) {
      std::memcpy(a.re_col(b, 0), input.re_col(b, 0),
                  input.plane_stride() * sizeof(double));
      std::memcpy(a.im_col(b, 0), input.im_col(b, 0),
                  input.plane_stride() * sizeof(double));
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        double* __restrict re = a.re_col(b, j);
        double* __restrict im = a.im_col(b, j);
        for (std::size_t i = 0; i < m; ++i) {
          const cd x = input.at(b, j, i);
          re[i] = x.real();
          im[i] = -x.imag();
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) v.set(b, i, i, cd(1, 0));
  }

  std::uint8_t* done = arena.alloc<std::uint8_t>(batch);
  double* norms = arena.alloc<double>(block * n);
  for (std::size_t b0 = 0; b0 < batch; b0 += block)
    jacobi_block(a, v, b0, std::min(b0 + block, batch), done, norms);

  const std::size_t r_max =
      rank_limit > 0 ? std::min(n, rank_limit) : n;
  BatchSvd r;
  r.r_max = r_max;
  r.u = BatchMatrix(arena, batch, input.rows(), r_max);
  r.v = BatchMatrix(arena, batch, input.cols(), r_max);
  r.sigma = arena.alloc<double>(batch * r_max);
  r.rank = arena.alloc<std::uint32_t>(batch);

  double* sig = arena.alloc<double>(n);
  std::uint32_t* order = arena.alloc<std::uint32_t>(n);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < n; ++j) {
      const double* __restrict re = a.re_col(b, j);
      const double* __restrict im = a.im_col(b, j);
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t i = 0; i < m; ++i) s += re[i] * re[i] + im[i] * im[i];
      sig[j] = std::sqrt(s);
    }
    std::iota(order, order + n, 0u);
    std::sort(order, order + n, [&](std::uint32_t x, std::uint32_t y) {
      return sig[x] > sig[y];
    });

    std::size_t rank = n;
    if (rank_limit > 0) rank = std::min(rank, rank_limit);
    const double tiny = std::max(truncate_below, sig[order[0]] * 1e-12);
    std::size_t keep = 0;
    while (keep < rank && sig[order[keep]] > tiny) ++keep;
    rank = std::max<std::size_t>(keep, 1);
    rank = std::min(rank, n);
    r.rank[b] = static_cast<std::uint32_t>(rank);

    // Work-side U = normalized columns of a (m x rank), work-side V = v
    // (n x rank); transposed inputs swap their roles in the result.
    BatchMatrix& out_u = transposed ? r.v : r.u;
    BatchMatrix& out_v = transposed ? r.u : r.v;
    for (std::size_t j = 0; j < rank; ++j) {
      const std::uint32_t src = order[j];
      const double s = sig[src];
      r.sigma[b * r_max + j] = s;
      const double inv = s > 0 ? 1.0 / s : 0.0;
      const double* __restrict ar = a.re_col(b, src);
      const double* __restrict ai = a.im_col(b, src);
      double* __restrict ur = out_u.re_col(b, j);
      double* __restrict ui = out_u.im_col(b, j);
#pragma omp simd
      for (std::size_t i = 0; i < m; ++i) {
        ur[i] = ar[i] * inv;
        ui[i] = ai[i] * inv;
      }
      std::memcpy(out_v.re_col(b, j), v.re_col(b, src), n * sizeof(double));
      std::memcpy(out_v.im_col(b, j), v.im_col(b, src), n * sizeof(double));
    }
  }
  return r;
}

}  // namespace rem::dsp
