// Additive white Gaussian noise helpers.
#pragma once

#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace rem::channel {

/// Add complex AWGN with per-sample variance `noise_power` to `signal`.
inline void add_awgn(dsp::CVec& signal, double noise_power,
                     common::Rng& rng) {
  for (auto& x : signal) x += rng.complex_gaussian(noise_power);
}

/// Noise power for a desired SNR (dB) given unit-power signal samples.
inline double noise_power_for_snr_db(double snr_db) {
  return std::pow(10.0, -snr_db / 10.0);
}

/// Measured average sample power of a signal.
inline double mean_power(const dsp::CVec& signal) {
  if (signal.empty()) return 0.0;
  double p = 0.0;
  for (const auto& x : signal) p += std::norm(x);
  return p / static_cast<double>(signal.size());
}

}  // namespace rem::channel
