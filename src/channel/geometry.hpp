// Geometry-driven high-speed-rail channel (the paper's §10 "explicit sheer
// geometric modeling").
//
// Instead of drawing i.i.d. tap realizations, this model places the base
// station and scatterers in the plane and derives every path's delay,
// Doppler, and attenuation from the *actual* train position and velocity:
//   tau_p = |train - reflector path| / c
//   nu_p  = (v . unit_vector(train -> scatterer)) * f / c
// Consecutive snapshots are therefore physically consistent — delays and
// Dopplers drift exactly as Appendix A predicts (slowly, by inertia),
// which is what makes movement-based management viable.
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"

#include <vector>

namespace rem::channel {

/// A point scatterer (or the base station itself for the LOS path).
struct Scatterer {
  double x_m = 0.0;        ///< along-track position
  double y_m = 0.0;        ///< lateral offset from the rails
  double gain_db = 0.0;    ///< reflection loss relative to LOS
};

struct GeometryConfig {
  double bs_x_m = 0.0;
  double bs_y_m = 150.0;    ///< lateral distance (paper: 80-550 m)
  double carrier_hz = 2.0e9;
  double speed_mps = 97.2;  ///< 350 km/h
  /// Scatterers around the track (reflections bounce train->scatterer->BS
  /// is approximated as an excess-length path train->scatterer with the
  /// scatterer's gain; adequate for delay/Doppler geometry studies).
  std::vector<Scatterer> scatterers;
  bool normalize = true;
};

/// Random scatterer field along the track around `bs_x_m`.
std::vector<Scatterer> make_scatterer_field(double bs_x_m, std::size_t count,
                                            common::Rng& rng);

class GeometricHstChannel {
 public:
  explicit GeometricHstChannel(GeometryConfig cfg) : cfg_(std::move(cfg)) {}

  const GeometryConfig& config() const { return cfg_; }

  /// Channel snapshot when the train is at along-track position `x_m`
  /// (moving in +x at the configured speed). Path phases are referenced
  /// to the absolute path lengths, so consecutive snapshots are coherent.
  MultipathChannel snapshot(double train_x_m) const;

  /// Ground-truth LOS Doppler at a position (for tests/benches).
  double los_doppler_hz(double train_x_m) const;
  /// Ground-truth LOS delay at a position.
  double los_delay_s(double train_x_m) const;

 private:
  GeometryConfig cfg_;
};

}  // namespace rem::channel
