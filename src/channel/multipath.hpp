// Delay-Doppler multipath channel (Eq. 1):
//   h(tau, nu) = sum_p h_p delta(tau - tau_p) delta(nu - nu_p)
//
// The same path set induces the time-frequency response
//   H(t, f) = sum_p h_p e^{j 2 pi (t nu_p - f tau_p)}
// and the windowed delay-Doppler samples h_w(k dtau, l dnu) of Eq. 5.
//
// The channel is applied to time-domain sample streams exactly (per-path
// fractional delay via DFT phase ramp + per-sample Doppler rotation), which
// reproduces inter-carrier interference for OFDM and the full diversity
// behaviour for OTFS without any narrowband approximation.
#pragma once

#include "channel/path.hpp"
#include "dsp/fft.hpp"
#include "dsp/matrix.hpp"

namespace rem::channel {

class MultipathChannel {
 public:
  MultipathChannel() = default;
  explicit MultipathChannel(PathList paths) : paths_(std::move(paths)) {}

  const PathList& paths() const { return paths_; }
  std::size_t num_paths() const { return paths_.size(); }

  /// Normalize total path power sum |h_p|^2 to 1.
  void normalize_power();

  /// Total path power sum |h_p|^2.
  double total_power() const;

  /// Time-frequency response H(t, f) where `f` is the offset from the
  /// carrier the path Dopplers were computed for.
  std::complex<double> tf_response(double t, double f) const;

  /// Sampled time-frequency channel over an M x N OFDM grid: entry (m, n) is
  /// H(n * symbol_duration, m * subcarrier_spacing). Rows index frequency,
  /// columns index time.
  dsp::Matrix tf_matrix(std::size_t num_subcarriers, std::size_t num_symbols,
                        double subcarrier_spacing_hz,
                        double symbol_duration_s) const;

  /// Windowed delay-Doppler channel samples h_w(k dtau, l dnu) per Eq. 5,
  /// with dtau = 1/(M df) and dnu = 1/(N T). Entry (k, l). The 1/(MN)
  /// normalization of Eq. 5 is applied, matching what LS channel estimation
  /// over the grid recovers.
  ///
  /// `cp_len` (samples at M df) enables the CP-OFDM correction the pure
  /// Eq. 5 model omits: each path is additionally rotated/attenuated by its
  /// intra-symbol Doppler average and the phase advance across the cyclic
  /// prefix. Pass the modem's CP length to match what a real receiver
  /// estimates; leave 0 for the idealized textbook samples.
  dsp::Matrix dd_matrix(std::size_t num_subcarriers, std::size_t num_symbols,
                        double subcarrier_spacing_hz,
                        double symbol_duration_s,
                        std::size_t cp_len = 0) const;

  /// Pass `tx` (complex baseband at `sample_rate_hz`) through the channel:
  /// r[i] = sum_p h_p * delay(tx, tau_p)[i] * e^{j 2 pi nu_p i / fs}.
  /// Delay is circular (callers insert a cyclic prefix).
  dsp::CVec apply_to_signal(const dsp::CVec& tx, double sample_rate_hz) const;

  /// A copy of this channel with every Doppler scaled by `factor` —
  /// the physical relation nu2/nu1 = f2/f1 between co-located cells on
  /// different carriers (§5.2). Delays and gains are carrier-independent.
  MultipathChannel with_doppler_scaled(double factor) const;

  /// A copy advanced by `dt` seconds: each path gain picks up its Doppler
  /// phase e^{j 2 pi nu_p dt}. First-order path geometry evolution
  /// (Appendix A: delays/Dopplers themselves drift far slower).
  MultipathChannel advanced_by(double dt) const;

 private:
  PathList paths_;
};

}  // namespace rem::channel
