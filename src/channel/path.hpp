// A single propagation path in the delay-Doppler domain (Eq. 1 of the
// paper): complex attenuation h_p, propagation delay tau_p, Doppler shift
// nu_p.
#pragma once

#include <complex>
#include <vector>

namespace rem::channel {

struct Path {
  std::complex<double> gain;  ///< h_p, complex attenuation (includes phase)
  double delay_s = 0.0;       ///< tau_p [s]
  double doppler_hz = 0.0;    ///< nu_p [Hz]
};

using PathList = std::vector<Path>;

}  // namespace rem::channel
