#include "channel/geometry.hpp"

#include "common/units.hpp"

#include <cmath>
#include <numbers>

namespace rem::channel {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

struct PathGeom {
  double dist_m;
  double cos_angle;  ///< angle between velocity (+x) and train->point
};

PathGeom geom_to(double train_x, double px, double py) {
  const double dx = px - train_x;
  const double dist = std::sqrt(dx * dx + py * py);
  return {std::max(dist, 1.0), dx / std::max(dist, 1.0)};
}
}  // namespace

std::vector<Scatterer> make_scatterer_field(double bs_x_m,
                                            std::size_t count,
                                            common::Rng& rng) {
  std::vector<Scatterer> field;
  field.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Scatterer s;
    s.x_m = bs_x_m + rng.uniform(-800.0, 800.0);
    s.y_m = rng.uniform(20.0, 400.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    s.gain_db = rng.uniform(-20.0, -6.0);
    field.push_back(s);
  }
  return field;
}

MultipathChannel GeometricHstChannel::snapshot(double train_x_m) const {
  PathList paths;
  const double wavelen = common::wavelength_m(cfg_.carrier_hz);

  const auto add_path = [&](double px, double py, double gain_db) {
    const auto g = geom_to(train_x_m, px, py);
    Path p;
    p.delay_s = g.dist_m / common::kSpeedOfLight;
    // Doppler: positive while approaching the point.
    p.doppler_hz = cfg_.speed_mps * g.cos_angle * cfg_.carrier_hz /
                   common::kSpeedOfLight;
    // Free-space-like amplitude roll-off with the reflection loss, and a
    // carrier phase tied to the absolute path length so consecutive
    // snapshots stay coherent.
    const double amp =
        std::pow(10.0, gain_db / 20.0) * (100.0 / g.dist_m);
    const double phase = -kTwoPi * g.dist_m / wavelen;
    p.gain = amp * std::complex<double>(std::cos(phase), std::sin(phase));
    paths.push_back(p);
  };

  add_path(cfg_.bs_x_m, cfg_.bs_y_m, 0.0);  // LOS
  for (const auto& s : cfg_.scatterers) add_path(s.x_m, s.y_m, s.gain_db);

  MultipathChannel ch(std::move(paths));
  if (cfg_.normalize) ch.normalize_power();
  return ch;
}

double GeometricHstChannel::los_doppler_hz(double train_x_m) const {
  const auto g = geom_to(train_x_m, cfg_.bs_x_m, cfg_.bs_y_m);
  return cfg_.speed_mps * g.cos_angle * cfg_.carrier_hz /
         common::kSpeedOfLight;
}

double GeometricHstChannel::los_delay_s(double train_x_m) const {
  return geom_to(train_x_m, cfg_.bs_x_m, cfg_.bs_y_m).dist_m /
         common::kSpeedOfLight;
}

}  // namespace rem::channel
