#include "channel/multipath.hpp"

#include <cmath>
#include <numbers>

namespace rem::channel {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Windowed delay spread factor Gamma(k dtau, tau_p) / M of Eq. 5:
// (1/M) sum_{d=0}^{M-1} e^{j 2 pi (k dtau - tau_p) d df}
std::complex<double> gamma_term(double k_dtau_minus_tau, double df,
                                std::size_t m_count) {
  const double x = kTwoPi * k_dtau_minus_tau * df;
  std::complex<double> sum(0, 0);
  std::complex<double> w(1, 0);
  const std::complex<double> step(std::cos(x), std::sin(x));
  for (std::size_t d = 0; d < m_count; ++d) {
    sum += w;
    w *= step;
  }
  return sum / static_cast<double>(m_count);
}

// Windowed Doppler spread factor Phi(l dnu, nu_p) / N of Eq. 5:
// (1/N) sum_{c=0}^{N-1} e^{-j 2 pi (l dnu - nu_p) c T}
std::complex<double> phi_term(double l_dnu_minus_nu, double symbol_t,
                              std::size_t n_count) {
  const double x = -kTwoPi * l_dnu_minus_nu * symbol_t;
  std::complex<double> sum(0, 0);
  std::complex<double> w(1, 0);
  const std::complex<double> step(std::cos(x), std::sin(x));
  for (std::size_t c = 0; c < n_count; ++c) {
    sum += w;
    w *= step;
  }
  return sum / static_cast<double>(n_count);
}
}  // namespace

void MultipathChannel::normalize_power() {
  const double p = total_power();
  if (p <= 0.0) return;
  const double scale = 1.0 / std::sqrt(p);
  for (auto& path : paths_) path.gain *= scale;
}

double MultipathChannel::total_power() const {
  double p = 0.0;
  for (const auto& path : paths_) p += std::norm(path.gain);
  return p;
}

std::complex<double> MultipathChannel::tf_response(double t, double f) const {
  std::complex<double> h(0, 0);
  for (const auto& p : paths_) {
    const double ang = kTwoPi * (t * p.doppler_hz - f * p.delay_s);
    h += p.gain * std::complex<double>(std::cos(ang), std::sin(ang));
  }
  return h;
}

dsp::Matrix MultipathChannel::tf_matrix(std::size_t num_subcarriers,
                                        std::size_t num_symbols,
                                        double subcarrier_spacing_hz,
                                        double symbol_duration_s) const {
  dsp::Matrix h(num_subcarriers, num_symbols);
  for (std::size_t m = 0; m < num_subcarriers; ++m) {
    const double f = static_cast<double>(m) * subcarrier_spacing_hz;
    for (std::size_t n = 0; n < num_symbols; ++n) {
      const double t = static_cast<double>(n) * symbol_duration_s;
      h(m, n) = tf_response(t, f);
    }
  }
  return h;
}

dsp::Matrix MultipathChannel::dd_matrix(std::size_t num_subcarriers,
                                        std::size_t num_symbols,
                                        double subcarrier_spacing_hz,
                                        double symbol_duration_s,
                                        std::size_t cp_len) const {
  const std::size_t m_count = num_subcarriers;
  const std::size_t n_count = num_symbols;
  const double dtau = 1.0 / (static_cast<double>(m_count) *
                             subcarrier_spacing_hz);
  const double dnu = 1.0 / (static_cast<double>(n_count) *
                            symbol_duration_s);
  const double fs = static_cast<double>(m_count) * subcarrier_spacing_hz;
  dsp::Matrix h(m_count, n_count);
  for (const auto& p : paths_) {
    // Eq. 5 carries an e^{-j 2 pi tau_p nu_p} cross term from its
    // continuous-time derivation; in the sampled CP-OFDM chain (Doppler
    // rotation referenced to emission time, delay as a subcarrier phase
    // ramp) the term cancels, which test_channel_est verifies against the
    // full simulated chain. We therefore start from unity phase.
    std::complex<double> cross_ph(1.0, 0.0);
    if (cp_len > 0) {
      // CP-OFDM correction: the receiver's FFT window starts cp_len
      // samples into each symbol, so every path's Doppler picks up the
      // phase advance across the prefix. (Intra-symbol Doppler rotation
      // redistributes energy between subcarriers but re-coheres in the
      // delay-Doppler domain — no attenuation term, verified against the
      // simulated chain in test_channel_est.)
      const double cp_ang = kTwoPi * p.doppler_hz *
                            static_cast<double>(cp_len) / fs;
      cross_ph *= std::complex<double>(std::cos(cp_ang), std::sin(cp_ang));
    }
    // Gamma depends only on k, Phi only on l: precompute both axes.
    std::vector<std::complex<double>> g(m_count), f(n_count);
    for (std::size_t k = 0; k < m_count; ++k)
      g[k] = gamma_term(static_cast<double>(k) * dtau - p.delay_s,
                        subcarrier_spacing_hz, m_count);
    for (std::size_t l = 0; l < n_count; ++l)
      f[l] = phi_term(static_cast<double>(l) * dnu - p.doppler_hz,
                      symbol_duration_s, n_count);
    const std::complex<double> scale = p.gain * cross_ph;
    for (std::size_t k = 0; k < m_count; ++k)
      for (std::size_t l = 0; l < n_count; ++l) h(k, l) += scale * g[k] * f[l];
  }
  return h;
}

dsp::CVec MultipathChannel::apply_to_signal(const dsp::CVec& tx,
                                            double sample_rate_hz) const {
  const std::size_t n = tx.size();
  dsp::CVec rx(n, {0, 0});
  if (n == 0) return rx;
  const dsp::CVec tx_freq = dsp::fft_copy(tx);
  for (const auto& p : paths_) {
    // Fractional circular delay via linear phase in the DFT domain. Bin k
    // is treated as the positive frequency k/n * fs (the unwrapped
    // convention): OFDM subcarrier m then sees exactly the phase
    // e^{-j 2 pi m df tau} that the delay-Doppler model (Eq. 5) assumes.
    // For integer-sample delays the two conventions coincide.
    dsp::CVec delayed = tx_freq;
    for (std::size_t k = 0; k < n; ++k) {
      const double f_hz = static_cast<double>(k) * sample_rate_hz /
                          static_cast<double>(n);
      const double ang = -kTwoPi * f_hz * p.delay_s;
      delayed[k] *= std::complex<double>(std::cos(ang), std::sin(ang));
    }
    dsp::ifft(delayed);
    // Per-sample Doppler rotation. The rotation reference is the *emission*
    // time t - tau (the OTFS literature convention behind Eq. 5's
    // e^{-j 2 pi tau nu} cross term), so the initial phase is -2 pi nu tau.
    const double step_ang = kTwoPi * p.doppler_hz / sample_rate_hz;
    const double init_ang = -kTwoPi * p.doppler_hz * p.delay_s;
    std::complex<double> rot(std::cos(init_ang), std::sin(init_ang));
    const std::complex<double> rot_step(std::cos(step_ang),
                                        std::sin(step_ang));
    for (std::size_t i = 0; i < n; ++i) {
      rx[i] += p.gain * delayed[i] * rot;
      rot *= rot_step;
    }
  }
  return rx;
}

MultipathChannel MultipathChannel::with_doppler_scaled(double factor) const {
  PathList scaled = paths_;
  for (auto& p : scaled) p.doppler_hz *= factor;
  return MultipathChannel(std::move(scaled));
}

MultipathChannel MultipathChannel::advanced_by(double dt) const {
  PathList adv = paths_;
  for (auto& p : adv) {
    const double ang = kTwoPi * p.doppler_hz * dt;
    p.gain *= std::complex<double>(std::cos(ang), std::sin(ang));
  }
  return MultipathChannel(std::move(adv));
}

}  // namespace rem::channel
