// 3GPP reference tapped-delay-line profiles and channel sampling.
//
// Tap delay/power tables follow TS 36.101/36.104 Annex B (EPA, EVA, ETU).
// The high-speed-train profiles (HST) are LOS-dominant Rician channels with
// near-maximum Doppler, per TS 36.101 B.3 and the deployment geometry the
// paper cites (80-550 m LOS distance along the rails).
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"

#include <string>
#include <vector>

namespace rem::channel {

enum class Profile {
  kEPA,     ///< Extended Pedestrian A (7 taps, low delay spread)
  kEVA,     ///< Extended Vehicular A (9 taps)
  kETU,     ///< Extended Typical Urban (9 taps, large delay spread)
  kHST350,  ///< High-speed train, Rician LOS + sparse scatterers
};

std::string profile_name(Profile p);

/// One tap of a reference profile (before fading realization).
struct TapSpec {
  double delay_ns;
  double power_db;
};

/// Static tap table for a profile.
const std::vector<TapSpec>& tap_specs(Profile p);

/// Parameters for drawing a random channel realization.
struct ChannelDrawConfig {
  Profile profile = Profile::kEVA;
  double speed_mps = 0.0;        ///< client speed, sets max Doppler
  double carrier_hz = 2.0e9;     ///< carrier frequency
  double rician_k_db = 10.0;     ///< LOS-to-scatter ratio for HST350
  bool normalize = true;         ///< normalize total power to 1
};

/// Draw a random realization: each tap gets a complex Gaussian (Rayleigh)
/// gain scaled to its profile power and a Doppler nu_max * cos(theta) with a
/// uniform arrival angle (Jakes model). HST350 instead uses a dominant LOS
/// tap with near-maximal Doppler plus weaker scattered taps.
MultipathChannel draw_channel(const ChannelDrawConfig& cfg,
                              common::Rng& rng);

}  // namespace rem::channel
