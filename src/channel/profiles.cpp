#include "channel/profiles.hpp"

#include "common/units.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rem::channel {
namespace {
constexpr double kPi = std::numbers::pi;

const std::vector<TapSpec> kEpaTaps = {
    {0, 0.0}, {30, -1.0}, {70, -2.0}, {90, -3.0},
    {110, -8.0}, {190, -17.2}, {410, -20.8},
};
const std::vector<TapSpec> kEvaTaps = {
    {0, 0.0},    {30, -1.5},   {150, -1.4}, {310, -3.6}, {370, -0.6},
    {710, -9.1}, {1090, -7.0}, {1730, -12.0}, {2510, -16.9},
};
const std::vector<TapSpec> kEtuTaps = {
    {0, -1.0},  {50, -1.0},  {120, -1.0}, {200, 0.0}, {230, 0.0},
    {500, 0.0}, {1600, -3.0}, {2300, -5.0}, {5000, -7.0},
};
// Sparse high-speed-rail profile: strong LOS, a ground/viaduct reflection,
// and two far scatterers; delays match 80-550 m excess path lengths.
const std::vector<TapSpec> kHstTaps = {
    {0, 0.0}, {100, -6.0}, {400, -12.0}, {900, -16.0},
};
}  // namespace

std::string profile_name(Profile p) {
  switch (p) {
    case Profile::kEPA: return "EPA";
    case Profile::kEVA: return "EVA";
    case Profile::kETU: return "ETU";
    case Profile::kHST350: return "HST350";
  }
  return "?";
}

const std::vector<TapSpec>& tap_specs(Profile p) {
  switch (p) {
    case Profile::kEPA: return kEpaTaps;
    case Profile::kEVA: return kEvaTaps;
    case Profile::kETU: return kEtuTaps;
    case Profile::kHST350: return kHstTaps;
  }
  throw std::invalid_argument("unknown channel profile");
}

MultipathChannel draw_channel(const ChannelDrawConfig& cfg,
                              common::Rng& rng) {
  const auto& taps = tap_specs(cfg.profile);
  const double nu_max =
      common::max_doppler_hz(cfg.speed_mps, cfg.carrier_hz);
  PathList paths;
  paths.reserve(taps.size());

  if (cfg.profile == Profile::kHST350) {
    // Rician LOS on the first tap: deterministic component at a Doppler
    // close to +/- nu_max (train approaching or receding), plus diffuse
    // scatterers at random Jakes angles.
    const double k_lin = common::db_to_lin(cfg.rician_k_db);
    for (std::size_t i = 0; i < taps.size(); ++i) {
      const double tap_power = common::db_to_lin(taps[i].power_db);
      Path p;
      p.delay_s = taps[i].delay_ns * 1e-9;
      if (i == 0) {
        // Split the first tap into LOS + diffuse per the K factor.
        const double los_power = tap_power * k_lin / (1.0 + k_lin);
        const double nlos_power = tap_power / (1.0 + k_lin);
        const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        const double phase = rng.uniform(0.0, 2.0 * kPi);
        Path los;
        los.delay_s = p.delay_s;
        // cos(angle) in [0.9, 1]: LOS nearly aligned with the track.
        los.doppler_hz = sign * nu_max * rng.uniform(0.9, 1.0);
        los.gain = std::sqrt(los_power) *
                   std::complex<double>(std::cos(phase), std::sin(phase));
        paths.push_back(los);
        p.gain = rng.complex_gaussian(nlos_power);
        p.doppler_hz = nu_max * std::cos(rng.uniform(0.0, 2.0 * kPi));
        paths.push_back(p);
      } else {
        p.gain = rng.complex_gaussian(tap_power);
        p.doppler_hz = nu_max * std::cos(rng.uniform(0.0, 2.0 * kPi));
        paths.push_back(p);
      }
    }
  } else {
    for (const auto& tap : taps) {
      Path p;
      p.delay_s = tap.delay_ns * 1e-9;
      p.gain = rng.complex_gaussian(common::db_to_lin(tap.power_db));
      p.doppler_hz = nu_max * std::cos(rng.uniform(0.0, 2.0 * kPi));
      paths.push_back(p);
    }
  }

  MultipathChannel ch(std::move(paths));
  if (cfg.normalize) ch.normalize_power();
  return ch;
}

}  // namespace rem::channel
