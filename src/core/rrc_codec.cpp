#include "core/rrc_codec.hpp"

#include <algorithm>
#include <cmath>

namespace rem::core {
namespace {

constexpr std::uint8_t kMagicReport = 0xA3;
constexpr std::uint8_t kMagicCommand = 0xC7;
constexpr std::size_t kMaxNeighbors = 64;

void put_u8(Bytes& b, std::uint8_t v) { b.push_back(v); }
void put_u16(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xFF));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(Bytes& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}
void put_i32(Bytes& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}
// dB value quantized to 0.25 dB in a signed 16-bit field.
void put_db(Bytes& b, double db) {
  const double q = std::clamp(db * 4.0, -32768.0, 32767.0);
  put_u16(b, static_cast<std::uint16_t>(
                 static_cast<std::int16_t>(std::lround(q))));
}

class Reader {
 public:
  explicit Reader(const Bytes& b) : b_(b) {}
  bool ok() const { return ok_; }
  std::uint8_t u8() { return ok_ && pos_ < b_.size() ? b_[pos_++] : fail(); }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double db() {
    return static_cast<std::int16_t>(u16()) / 4.0;
  }
  bool at_end() const { return pos_ == b_.size(); }

 private:
  std::uint8_t fail() {
    ok_ = false;
    return 0;
  }
  const Bytes& b_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

Bytes encode(const MeasurementReport& report) {
  Bytes b;
  put_u8(b, kMagicReport);
  put_u16(b, report.report_id);
  put_i32(b, report.serving_cell);
  put_db(b, report.serving_metric_db);
  put_u8(b, static_cast<std::uint8_t>(
                std::min(report.neighbors.size(), kMaxNeighbors)));
  std::size_t count = 0;
  for (const auto& n : report.neighbors) {
    if (count++ == kMaxNeighbors) break;
    put_i32(b, n.cell_id);
    put_db(b, n.metric_db);
    put_u8(b, n.cross_band_estimated ? 1 : 0);
  }
  return b;
}

Bytes encode(const HandoverCommand& cmd) {
  Bytes b;
  put_u8(b, kMagicCommand);
  put_u16(b, cmd.command_id);
  put_i32(b, cmd.source_cell);
  put_i32(b, cmd.target_cell);
  put_u32(b, cmd.target_channel);
  put_u16(b, cmd.new_crnti);
  // Execution offset in 0.1 ms units (16 bit, saturating).
  const double q = std::clamp(cmd.time_to_execute_s * 1e4, 0.0, 65535.0);
  put_u16(b, static_cast<std::uint16_t>(std::lround(q)));
  return b;
}

std::optional<MeasurementReport> decode_report(const Bytes& wire) {
  Reader r(wire);
  if (r.u8() != kMagicReport) return std::nullopt;
  MeasurementReport out;
  out.report_id = r.u16();
  out.serving_cell = r.i32();
  out.serving_metric_db = r.db();
  const std::uint8_t n = r.u8();
  if (!r.ok() || n > kMaxNeighbors) return std::nullopt;
  out.neighbors.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    MeasEntry e;
    e.cell_id = r.i32();
    e.metric_db = r.db();
    const std::uint8_t flag = r.u8();
    if (flag > 1) return std::nullopt;
    e.cross_band_estimated = flag == 1;
    out.neighbors.push_back(e);
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return out;
}

std::optional<HandoverCommand> decode_command(const Bytes& wire) {
  Reader r(wire);
  if (r.u8() != kMagicCommand) return std::nullopt;
  HandoverCommand out;
  out.command_id = r.u16();
  out.source_cell = r.i32();
  out.target_cell = r.i32();
  out.target_channel = r.u32();
  out.new_crnti = r.u16();
  out.time_to_execute_s = r.u16() / 1e4;
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return out;
}

MessageType peek_type(const Bytes& wire) {
  if (wire.empty()) return MessageType::kUnknown;
  if (wire[0] == kMagicReport) return MessageType::kMeasurementReport;
  if (wire[0] == kMagicCommand) return MessageType::kHandoverCommand;
  return MessageType::kUnknown;
}

}  // namespace rem::core
