// Compact binary codec for the RRC-style signaling messages the overlay
// carries: measurement reports (client -> base station) and handover
// commands (base station -> client). Mirrors the shape (not the ASN.1
// encoding) of TS 36.331 MeasurementReport / RRCConnectionReconfiguration
// with mobilityControlInfo.
//
// The wire format is deliberately simple and versioned: little-endian
// fixed-width integers, dB quantities quantized to 0.25 dB steps, length-
// prefixed lists. decode() validates everything and throws on corruption —
// the overlay's block errors must surface as decode failures, never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rem::core {

/// One measured/estimated cell inside a measurement report.
struct MeasEntry {
  std::int32_t cell_id = 0;
  double metric_db = 0.0;     ///< RSRP (legacy) or delay-Doppler SNR (REM)
  bool cross_band_estimated = false;

  bool operator==(const MeasEntry&) const = default;
};

struct MeasurementReport {
  std::uint16_t report_id = 0;
  std::int32_t serving_cell = 0;
  double serving_metric_db = 0.0;
  std::vector<MeasEntry> neighbors;

  bool operator==(const MeasurementReport&) const = default;
};

struct HandoverCommand {
  std::uint16_t command_id = 0;
  std::int32_t source_cell = 0;
  std::int32_t target_cell = 0;
  std::uint32_t target_channel = 0;   ///< EARFCN-like
  std::uint16_t new_crnti = 0;        ///< identity on the target
  double time_to_execute_s = 0.0;

  bool operator==(const HandoverCommand&) const = default;
};

using Bytes = std::vector<std::uint8_t>;

/// Encode to the wire format. Metric values outside [-127.75, 127.75] dB
/// saturate (quantized to 0.25 dB).
Bytes encode(const MeasurementReport& report);
Bytes encode(const HandoverCommand& cmd);

/// Decode; returns nullopt on any corruption (bad magic, truncated body,
/// out-of-range list length).
std::optional<MeasurementReport> decode_report(const Bytes& wire);
std::optional<HandoverCommand> decode_command(const Bytes& wire);

/// Message type sniffing for a received blob.
enum class MessageType { kMeasurementReport, kHandoverCommand, kUnknown };
MessageType peek_type(const Bytes& wire);

}  // namespace rem::core
