// The delay-Doppler signaling overlay (§5.1, Fig. 6b): glue between the
// signaling queues, the scheduling-based OTFS subgrid allocator, and the
// coded OTFS link. Data traffic keeps its OFDM slots untouched.
//
// This is the component a base station (downlink) or client (uplink)
// instantiates; the network simulator abstracts it through BlerModel, and
// bench_fig10/fig11 exercise the full chain below it.
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"
#include "phy/link.hpp"
#include "phy/scheduler.hpp"

#include <cstdint>
#include <vector>

namespace rem::core {

struct OverlayConfig {
  phy::Numerology num = phy::Numerology::lte(64, 14);
  phy::Modulation signaling_mod = phy::Modulation::kQPSK;
  /// Fall back to plain OFDM for signaling (legacy mode / peers without
  /// REM support — §6's backward compatibility).
  bool legacy_ofdm = false;
};

/// Outcome of transmitting one subframe.
struct SubframeOutcome {
  phy::SubframeAllocation allocation;
  /// Ids of signaling messages decoded correctly at the receiver.
  std::vector<std::uint64_t> delivered_signaling_ids;
  /// Ids lost to block errors.
  std::vector<std::uint64_t> lost_signaling_ids;
  /// Resource elements left for OFDM data this subframe.
  std::size_t data_res = 0;
};

class SignalingOverlay {
 public:
  explicit SignalingOverlay(OverlayConfig cfg);

  void enqueue_signaling(std::uint64_t id, std::size_t bytes);
  void enqueue_data(std::uint64_t id, std::size_t bytes);
  std::size_t signaling_backlog_bytes() const {
    return scheduler_.signaling_backlog_bytes();
  }

  /// Schedule and transmit one subframe over `ch` at `snr_db`: the
  /// signaling subgrid goes through the full coded OTFS (or legacy OFDM)
  /// chain; each served message is delivered iff its block decodes.
  SubframeOutcome transmit_subframe(const channel::MultipathChannel& ch,
                                    double snr_db, common::Rng& rng);

  const OverlayConfig& config() const { return cfg_; }

 private:
  OverlayConfig cfg_;
  phy::SignalingScheduler scheduler_;
};

}  // namespace rem::core
