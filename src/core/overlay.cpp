#include "core/overlay.hpp"

namespace rem::core {

SignalingOverlay::SignalingOverlay(OverlayConfig cfg)
    : cfg_(cfg), scheduler_(cfg.num, cfg.signaling_mod) {}

void SignalingOverlay::enqueue_signaling(std::uint64_t id,
                                         std::size_t bytes) {
  scheduler_.enqueue({id, bytes, true});
}

void SignalingOverlay::enqueue_data(std::uint64_t id, std::size_t bytes) {
  scheduler_.enqueue({id, bytes, false});
}

SubframeOutcome SignalingOverlay::transmit_subframe(
    const channel::MultipathChannel& ch, double snr_db, common::Rng& rng) {
  SubframeOutcome out;
  out.allocation = scheduler_.schedule_subframe();
  for (const auto& rect : out.allocation.data) out.data_res += rect.res();
  if (!out.allocation.signaling.has_value())
    return out;  // nothing but data this subframe

  // Transmit the signaling subgrid through the real coded link. The
  // subgrid spans full symbols (scheduler invariant), so it forms its own
  // M x N' OTFS frame.
  phy::LinkConfig link;
  link.num = cfg_.num;
  link.num.num_symbols = out.allocation.signaling->num_symbols;
  link.waveform =
      cfg_.legacy_ofdm ? phy::Waveform::kOFDM : phy::Waveform::kOTFS;
  link.mod = cfg_.signaling_mod;
  link.snr_db = snr_db;
  const auto res = phy::LinkSimulator(link).run_block(ch, rng);

  // All messages scheduled into the subgrid share the block's fate (they
  // are concatenated into one transport block, as in LTE SRB delivery).
  if (res.block_error)
    out.lost_signaling_ids = out.allocation.served_signaling_ids;
  else
    out.delivered_signaling_ids = out.allocation.served_signaling_ids;
  return out;
}

}  // namespace rem::core
