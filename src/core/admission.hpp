// Source-side admission backoff FSM: what the serving RRC session does
// when a HANDOVER REQUEST comes back with a busy rejection (the target's
// admission control found its signaling queue over threshold).
//
// The policy mirrors the paper's Theorem-2 argument: a busy target is not
// a dead end because the movement-based trigger usually carries a
// consistent second-best target — so the first busy reject pivots to the
// fallback cell, and only when no (fresh) fallback exists does the source
// wait out the target's backoff hint, re-attempting admission a bounded
// number of times before declaring the preparation failed.
//
// Header-only and dependency-free on purpose: the simulator consumes it
// from sim-layer code (which cannot link rem_core), and the core tests
// exercise it directly.
#pragma once

namespace rem::core {

/// What the source FSM does with a busy-rejected HANDOVER REQUEST.
enum class AdmissionAction {
  kFallback,  ///< pivot the preparation to the second-best target
  kBackoff,   ///< honor the hint: re-send the request after waiting
  kFail,      ///< retry budget exhausted and no fallback left: prep failed
};

/// Per-handover-attempt backoff state. Construct with the retry budget
/// (and, when resuming mid-attempt, the retries already spent); feed each
/// busy reject to decide(); persist retries() back into the attempt.
class AdmissionBackoffFsm {
 public:
  explicit AdmissionBackoffFsm(int max_retries, int retries_spent = 0)
      : max_retries_(max_retries < 0 ? 0 : max_retries),
        retries_(retries_spent < 0 ? 0 : retries_spent) {}

  /// Decide the reaction to one busy reject. `fallback_available` means a
  /// Theorem-2-consistent second-best target exists and has not been
  /// consumed by this attempt yet.
  AdmissionAction decide(bool fallback_available) {
    if (fallback_available) return AdmissionAction::kFallback;
    if (retries_ < max_retries_) {
      ++retries_;
      return AdmissionAction::kBackoff;
    }
    return AdmissionAction::kFail;
  }

  int retries() const { return retries_; }
  int max_retries() const { return max_retries_; }
  bool exhausted() const { return retries_ >= max_retries_; }

 private:
  int max_retries_ = 0;
  int retries_ = 0;
};

}  // namespace rem::core
