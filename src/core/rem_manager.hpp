// REM mobility management: movement-based triggering in the delay-Doppler
// domain. Stable DD-SNR input, one measurement per base station with
// SVD cross-band estimation for co-located cells (§5.2), a single-stage
// conflict-free A3 policy (§5.3), and OTFS-carried signaling (§5.1).
#pragma once

#include "mobility/measurement.hpp"
#include "sim/simulator.hpp"

#include <map>

namespace rem::core {

struct RemConfig {
  /// Coordinated A3 offset (Theorem 2: pairwise sums must be >= 0; a
  /// uniform non-negative offset trivially satisfies it).
  double a3_offset_db = 2.0;
  double hysteresis_db = 1.0;
  /// Short TTT — the stable DD metric does not need long smoothing.
  double time_to_trigger_s = 0.040;
  mobility::MeasurementConfig measurement;
  /// Cross-band estimation error injected on estimated (not directly
  /// measured) co-located cells, std dev in dB. Fig. 12: <= 2 dB at p90
  /// corresponds to sigma ~= 1 dB.
  double crossband_error_sigma_db = 1.0;
  /// Re-fire interval after an emitted decision (lost-report retry).
  double refire_interval_s = 0.12;
  /// Degrade to direct (time-frequency) measurement when the delay-Doppler
  /// estimates behind the observations are staler than this (pilot
  /// outage): acting on faulted cross-band estimates is worse than paying
  /// the legacy measurement delay. Exits as soon as pilots are fresh.
  double estimate_staleness_s = 0.20;
  /// Strongest sites measured per cycle (one pilot each; co-located cells
  /// come free via cross-band estimation).
  std::size_t max_measured_sites = 4;
  /// Cascade resilience: when other TTT-qualified candidates sit within
  /// this band (dB) of the best metric, steer toward the lowest advertised
  /// control-plane load (Observation::advertised_load; unknown reads as a
  /// neutral 0.5). Theorem-2-consistent — every in-band candidate already
  /// cleared the coordinated A3 threshold, so the pairwise offset-sum
  /// condition holds for whichever wins. Inert while nothing advertises
  /// load (the simulator's default); 0 disables the tie-break entirely.
  double load_tie_band_db = 1.5;

  // --- Ablation switches (bench_ablation) ---
  /// Carry signaling over OTFS (false = legacy OFDM signaling, keeping
  /// everything else REM).
  bool use_otfs_signaling = true;
  /// Use cross-band estimation for co-located cells (false = only the
  /// directly measured cell per site is visible, and every monitored cell
  /// costs a measurement like legacy).
  bool use_crossband = true;
  /// Select targets by Shannon capacity B*log2(1+SNR) instead of SNR
  /// (§5.3 step 3 / §8 "On data speed"; Theorems 2-3 hold either way).
  bool capacity_selection = false;

  RemConfig() { measurement.crossband_runtime_s = 0.020; }
};

class RemManager final : public sim::MobilityManager {
 public:
  /// A manager instance serves exactly one UE — it carries per-UE
  /// estimate/trigger state and its own RNG stream. Fleet runs
  /// (Simulator::run_fleet) construct one instance per UE through the
  /// factory, forking `rng` from a dedicated manager master stream in
  /// UE-id order *before* the simulation stream is forked, so manager
  /// draws never interleave with simulator draws (bench/fleet_runner.hpp
  /// documents the full construction-order contract).
  explicit RemManager(RemConfig cfg, common::Rng rng)
      : cfg_(cfg), rng_(std::move(rng)) {}

  std::string name() const override { return "REM"; }
  phy::Waveform waveform() const override {
    return cfg_.use_otfs_signaling ? phy::Waveform::kOTFS
                                   : phy::Waveform::kOFDM;
  }
  /// REM's handover decision runs client-side (§4: the UE predicts and
  /// triggers), so it never occupies the serving BS's control-plane queue
  /// — the degraded-mode asymmetry under BS overload.
  bool client_driven() const override { return true; }
  std::optional<sim::HandoverDecision> update(
      double t, const sim::ServingState& serving,
      const std::vector<sim::Observation>& neighbors) override;
  std::set<std::size_t> visible_cells() const override { return visible_; }
  void on_serving_changed(double t, std::size_t new_idx) override;
  /// True while stale cross-band estimates forced the fallback to direct
  /// measurement (temporary use_crossband bypass).
  bool degraded_mode() const override { return degraded_; }

 private:
  RemConfig cfg_;
  common::Rng rng_;
  bool degraded_ = false;
  double last_decision_t_ = -1e9;
  /// A3 entry timestamps per neighbor cell (TTT tracking).
  std::map<int, double> entered_;
  std::set<std::size_t> visible_;
};

}  // namespace rem::core
