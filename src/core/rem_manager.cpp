#include "core/rem_manager.hpp"

#include "common/units.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace rem::core {

void RemManager::on_serving_changed(double /*t*/, std::size_t /*new_idx*/) {
  entered_.clear();
  visible_.clear();
  last_decision_t_ = -1e9;
}

std::optional<sim::HandoverDecision> RemManager::update(
    double t, const sim::ServingState& serving,
    const std::vector<sim::Observation>& neighbors) {
  // Graceful degradation: when the delay-Doppler estimates behind the
  // observations are staler than the threshold (pilot outage), bypass
  // cross-band estimation and fall back to direct time-frequency
  // measurement — fresh but noisy beats stale and corrupted.
  double max_age = 0.0;
  for (const auto& o : neighbors)
    max_age = std::max(max_age, o.estimate_age_s);
  degraded_ = max_age > cfg_.estimate_staleness_s;
  const bool crossband = cfg_.use_crossband && !degraded_;

  // One measurement per base station; co-located cells are estimated via
  // cross-band SVD, others measured directly. Every candidate is visible —
  // there is no multi-stage gating to miss a cell behind. Only the
  // strongest few sites are measured per cycle (bounded monitored set).
  visible_.clear();
  std::map<int, double> site_strength;  // site -> best observed dd-SNR
  for (const auto& o : neighbors) {
    visible_.insert(o.cell_idx);
    auto [it, inserted] =
        site_strength.try_emplace(o.id.base_station, o.dd_snr_db);
    if (!inserted) it->second = std::max(it->second, o.dd_snr_db);
  }
  std::vector<std::pair<double, int>> ranked;  // (-snr, site)
  ranked.reserve(site_strength.size());
  for (const auto& [site, snr] : site_strength)
    ranked.push_back({-snr, site});
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > cfg_.max_measured_sites)
    ranked.resize(cfg_.max_measured_sites);
  std::set<int> measured;
  for (const auto& [neg, site] : ranked) measured.insert(site);
  std::vector<mobility::MeasureTask> tasks;
  std::set<int> task_sites;
  for (const auto& o : neighbors) {
    if (measured.count(o.id.base_station) == 0) continue;
    if (crossband) {
      // One measurement per site; siblings are estimated.
      if (task_sites.insert(o.id.base_station).second)
        tasks.push_back({o.id, o.id.channel == serving.id.channel});
    } else {
      // Ablation: every monitored cell costs its own measurement.
      tasks.push_back({o.id, o.id.channel == serving.id.channel});
    }
  }

  // Stable DD-SNR comparison with the coordinated A3 offset. Estimated
  // cells carry the cross-band estimation error. With capacity selection,
  // the A3 comparison runs on 10*log10 of the Shannon capacity instead
  // (§5.3: Theorems 2-3 hold with SNR replaced by capacity).
  const auto policy_metric = [&](double snr_db, double bandwidth_hz) {
    if (!cfg_.capacity_selection) return snr_db;
    const double cap = common::shannon_capacity_bps(
        bandwidth_hz, common::db_to_lin(snr_db));
    return 10.0 * std::log10(std::max(cap, 1.0));
  };
  const double serving_metric = policy_metric(
      degraded_ ? serving.snr_db : serving.dd_snr_db, serving.bandwidth_hz);
  std::optional<std::size_t> best_target;
  double best_metric = -1e9;
  // Second-best TTT-qualified candidate: offered to the simulator as the
  // preparation fallback. Theorem 2 consistency is inherited — any cell
  // clearing the coordinated A3 threshold satisfies the same pairwise
  // offset-sum condition as the winner.
  int second_target = -1;
  double second_metric = -1e9;
  std::map<int, int> site_direct;  // site -> cell idx measured directly
  // TTT-qualified candidates this tick, for the load-aware tie-break.
  struct Qualified {
    double metric;
    std::size_t idx;
    double load;
  };
  std::vector<Qualified> qualified;
  for (const auto& o : neighbors) {
    if (o.breaker_open) {
      // The circuit breaker tripped on this target: hidden from selection
      // entirely, and its TTT state resets so it must re-qualify from
      // scratch once the breaker admits traffic again.
      entered_.erase(o.id.cell);
      continue;
    }
    auto [it, inserted] =
        site_direct.try_emplace(o.id.base_station, static_cast<int>(o.cell_idx));
    // Degraded mode swaps the stale delay-Doppler estimate for the fresh
    // direct measurement of the same cell.
    double snr = degraded_ ? o.snr_db : o.dd_snr_db;
    // A sibling of the measured cell is estimated (cross-band error);
    // with the ablation every monitored cell is measured directly, which
    // removed the error but paid per-cell measurement time above.
    const bool is_estimated =
        crossband && it->second != static_cast<int>(o.cell_idx);
    if (is_estimated)
      snr += rng_.gaussian(0.0, cfg_.crossband_error_sigma_db);
    const double metric = policy_metric(snr, o.bandwidth_hz);
    const double threshold =
        serving_metric + cfg_.a3_offset_db + cfg_.hysteresis_db;
    if (metric > threshold) {
      auto [e_it, e_inserted] = entered_.try_emplace(o.id.cell, t);
      if (t - e_it->second + 1e-12 >= cfg_.time_to_trigger_s) {
        qualified.push_back({metric, o.cell_idx, o.advertised_load});
        if (metric > best_metric) {
          if (best_target) {
            second_metric = best_metric;
            second_target = static_cast<int>(*best_target);
          }
          best_metric = metric;
          best_target = o.cell_idx;
        } else if (metric > second_metric) {
          second_metric = metric;
          second_target = static_cast<int>(o.cell_idx);
        }
      }
    } else {
      entered_.erase(o.id.cell);
    }
  }

  if (!best_target) return std::nullopt;
  if (t - last_decision_t_ < cfg_.refire_interval_s) return std::nullopt;
  last_decision_t_ = t;

  // Load-aware tie-breaking (cascade resilience): among TTT-qualified
  // candidates within load_tie_band_db of the winner's metric, take the
  // lowest advertised control-plane load; ties fall back to the higher
  // metric, then the lower cell index — all draw-free. Only a known ad in
  // the band can move the choice, so runs without load advertisement keep
  // the pure-metric winner bit-for-bit.
  if (cfg_.load_tie_band_db > 0.0) {
    const double floor = best_metric - cfg_.load_tie_band_db;
    bool any_ad = false;
    for (const auto& q : qualified)
      if (q.metric >= floor && q.load >= 0.0) any_ad = true;
    if (any_ad) {
      double sel_eff = 2.0;  // above any real utilization
      double sel_metric = -1e9;
      std::size_t sel_idx = *best_target;
      for (const auto& q : qualified) {
        if (q.metric < floor) continue;
        const double eff = q.load >= 0.0 ? q.load : 0.5;
        const bool better =
            eff < sel_eff - 1e-9 ||
            (std::abs(eff - sel_eff) <= 1e-9 &&
             (q.metric > sel_metric ||
              (q.metric == sel_metric && q.idx < sel_idx)));
        if (better) {
          sel_eff = eff;
          sel_metric = q.metric;
          sel_idx = q.idx;
        }
      }
      if (sel_idx != *best_target) {
        // The displaced metric winner is still the best-qualified
        // fallback; avoid a fallback equal to the new target.
        if (second_target == static_cast<int>(sel_idx))
          second_target = static_cast<int>(*best_target);
        best_target = sel_idx;
      }
    }
  }

  sim::HandoverDecision d;
  d.target_idx = *best_target;
  d.fallback_idx = second_target;
  // Without cross-band estimation (ablation or degraded fallback) every
  // monitored cell is measured the legacy way (sequentially, with gaps
  // for inter-frequency cells).
  d.feedback_delay_s =
      crossband ? mobility::rem_feedback_delay_s(tasks, cfg_.measurement)
                : mobility::legacy_feedback_delay_s(tasks, cfg_.measurement);
  return d;
}

}  // namespace rem::core
