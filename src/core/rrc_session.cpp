#include "core/rrc_session.hpp"

namespace rem::core {

void RrcSession::send(const MeasurementReport& report) {
  const auto wire = encode(report);
  const auto id = next_id_++;
  in_flight_[id] = wire;
  overlay_.enqueue_signaling(id, wire.size());
}

void RrcSession::send(const HandoverCommand& cmd) {
  const auto wire = encode(cmd);
  const auto id = next_id_++;
  in_flight_[id] = wire;
  overlay_.enqueue_signaling(id, wire.size());
}

RrcTransmitOutcome RrcSession::transmit_subframe(
    const channel::MultipathChannel& ch, double snr_db, common::Rng& rng) {
  RrcTransmitOutcome out;
  auto sub = overlay_.transmit_subframe(ch, snr_db, rng);
  out.allocation = std::move(sub.allocation);
  for (const auto id : sub.delivered_signaling_ids) {
    if (!delivered_seen_.accept(id)) {
      ++out.duplicates;  // a copy of this id already reached the app
      continue;
    }
    const auto it = in_flight_.find(id);
    if (it == in_flight_.end()) continue;
    switch (peek_type(it->second)) {
      case MessageType::kMeasurementReport:
        if (auto r = decode_report(it->second))
          out.delivered.emplace_back(std::move(*r));
        else
          ++out.lost, ++out.dropped;  // undecodable: retrying cannot help
        break;
      case MessageType::kHandoverCommand:
        if (auto c = decode_command(it->second))
          out.delivered.emplace_back(std::move(*c));
        else
          ++out.lost, ++out.dropped;
        break;
      case MessageType::kUnknown:
        ++out.lost, ++out.dropped;
        break;
    }
    in_flight_.erase(it);
    retries_.erase(id);
  }
  for (const auto id : sub.lost_signaling_ids) {
    ++out.lost;
    // Block error: re-enqueue for another subframe until the retry
    // budget is exhausted, then drop (the seed erased unconditionally,
    // silently losing signaling the ARQ layer would have recovered).
    const auto it = in_flight_.find(id);
    if (it == in_flight_.end()) continue;
    int& used = retries_[id];
    if (used < max_retries_) {
      ++used;
      ++out.retransmitted;
      overlay_.enqueue_signaling(id, it->second.size());
    } else {
      ++out.dropped;
      in_flight_.erase(it);
      retries_.erase(id);
    }
  }
  return out;
}

}  // namespace rem::core
