#include "core/legacy_manager.hpp"

#include <cmath>

namespace rem::core {

namespace rm = rem::mobility;

LegacyManager::LegacyManager(LegacyConfig cfg) : cfg_(std::move(cfg)) {}

const rm::CellPolicy& LegacyManager::serving_policy() const {
  const auto it = cfg_.policies.find(serving_id_.cell);
  return it != cfg_.policies.end() ? it->second : cfg_.default_policy;
}

bool LegacyManager::rule_matches(const rm::PolicyRule& rule,
                                 const rm::CellId& serving,
                                 const rm::CellId& target) const {
  if (rule.channel == rm::PolicyRule::kAnyChannel) return true;
  if (rule.channel == rm::PolicyRule::kServingChannel)
    return target.channel == serving.channel;
  if (rule.channel == rm::PolicyRule::kOtherChannels)
    return target.channel != serving.channel;
  return rule.channel == target.channel;
}

void LegacyManager::on_serving_changed(double /*t*/, std::size_t new_idx) {
  serving_cell_ = static_cast<int>(new_idx);
  stage_ = 0;
  reconfigurations_ = 0;
  pending_stage_ = -1;
  stage_change_due_ = -1.0;
  monitors_.clear();
  visible_.clear();
  last_decision_t_ = -1e9;
}

std::optional<sim::HandoverDecision> LegacyManager::update(
    double t, const sim::ServingState& serving,
    const std::vector<sim::Observation>& neighbors) {
  serving_id_ = serving.id;
  const auto& policy = serving_policy();
  if (stage_ == 0) stage_ = policy.initial_stage;

  // A pending reconfiguration takes effect after its round trip.
  if (pending_stage_ >= 0 && t >= stage_change_due_) {
    stage_ = pending_stage_;
    pending_stage_ = -1;
    ++reconfigurations_;
    // New measurement configuration resets the neighbor monitors (the
    // serving-only guards stay armed).
    for (auto& [k, mon] : monitors_) {
      if (mon.config().type != rm::EventType::kA1 &&
          mon.config().type != rm::EventType::kA2)
        mon.reset();
    }
  }

  // Track what this stage can see (for missed-cell classification) and
  // build the measurement task list that sets the feedback delay. The
  // monitored set is bounded: only the strongest cells get measured.
  visible_.clear();
  std::vector<std::pair<double, const sim::Observation*>> candidates;
  const auto stage_rules = policy.rules_in_stage(stage_);
  for (const auto& o : neighbors) {
    // A breaker-open target is hidden from monitoring entirely until the
    // breaker admits traffic again (never true unless breakers are on).
    if (o.breaker_open) continue;
    for (const auto* rule : stage_rules) {
      if (rule->event.type == rm::EventType::kA1 ||
          rule->event.type == rm::EventType::kA2)
        continue;  // serving-only
      if (!rule_matches(*rule, serving.id, o.id)) continue;
      candidates.push_back({-o.rsrp_dbm, &o});
      break;
    }
  }
  std::sort(candidates.begin(), candidates.end());
  if (candidates.size() > cfg_.max_monitored_cells)
    candidates.resize(cfg_.max_monitored_cells);
  std::vector<rm::MeasureTask> tasks;
  for (const auto& [neg, o] : candidates) {
    visible_.insert(o->cell_idx);
    tasks.push_back({o->id, o->id.channel == serving.id.channel});
  }

  std::optional<sim::HandoverDecision> decision;
  // Handover rules that fired this tick, for the load-aware tie-break.
  struct Fired {
    double metric;
    std::size_t idx;
    double load;
  };
  std::vector<Fired> fired;
  for (std::size_t r = 0; r < policy.rules.size(); ++r) {
    const auto& rule = policy.rules[r];
    if (rule.stage != stage_) continue;
    const bool serving_only = rule.event.type == rm::EventType::kA1 ||
                              rule.event.type == rm::EventType::kA2;
    // During the re-fire hold-off the reporting machinery is busy; freeze
    // the handover triggers (not the reconfiguration guards) so a held
    // fire is not silently consumed.
    if (rule.action == rm::PolicyAction::kHandover &&
        t - last_decision_t_ < cfg_.refire_interval_s)
      continue;
    // Evaluate against each applicable neighbor (or once for A1/A2).
    const auto eval_one = [&](int neighbor_cell, double neighbor_metric,
                              std::size_t target_idx, double adv_load) {
      const auto key = std::make_pair(static_cast<int>(r), neighbor_cell);
      auto [it, inserted] =
          monitors_.try_emplace(key, rm::EventMonitor(rule.event));
      if (!it->second.update(t, serving.rsrp_dbm, neighbor_metric)) return;
      if (rule.action == rm::PolicyAction::kHandover)
        fired.push_back({neighbor_metric, target_idx, adv_load});
      if (rule.action == rm::PolicyAction::kReconfigure) {
        if (rule.next_stage != stage_ && pending_stage_ < 0) {
          // Feedback + reconfiguration command round trip before the new
          // measurement configuration is active (§3.2's extra delay).
          pending_stage_ = rule.next_stage;
          stage_change_due_ = t + cfg_.measurement.reconfigure_rtt_s +
                              cfg_.measurement.report_latency_s;
        }
        return;
      }
      if (decision) {
        // First firing rule wins this tick; the next distinct firing
        // candidate becomes the preparation fallback target.
        if (decision->fallback_idx < 0 &&
            static_cast<int>(target_idx) !=
                static_cast<int>(decision->target_idx))
          decision->fallback_idx = static_cast<int>(target_idx);
        return;
      }
      sim::HandoverDecision d;
      d.target_idx = target_idx;
      d.feedback_delay_s = rm::legacy_feedback_delay_s(
          tasks, cfg_.measurement, reconfigurations_);
      decision = d;
    };

    if (serving_only) {
      eval_one(-1, 0.0, 0, -1.0);
      continue;
    }
    for (const auto& o : neighbors) {
      if (visible_.count(o.cell_idx) == 0) continue;  // not monitored
      if (!rule_matches(rule, serving.id, o.id)) continue;
      eval_one(o.id.cell, o.rsrp_dbm, o.cell_idx, o.advertised_load);
    }
  }

  // Load-aware tie-breaking (cascade resilience): among this tick's fired
  // handover candidates within load_tie_band_db RSRP of the chosen target,
  // take the lowest advertised load; ties fall back to the stronger RSRP,
  // then the lower cell index. Only a known ad in the band can move the
  // choice, so runs without load advertisement keep the first-firing-rule
  // winner bit-for-bit.
  if (decision && !fired.empty() && cfg_.load_tie_band_db > 0.0) {
    const double floor = fired.front().metric - cfg_.load_tie_band_db;
    bool any_ad = false;
    for (const auto& f : fired)
      if (f.metric >= floor && f.load >= 0.0) any_ad = true;
    if (any_ad) {
      double sel_eff = 2.0;
      double sel_metric = -1e9;
      std::size_t sel_idx = decision->target_idx;
      for (const auto& f : fired) {
        if (f.metric < floor) continue;
        const double eff = f.load >= 0.0 ? f.load : 0.5;
        const bool better =
            eff < sel_eff - 1e-9 ||
            (std::abs(eff - sel_eff) <= 1e-9 &&
             (f.metric > sel_metric ||
              (f.metric == sel_metric && f.idx < sel_idx)));
        if (better) {
          sel_eff = eff;
          sel_metric = f.metric;
          sel_idx = f.idx;
        }
      }
      if (sel_idx != decision->target_idx) {
        if (decision->fallback_idx == static_cast<int>(sel_idx))
          decision->fallback_idx = static_cast<int>(decision->target_idx);
        decision->target_idx = sel_idx;
      }
    }
  }

  if (decision) {
    last_decision_t_ = t;
    // A decision re-arms the triggers so a lost report can re-fire after
    // the re-fire interval.
    for (auto& [k, mon] : monitors_) mon.reset();
  }
  return decision;
}

}  // namespace rem::core
