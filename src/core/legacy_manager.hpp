// Legacy 4G/5G mobility management (the baseline REM is compared against):
// wireless-signal-strength input with fast fading, per-cell multi-stage
// policies (Fig. 1b), sequential measurement with gaps and long
// inter-frequency TimeToTrigger, OFDM signaling.
#pragma once

#include "mobility/measurement.hpp"
#include "mobility/policy.hpp"
#include "sim/simulator.hpp"

#include <map>

namespace rem::core {

struct LegacyConfig {
  /// Per-cell policies, keyed by CellId::cell. Cells without an entry get
  /// `default_policy`.
  std::map<int, mobility::CellPolicy> policies;
  mobility::CellPolicy default_policy;
  mobility::MeasurementConfig measurement;
  /// After an emitted decision, how long before the (still satisfied)
  /// trigger may re-fire a report (RLC ARQ + reporting interval).
  double refire_interval_s = 0.24;
  /// Bounded monitored set: strongest cells measured per stage.
  std::size_t max_monitored_cells = 8;
  /// Cascade resilience: among rules that fired this tick within this band
  /// (dB RSRP) of the chosen target, steer toward the lowest advertised
  /// control-plane load (unknown reads as a neutral 0.5). Inert while
  /// nothing advertises load; 0 disables.
  double load_tie_band_db = 1.5;
};

class LegacyManager final : public sim::MobilityManager {
 public:
  /// A manager instance serves exactly one UE (it tracks per-UE TTT and
  /// visibility state); fleet runs construct one per UE via the
  /// Simulator::run_fleet factory. The legacy manager draws no
  /// randomness, so all fleet UEs share the same LegacyConfig.
  explicit LegacyManager(LegacyConfig cfg);

  std::string name() const override { return "Legacy"; }
  phy::Waveform waveform() const override { return phy::Waveform::kOFDM; }
  std::optional<sim::HandoverDecision> update(
      double t, const sim::ServingState& serving,
      const std::vector<sim::Observation>& neighbors) override;
  std::set<std::size_t> visible_cells() const override {
    return visible_;
  }
  void on_serving_changed(double t, std::size_t new_idx) override;

  int current_stage() const { return stage_; }
  int reconfigurations() const { return reconfigurations_; }

 private:
  const mobility::CellPolicy& serving_policy() const;
  bool rule_matches(const mobility::PolicyRule& rule,
                    const mobility::CellId& serving,
                    const mobility::CellId& target) const;

  LegacyConfig cfg_;
  int serving_cell_ = -1;
  mobility::CellId serving_id_;
  int stage_ = 0;
  int reconfigurations_ = 0;  ///< since last serving change
  /// A fired reconfiguration takes a round trip to take effect; until
  /// `stage_change_due_` the client still measures the old stage's cells.
  int pending_stage_ = -1;
  double stage_change_due_ = -1.0;
  double last_decision_t_ = -1e9;
  /// TTT monitors keyed by (rule index, neighbor cell id).
  std::map<std::pair<int, int>, mobility::EventMonitor> monitors_;
  std::set<std::size_t> visible_;
};

}  // namespace rem::core
