// Per-target circuit breaker: the source-side guard that stops a UE from
// hammering a dying base station with handover preparations. Consecutive
// preparation failures or admission busy-rejects toward one target trip
// the breaker (open); after a deterministic cool-down one half-open probe
// preparation is allowed — success closes the breaker, failure re-trips
// it with a fresh cool-down. The FSM is pure arithmetic over the caller's
// simulated clock: no wall time, no randomness, so breaker timelines are
// bit-identical at any thread count and across sim engines.
//
// Header-only and dependency-free on purpose, like AdmissionBackoffFsm:
// the simulator consumes it from sim-layer code (which cannot link
// rem_core), and the core tests exercise it directly.
#pragma once

namespace rem::core {

enum class BreakerState {
  kClosed,    ///< target healthy: preparations flow freely
  kOpen,      ///< tripped: refuse the target until the cool-down elapses
  kHalfOpen,  ///< cool-down over: exactly one probe preparation in flight
};

/// One target cell's breaker. Construct with the trip threshold K (trip
/// after exactly K *consecutive* failures) and the cool-down in simulated
/// seconds; `trip_threshold <= 0` disables the breaker entirely (it never
/// leaves kClosed).
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  CircuitBreaker(int trip_threshold, double cooldown_s)
      : trip_threshold_(trip_threshold),
        cooldown_s_(cooldown_s < 0.0 ? 0.0 : cooldown_s) {}

  /// May the caller start a preparation toward this target at time `now`?
  /// Closed: yes. Open: no until `now` reaches the cool-down deadline, at
  /// which point the breaker moves to half-open and admits the caller as
  /// the probe. Half-open: only the probe already admitted (subsequent
  /// callers wait for its outcome). The transition on the first allowed
  /// call after the deadline is what makes "one probe per cool-down"
  /// deterministic; poll probed() to see whether a call was the probe.
  bool allow(double now) {
    if (trip_threshold_ <= 0 || state_ == BreakerState::kClosed) return true;
    if (state_ == BreakerState::kOpen) {
      if (now < reopen_at_s_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    }
    // Half-open: the single probe slot is taken until record_* resolves it.
    if (probe_in_flight_) return false;
    probe_in_flight_ = true;
    return true;
  }

  /// One preparation failure / busy-reject toward the target at `now`.
  /// Returns true when this failure tripped the breaker (closed -> open on
  /// the K-th consecutive failure, or a failed half-open probe re-trip).
  bool record_failure(double now) {
    if (trip_threshold_ <= 0) return false;
    if (state_ == BreakerState::kHalfOpen) {
      probe_in_flight_ = false;
      trip(now);
      return true;
    }
    if (state_ == BreakerState::kOpen) return false;
    if (++consecutive_failures_ >= trip_threshold_) {
      trip(now);
      return true;
    }
    return false;
  }

  /// One successful preparation (ack) toward the target. Returns true when
  /// this success closed a half-open breaker (the probe won).
  bool record_success() {
    consecutive_failures_ = 0;
    if (state_ == BreakerState::kHalfOpen) {
      probe_in_flight_ = false;
      state_ = BreakerState::kClosed;
      return true;
    }
    return false;
  }

  BreakerState state() const { return state_; }
  /// Not closed: the target is hidden from candidate selection (half-open
  /// counts — only the probe itself may proceed).
  bool engaged() const { return state_ != BreakerState::kClosed; }
  /// Open and still cooling down at `now` (what Observation::breaker_open
  /// reports: half-open targets are probe-eligible, not refused).
  bool refuses(double now) const {
    return trip_threshold_ > 0 && state_ == BreakerState::kOpen &&
           now < reopen_at_s_;
  }
  int consecutive_failures() const { return consecutive_failures_; }
  double reopen_at_s() const { return reopen_at_s_; }
  bool probe_in_flight() const { return probe_in_flight_; }

 private:
  void trip(double now) {
    state_ = BreakerState::kOpen;
    reopen_at_s_ = now + cooldown_s_;
    consecutive_failures_ = 0;
  }

  int trip_threshold_ = 0;
  double cooldown_s_ = 0.0;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  double reopen_at_s_ = 0.0;
  bool probe_in_flight_ = false;
};

}  // namespace rem::core
