// Typed RRC signaling over the delay-Doppler overlay: encodes measurement
// reports / handover commands with the rrc_codec, ships them through the
// scheduling-based OTFS overlay, and decodes whatever survives the channel.
// Block errors surface as decode failures — exactly the loss process the
// network simulator abstracts with BlerModel.
#pragma once

#include "core/overlay.hpp"
#include "core/rrc_codec.hpp"

#include <map>
#include <variant>

namespace rem::core {

using RrcMessage = std::variant<MeasurementReport, HandoverCommand>;

struct RrcTransmitOutcome {
  std::vector<RrcMessage> delivered;
  std::size_t lost = 0;
  phy::SubframeAllocation allocation;
};

class RrcSession {
 public:
  explicit RrcSession(OverlayConfig cfg) : overlay_(cfg) {}

  /// Queue a message for the next subframe(s).
  void send(const MeasurementReport& report);
  void send(const HandoverCommand& cmd);

  std::size_t backlog_bytes() const {
    return overlay_.signaling_backlog_bytes();
  }

  /// Transmit one subframe over `ch` at `snr_db` and decode the survivors.
  RrcTransmitOutcome transmit_subframe(const channel::MultipathChannel& ch,
                                       double snr_db, common::Rng& rng);

 private:
  SignalingOverlay overlay_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Bytes> in_flight_;
};

}  // namespace rem::core
