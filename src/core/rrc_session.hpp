// Typed RRC signaling over the delay-Doppler overlay: encodes measurement
// reports / handover commands with the rrc_codec, ships them through the
// scheduling-based OTFS overlay, and decodes whatever survives the channel.
// Block errors surface as decode failures — exactly the loss process the
// network simulator abstracts with BlerModel.
#pragma once

#include "core/overlay.hpp"
#include "core/rrc_codec.hpp"
#include "net/backhaul.hpp"

#include <map>
#include <variant>

namespace rem::core {

using RrcMessage = std::variant<MeasurementReport, HandoverCommand>;

struct RrcTransmitOutcome {
  std::vector<RrcMessage> delivered;
  /// Blocks lost to channel errors *this subframe* (a lost message that is
  /// re-enqueued still counts here — it is gone from this subframe).
  std::size_t lost = 0;
  /// Lost messages re-enqueued for another subframe (bounded retries).
  std::size_t retransmitted = 0;
  /// Messages permanently dropped after exhausting their retry budget.
  std::size_t dropped = 0;
  /// Duplicate deliveries suppressed by the at-most-once filter (a
  /// retransmitted copy arriving after its original already decoded).
  std::size_t duplicates = 0;
  phy::SubframeAllocation allocation;
};

class RrcSession {
 public:
  /// `max_retries`: how many extra subframe attempts a lost message gets
  /// before it is dropped (0 = the seed behaviour, lose on first error).
  explicit RrcSession(OverlayConfig cfg, int max_retries = 2)
      : overlay_(cfg), max_retries_(max_retries) {}

  /// Queue a message for the next subframe(s).
  void send(const MeasurementReport& report);
  void send(const HandoverCommand& cmd);

  std::size_t backlog_bytes() const {
    return overlay_.signaling_backlog_bytes();
  }

  /// Transmit one subframe over `ch` at `snr_db` and decode the survivors.
  RrcTransmitOutcome transmit_subframe(const channel::MultipathChannel& ch,
                                       double snr_db, common::Rng& rng);

 private:
  SignalingOverlay overlay_;
  int max_retries_ = 2;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Bytes> in_flight_;
  std::map<std::uint64_t, int> retries_;  ///< attempts consumed per message
  /// At-most-once delivery to the application: each message id decodes
  /// once, no matter how many retransmitted copies the channel returns.
  net::SequenceTracker delivered_seen_;
};

}  // namespace rem::core
