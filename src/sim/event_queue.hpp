// Deterministic discrete-event queue for the network simulator.
//
// Events dispatch in strict (time, priority, seq) order: earliest time
// first, lower priority value first at equal times, and insertion order
// (seq) as the final tie-break. The ordering is a total order over every
// event ever pushed, so two runs that push the same events pop them in
// the same order on any platform — the property the multi-UE fleet
// engine (sim/fleet.hpp, Simulator::run_fleet) builds its determinism
// guarantee on: the world step runs at priority 0 and each UE's step at
// priority 1 + ue, so one simulated instant always unfolds as
// "shared world, then UE 0, then UE 1, ..." regardless of how the events
// were scheduled.
//
// Cancellation is lazy: cancel() / reschedule() mark the old entry dead
// in O(log n)-amortized time and pop() skips dead entries. The queue
// itself is single-threaded and draws no randomness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace rem::sim {

/// One scheduled event. `kind` and `arg` are dispatcher-defined (the
/// fleet engine uses kind = world/ue-step and arg = UE id); the queue
/// orders purely on (t_s, priority, seq) and never interprets them.
struct Event {
  double t_s = 0.0;
  int priority = 0;       ///< lower dispatches first at equal time
  std::uint64_t seq = 0;  ///< insertion index; assigned by push()
  int kind = 0;           ///< dispatcher-defined tag
  int arg = 0;            ///< dispatcher-defined payload (e.g. UE id)
};

class EventQueue {
 public:
  /// Schedule `e` at (e.t_s, e.priority). The queue assigns e.seq (a
  /// strictly increasing insertion index, starting at 1) and returns it
  /// as the event's handle for cancel()/reschedule().
  std::uint64_t push(Event e);

  /// Remove and return the earliest live event by (t_s, priority, seq);
  /// std::nullopt when no live event remains. Lazily discards entries
  /// killed by cancel()/reschedule().
  std::optional<Event> pop();

  /// The event pop() would return next, without removing it.
  std::optional<Event> peek();

  /// Kill a pending event by its seq handle. Returns false when the
  /// handle is unknown — already dispatched, already cancelled, or
  /// superseded by reschedule().
  bool cancel(std::uint64_t seq);

  /// Move a pending event to `new_t_s`, preserving kind/arg/priority.
  /// The event re-enters insertion order: it gets (and returns) a fresh
  /// seq, so among same-time same-priority peers it now dispatches
  /// last. Returns 0 when the handle is dead.
  std::uint64_t reschedule(std::uint64_t seq, double new_t_s);

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t_s != b.t_s) return a.t_s > b.t_s;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void drop_dead();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  /// Live handles -> authoritative event copy. Only keyed lookups — never
  /// iterated — so the unordered container cannot leak nondeterminism.
  std::unordered_map<std::uint64_t, Event> live_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace rem::sim
