#include "sim/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace rem::sim {

std::string fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kSignalingLoss: return "signaling_burst_loss";
    case FaultKind::kPilotOutage: return "pilot_outage";
    case FaultKind::kProcessingStall: return "processing_stall";
    case FaultKind::kCoverageBlackout: return "coverage_blackout";
    case FaultKind::kCommandDuplication: return "command_duplication";
  }
  throw std::invalid_argument("fault_kind_name: invalid FaultKind value " +
                              std::to_string(static_cast<int>(k)));
}

FaultInjector::FaultInjector(const FaultConfig& cfg, double horizon_s,
                             common::Rng rng) {
  windows_ = cfg.windows;
  for (const auto& spec : cfg.random) {
    if (spec.mean_gap_s <= 0.0)
      throw std::invalid_argument("RandomFaultSpec(" +
                                  fault_kind_name(spec.kind) +
                                  "): mean_gap_s must be > 0");
    if (spec.duration_hi_s < spec.duration_lo_s ||
        spec.magnitude_hi < spec.magnitude_lo)
      throw std::invalid_argument("RandomFaultSpec(" +
                                  fault_kind_name(spec.kind) +
                                  "): inverted lo/hi range");
    double t = rng.exponential(spec.mean_gap_s);
    while (t < horizon_s) {
      FaultWindow w;
      w.kind = spec.kind;
      w.start_s = t;
      w.duration_s = spec.duration_lo_s == spec.duration_hi_s
                         ? spec.duration_lo_s
                         : rng.uniform(spec.duration_lo_s, spec.duration_hi_s);
      w.magnitude = spec.magnitude_lo == spec.magnitude_hi
                        ? spec.magnitude_lo
                        : rng.uniform(spec.magnitude_lo, spec.magnitude_hi);
      windows_.push_back(w);
      t = w.end_s() + rng.exponential(spec.mean_gap_s);
    }
  }
  std::sort(windows_.begin(), windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

double FaultInjector::magnitude(FaultKind kind, double t) const {
  double worst = 0.0;
  for (const auto& w : windows_) {
    if (w.start_s > t) break;  // sorted by start; nothing later can contain t
    if (w.kind == kind && w.contains(t)) worst = std::max(worst, w.magnitude);
  }
  return worst;
}

}  // namespace rem::sim
