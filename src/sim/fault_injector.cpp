#include "sim/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace rem::sim {

std::string fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kSignalingLoss: return "signaling_burst_loss";
    case FaultKind::kPilotOutage: return "pilot_outage";
    case FaultKind::kProcessingStall: return "processing_stall";
    case FaultKind::kCoverageBlackout: return "coverage_blackout";
    case FaultKind::kCommandDuplication: return "command_duplication";
    case FaultKind::kBackhaulLoss: return "backhaul_loss";
    case FaultKind::kBackhaulDelay: return "backhaul_delay";
    case FaultKind::kBackhaulPartition: return "backhaul_partition";
    case FaultKind::kBsOverload: return "bs_overload";
    case FaultKind::kBsCrashRestart: return "bs_crash_restart";
    case FaultKind::kRegionOutage: return "region_outage";
    case FaultKind::kCascadeOverload: return "cascade_overload";
  }
  throw std::invalid_argument("fault_kind_name: invalid FaultKind value " +
                              std::to_string(static_cast<int>(k)));
}

FaultKind fault_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (fault_kind_name(k) == name) return k;
  }
  throw std::invalid_argument("fault_kind_from_name: unknown fault kind \"" +
                              name + "\"");
}

namespace {

// Magnitudes of these kinds live on the unit interval (probabilities, or
// the kBsOverload/kCascadeOverload utilization fractions); anything above
// 1 is a scripting mistake, not a stronger fault.
bool probability_valued(FaultKind k) {
  return k == FaultKind::kSignalingLoss ||
         k == FaultKind::kCommandDuplication ||
         k == FaultKind::kBackhaulLoss ||
         k == FaultKind::kBsOverload ||
         k == FaultKind::kCascadeOverload;
}

// Two region_outage windows provably target different domains only when
// both address a fixed domain (magnitude >= 2) and the indices differ; a
// serving-relative window (magnitude < 2) can land anywhere, so it must
// be treated as colliding with every other region window it overlaps.
bool same_region_domain(const FaultWindow& a, const FaultWindow& b) {
  if (a.magnitude < 2.0 || b.magnitude < 2.0) return true;
  return static_cast<int>(a.magnitude) - 2 ==
         static_cast<int>(b.magnitude) - 2;
}

void validate_scripted(const std::vector<FaultWindow>& windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& w = windows[i];
    const std::string ctx = "FaultWindow[" + std::to_string(i) + "](" +
                            fault_kind_name(w.kind) + ")";
    if (w.start_s < 0.0)
      throw std::invalid_argument(ctx + ": start_s " +
                                  std::to_string(w.start_s) +
                                  " must be >= 0");
    if (!(w.duration_s > 0.0))
      throw std::invalid_argument(ctx + ": duration_s " +
                                  std::to_string(w.duration_s) +
                                  " must be > 0");
    if (!(w.magnitude > 0.0))
      throw std::invalid_argument(ctx + ": magnitude " +
                                  std::to_string(w.magnitude) +
                                  " must be > 0");
    if (probability_valued(w.kind) && w.magnitude > 1.0)
      throw std::invalid_argument(ctx + ": magnitude " +
                                  std::to_string(w.magnitude) +
                                  " exceeds 1 for a probability-valued kind");
  }
  // Same-kind overlap in a *scripted* schedule is almost always a typo;
  // end_s is exclusive, so back-to-back windows do not collide. Region
  // outages are the one sanctioned exception: two windows that provably
  // hit *different* domains may overlap (independent regions can fail
  // together — that is the point of the fault), but same-domain overlap
  // is still rejected.
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const auto& a = windows[i];
      const auto& b = windows[j];
      if (a.kind != b.kind) continue;
      if (!(a.start_s < b.end_s() && b.start_s < a.end_s())) continue;
      if (a.kind == FaultKind::kRegionOutage && !same_region_domain(a, b))
        continue;
      const char* what = a.kind == FaultKind::kRegionOutage
                             ? " target the same failure domain and overlap ("
                             : " overlap (";
      throw std::invalid_argument(
          "FaultConfig: scripted windows " + std::to_string(i) + " and " +
          std::to_string(j) + " of kind " + fault_kind_name(a.kind) + what +
          "[" + std::to_string(a.start_s) + ", " + std::to_string(a.end_s()) +
          ") vs [" + std::to_string(b.start_s) + ", " +
          std::to_string(b.end_s()) + "))");
    }
  }
}

// A cascade_overload window only does anything while some BS is dead, so
// a schedule that can never kill one is a scripting mistake: reject it
// naming the first offending cascade window.
void validate_cascade_trigger(const FaultConfig& cfg) {
  const auto is_trigger = [](FaultKind k) {
    return k == FaultKind::kBsCrashRestart || k == FaultKind::kRegionOutage;
  };
  bool has_trigger = false;
  for (const auto& w : cfg.windows) has_trigger |= is_trigger(w.kind);
  for (const auto& s : cfg.random) has_trigger |= is_trigger(s.kind);
  if (has_trigger) return;
  for (std::size_t i = 0; i < cfg.windows.size(); ++i) {
    const auto& w = cfg.windows[i];
    if (w.kind != FaultKind::kCascadeOverload) continue;
    throw std::invalid_argument(
        "FaultWindow[" + std::to_string(i) + "](cascade_overload) at [" +
        std::to_string(w.start_s) + ", " + std::to_string(w.end_s()) +
        "): no bs_crash_restart or region_outage trigger anywhere in the "
        "schedule, so the cascade can never fire");
  }
  for (const auto& s : cfg.random) {
    if (s.kind != FaultKind::kCascadeOverload) continue;
    throw std::invalid_argument(
        "RandomFaultSpec(cascade_overload): no bs_crash_restart or "
        "region_outage trigger anywhere in the schedule, so the cascade "
        "can never fire");
  }
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& cfg, double horizon_s,
                             common::Rng rng) {
  if (cfg.domain_size < 1)
    throw std::invalid_argument("FaultConfig: domain_size " +
                                std::to_string(cfg.domain_size) +
                                " must be >= 1");
  if (cfg.region_stagger_s < 0.0)
    throw std::invalid_argument("FaultConfig: region_stagger_s " +
                                std::to_string(cfg.region_stagger_s) +
                                " must be >= 0");
  if (cfg.cascade_neighbor_radius < 1)
    throw std::invalid_argument("FaultConfig: cascade_neighbor_radius " +
                                std::to_string(cfg.cascade_neighbor_radius) +
                                " must be >= 1");
  domain_size_ = cfg.domain_size;
  region_stagger_s_ = cfg.region_stagger_s;
  cascade_neighbor_radius_ = cfg.cascade_neighbor_radius;
  validate_scripted(cfg.windows);
  validate_cascade_trigger(cfg);
  windows_ = cfg.windows;
  for (const auto& spec : cfg.random) {
    if (spec.mean_gap_s <= 0.0)
      throw std::invalid_argument("RandomFaultSpec(" +
                                  fault_kind_name(spec.kind) +
                                  "): mean_gap_s must be > 0");
    if (spec.duration_hi_s < spec.duration_lo_s ||
        spec.magnitude_hi < spec.magnitude_lo)
      throw std::invalid_argument("RandomFaultSpec(" +
                                  fault_kind_name(spec.kind) +
                                  "): inverted lo/hi range");
    double t = rng.exponential(spec.mean_gap_s);
    while (t < horizon_s) {
      FaultWindow w;
      w.kind = spec.kind;
      w.start_s = t;
      w.duration_s = spec.duration_lo_s == spec.duration_hi_s
                         ? spec.duration_lo_s
                         : rng.uniform(spec.duration_lo_s, spec.duration_hi_s);
      w.magnitude = spec.magnitude_lo == spec.magnitude_hi
                        ? spec.magnitude_lo
                        : rng.uniform(spec.magnitude_lo, spec.magnitude_hi);
      windows_.push_back(w);
      t = w.end_s() + rng.exponential(spec.mean_gap_s);
    }
  }
  std::sort(windows_.begin(), windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

double FaultInjector::magnitude(FaultKind kind, double t) const {
  double worst = 0.0;
  for (const auto& w : windows_) {
    if (w.start_s > t) break;  // sorted by start; nothing later can contain t
    if (w.kind == kind && w.contains(t)) worst = std::max(worst, w.magnitude);
  }
  return worst;
}

}  // namespace rem::sim
