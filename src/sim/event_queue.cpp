#include "sim/event_queue.hpp"

namespace rem::sim {

std::uint64_t EventQueue::push(Event e) {
  e.seq = next_seq_++;
  live_.emplace(e.seq, e);
  heap_.push(e);
  return e.seq;
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && live_.find(heap_.top().seq) == live_.end())
    heap_.pop();
}

std::optional<Event> EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  const Event e = heap_.top();
  heap_.pop();
  live_.erase(e.seq);
  return e;
}

std::optional<Event> EventQueue::peek() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  return heap_.top();
}

bool EventQueue::cancel(std::uint64_t seq) { return live_.erase(seq) > 0; }

std::uint64_t EventQueue::reschedule(std::uint64_t seq, double new_t_s) {
  const auto it = live_.find(seq);
  if (it == live_.end()) return 0;
  Event e = it->second;
  live_.erase(it);
  e.t_s = new_t_s;
  return push(e);
}

}  // namespace rem::sim
