#include "sim/simulator.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"
#include "core/admission.hpp"
#include "core/circuit_breaker.hpp"
#include "sim/event_queue.hpp"
#include "sim/fleet.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace rem::sim {
namespace {

/// Attenuation applied to every leg of a crashed BS: deep enough that the
/// cell is unconnectable and unmeasurable for the whole window.
constexpr double kCrashPenaltyDb = 300.0;

/// Memory window for lost-signaling evidence in RLF classification.
constexpr double kLossMemory_s = 1.5;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// One UE's in-flight handover attempt (decision made, not yet executed).
struct PendingHandover {
  std::size_t target_idx = 0;
  double report_due_s = 0.0;     ///< feedback arrives at the BS
  double command_due_s = 0.0;    ///< command reaches the UE (if set)
  bool report_delivered = false;
  bool report_lost = false;      ///< retransmissions exhausted
  bool command_lost = false;
  int report_retries = 0;
  double decided_at_s = 0.0;
  // Backhaul preparation state (only used when cfg.backhaul.enabled):
  // the BS must get a HANDOVER REQUEST acked by the target before the
  // HO command can be sent to the UE.
  int fallback_idx = -1;         ///< second-best target from the decision
  bool used_fallback = false;
  bool prep_requested = false;   ///< current request is in flight
  bool prep_acked = false;
  bool prep_failed = false;      ///< retries + fallback exhausted
  int prep_retries = 0;
  std::uint64_t prep_seq = 0;    ///< seq of the outstanding request
  double prep_due_s = 0.0;       ///< when to (re-)send the request
  double prep_sent_s = 0.0;      ///< last request send time (RTT base)
  double prep_deadline_s = 0.0;  ///< timeout for the outstanding request
  /// Admission-control backoff (core/admission.hpp): busy rejects
  /// absorbed by waiting out the target's hint, per attempt.
  int admission_retries = 0;
  /// The serving BS shed this attempt's RRC decision on a full queue;
  /// the attempt is dead and the manager may re-decide.
  bool decision_shed = false;
};

/// Handover execution in flight: detach + random access on the target.
struct Execution {
  std::size_t target_idx = 0;
  std::size_t prepared_idx = 0;  ///< genuine prepared target (== target
                                 ///  unless a stale duplicate executed)
  double started_s = 0.0;
};

/// Everything one UE owns: its manager, its RNG stream, its kinematics,
/// and the full per-UE slice of the simulator state that the seed's
/// single-UE loop held in locals. Shared resources (BsStation banks, the
/// backhaul transport, the fault schedule, the crash window) live on the
/// FleetEngine and are genuinely contended between UEs.
struct UeContext {
  int id = 0;
  MobilityManager* manager = nullptr;
  common::Rng* rng = nullptr;  ///< this UE's radio/signaling draw stream
  double speed_kmh = 0.0;
  double speed_mps = 0.0;
  double start_pos_m = 0.0;

  SimStats stats;
  double pos = 0.0;
  int serving = 0;
  /// Per-(UE, cell) context validity: a BS crash marks the victim's entry
  /// for every UE; camping or completing a handover there restores it for
  /// that UE only.
  std::vector<bool> context_lost;
  std::optional<PendingHandover> pending;
  std::optional<Execution> exec;
  // RLF detection state: consecutive out-of-sync ticks arm T310;
  // consecutive in-sync ticks during T310 disarm it.
  int oos_count = 0;
  int is_count = 0;
  double t310_started = -1.0;
  double outage_started = -1.0;      ///< RLF time (in outage if >= 0)
  double outage_reestablish_s = 0.0;
  int preferred_target = -1;         ///< prepared target for T304 fallback
  double last_report_loss_t = -1e9;  ///< recent retransmit-exhausted report
  double last_cmd_loss_t = -1e9;     ///< recent lost handover command
  int last_cmd_target = -1;          ///< previous delivered command's target
  double suppress_until = 0.0;       ///< post-handover decision blanking
  std::deque<std::pair<double, int>> recent_serving;  ///< (time, cell idx)
  std::vector<double> ho_times;
  bool current_loop_episode = false;
  double throughput_sum_bps = 0.0;
  std::size_t ticks = 0;
  std::size_t outage_ticks = 0;
  // Pilot-outage staleness: last fresh delay-Doppler SNR per cell, and
  // when pilots were last fresh.
  std::vector<double> last_dd;
  double pilot_fresh_t = 0.0;
  bool degraded_prev = false;
  /// Rolling 5 s window of serving SNR for the Fig. 2b analysis.
  std::deque<std::pair<double, double>> snr_window;  ///< (t, snr)
  double cur_snr = kNaN;
  // Context-fetch state during RLF re-establishment (backhaul only).
  bool ctx_pending = false;
  bool ctx_ready = false;
  bool ctx_failed = false;
  std::uint64_t ctx_seq = 0;
  int ctx_retries = 0;
  double ctx_deadline_s = 0.0;
  int ctx_target = -1;
  double ctx_failed_camp_s = 0.0;
  /// Per-target circuit breakers (one per cell), empty when
  /// SimConfig::breaker_trip_k == 0. Source-side state, so per-UE.
  std::vector<core::CircuitBreaker> breakers;
};

class FleetEngine;

/// Fires the per-tick observer snapshot when the enclosing UE step ends,
/// whichever early-return path it takes, so an attached observer sees
/// exactly one TickView per UE per simulated tick.
struct TickEmit {
  FleetEngine* eng;  ///< nullptr when no observer is attached
  UeContext* ue;
  double t;
  ~TickEmit();
};

/// The simulation core shared by both drivers and both run modes: one
/// world (fault schedule, BsStation banks, backhaul transport, crash
/// window) carrying N >= 1 UEs. Each simulated instant unfolds as one
/// shared_step() (world state, backhaul arrivals, BS completions) followed
/// by one ue_step() per UE in UE-id order — exactly the seed's single-UE
/// tick body split at the world/UE boundary, preserving every operation
/// and RNG draw in order, so a single-UE run is bit-identical to the
/// pre-refactor tick loop on either driver.
class FleetEngine {
 public:
  FleetEngine(const RadioEnv& env, const SimConfig& cfg,
              const phy::BlerModel& bler, common::Rng& rng,
              const std::function<bool(int, int)>& pair_conflicts,
              bool fleet_mode)
      : env_(env),
        cfg_(cfg),
        bler_(bler),
        pair_conflicts_(pair_conflicts),
        fleet_mode_(fleet_mode),
        use_net_(cfg.backhaul.enabled),
        use_cap_(cfg.bs_capacity.enabled) {
    // Materialize the fault schedule. The no-fault path must not fork the
    // RNG, so a fault-free config leaves every downstream draw untouched.
    faults_ = cfg_.faults.empty()
                  ? FaultInjector()
                  : FaultInjector(cfg_.faults, cfg_.duration_s, rng.fork());
    // Inter-BS backhaul transport. Owns a forked RNG stream so
    // message-level draws (loss, jitter, reordering) never perturb the
    // radio-leg sequence.
    if (use_net_) netw_.emplace(cfg_.backhaul, rng.fork());
    // Per-BS control-plane capacity: one station (processing slots +
    // bounded FIFO signaling queue) per cell. Deterministic service
    // times, no RNG.
    if (use_cap_) {
      validate(cfg_.bs_capacity);
      stations_.assign(env_.cells().size(),
                       BsStation(cfg_.bs_capacity.slots,
                                 cfg_.bs_capacity.queue_capacity));
    }
    dead_.assign(env_.cells().size(), 0);
    // Load advertisement needs both a wire to piggyback on and a capacity
    // model to measure: silently inert otherwise.
    load_ads_ = use_net_ && use_cap_ && cfg_.load_ad_staleness_s > 0.0;
    if (load_ads_) load_ad_.assign(env_.cells().size(), {-1.0, -1.0});
  }

  /// Register the next UE (ids assigned in call order) and perform its
  /// initial attach: strongest covering cell at its start position.
  void add_ue(MobilityManager* manager, common::Rng* rng, double speed_kmh,
              double start_pos_m) {
    UeContext u;
    u.id = static_cast<int>(ues_.size());
    u.manager = manager;
    u.rng = rng;
    u.speed_kmh = speed_kmh;
    u.speed_mps = common::kmh_to_mps(speed_kmh);
    u.start_pos_m = start_pos_m;
    u.pos = start_pos_m;
    u.context_lost.assign(env_.cells().size(), false);
    if (cfg_.breaker_trip_k > 0)
      u.breakers.assign(env_.cells().size(),
                        core::CircuitBreaker(cfg_.breaker_trip_k,
                                             cfg_.breaker_cooldown_s));
    u.last_dd.assign(env_.cells().size(), kNaN);
    u.outage_reestablish_s = cfg_.reestablish_s;
    int serving = env_.best_cell(u.pos, cfg_.min_coverage_rsrp_dbm);
    if (serving < 0) serving = 0;
    u.serving = serving;
    ues_.push_back(std::move(u));
    manager->on_serving_changed(0.0, static_cast<std::size_t>(serving));
  }

  /// The seed's for-loop driver: one shared step plus one step per UE at
  /// each accumulated tick time.
  void run_tick_loop() {
    const double dt = cfg_.tick_s;
    for (double t = 0.0; t < cfg_.duration_s; t += dt) {
      shared_step(t);
      for (auto& u : ues_) ue_step(t, u);
    }
    finish();
  }

  // Event taxonomy for the discrete-event driver. The world step runs at
  // priority 0, UE k's step at priority 1 + k, so one simulated instant
  // always dispatches as "world, UE 0, UE 1, ...".
  enum : int { kEvWorldStep = 0, kEvUeStep = 1 };
  static constexpr int kWorldPriority = 0;
  static constexpr int kUePriorityBase = 1;

  /// Discrete-event driver: the same step functions scheduled through
  /// sim::EventQueue. Each handler re-schedules itself at its own t + dt,
  /// replicating the tick loop's `t += dt` float accumulation bit for bit.
  void run_event_queue() {
    const double dt = cfg_.tick_s;
    EventQueue queue;
    if (cfg_.duration_s > 0.0 && dt > 0.0) {
      queue.push(Event{0.0, kWorldPriority, 0, kEvWorldStep, -1});
      for (const auto& u : ues_)
        queue.push(Event{0.0, kUePriorityBase + u.id, 0, kEvUeStep, u.id});
    }
    while (auto e = queue.pop()) process(queue, *e);
    finish();
  }

  /// Dispatch one event and schedule its successor while the horizon
  /// allows (the same `t < duration` guard as the tick loop).
  void process(EventQueue& queue, const Event& e) {
    const double dt = cfg_.tick_s;
    switch (e.kind) {
      case kEvWorldStep:
        shared_step(e.t_s);
        if (e.t_s + dt < cfg_.duration_s)
          queue.push(Event{e.t_s + dt, kWorldPriority, 0, kEvWorldStep, -1});
        break;
      case kEvUeStep:
        ue_step(e.t_s, ue_of(e.arg));
        if (e.t_s + dt < cfg_.duration_s)
          queue.push(Event{e.t_s + dt, kUePriorityBase + e.arg, 0,
                           kEvUeStep, e.arg});
        break;
      default:
        throw std::logic_error("FleetEngine: unknown event kind " +
                               std::to_string(e.kind));
    }
  }

  /// Move the per-UE stats out (indexed by UE id). Call once, after a run.
  std::vector<SimStats> take_stats() {
    std::vector<SimStats> out;
    out.reserve(ues_.size());
    for (auto& u : ues_) out.push_back(std::move(u.stats));
    return out;
  }

  /// End-of-tick observer snapshot (fired by TickEmit). Reads only — no
  /// RNG draws — so attaching an observer never changes a run's results.
  void emit_tick(UeContext& u, double t_now) {
    focus(u.id);
    TickView v;
    v.t_s = t_now;
    v.ue = u.id;
    v.serving = u.serving;
    v.serving_snr_db = u.cur_snr;
    v.in_outage = u.outage_started >= 0.0;
    v.executing = u.exec.has_value();
    v.t310_running = u.t310_started >= 0.0;
    v.oos_count = u.oos_count;
    v.is_count = u.is_count;
    v.report_pending =
        u.pending && !u.pending->report_delivered && !u.pending->report_lost;
    v.prep_pending = use_net_ && u.pending && u.pending->report_delivered &&
                     !u.pending->prep_acked && !u.pending->prep_failed &&
                     !u.pending->command_lost && !u.pending->decision_shed;
    v.command_pending = u.pending &&
                        (use_net_ ? u.pending->prep_acked
                                  : u.pending->report_delivered) &&
                        !u.pending->command_lost && !u.pending->decision_shed;
    v.pilot_fault = faults_.active(FaultKind::kPilotOutage, t_now);
    v.blackout = faults_.active(FaultKind::kCoverageBlackout, t_now);
    v.estimate_age_s = v.pilot_fault ? t_now - u.pilot_fresh_t : 0.0;
    v.degraded = u.degraded_prev;
    if (use_cap_) {
      for (const auto& st : stations_)
        v.bs_queue_peak = std::max(v.bs_queue_peak, st.occupancy(t_now));
    }
    v.crashed_cells = dead_count_;
    for (const auto& br : u.breakers)
      if (br.state() == core::BreakerState::kOpen) ++v.breakers_open;
    cfg_.observer->on_tick(v);
  }

 private:
  UeContext& ue_of(int ue) {
    if (ue < 0 || ue >= static_cast<int>(ues_.size()))
      throw std::logic_error(
          "FleetEngine: work attributed to unknown UE " + std::to_string(ue));
    return ues_[static_cast<std::size_t>(ue)];
  }

  /// Fleet runs announce the attributed UE to the observer whenever it
  /// changes; single-UE runs never fire on_ue (legacy protocol).
  void focus(int ue) {
    if (!fleet_mode_ || ue == cur_obs_ue_) return;
    cur_obs_ue_ = ue;
    cfg_.observer->on_ue(ue);
  }

  void log_event(UeContext& u, double t, EventKind kind, int srv, int tgt,
                 double snr) {
    if (!cfg_.record_events && !cfg_.observer) return;
    const SignalingEvent e{t, kind, srv, tgt, snr, u.id};
    if (cfg_.observer) {
      focus(u.id);
      cfg_.observer->on_event(e);
    }
    if (cfg_.record_events) u.stats.events.push_back(e);
  }

  phy::DopplerRegime regime(const UeContext& u) const {
    return u.speed_kmh >= 150.0 ? phy::DopplerRegime::kHigh
                                : phy::DopplerRegime::kLow;
  }

  bool deliver(UeContext& u, double t, double snr_db, int attempts,
               phy::Waveform w) {
    // A signaling-loss fault raises the per-attempt loss probability floor.
    const double floor = faults_.magnitude(FaultKind::kSignalingLoss, t);
    for (int a = 0; a < attempts; ++a) {
      const double p =
          std::min(1.0, std::max(bler_.bler(w, regime(u), snr_db), floor));
      if (!u.rng->bernoulli(p)) return true;
    }
    return false;
  }

  /// Attenuation making a crashed cell unconnectable and unmeasurable.
  /// Covers both single-cell crash windows and region-outage members.
  double crash_db(std::size_t idx) const {
    return dead_[idx] != 0 ? kCrashPenaltyDb : 0.0;
  }

  bool is_dead(int cell) const {
    return cell >= 0 && cell < static_cast<int>(dead_.size()) &&
           dead_[static_cast<std::size_t>(cell)] != 0;
  }

  void record_failure(UeContext& u, double t, FailureCause cause) {
    // An RLF abandons any in-flight preparation. A half-open probe that
    // can no longer be answered must resolve as a failure here, or the
    // breaker would wedge half-open with its probe slot taken forever.
    if (!u.breakers.empty() && u.pending && u.pending->prep_requested &&
        !u.pending->prep_acked && !u.pending->prep_failed &&
        u.breakers[u.pending->target_idx].probe_in_flight())
      breaker_fail(u, t, u.pending->target_idx);
    ++u.stats.failures;
    ++u.stats.failures_by_cause[cause];
    // Dump the pre-failure SNR window, decimated to ~10 samples.
    const std::size_t stride =
        std::max<std::size_t>(u.snr_window.size() / 10, 1);
    for (std::size_t i = 0; i < u.snr_window.size(); i += stride)
      u.stats.pre_failure_snrs_db.push_back(u.snr_window[i].second);
    u.snr_window.clear();
    u.outage_started = t;
    u.outage_reestablish_s = cfg_.reestablish_s;
    u.preferred_target = -1;
    u.pending.reset();
    u.oos_count = u.is_count = 0;
    u.t310_started = -1.0;
    u.ctx_pending = u.ctx_ready = u.ctx_failed = false;
    u.ctx_target = -1;
  }

  void camp_on(UeContext& u, double t, int target) {
    u.stats.outage_durations_s.push_back(t - u.outage_started);
    u.serving = target;
    // Camping (re-)establishes the UE context at this BS.
    u.context_lost[static_cast<std::size_t>(target)] = false;
    u.outage_started = -1.0;
    u.preferred_target = -1;
    u.ctx_pending = u.ctx_ready = u.ctx_failed = false;
    u.ctx_target = -1;
    u.outage_reestablish_s = cfg_.reestablish_s;
    u.last_report_loss_t = u.last_cmd_loss_t = -1e9;
    u.manager->on_serving_changed(t, static_cast<std::size_t>(u.serving));
    log_event(u, t, EventKind::kReestablished, u.serving, -1, 0.0);
    u.recent_serving.push_back({t, u.serving});
  }

  /// Lazily saturate a station with synthetic other-UE jobs up to the
  /// overload window's target occupancy, right before a UE job is offered
  /// to it. Deterministic: occupancy targets and service times are fixed.
  void top_up(double t, std::size_t cell) {
    if (overload_u_ <= 0.0 || dead_[cell] != 0) return;
    const double cap = static_cast<double>(cfg_.bs_capacity.slots) +
                       static_cast<double>(cfg_.bs_capacity.queue_capacity);
    const int target_occ = static_cast<int>(std::lround(overload_u_ * cap));
    auto& st = stations_[cell];
    while (st.occupancy(t) < target_occ) {
      if (!st.submit(t, BsJobKind::kBackground,
                     cfg_.bs_capacity.background_service_s))
        break;
    }
  }

  void bh_send(double t, net::BackhaulMessage m) {
    // A dead BS can neither send nor receive; like partitions, crash
    // drops consume no random draws.
    if (dead_count_ > 0 && (is_dead(m.src_cell) || is_dead(m.dst_cell))) {
      ++ue_of(m.ue).stats.bs_crash_dropped_msgs;
      return;
    }
    // Piggybacked load advertisement: every frame a BS originates carries
    // its control-plane utilization at send time (stale-bounded at use).
    if (load_ads_ && m.src_cell >= 0 &&
        m.src_cell < static_cast<int>(stations_.size()))
      m.load = stations_[static_cast<std::size_t>(m.src_cell)].load(t);
    netw_->send(t, m, bh_loss_, bh_delay_, bh_partition_);
  }

  /// One preparation failure / busy-reject toward `target` feeds that
  /// target's circuit breaker; logs the trip when it opens.
  void breaker_fail(UeContext& u, double t, std::size_t target) {
    if (u.breakers.empty()) return;
    if (u.breakers[target].record_failure(t)) {
      ++u.stats.breaker_trips;
      log_event(u, t, EventKind::kBreakerTrip, u.serving,
                static_cast<int>(target), 0.0);
    }
  }

  /// Breaker gate in front of every first send of a HANDOVER REQUEST
  /// (retries of an in-flight request are the same logical preparation
  /// and are never re-gated). Returns false while the target's breaker
  /// refuses; the pending attempt simply waits, so the cool-down bounds
  /// the stall. The first admission after the cool-down is the half-open
  /// probe and is logged as such.
  bool breaker_allows_prep(UeContext& u, double t) {
    if (u.breakers.empty()) return true;
    auto& br = u.breakers[u.pending->target_idx];
    const bool was_open = br.state() == core::BreakerState::kOpen;
    if (!br.allow(t)) return false;
    if (was_open) {
      ++u.stats.breaker_probes;
      log_event(u, t, EventKind::kBreakerProbe, u.serving,
                static_cast<int>(u.pending->target_idx), 0.0);
    }
    return true;
  }

  /// Preparation hit a terminal condition (reject / timeout exhaustion):
  /// swing to the decision's fallback target once, then give up. A failed
  /// preparation leaves the UE on the dying serving link, so an eventual
  /// RLF classifies like a lost command (the network decided, the UE
  /// never heard).
  void prep_fallback_or_fail(UeContext& u, double now) {
    if (u.pending->fallback_idx >= 0 && !u.pending->used_fallback &&
        u.pending->fallback_idx != static_cast<int>(u.pending->target_idx)) {
      u.pending->used_fallback = true;
      u.pending->target_idx =
          static_cast<std::size_t>(u.pending->fallback_idx);
      u.pending->prep_retries = 0;
      u.pending->prep_requested = false;
      u.pending->prep_due_s = now;
      ++u.stats.prep_fallbacks;
      log_event(u, now, EventKind::kPrepFallback, u.serving,
                static_cast<int>(u.pending->target_idx), 0.0);
    } else {
      u.pending->prep_failed = true;
      ++u.stats.prep_failures;
      u.last_cmd_loss_t = now;
      log_event(u, now, EventKind::kPrepFailed, u.serving,
                static_cast<int>(u.pending->target_idx), 0.0);
    }
  }

  /// Builds the admission reply for a HANDOVER REQUEST: accept when the
  /// target still covers the owning UE's position; echo the transaction
  /// id and the UE id.
  net::BackhaulMessage admission_reply(const net::BackhaulMessage& m) {
    const auto tgt = static_cast<std::size_t>(m.target_cell);
    const double rsrp =
        env_.mean_rsrp_dbm(tgt, ue_of(m.ue).pos) - blackout_db_ - crash_db(tgt);
    net::BackhaulMessage reply;
    reply.seq = m.seq;
    reply.type = rsrp >= cfg_.min_coverage_rsrp_dbm
                     ? net::MsgType::kHandoverAck
                     : net::MsgType::kHandoverReject;
    reply.src_cell = m.dst_cell;
    reply.dst_cell = m.src_cell;
    reply.target_cell = m.target_cell;
    reply.ue = m.ue;
    reply.payload = rsrp;
    return reply;
  }

  void poll_backhaul(double t) {
    for (const auto& m : netw_->poll(t)) {
      // Frames addressed to (or claiming to come from) a dead BS are
      // dropped at delivery — defensive: crash open flushed the wire.
      if (dead_count_ > 0 && (is_dead(m.dst_cell) || is_dead(m.src_cell))) {
        ++ue_of(m.ue).stats.bs_crash_dropped_msgs;
        continue;
      }
      UeContext& u = ue_of(m.ue);
      if (load_ads_ && m.load >= 0.0 && m.src_cell >= 0 &&
          m.src_cell < static_cast<int>(load_ad_.size())) {
        load_ad_[static_cast<std::size_t>(m.src_cell)] = {m.load, t};
        ++u.stats.load_ads_received;
      }
      switch (m.type) {
        case net::MsgType::kHandoverRequest: {
          if (!use_cap_) {
            bh_send(t, admission_reply(m));
            break;
          }
          // Capacity model: admission control first — an over-threshold
          // target refuses outright with a backoff hint (the source FSM
          // pivots to its fallback or waits the hint out). Below the
          // threshold the request takes a processing slot and the
          // accept/reject verdict goes out when the job completes.
          const auto tgt = static_cast<std::size_t>(m.target_cell);
          top_up(t, tgt);
          auto& st = stations_[tgt];
          if (st.load(t) >= cfg_.bs_capacity.admission_load_threshold) {
            net::BackhaulMessage reply;
            reply.seq = m.seq;
            reply.type = net::MsgType::kHandoverRejectBusy;
            reply.src_cell = m.dst_cell;
            reply.dst_cell = m.src_cell;
            reply.target_cell = m.target_cell;
            reply.ue = m.ue;
            reply.payload = cfg_.bs_capacity.reject_backoff_hint_s;
            bh_send(t, reply);
            break;
          }
          ++u.stats.bs_jobs_submitted;
          if (!st.submit(t, BsJobKind::kPrepAdmission,
                         cfg_.bs_capacity.prep_service_s * svc_inflation_, m,
                         m.ue)) {
            // Queue full under threshold can only happen with extreme
            // configs; the source's prep timer recovers the attempt.
            ++u.stats.bs_queue_shed;
            log_event(u, t, EventKind::kBsQueueShed, u.serving,
                      static_cast<int>(tgt), st.load(t));
          }
          break;
        }
        case net::MsgType::kHandoverAck: {
          const bool first = ack_seen_.accept(m.seq);
          if (first && u.pending && !u.exec && u.pending->prep_requested &&
              !u.pending->prep_acked && !u.pending->prep_failed &&
              m.seq == u.pending->prep_seq) {
            u.pending->prep_acked = true;
            ++u.stats.prep_acks;
            const double rtt = t - u.pending->prep_sent_s;
            u.stats.prep_rtt_sum_s += rtt;
            u.pending->command_due_s = t + cfg_.retry_spacing_s;
            log_event(u, t, EventKind::kPrepAck, u.serving,
                      static_cast<int>(u.pending->target_idx), rtt);
            if (!u.breakers.empty() &&
                u.breakers[u.pending->target_idx].record_success()) {
              ++u.stats.breaker_closes;
              log_event(u, t, EventKind::kBreakerClose, u.serving,
                        static_cast<int>(u.pending->target_idx), 0.0);
            }
          }
          break;
        }
        case net::MsgType::kHandoverReject: {
          const bool first = ack_seen_.accept(m.seq);
          if (first && u.pending && !u.exec && u.pending->prep_requested &&
              !u.pending->prep_acked && !u.pending->prep_failed &&
              m.seq == u.pending->prep_seq) {
            ++u.stats.prep_rejects;
            log_event(u, t, EventKind::kPrepReject, u.serving,
                      static_cast<int>(u.pending->target_idx), 0.0);
            breaker_fail(u, t, u.pending->target_idx);
            prep_fallback_or_fail(u, t);
          }
          break;
        }
        case net::MsgType::kHandoverRejectBusy: {
          // Admission control said no: the target's signaling queue is
          // over threshold. The source FSM (core/admission.hpp) pivots
          // to the Theorem-2 fallback target if one is still fresh,
          // otherwise waits out the carried backoff hint for a bounded
          // number of re-attempts before failing the preparation.
          const bool first = ack_seen_.accept(m.seq);
          if (first && u.pending && !u.exec && u.pending->prep_requested &&
              !u.pending->prep_acked && !u.pending->prep_failed &&
              m.seq == u.pending->prep_seq) {
            ++u.stats.admission_rejects;
            const double hint = std::max(0.0, m.payload);
            log_event(u, t, EventKind::kAdmissionReject, u.serving,
                      static_cast<int>(u.pending->target_idx), hint);
            breaker_fail(u, t, u.pending->target_idx);
            core::AdmissionBackoffFsm fsm(
                cfg_.bs_capacity.admission_max_retries,
                u.pending->admission_retries);
            const bool fallback_available =
                u.pending->fallback_idx >= 0 && !u.pending->used_fallback &&
                u.pending->fallback_idx !=
                    static_cast<int>(u.pending->target_idx);
            switch (fsm.decide(fallback_available)) {
              case core::AdmissionAction::kFallback:
                prep_fallback_or_fail(u, t);
                break;
              case core::AdmissionAction::kBackoff: {
                u.pending->admission_retries = fsm.retries();
                ++u.stats.admission_backoff_retries;
                u.pending->prep_requested = false;
                u.pending->prep_retries = 0;
                double wait = hint;
                if (cfg_.storm_jitter_frac > 0.0) {
                  // Storm damping: per-UE jitter (from the UE's own
                  // stream) desynchronizes a displaced fleet's retries
                  // instead of hammering the next BS in lockstep. Off by
                  // default and draw-free when off.
                  wait = hint *
                         (1.0 + u.rng->uniform(0.0, cfg_.storm_jitter_frac));
                  ++u.stats.storm_jitter_applied;
                }
                u.pending->prep_due_s = t + wait;
                log_event(u, t, EventKind::kAdmissionRetry, u.serving,
                          static_cast<int>(u.pending->target_idx), wait);
                break;
              }
              case core::AdmissionAction::kFail:
                prep_fallback_or_fail(u, t);  // no fallback: prep failed
                break;
            }
          }
          break;
        }
        case net::MsgType::kContextFetch: {
          // The old serving BS looks the UE context up — through its
          // capacity station when the model is on — and answers with
          // the context, or with a stale indication if it crashed and
          // lost the context since (restart recovery).
          const int holder = m.dst_cell;
          const bool stale =
              holder >= 0 &&
              holder < static_cast<int>(u.context_lost.size()) &&
              u.context_lost[static_cast<std::size_t>(holder)];
          if (use_cap_ && holder >= 0 &&
              holder < static_cast<int>(stations_.size())) {
            const auto h = static_cast<std::size_t>(holder);
            top_up(t, h);
            ++u.stats.bs_jobs_submitted;
            if (!stations_[h].submit(
                    t, BsJobKind::kContextLookup,
                    cfg_.bs_capacity.ctx_service_s * svc_inflation_, m,
                    m.ue)) {
              ++u.stats.bs_queue_shed;
              log_event(u, t, EventKind::kBsQueueShed, u.serving, holder,
                        stations_[h].load(t));
            }
            break;  // reply goes out when the lookup job completes
          }
          net::BackhaulMessage reply;
          reply.seq = m.seq;
          reply.type = stale ? net::MsgType::kContextStale
                             : net::MsgType::kContextResponse;
          reply.src_cell = m.dst_cell;
          reply.dst_cell = m.src_cell;
          reply.target_cell = m.target_cell;
          reply.ue = m.ue;
          bh_send(t, reply);
          break;
        }
        case net::MsgType::kContextResponse: {
          if (u.outage_started >= 0.0 && u.ctx_pending && !u.ctx_ready &&
              !u.ctx_failed && m.seq == u.ctx_seq &&
              ctx_seen_.accept(m.seq)) {
            u.ctx_ready = true;
          }
          break;
        }
        case net::MsgType::kContextStale: {
          // The context holder restarted and lost the UE context: give
          // up on the fetch and take the degraded context-less
          // re-establishment path (same penalty as fetch exhaustion).
          if (u.outage_started >= 0.0 && u.ctx_pending && !u.ctx_ready &&
              !u.ctx_failed && m.seq == u.ctx_seq &&
              ctx_seen_.accept(m.seq)) {
            ++u.stats.stale_context_responses;
            u.ctx_failed = true;
            u.ctx_failed_camp_s = t + cfg_.ctx_degraded_penalty_s;
            log_event(u, t, EventKind::kContextStale, u.serving, m.src_cell,
                      0.0);
          }
          break;
        }
      }
    }
  }

  /// BS job completions: fire the continuation of each serviced signaling
  /// job (admission verdicts, context lookups). Decision jobs resolved
  /// their timing at submit; background jobs are not UE-visible work.
  /// Runs even with the backhaul model off — decision jobs exist anyway.
  void run_completions(double t) {
    for (std::size_t si = 0; si < stations_.size(); ++si) {
      for (const auto& job : stations_[si].take_completed(t)) {
        if (job.kind == BsJobKind::kBackground) continue;
        UeContext& u = ue_of(job.ue);
        ++u.stats.bs_jobs_served;
        const double wait = job.start_s - job.submit_s;
        if (wait > 0.0) ++u.stats.bs_jobs_queued;
        u.stats.bs_queue_wait_sum_s += wait;
        log_event(u, t, EventKind::kBsJobDone, u.serving,
                  static_cast<int>(si), wait);
        if (job.kind == BsJobKind::kPrepAdmission) {
          bh_send(t, admission_reply(job.msg));
        } else if (job.kind == BsJobKind::kContextLookup) {
          net::BackhaulMessage reply;
          reply.seq = job.msg.seq;
          reply.type = u.context_lost[si] ? net::MsgType::kContextStale
                                          : net::MsgType::kContextResponse;
          reply.src_cell = job.msg.dst_cell;
          reply.dst_cell = job.msg.src_cell;
          reply.target_cell = job.msg.target_cell;
          reply.ue = job.msg.ue;
          bh_send(t, reply);
        }
      }
    }
  }

  /// Kill one BS: radio silent, queued signaling flushed, in-flight wire
  /// traffic dropped, every UE's context there lost. Shared by the
  /// single-cell crash window and region-outage members; returns false
  /// when the cell was already dead (nothing happened).
  bool kill_cell(double t, int cell, double mag) {
    const auto ci = static_cast<std::size_t>(cell);
    if (dead_[ci] != 0) return false;
    dead_[ci] = 1;
    ++dead_count_;
    for (auto& u : ues_) {
      ++u.stats.bs_crashes;
      u.context_lost[ci] = true;
    }
    if (use_cap_) {
      for (const auto& job : stations_[ci].flush_jobs())
        ++ue_of(job.ue).stats.bs_jobs_flushed;
    }
    if (use_net_) netw_->drop_in_flight_for_cell(cell);
    for (auto& u : ues_)
      log_event(u, t, EventKind::kBsCrash, u.serving, cell, mag);
    return true;
  }

  /// The BS rejoins stateless: prepared UE contexts stay lost until
  /// re-established (context_lost drives stale-context replies).
  void revive_cell(double t, int cell) {
    for (auto& u : ues_)
      log_event(u, t, EventKind::kBsRestart, u.serving, cell, 0.0);
    dead_[static_cast<std::size_t>(cell)] = 0;
    --dead_count_;
  }

  /// World phase of one simulated instant: kinematics, fault-window
  /// edges, the crash window, overload/backhaul fault values, backhaul
  /// arrivals, and BS job completions — everything the seed's tick body
  /// did before touching per-UE radio state.
  void shared_step(double t) {
    for (auto& u : ues_) {
      u.pos = u.start_pos_m + u.speed_mps * t;
      ++u.ticks;
      u.cur_snr = kNaN;
    }

    // ---- Fault-window transitions (event log / observer only) ----
    if ((cfg_.record_events || cfg_.observer) && faults_.any()) {
      for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const bool act = faults_.active(kind, t);
        if (act != fault_was_active_[k]) {
          for (auto& u : ues_)
            log_event(u, t,
                      act ? EventKind::kFaultStart : EventKind::kFaultEnd,
                      u.serving, static_cast<int>(k),
                      faults_.magnitude(kind, t));
          fault_was_active_[k] = act;
        }
      }
    }

    blackout_ = faults_.active(FaultKind::kCoverageBlackout, t);
    blackout_db_ = faults_.magnitude(FaultKind::kCoverageBlackout, t);

    // ---- BS crash-restart window edges ----
    const double crash_mag = faults_.magnitude(FaultKind::kBsCrashRestart, t);
    if (crash_mag > 0.0 && crashed_cell_ < 0) {
      // Victim: magnitudes below 2 kill the reference UE's serving BS at
      // window open; 2 + k kills cell index k (lets tests crash a prep
      // target). The reference UE is UE 0, matching the single-UE seed.
      int victim = crash_mag >= 2.0 ? static_cast<int>(crash_mag) - 2
                                    : ues_.front().serving;
      if (victim < 0 || victim >= static_cast<int>(env_.cells().size()))
        victim = ues_.front().serving;
      crashed_cell_ = victim;
      // The crash is a global window: every UE observes it (and loses its
      // context at the victim), so each per-UE checker sees the edge.
      // A victim a region outage already killed stays that window's: the
      // crash window then owns nothing and restarts nothing.
      crash_owns_cell_ = kill_cell(t, victim, crash_mag);
    } else if (crash_mag <= 0.0 && crashed_cell_ >= 0) {
      // Restart: the BS rejoins stateless — queue already flushed at
      // crash, receive-side dedup gone (SequenceTracker reset).
      if (crash_owns_cell_) revive_cell(t, crashed_cell_);
      ack_seen_.reset();
      ctx_seen_.reset();
      crashed_cell_ = -1;
      crash_owns_cell_ = false;
    }

    // ---- Region outage: staggered failure-domain blackout ----
    const double region_mag = faults_.magnitude(FaultKind::kRegionOutage, t);
    if (region_mag > 0.0) {
      const int ds = faults_.domain_size();
      const int ncells = static_cast<int>(env_.cells().size());
      if (!region_active_) {
        region_active_ = true;
        region_open_s_ = t;
        region_next_ = 0;
        // Victim domain: magnitudes below 2 take the reference UE's
        // serving domain at window open; 2 + d targets domain d.
        int dom = region_mag >= 2.0
                      ? static_cast<int>(region_mag) - 2
                      : fault_domain_of(ues_.front().serving, ds);
        if (dom < 0 || dom > fault_domain_of(ncells - 1, ds))
          dom = fault_domain_of(ues_.front().serving, ds);
        region_domain_ = dom;
      }
      // Staggered onsets: member i (cell-index order within the domain)
      // dies at open + i * region_stagger_s, clamped to the window.
      const int first = region_domain_ * ds;
      const int last = std::min(first + ds, ncells);
      while (first + region_next_ < last &&
             t >= region_open_s_ + static_cast<double>(region_next_) *
                                       faults_.region_stagger_s()) {
        const int cell = first + region_next_;
        if (kill_cell(t, cell, region_mag)) region_killed_.push_back(cell);
        ++region_next_;
      }
    } else if (region_active_) {
      // Window closed: every member this window killed restarts together,
      // stateless — the same recovery semantics as a single-BS restart.
      for (const int cell : region_killed_) revive_cell(t, cell);
      region_killed_.clear();
      ack_seen_.reset();
      ctx_seen_.reset();
      region_active_ = false;
      region_domain_ = -1;
    }

    // ---- BS overload window: background load + service inflation ----
    overload_u_ =
        use_cap_ ? faults_.magnitude(FaultKind::kBsOverload, t) : 0.0;
    svc_inflation_ = overload_u_ > 0.0
                         ? 1.0 / (1.0 - std::min(overload_u_, 0.95))
                         : 1.0;

    // ---- Cascade overload: displaced load floods surviving neighbors ----
    // While a cascade window overlaps at least one dead BS, every live
    // cell within cascade_neighbor_radius (cell-index distance) of a dead
    // one is topped up with background jobs to magnitude * capacity — the
    // re-camping load of the displaced UEs. Deterministic: fixed targets,
    // fixed service times, no RNG; world-global like the crash itself.
    if (use_cap_ && dead_count_ > 0) {
      const double cascade_u =
          faults_.magnitude(FaultKind::kCascadeOverload, t);
      if (cascade_u > 0.0) {
        const double cap =
            static_cast<double>(cfg_.bs_capacity.slots) +
            static_cast<double>(cfg_.bs_capacity.queue_capacity);
        const int target_occ = static_cast<int>(std::lround(cascade_u * cap));
        const int radius = faults_.cascade_neighbor_radius();
        const int ncells = static_cast<int>(env_.cells().size());
        for (int c = 0; c < ncells; ++c) {
          if (dead_[static_cast<std::size_t>(c)] != 0) continue;
          bool near = false;
          for (int d = std::max(0, c - radius);
               d <= std::min(ncells - 1, c + radius); ++d) {
            if (dead_[static_cast<std::size_t>(d)] != 0) {
              near = true;
              break;
            }
          }
          if (!near) continue;
          auto& st = stations_[static_cast<std::size_t>(c)];
          int injected = 0;
          while (st.occupancy(t) < target_occ) {
            if (!st.submit(t, BsJobKind::kBackground,
                           cfg_.bs_capacity.background_service_s))
              break;
            ++injected;
          }
          if (injected == 0) continue;
          for (auto& u : ues_) {
            ++u.stats.cascade_activations;
            u.stats.cascade_jobs_injected += injected;
            log_event(u, t, EventKind::kCascadeInject, u.serving, c,
                      static_cast<double>(injected));
          }
        }
      }
    }

    // ---- Backhaul transport: this tick's fault overrides + arrivals ----
    bh_partition_ =
        use_net_ && faults_.active(FaultKind::kBackhaulPartition, t);
    bh_loss_ = use_net_ ? faults_.magnitude(FaultKind::kBackhaulLoss, t) : 0.0;
    bh_delay_ =
        use_net_ ? faults_.magnitude(FaultKind::kBackhaulDelay, t) : 0.0;
    if (use_net_) poll_backhaul(t);
    if (use_cap_) run_completions(t);
  }

  /// Per-UE phase of one simulated instant: outage handling, radio
  /// sampling, execution completion, RLF detection, signaling progress,
  /// manager evaluation, degraded tracking — the seed's tick body from
  /// the radio boundary down, with `continue` turned into `return` under
  /// the TickEmit guard.
  void ue_step(double t, UeContext& u) {
    TickEmit tick_emit{cfg_.observer ? this : nullptr, &u, t};
    const double dt = cfg_.tick_s;

    // ---- Outage / re-establishment ----
    if (u.outage_started >= 0.0) {
      ++u.outage_ticks;
      if (t - u.outage_started >= u.outage_reestablish_s && !blackout_) {
        // Camp only on a cell comfortably above Qout (Qin-style margin),
        // otherwise keep searching — reconnecting into a dying cell just
        // repeats the failure.
        const double qin_rsrp =
            env_.config().noise_floor_dbm + cfg_.qout_snr_db + 3.0;
        if (u.preferred_target >= 0) {
          // T304 fallback: the prepared target holds the UE context, so
          // re-establishment there skips the full cell search. A crashed
          // target lost that context — and its radio — so skip it.
          const double rsrp =
              env_.mean_rsrp_dbm(
                  static_cast<std::size_t>(u.preferred_target), u.pos) -
              crash_db(static_cast<std::size_t>(u.preferred_target));
          if (rsrp >= std::max(cfg_.min_coverage_rsrp_dbm, qin_rsrp)) {
            ++u.stats.t304_fallback_success;
            camp_on(u, t, u.preferred_target);
            return;
          }
          // Prepared target is gone too: full RLF re-establishment.
          u.preferred_target = -1;
          u.outage_reestablish_s = cfg_.reestablish_s;
        }
        if (t - u.outage_started >= u.outage_reestablish_s) {
          const double floor_rsrp =
              std::max(cfg_.min_coverage_rsrp_dbm, qin_rsrp);
          if (!use_net_) {
            const int target = env_.best_cell(u.pos, floor_rsrp, dead_);
            if (target >= 0) camp_on(u, t, target);
            // else: still in a hole; keep searching.
          } else if (u.ctx_failed) {
            // Context fetch exhausted (or came back stale): degraded
            // context-less re-establishment after the extra setup penalty.
            if (t >= u.ctx_failed_camp_s) {
              const int target = env_.best_cell(u.pos, floor_rsrp, dead_);
              if (target >= 0) camp_on(u, t, target);
            }
          } else if (u.ctx_ready) {
            if (env_.mean_rsrp_dbm(static_cast<std::size_t>(u.ctx_target),
                                   u.pos) -
                    crash_db(static_cast<std::size_t>(u.ctx_target)) >=
                floor_rsrp) {
              camp_on(u, t, u.ctx_target);
            } else {
              // The fetched-into cell faded while waiting; restart the
              // fetch toward whatever is best now.
              u.ctx_pending = u.ctx_ready = false;
              u.ctx_target = -1;
            }
          } else if (!u.ctx_pending) {
            // Re-establishment found a cell, but camping needs the UE
            // context from the old serving BS — fetch it over the
            // backhaul before admitting the UE.
            const int target = env_.best_cell(u.pos, floor_rsrp, dead_);
            if (target >= 0) {
              u.ctx_pending = true;
              u.ctx_target = target;
              u.ctx_seq = next_seq_++;
              u.ctx_retries = 0;
              u.ctx_deadline_s = t + cfg_.ctx_fetch_timeout_s;
              net::BackhaulMessage m;
              m.seq = u.ctx_seq;
              m.type = net::MsgType::kContextFetch;
              m.src_cell = target;
              m.dst_cell = u.serving;  // old serving BS holds the context
              m.target_cell = target;
              m.ue = u.id;
              bh_send(t, m);
            }
          } else if (t >= u.ctx_deadline_s) {
            if (u.ctx_retries < cfg_.ctx_fetch_max_retries) {
              // Idempotent retry: same transaction id, so a late response
              // to an earlier copy still completes the fetch (and
              // duplicates are absorbed by ctx_seen).
              ++u.ctx_retries;
              u.ctx_deadline_s =
                  t + cfg_.ctx_fetch_timeout_s *
                          static_cast<double>(1 << u.ctx_retries);
              net::BackhaulMessage m;
              m.seq = u.ctx_seq;
              m.type = net::MsgType::kContextFetch;
              m.src_cell = u.ctx_target;
              m.dst_cell = u.serving;
              m.target_cell = u.ctx_target;
              m.ue = u.id;
              bh_send(t, m);
            } else {
              u.ctx_failed = true;
              ++u.stats.context_fetch_failures;
              u.ctx_failed_camp_s = t + cfg_.ctx_degraded_penalty_s;
              log_event(u, t, EventKind::kContextFetchFailed, u.serving,
                        u.ctx_target, 0.0);
            }
          }
        }
      }
      return;
    }

    // ---- Radio state ----
    const bool pilot_out = faults_.active(FaultKind::kPilotOutage, t);
    const double pilot_sigma = faults_.magnitude(FaultKind::kPilotOutage, t);
    ServingState sv;
    sv.cell_idx = static_cast<std::size_t>(u.serving);
    sv.id = env_.cells()[sv.cell_idx].id;
    const double sv_atten_db = blackout_db_ + crash_db(sv.cell_idx);
    sv.rsrp_dbm =
        env_.instant_rsrp_dbm(sv.cell_idx, u.pos, *u.rng) - sv_atten_db;
    sv.dd_snr_db = env_.dd_snr_db(sv.cell_idx, u.pos, *u.rng) - sv_atten_db;
    sv.snr_db = env_.snr_db_from_rsrp(sv.rsrp_dbm);
    sv.bandwidth_hz = env_.cells()[sv.cell_idx].bandwidth_hz;
    u.cur_snr = sv.snr_db;
    if (pilot_out) {
      // Pilots are gone: the delay-Doppler estimate freezes at its last
      // fresh value and accumulates corruption.
      if (!std::isnan(u.last_dd[sv.cell_idx]))
        sv.dd_snr_db = u.last_dd[sv.cell_idx] - sv_atten_db;
      sv.dd_snr_db += u.rng->gaussian(0.0, pilot_sigma);
    } else {
      u.last_dd[sv.cell_idx] = sv.dd_snr_db + sv_atten_db;
      u.pilot_fresh_t = t;
    }
    u.throughput_sum_bps += common::shannon_capacity_bps(
        sv.bandwidth_hz, common::db_to_lin(sv.snr_db));
    u.snr_window.push_back({t, sv.snr_db});
    while (!u.snr_window.empty() && t - u.snr_window.front().first > 5.0)
      u.snr_window.pop_front();

    // ---- Handover execution completion (T304 window) ----
    if (u.exec && t >= u.exec->started_s + cfg_.ho_interruption_s) {
      const std::size_t target = u.exec->target_idx;
      const double tgt_rsrp = env_.mean_rsrp_dbm(target, u.pos) -
                              blackout_db_ - crash_db(target);
      const double tgt_snr = env_.snr_db_from_rsrp(tgt_rsrp);
      if (tgt_snr >= cfg_.min_connect_snr_db) {
        ++u.stats.successful_handovers;
        const int prev = u.serving;
        u.serving = static_cast<int>(target);
        // A completed handover re-establishes the UE context at the
        // target: a restarted BS that lost its prepared contexts is made
        // whole again the moment a UE successfully attaches to it.
        u.context_lost[target] = false;
        u.manager->on_serving_changed(t, target);
        u.oos_count = u.is_count = 0;
        u.t310_started = -1.0;
        u.last_report_loss_t = u.last_cmd_loss_t = -1e9;
        u.suppress_until = t + cfg_.post_ho_suppress_s;
        log_event(u, t, EventKind::kHandoverComplete, prev, u.serving,
                  sv.snr_db);
        u.ho_times.push_back(t);
        // Loop bookkeeping: returning to a recently-serving cell.
        bool is_loop = false;
        for (const auto& [ts, idx] : u.recent_serving) {
          if (t - ts <= cfg_.loop_window_s &&
              idx == static_cast<int>(target)) {
            is_loop = true;
            break;
          }
        }
        u.recent_serving.push_back({t, u.serving});
        while (!u.recent_serving.empty() &&
               t - u.recent_serving.front().first > cfg_.loop_window_s)
          u.recent_serving.pop_front();
        if (is_loop) {
          ++u.stats.loop_handovers;
          const auto& tgt_cell = env_.cells()[target];
          const auto& prev_cell =
              env_.cells()[static_cast<std::size_t>(prev)];
          const bool conflict =
              pair_conflicts_ &&
              pair_conflicts_(tgt_cell.id.cell, prev_cell.id.cell);
          if (conflict) ++u.stats.conflict_loop_handovers;
          if (!u.current_loop_episode) {
            ++u.stats.loop_episodes;
            if (tgt_cell.id.channel == prev_cell.id.channel)
              ++u.stats.intra_freq_loop_episodes;
            if (conflict) {
              ++u.stats.conflict_loop_episodes;
              if (tgt_cell.id.channel == prev_cell.id.channel)
                ++u.stats.intra_freq_conflict_loops;
            }
            u.current_loop_episode = true;
          }
        } else {
          u.current_loop_episode = false;
        }
        u.exec.reset();
      } else {
        // T304 expiry: the target evaporated during execution. Fall back
        // to re-establishment on the prepared target instead of a silent
        // success or a bare RLF search.
        ++u.stats.t304_expiries;
        log_event(u, t, EventKind::kT304Expiry, u.serving,
                  static_cast<int>(target), tgt_snr);
        record_failure(u, t, FailureCause::kFeedbackDelayLoss);
        u.outage_reestablish_s = cfg_.t304_reestablish_s;
        u.preferred_target = static_cast<int>(u.exec->prepared_idx);
        u.exec.reset();
        return;
      }
    }

    // ---- Radio link failure detection (N310/T310/N311) ----
    if (!u.exec) {
      if (u.t310_started >= 0.0) {
        if (sv.snr_db >= cfg_.qout_snr_db + cfg_.qin_margin_db) {
          if (++u.is_count >= cfg_.n311) {
            // Recovered: N311 consecutive in-sync indications stop T310.
            u.t310_started = -1.0;
            u.oos_count = u.is_count = 0;
          }
        } else {
          u.is_count = 0;
        }
      } else {
        if (sv.snr_db < cfg_.qout_snr_db) {
          if (++u.oos_count >= cfg_.n310) {
            u.t310_started = t;
            u.is_count = 0;
          }
        } else {
          u.oos_count = 0;
        }
      }
      if (u.t310_started >= 0.0 && t - u.t310_started >= cfg_.t310_s) {
        // Classify the failure (Table 2 taxonomy). Lost-signaling
        // evidence is kept for a short memory window because a failed
        // attempt is usually replaced by a retry before the RLF lands.
        FailureCause cause;
        const int best =
            blackout_ ? -1
                      : env_.best_cell(u.pos, cfg_.min_coverage_rsrp_dbm,
                                       dead_);
        if (best < 0) {
          cause = FailureCause::kCoverageHole;
        } else if ((u.pending && u.pending->command_lost) ||
                   t - u.last_cmd_loss_t < kLossMemory_s) {
          cause = FailureCause::kHoCommandLoss;
        } else if (u.pending && u.pending->decision_shed) {
          // The serving BS shed the decision job: the network never acted
          // on the delivered report — feedback was effectively lost.
          cause = FailureCause::kFeedbackDelayLoss;
        } else if (u.pending && u.pending->report_delivered) {
          cause = FailureCause::kHoCommandLoss;  // command still in flight
        } else if ((u.pending && (u.pending->report_lost ||
                                  !u.pending->report_delivered)) ||
                   t - u.last_report_loss_t < kLossMemory_s) {
          cause = FailureCause::kFeedbackDelayLoss;  // lost or too slow
        } else if (best == u.serving) {
          // Nothing better exists: a deep fade of the only covering cell
          // is effectively a (soft) coverage hole.
          cause = FailureCause::kCoverageHole;
        } else {
          // No decision was ever made: was the best candidate invisible?
          const auto visible = u.manager->visible_cells();
          cause = visible.count(static_cast<std::size_t>(best)) == 0
                      ? FailureCause::kMissedCell
                      : FailureCause::kFeedbackDelayLoss;
        }
        log_event(u, t, EventKind::kRadioLinkFailure, u.serving, -1,
                  sv.snr_db);
        record_failure(u, t, cause);
        return;
      }
    }

    // ---- Pending handover progress ----
    if (u.pending && !u.exec) {
      if (!u.pending->report_delivered && !u.pending->report_lost &&
          t >= u.pending->report_due_s) {
        if (deliver(u, t, sv.snr_db, cfg_.uplink_attempts,
                    u.manager->waveform())) {
          u.pending->report_delivered = true;
          // A processing-stall fault spikes the base station's decision
          // time on top of the configured budget.
          const double stall =
              faults_.magnitude(FaultKind::kProcessingStall, t);
          const double proc_s = cfg_.decision_proc_s + stall;
          double ready_s = t + proc_s;
          bool decision_shed = false;
          if (use_cap_ && !u.manager->client_driven()) {
            // Network-side decision: the report occupies the serving BS's
            // control plane. Under overload it queues (the decision goes
            // stale) or is shed outright — the degraded-mode asymmetry:
            // REM's client-side prediction (client_driven) never enters
            // this queue.
            const auto si = static_cast<std::size_t>(u.serving);
            top_up(t, si);
            ++u.stats.bs_jobs_submitted;
            const auto job =
                stations_[si].submit(t, BsJobKind::kRrcDecision,
                                     proc_s * svc_inflation_, {}, u.id);
            if (job) {
              ready_s = job->done_s;
            } else {
              decision_shed = true;
              ++u.stats.bs_queue_shed;
              u.pending->decision_shed = true;
              u.last_report_loss_t = t;  // network never acted on it
              log_event(u, t, EventKind::kBsQueueShed, u.serving, u.serving,
                        stations_[si].load(t));
            }
          }
          if (!decision_shed) {
            if (use_net_) {
              // The BS decides, then must get the target's admission over
              // the backhaul before any command can go out.
              u.pending->prep_due_s = ready_s;
            } else {
              u.pending->command_due_s =
                  ready_s + cfg_.retry_spacing_s;  // decision + scheduling
            }
          }
          u.stats.feedback_delays_s.push_back(t - u.pending->decided_at_s);
          log_event(u, t, EventKind::kReportDelivered, u.serving,
                    static_cast<int>(u.pending->target_idx), sv.snr_db);
        } else if (u.pending->report_retries < cfg_.report_max_retries) {
          // Bounded exponential backoff instead of giving up at once.
          ++u.pending->report_retries;
          ++u.stats.report_retransmits;
          u.pending->report_due_s =
              t + cfg_.report_retry_backoff_s *
                      static_cast<double>(1 << (u.pending->report_retries -
                                                1));
          log_event(u, t, EventKind::kReportRetransmit, u.serving,
                    static_cast<int>(u.pending->target_idx), sv.snr_db);
        } else {
          u.pending->report_lost = true;  // retransmissions exhausted
          u.last_report_loss_t = t;
          log_event(u, t, EventKind::kReportLost, u.serving,
                    static_cast<int>(u.pending->target_idx), sv.snr_db);
        }
      }
      // ---- Backhaul preparation (HANDOVER REQUEST -> ACK) ----
      if (use_net_ && u.pending->report_delivered && !u.pending->prep_acked &&
          !u.pending->prep_failed && !u.pending->command_lost &&
          !u.pending->decision_shed) {
        if (!u.pending->prep_requested) {
          if (t >= u.pending->prep_due_s && breaker_allows_prep(u, t)) {
            // First send toward the current target (also re-entered after
            // a fallback switch, which resets prep_requested).
            u.pending->prep_requested = true;
            u.pending->prep_seq = next_seq_++;
            u.pending->prep_sent_s = t;
            u.pending->prep_deadline_s = t + cfg_.prep_timeout_s;
            ++u.stats.prep_requests;
            net::BackhaulMessage m;
            m.seq = u.pending->prep_seq;
            m.type = net::MsgType::kHandoverRequest;
            m.src_cell = u.serving;
            m.dst_cell = static_cast<int>(u.pending->target_idx);
            m.target_cell = static_cast<int>(u.pending->target_idx);
            m.ue = u.id;
            bh_send(t, m);
            log_event(u, t, EventKind::kPrepRequest, u.serving,
                      static_cast<int>(u.pending->target_idx), sv.snr_db);
          }
        } else if (t >= u.pending->prep_deadline_s) {
          if (u.pending->prep_retries < cfg_.prep_max_retries) {
            // T-prep expiry: re-send under a fresh transaction id with
            // exponential backoff; a straggling ack to the old id is
            // ignored (prep_seq no longer matches).
            ++u.pending->prep_retries;
            ++u.stats.prep_retries;
            u.pending->prep_seq = next_seq_++;
            u.pending->prep_sent_s = t;
            u.pending->prep_deadline_s =
                t + cfg_.prep_timeout_s *
                        static_cast<double>(1 << u.pending->prep_retries);
            net::BackhaulMessage m;
            m.seq = u.pending->prep_seq;
            m.type = net::MsgType::kHandoverRequest;
            m.src_cell = u.serving;
            m.dst_cell = static_cast<int>(u.pending->target_idx);
            m.target_cell = static_cast<int>(u.pending->target_idx);
            m.ue = u.id;
            bh_send(t, m);
            log_event(u, t, EventKind::kPrepRetry, u.serving,
                      static_cast<int>(u.pending->target_idx), sv.snr_db);
          } else {
            // Retries exhausted: a timed-out target counts against its
            // breaker just like an explicit reject.
            breaker_fail(u, t, u.pending->target_idx);
            prep_fallback_or_fail(u, t);
          }
        }
      }
      const bool command_ready = use_net_ ? u.pending->prep_acked
                                          : u.pending->report_delivered;
      if (command_ready && !u.pending->command_lost &&
          !u.pending->decision_shed && t >= u.pending->command_due_s) {
        if (deliver(u, t, sv.snr_db, cfg_.downlink_attempts,
                    u.manager->waveform())) {
          std::size_t target = u.pending->target_idx;
          // A duplication fault reorders commands: a stale duplicate of
          // the previous command can arrive (and execute) first.
          const double dup_p =
              faults_.magnitude(FaultKind::kCommandDuplication, t);
          if (dup_p > 0.0 && u.last_cmd_target >= 0 &&
              u.last_cmd_target != static_cast<int>(target) &&
              u.rng->bernoulli(std::min(1.0, dup_p))) {
            ++u.stats.duplicate_commands;
            log_event(u, t, EventKind::kHoCommandDuplicate, u.serving,
                      u.last_cmd_target, sv.snr_db);
            target = static_cast<std::size_t>(u.last_cmd_target);
          }
          log_event(u, t, EventKind::kHoCommandDelivered, u.serving,
                    static_cast<int>(target), sv.snr_db);
          ++u.stats.handovers;
          u.last_cmd_target = static_cast<int>(u.pending->target_idx);
          // Execution: detach + random access, completes (or T304-fails)
          // after the interruption window.
          u.exec = Execution{target, u.pending->target_idx, t};
          u.pending.reset();
          u.oos_count = u.is_count = 0;
          u.t310_started = -1.0;
        } else {
          u.pending->command_lost = true;
          u.last_cmd_loss_t = t;
          log_event(u, t, EventKind::kHoCommandLost, u.serving,
                    static_cast<int>(u.pending->target_idx), sv.snr_db);
        }
      }
    }

    // ---- Manager policy evaluation ----
    if (!u.exec && t >= u.suppress_until &&
        (!u.pending || u.pending->report_lost || u.pending->command_lost ||
         u.pending->prep_failed || u.pending->decision_shed)) {
      std::vector<Observation> obs;
      for (std::size_t i = 0; i < env_.cells().size(); ++i) {
        if (i == sv.cell_idx) continue;
        const double mean = env_.mean_rsrp_dbm(i, u.pos);
        if (mean < cfg_.min_coverage_rsrp_dbm - 10.0) continue;
        Observation o;
        o.cell_idx = i;
        o.id = env_.cells()[i].id;
        const double atten_db = blackout_db_ + crash_db(i);
        o.rsrp_dbm = env_.instant_rsrp_dbm(i, u.pos, *u.rng) - atten_db;
        o.snr_db = env_.snr_db_from_rsrp(o.rsrp_dbm);
        o.dd_snr_db = env_.dd_snr_db(i, u.pos, *u.rng) - atten_db;
        if (pilot_out) {
          if (!std::isnan(u.last_dd[i])) o.dd_snr_db = u.last_dd[i] - atten_db;
          o.dd_snr_db += u.rng->gaussian(0.0, pilot_sigma);
          o.estimate_age_s = t - u.pilot_fresh_t;
          o.pilot_faulted = true;
        } else {
          u.last_dd[i] = o.dd_snr_db + atten_db;
        }
        o.bandwidth_hz = env_.cells()[i].bandwidth_hz;
        if (load_ads_) {
          const auto& ad = load_ad_[i];
          if (ad.second >= 0.0 && t - ad.second <= cfg_.load_ad_staleness_s) {
            o.advertised_load = ad.first;
            u.stats.load_ad_age_max_s =
                std::max(u.stats.load_ad_age_max_s, t - ad.second);
          }
        }
        if (!u.breakers.empty() && u.breakers[i].refuses(t)) {
          o.breaker_open = true;
          ++u.stats.breaker_skips;
        }
        obs.push_back(o);
      }
      const auto decision = u.manager->update(t, sv, obs);
      if (decision) {
        log_event(u, t, EventKind::kMeasurementTriggered, u.serving,
                  static_cast<int>(decision->target_idx), sv.snr_db);
        PendingHandover ph;
        ph.target_idx = decision->target_idx;
        ph.decided_at_s = t;
        ph.report_due_s = t + decision->feedback_delay_s;
        ph.fallback_idx = decision->fallback_idx;
        u.pending = ph;
      }
    }

    // ---- Degraded-mode tracking ----
    const bool degraded = u.manager->degraded_mode();
    if (degraded != u.degraded_prev) {
      log_event(u, t,
                degraded ? EventKind::kDegradedEnter
                         : EventKind::kDegradedExit,
                u.serving, -1, sv.snr_db);
      if (degraded) ++u.stats.degraded_enters;
      u.degraded_prev = degraded;
    }
    if (degraded) u.stats.degraded_time_s += dt;
  }

  /// End-of-run stats finalization and the observer run-end protocol.
  void finish() {
    for (auto& u : ues_) {
      u.stats.sim_time_s = cfg_.duration_s;
      if (u.ticks > 0) {
        u.stats.mean_throughput_bps =
            u.throughput_sum_bps / static_cast<double>(u.ticks);
        u.stats.downtime_fraction = static_cast<double>(u.outage_ticks) /
                                    static_cast<double>(u.ticks);
      }
      if (u.ho_times.size() >= 2) {
        u.stats.avg_handover_interval_s =
            (u.ho_times.back() - u.ho_times.front()) /
            static_cast<double>(u.ho_times.size() - 1);
      }
    }
    if (netw_) {
      // Transport totals land on UE 0, the reference UE: a fleet of one
      // then matches run() field-for-field, and per-UE sums still equal
      // the fleet aggregate (UEs 1..N-1 carry zeros).
      const auto& ts = netw_->stats();
      auto& s0 = ues_.front().stats;
      s0.backhaul_sent = ts.sent;
      s0.backhaul_delivered = ts.delivered;
      s0.backhaul_dropped_loss = ts.dropped_loss;
      s0.backhaul_dropped_partition = ts.dropped_partition;
      s0.backhaul_dropped_queue = ts.dropped_queue;
      s0.backhaul_dropped_crash = ts.dropped_crash;
      s0.backhaul_duplicated = ts.duplicated;
      s0.backhaul_reordered = ts.reordered;
      s0.backhaul_latency_sum_s = ts.latency_sum_s;
    }
    if (use_cap_) {
      // Jobs still scheduled at run end: conservation's in-flight term
      // (submitted == served + shed + flushed + inflight), attributed to
      // each job's owning UE.
      for (const auto& st : stations_)
        for (const auto& job : st.unfinished_jobs())
          ++ue_of(job.ue).stats.bs_jobs_inflight_end;
    }
    if (cfg_.observer) {
      if (!fleet_mode_) {
        cfg_.observer->on_run_end(ues_.front().stats);
      } else {
        for (auto& u : ues_) {
          focus(u.id);
          cfg_.observer->on_run_end(u.stats);
        }
      }
    }
  }

  const RadioEnv& env_;
  const SimConfig& cfg_;
  const phy::BlerModel& bler_;
  const std::function<bool(int, int)>& pair_conflicts_;
  const bool fleet_mode_;
  const bool use_net_;
  const bool use_cap_;

  FaultInjector faults_;
  std::optional<net::BackhaulNetwork> netw_;
  std::vector<BsStation> stations_;
  std::vector<UeContext> ues_;
  std::uint64_t next_seq_ = 1;  ///< transaction ids for all backhaul msgs
  net::SequenceTracker ack_seen_;  ///< at-most-once ack/reject processing
  net::SequenceTracker ctx_seen_;  ///< at-most-once context responses
  // Crash state. A dead BS stays radio-silent, its signaling is dropped,
  // and every UE's context there is lost until re-established. The
  // single-cell crash-restart window keeps its dedicated slot; region
  // outages kill whole failure domains, so liveness is tracked as a mask.
  int crashed_cell_ = -1;        ///< kBsCrashRestart window's victim
  bool crash_owns_cell_ = false; ///< the crash window actually killed it
  std::vector<char> dead_;       ///< per-cell: any fault kind killed it
  int dead_count_ = 0;           ///< number of set entries in dead_
  // Region-outage window state: the chosen domain, how many members have
  // had their staggered onset so far, and which cells this window killed
  // (only those restart at window close).
  bool region_active_ = false;
  int region_domain_ = -1;
  int region_next_ = 0;
  double region_open_s_ = 0.0;
  std::vector<int> region_killed_;
  // Load advertisement: latest (utilization, stamped-at) per cell, shared
  // by all UEs (the ad rides broadcast control frames). Stamp < 0 means
  // never advertised. Empty when the feature is off.
  bool load_ads_ = false;
  std::vector<std::pair<double, double>> load_ad_;
  std::array<bool, kNumFaultKinds> fault_was_active_{};
  // This instant's shared fault values, computed once per shared_step.
  bool blackout_ = false;
  double blackout_db_ = 0.0;
  double overload_u_ = 0.0;
  double svc_inflation_ = 1.0;
  bool bh_partition_ = false;
  double bh_loss_ = 0.0;
  double bh_delay_ = 0.0;
  int cur_obs_ue_ = -1;  ///< last UE announced via SimObserver::on_ue

  friend struct TickEmit;
};

TickEmit::~TickEmit() {
  if (eng) eng->emit_tick(*ue, t);
}

}  // namespace

std::string event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kMeasurementTriggered: return "measurement_triggered";
    case EventKind::kReportDelivered: return "report_delivered";
    case EventKind::kReportLost: return "report_lost";
    case EventKind::kHoCommandDelivered: return "ho_command_delivered";
    case EventKind::kHoCommandLost: return "ho_command_lost";
    case EventKind::kHandoverComplete: return "handover_complete";
    case EventKind::kRadioLinkFailure: return "radio_link_failure";
    case EventKind::kReestablished: return "reestablished";
    case EventKind::kFaultStart: return "fault_start";
    case EventKind::kFaultEnd: return "fault_end";
    case EventKind::kReportRetransmit: return "report_retransmit";
    case EventKind::kT304Expiry: return "t304_expiry";
    case EventKind::kHoCommandDuplicate: return "ho_command_duplicate";
    case EventKind::kDegradedEnter: return "degraded_enter";
    case EventKind::kDegradedExit: return "degraded_exit";
    case EventKind::kPrepRequest: return "prep_request";
    case EventKind::kPrepRetry: return "prep_retry";
    case EventKind::kPrepAck: return "prep_ack";
    case EventKind::kPrepReject: return "prep_reject";
    case EventKind::kPrepFallback: return "prep_fallback";
    case EventKind::kPrepFailed: return "prep_failed";
    case EventKind::kContextFetchFailed: return "context_fetch_failed";
    case EventKind::kBsQueueShed: return "bs_queue_shed";
    case EventKind::kBsJobDone: return "bs_job_done";
    case EventKind::kAdmissionReject: return "admission_reject";
    case EventKind::kAdmissionRetry: return "admission_retry";
    case EventKind::kBsCrash: return "bs_crash";
    case EventKind::kBsRestart: return "bs_restart";
    case EventKind::kContextStale: return "context_stale";
    case EventKind::kCascadeInject: return "cascade_inject";
    case EventKind::kBreakerTrip: return "breaker_trip";
    case EventKind::kBreakerProbe: return "breaker_probe";
    case EventKind::kBreakerClose: return "breaker_close";
  }
  throw std::invalid_argument("event_kind_name: invalid EventKind value " +
                              std::to_string(static_cast<int>(k)));
}

std::string failure_cause_name(FailureCause c) {
  switch (c) {
    case FailureCause::kFeedbackDelayLoss: return "feedback delay/loss";
    case FailureCause::kMissedCell: return "missed cell";
    case FailureCause::kHoCommandLoss: return "handover cmd. loss";
    case FailureCause::kCoverageHole: return "coverage hole";
  }
  throw std::invalid_argument(
      "failure_cause_name: invalid FailureCause value " +
      std::to_string(static_cast<int>(c)));
}

double SimStats::failure_ratio_excluding_holes() const {
  const auto it = failures_by_cause.find(FailureCause::kCoverageHole);
  const int holes = it != failures_by_cause.end() ? it->second : 0;
  const int denom = handovers + failures;
  return denom > 0 ? static_cast<double>(failures - holes) / denom : 0.0;
}

Simulator::Simulator(const RadioEnv& env, const SimConfig& cfg,
                     const phy::BlerModel& bler, common::Rng rng)
    : env_(env), cfg_(cfg), bler_(bler), rng_(std::move(rng)) {}

SimStats Simulator::run(MobilityManager& manager,
                        const std::function<bool(int, int)>& pair_conflicts) {
  FleetEngine eng(env_, cfg_, bler_, rng_, pair_conflicts,
                  /*fleet_mode=*/false);
  // The single UE rides the base RNG stream directly (after the engine's
  // faults/backhaul forks), exactly like the pre-refactor loop.
  eng.add_ue(&manager, &rng_, cfg_.speed_kmh, 0.0);
  if (cfg_.engine == SimEngine::kEventQueue) {
    eng.run_event_queue();
  } else {
    eng.run_tick_loop();
  }
  auto stats = eng.take_stats();
  return std::move(stats.front());
}

FleetResult Simulator::run_fleet(
    const std::function<std::unique_ptr<MobilityManager>(int)>& make_manager,
    const std::function<bool(int, int)>& pair_conflicts) {
  if (cfg_.fleet_size < 1)
    throw std::invalid_argument("run_fleet: fleet_size must be >= 1, got " +
                                std::to_string(cfg_.fleet_size));
  if (!make_manager)
    throw std::invalid_argument("run_fleet: make_manager must be callable");
  if (cfg_.fleet.speed_min_kmh <= 0.0 ||
      cfg_.fleet.speed_max_kmh < cfg_.fleet.speed_min_kmh)
    throw std::invalid_argument(
        "run_fleet: fleet speed range must satisfy 0 < min <= max, got [" +
        std::to_string(cfg_.fleet.speed_min_kmh) + ", " +
        std::to_string(cfg_.fleet.speed_max_kmh) + "]");
  if (cfg_.fleet.start_spread_m < 0.0)
    throw std::invalid_argument(
        "run_fleet: fleet start_spread_m must be >= 0, got " +
        std::to_string(cfg_.fleet.start_spread_m));
  if (!cfg_.fleet.classes.empty()) {
    int total = 0;
    for (std::size_t i = 0; i < cfg_.fleet.classes.size(); ++i) {
      const auto& c = cfg_.fleet.classes[i];
      if (c.count < 0)
        throw std::invalid_argument(
            "run_fleet: fleet class " + std::to_string(i) + " ('" + c.name +
            "') has negative count " + std::to_string(c.count));
      if (c.speed_lo_kmh <= 0.0 || c.speed_hi_kmh < c.speed_lo_kmh)
        throw std::invalid_argument(
            "run_fleet: fleet class " + std::to_string(i) + " ('" + c.name +
            "') speed band must satisfy 0 < lo <= hi, got [" +
            std::to_string(c.speed_lo_kmh) + ", " +
            std::to_string(c.speed_hi_kmh) + "]");
      total += c.count;
    }
    if (total != cfg_.fleet_size)
      throw std::invalid_argument(
          "run_fleet: fleet class counts sum to " + std::to_string(total) +
          " but fleet_size is " + std::to_string(cfg_.fleet_size));
  }

  // The engine forks faults, then backhaul, from the base stream — the
  // same order as run() — before any per-UE derivation.
  FleetEngine eng(env_, cfg_, bler_, rng_, pair_conflicts,
                  /*fleet_mode=*/true);
  const int n = cfg_.fleet_size;

  // Per-UE stream derivation, in UE-id order. UE 0 keeps the base stream
  // and the scenario's exact speed/start (no extra draws), so a fleet of
  // one is bit-identical to run(). Every further UE forks its own stream
  // and derives speed and start offset from that stream's first draws.
  std::vector<common::Rng> ue_rngs;
  ue_rngs.reserve(n > 1 ? static_cast<std::size_t>(n - 1) : 0);
  std::vector<double> speeds(static_cast<std::size_t>(n), cfg_.speed_kmh);
  std::vector<double> starts(static_cast<std::size_t>(n), 0.0);
  // Class lookup for mixed-speed populations: UE k belongs to the class
  // whose cumulative count covers k (classes fill in declaration order).
  const auto class_band = [&](int k) {
    int cum = 0;
    for (const auto& c : cfg_.fleet.classes) {
      cum += c.count;
      if (k < cum) return std::pair<double, double>{c.speed_lo_kmh,
                                                    c.speed_hi_kmh};
    }
    // Unreachable: the counts were validated to sum to fleet_size.
    return std::pair<double, double>{cfg_.fleet.speed_min_kmh,
                                     cfg_.fleet.speed_max_kmh};
  };
  for (int k = 1; k < n; ++k) {
    ue_rngs.push_back(rng_.fork());
    auto& r = ue_rngs.back();
    const auto [lo, hi] =
        cfg_.fleet.classes.empty()
            ? std::pair<double, double>{cfg_.fleet.speed_min_kmh,
                                        cfg_.fleet.speed_max_kmh}
            : class_band(k);
    speeds[static_cast<std::size_t>(k)] = r.uniform(lo, hi);
    starts[static_cast<std::size_t>(k)] =
        cfg_.fleet.start_spread_m > 0.0
            ? r.uniform(0.0, cfg_.fleet.start_spread_m)
            : 0.0;
  }

  std::vector<std::unique_ptr<MobilityManager>> managers;
  managers.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    managers.push_back(make_manager(k));
    if (!managers.back())
      throw std::invalid_argument(
          "run_fleet: make_manager returned nullptr for UE " +
          std::to_string(k));
  }
  for (int k = 0; k < n; ++k) {
    eng.add_ue(managers[static_cast<std::size_t>(k)].get(),
               k == 0 ? &rng_ : &ue_rngs[static_cast<std::size_t>(k - 1)],
               speeds[static_cast<std::size_t>(k)],
               starts[static_cast<std::size_t>(k)]);
  }

  eng.run_event_queue();

  FleetResult out;
  out.per_ue = eng.take_stats();
  out.aggregate = merge_fleet_stats(out.per_ue);
  return out;
}

}  // namespace rem::sim
