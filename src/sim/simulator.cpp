#include "sim/simulator.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"

#include <algorithm>
#include <cmath>

namespace rem::sim {

std::string event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kMeasurementTriggered: return "measurement_triggered";
    case EventKind::kReportDelivered: return "report_delivered";
    case EventKind::kReportLost: return "report_lost";
    case EventKind::kHoCommandDelivered: return "ho_command_delivered";
    case EventKind::kHoCommandLost: return "ho_command_lost";
    case EventKind::kHandoverComplete: return "handover_complete";
    case EventKind::kRadioLinkFailure: return "radio_link_failure";
    case EventKind::kReestablished: return "reestablished";
  }
  return "?";
}

std::string failure_cause_name(FailureCause c) {
  switch (c) {
    case FailureCause::kFeedbackDelayLoss: return "feedback delay/loss";
    case FailureCause::kMissedCell: return "missed cell";
    case FailureCause::kHoCommandLoss: return "handover cmd. loss";
    case FailureCause::kCoverageHole: return "coverage hole";
  }
  return "?";
}

double SimStats::failure_ratio_excluding_holes() const {
  const auto it = failures_by_cause.find(FailureCause::kCoverageHole);
  const int holes = it != failures_by_cause.end() ? it->second : 0;
  const int denom = handovers + failures;
  return denom > 0 ? static_cast<double>(failures - holes) / denom : 0.0;
}

Simulator::Simulator(const RadioEnv& env, const SimConfig& cfg,
                     const phy::BlerModel& bler, common::Rng rng)
    : env_(env), cfg_(cfg), bler_(bler), rng_(std::move(rng)) {}

phy::DopplerRegime Simulator::regime() const {
  return cfg_.speed_kmh >= 150.0 ? phy::DopplerRegime::kHigh
                                 : phy::DopplerRegime::kLow;
}

bool Simulator::deliver(double snr_db, int attempts, phy::Waveform w) {
  for (int a = 0; a < attempts; ++a) {
    const double p = bler_.bler(w, regime(), snr_db);
    if (!rng_.bernoulli(p)) return true;
  }
  return false;
}

SimStats Simulator::run(MobilityManager& manager,
                        const std::function<bool(int, int)>& pair_conflicts) {
  SimStats stats;
  const double speed = common::kmh_to_mps(cfg_.speed_kmh);
  const double dt = cfg_.tick_s;

  // Initial attach: strongest cell at the start.
  double pos = 0.0;
  int serving = env_.best_cell(pos, cfg_.min_coverage_rsrp_dbm);
  if (serving < 0) serving = 0;
  manager.on_serving_changed(0.0, static_cast<std::size_t>(serving));

  std::optional<PendingHandover> pending;
  double qout_since = -1.0;          // when serving went below Qout
  double outage_started = -1.0;      // RLF time (in outage if >= 0)
  double last_report_loss_t = -1e9;  // recent ARQ-exhausted feedback
  double last_cmd_loss_t = -1e9;     // recent lost handover command
  double suppress_until = 0.0;       // post-handover decision blanking
  constexpr double kLossMemory_s = 1.5;
  std::deque<std::pair<double, int>> recent_serving;  // (time, cell idx)
  std::vector<double> ho_times;
  bool current_loop_episode = false;
  double throughput_sum_bps = 0.0;
  std::size_t ticks = 0, outage_ticks = 0;

  // Rolling 5 s window of serving SNR for the Fig. 2b analysis.
  std::deque<std::pair<double, double>> snr_window;  // (t, snr)

  const auto log_event = [&](double t, EventKind kind, int srv, int tgt,
                             double snr) {
    if (!cfg_.record_events) return;
    stats.events.push_back({t, kind, srv, tgt, snr});
  };

  const auto record_failure = [&](double t, FailureCause cause) {
    ++stats.failures;
    ++stats.failures_by_cause[cause];
    // Dump the pre-failure SNR window, decimated to ~10 samples.
    const std::size_t stride = std::max<std::size_t>(
        snr_window.size() / 10, 1);
    for (std::size_t i = 0; i < snr_window.size(); i += stride)
      stats.pre_failure_snrs_db.push_back(snr_window[i].second);
    snr_window.clear();
    outage_started = t;
    pending.reset();
    qout_since = -1.0;
  };

  for (double t = 0.0; t < cfg_.duration_s; t += dt) {
    pos = speed * t;
    ++ticks;

    // ---- Outage / re-establishment ----
    if (outage_started >= 0.0) {
      ++outage_ticks;
      if (t - outage_started >= cfg_.reestablish_s) {
        // Camp only on a cell comfortably above Qout (Qin-style margin),
        // otherwise keep searching — reconnecting into a dying cell just
        // repeats the failure.
        const double qin_rsrp = env_.config().noise_floor_dbm +
                                cfg_.qout_snr_db + 3.0;
        const int target = env_.best_cell(
            pos, std::max(cfg_.min_coverage_rsrp_dbm, qin_rsrp));
        if (target >= 0) {
          stats.outage_durations_s.push_back(t - outage_started);
          serving = target;
          outage_started = -1.0;
          last_report_loss_t = last_cmd_loss_t = -1e9;
          manager.on_serving_changed(t, static_cast<std::size_t>(serving));
          log_event(t, EventKind::kReestablished, serving, -1, 0.0);
          recent_serving.push_back({t, serving});
        }
        // else: still in a hole; keep searching.
      }
      continue;
    }

    // ---- Radio state ----
    ServingState sv;
    sv.cell_idx = static_cast<std::size_t>(serving);
    sv.id = env_.cells()[sv.cell_idx].id;
    sv.rsrp_dbm = env_.instant_rsrp_dbm(sv.cell_idx, pos, rng_);
    sv.dd_snr_db = env_.dd_snr_db(sv.cell_idx, pos, rng_);
    sv.snr_db = env_.snr_db_from_rsrp(sv.rsrp_dbm);
    sv.bandwidth_hz = env_.cells()[sv.cell_idx].bandwidth_hz;
    throughput_sum_bps += common::shannon_capacity_bps(
        sv.bandwidth_hz, common::db_to_lin(sv.snr_db));
    snr_window.push_back({t, sv.snr_db});
    while (!snr_window.empty() && t - snr_window.front().first > 5.0)
      snr_window.pop_front();

    // ---- Radio link failure detection (Qout) ----
    if (sv.snr_db < cfg_.qout_snr_db) {
      if (qout_since < 0.0) qout_since = t;
      if (t - qout_since >= cfg_.qout_s) {
        // Classify the failure (Table 2 taxonomy). Lost-signaling
        // evidence is kept for a short memory window because a failed
        // attempt is usually replaced by a retry before the RLF lands.
        FailureCause cause;
        const int best = env_.best_cell(pos, cfg_.min_coverage_rsrp_dbm);
        if (best < 0) {
          cause = FailureCause::kCoverageHole;
        } else if ((pending && pending->command_lost) ||
                   t - last_cmd_loss_t < kLossMemory_s) {
          cause = FailureCause::kHoCommandLoss;
        } else if (pending && pending->report_delivered) {
          cause = FailureCause::kHoCommandLoss;  // command still in flight
        } else if ((pending && (pending->report_lost ||
                                !pending->report_delivered)) ||
                   t - last_report_loss_t < kLossMemory_s) {
          cause = FailureCause::kFeedbackDelayLoss;  // lost or too slow
        } else if (best == serving) {
          // Nothing better exists: a deep fade of the only covering cell
          // is effectively a (soft) coverage hole.
          cause = FailureCause::kCoverageHole;
        } else {
          // No decision was ever made: was the best candidate invisible?
          const auto visible = manager.visible_cells();
          cause = visible.count(static_cast<std::size_t>(best)) == 0
                      ? FailureCause::kMissedCell
                      : FailureCause::kFeedbackDelayLoss;
        }
        log_event(t, EventKind::kRadioLinkFailure, serving, -1, sv.snr_db);
        record_failure(t, cause);
        continue;
      }
    } else {
      qout_since = -1.0;
    }

    // ---- Pending handover progress ----
    if (pending) {
      if (!pending->report_delivered && !pending->report_lost &&
          t >= pending->report_due_s) {
        if (deliver(sv.snr_db, cfg_.uplink_attempts, manager.waveform())) {
          pending->report_delivered = true;
          pending->command_due_s =
              t + cfg_.decision_proc_s +
              cfg_.retry_spacing_s;  // BS decision + scheduling
          stats.feedback_delays_s.push_back(t - pending->decided_at_s);
          log_event(t, EventKind::kReportDelivered, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        } else {
          pending->report_lost = true;  // ARQ exhausted
          last_report_loss_t = t;
          log_event(t, EventKind::kReportLost, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        }
      }
      if (pending->report_delivered && !pending->command_lost &&
          t >= pending->command_due_s) {
        if (deliver(sv.snr_db, cfg_.downlink_attempts,
                    manager.waveform())) {
          // ---- Execution ----
          log_event(t, EventKind::kHoCommandDelivered, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
          ++stats.handovers;
          const std::size_t target = pending->target_idx;
          const double tgt_rsrp = env_.mean_rsrp_dbm(target, pos);
          const double tgt_snr = env_.snr_db_from_rsrp(tgt_rsrp);
          if (tgt_snr >= cfg_.min_connect_snr_db) {
            ++stats.successful_handovers;
            serving = static_cast<int>(target);
            manager.on_serving_changed(t, target);
            qout_since = -1.0;
            last_report_loss_t = last_cmd_loss_t = -1e9;
            suppress_until = t + cfg_.post_ho_suppress_s;
            log_event(t, EventKind::kHandoverComplete,
                      static_cast<int>(sv.cell_idx), serving, sv.snr_db);
            ho_times.push_back(t);
            // Loop bookkeeping: returning to a recently-serving cell.
            bool is_loop = false;
            for (const auto& [ts, idx] : recent_serving) {
              if (t - ts <= cfg_.loop_window_s &&
                  idx == static_cast<int>(target)) {
                is_loop = true;
                break;
              }
            }
            recent_serving.push_back({t, serving});
            while (!recent_serving.empty() &&
                   t - recent_serving.front().first > cfg_.loop_window_s)
              recent_serving.pop_front();
            if (is_loop) {
              ++stats.loop_handovers;
              const auto& tgt_cell = env_.cells()[target];
              const auto& prev_cell = env_.cells()[sv.cell_idx];
              const bool conflict =
                  pair_conflicts &&
                  pair_conflicts(tgt_cell.id.cell, prev_cell.id.cell);
              if (conflict) ++stats.conflict_loop_handovers;
              if (!current_loop_episode) {
                ++stats.loop_episodes;
                if (tgt_cell.id.channel == prev_cell.id.channel)
                  ++stats.intra_freq_loop_episodes;
                if (conflict) {
                  ++stats.conflict_loop_episodes;
                  if (tgt_cell.id.channel == prev_cell.id.channel)
                    ++stats.intra_freq_conflict_loops;
                }
                current_loop_episode = true;
              }
            } else {
              current_loop_episode = false;
            }
          } else {
            // Target evaporated before execution completed.
            record_failure(t, FailureCause::kFeedbackDelayLoss);
            continue;
          }
          pending.reset();
        } else {
          pending->command_lost = true;
          last_cmd_loss_t = t;
          log_event(t, EventKind::kHoCommandLost, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        }
      }
    }

    // ---- Manager policy evaluation ----
    if (t >= suppress_until &&
        (!pending || pending->report_lost || pending->command_lost)) {
      std::vector<Observation> obs;
      for (std::size_t i = 0; i < env_.cells().size(); ++i) {
        if (i == sv.cell_idx) continue;
        const double mean = env_.mean_rsrp_dbm(i, pos);
        if (mean < cfg_.min_coverage_rsrp_dbm - 10.0) continue;
        Observation o;
        o.cell_idx = i;
        o.id = env_.cells()[i].id;
        o.rsrp_dbm = env_.instant_rsrp_dbm(i, pos, rng_);
        o.dd_snr_db = env_.dd_snr_db(i, pos, rng_);
        o.bandwidth_hz = env_.cells()[i].bandwidth_hz;
        obs.push_back(o);
      }
      const auto decision = manager.update(t, sv, obs);
      if (decision) {
        log_event(t, EventKind::kMeasurementTriggered, serving,
                  static_cast<int>(decision->target_idx), sv.snr_db);
        PendingHandover ph;
        ph.target_idx = decision->target_idx;
        ph.decided_at_s = t;
        ph.report_due_s = t + decision->feedback_delay_s;
        pending = ph;
      }
    }
  }

  stats.sim_time_s = cfg_.duration_s;
  if (ticks > 0) {
    stats.mean_throughput_bps =
        throughput_sum_bps / static_cast<double>(ticks);
    stats.downtime_fraction =
        static_cast<double>(outage_ticks) / static_cast<double>(ticks);
  }
  if (ho_times.size() >= 2) {
    stats.avg_handover_interval_s =
        (ho_times.back() - ho_times.front()) /
        static_cast<double>(ho_times.size() - 1);
  }
  return stats;
}

}  // namespace rem::sim
