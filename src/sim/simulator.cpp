#include "sim/simulator.hpp"

#include "common/logging.hpp"
#include "common/units.hpp"
#include "core/admission.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rem::sim {
namespace {

/// Fires the per-tick observer snapshot when the enclosing loop iteration
/// ends, whichever `continue` path it takes, so an attached observer sees
/// exactly one TickView per simulated tick.
struct TickEmit {
  const std::function<void(double)>* emit;
  double t;
  ~TickEmit() {
    if (emit) (*emit)(t);
  }
};

/// Attenuation applied to every leg of a crashed BS: deep enough that the
/// cell is unconnectable and unmeasurable for the whole window.
constexpr double kCrashPenaltyDb = 300.0;

}  // namespace

std::string event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kMeasurementTriggered: return "measurement_triggered";
    case EventKind::kReportDelivered: return "report_delivered";
    case EventKind::kReportLost: return "report_lost";
    case EventKind::kHoCommandDelivered: return "ho_command_delivered";
    case EventKind::kHoCommandLost: return "ho_command_lost";
    case EventKind::kHandoverComplete: return "handover_complete";
    case EventKind::kRadioLinkFailure: return "radio_link_failure";
    case EventKind::kReestablished: return "reestablished";
    case EventKind::kFaultStart: return "fault_start";
    case EventKind::kFaultEnd: return "fault_end";
    case EventKind::kReportRetransmit: return "report_retransmit";
    case EventKind::kT304Expiry: return "t304_expiry";
    case EventKind::kHoCommandDuplicate: return "ho_command_duplicate";
    case EventKind::kDegradedEnter: return "degraded_enter";
    case EventKind::kDegradedExit: return "degraded_exit";
    case EventKind::kPrepRequest: return "prep_request";
    case EventKind::kPrepRetry: return "prep_retry";
    case EventKind::kPrepAck: return "prep_ack";
    case EventKind::kPrepReject: return "prep_reject";
    case EventKind::kPrepFallback: return "prep_fallback";
    case EventKind::kPrepFailed: return "prep_failed";
    case EventKind::kContextFetchFailed: return "context_fetch_failed";
    case EventKind::kBsQueueShed: return "bs_queue_shed";
    case EventKind::kBsJobDone: return "bs_job_done";
    case EventKind::kAdmissionReject: return "admission_reject";
    case EventKind::kAdmissionRetry: return "admission_retry";
    case EventKind::kBsCrash: return "bs_crash";
    case EventKind::kBsRestart: return "bs_restart";
    case EventKind::kContextStale: return "context_stale";
  }
  throw std::invalid_argument("event_kind_name: invalid EventKind value " +
                              std::to_string(static_cast<int>(k)));
}

std::string failure_cause_name(FailureCause c) {
  switch (c) {
    case FailureCause::kFeedbackDelayLoss: return "feedback delay/loss";
    case FailureCause::kMissedCell: return "missed cell";
    case FailureCause::kHoCommandLoss: return "handover cmd. loss";
    case FailureCause::kCoverageHole: return "coverage hole";
  }
  throw std::invalid_argument(
      "failure_cause_name: invalid FailureCause value " +
      std::to_string(static_cast<int>(c)));
}

double SimStats::failure_ratio_excluding_holes() const {
  const auto it = failures_by_cause.find(FailureCause::kCoverageHole);
  const int holes = it != failures_by_cause.end() ? it->second : 0;
  const int denom = handovers + failures;
  return denom > 0 ? static_cast<double>(failures - holes) / denom : 0.0;
}

Simulator::Simulator(const RadioEnv& env, const SimConfig& cfg,
                     const phy::BlerModel& bler, common::Rng rng)
    : env_(env), cfg_(cfg), bler_(bler), rng_(std::move(rng)) {}

phy::DopplerRegime Simulator::regime() const {
  return cfg_.speed_kmh >= 150.0 ? phy::DopplerRegime::kHigh
                                 : phy::DopplerRegime::kLow;
}

bool Simulator::deliver(double t, double snr_db, int attempts,
                        phy::Waveform w) {
  // A signaling-loss fault raises the per-attempt loss probability floor.
  const double floor = faults_.magnitude(FaultKind::kSignalingLoss, t);
  for (int a = 0; a < attempts; ++a) {
    const double p =
        std::min(1.0, std::max(bler_.bler(w, regime(), snr_db), floor));
    if (!rng_.bernoulli(p)) return true;
  }
  return false;
}

SimStats Simulator::run(MobilityManager& manager,
                        const std::function<bool(int, int)>& pair_conflicts) {
  SimStats stats;
  const double speed = common::kmh_to_mps(cfg_.speed_kmh);
  const double dt = cfg_.tick_s;

  // Materialize the fault schedule. The no-fault path must not fork the
  // RNG, so a fault-free config leaves every downstream draw untouched.
  faults_ = cfg_.faults.empty()
                ? FaultInjector()
                : FaultInjector(cfg_.faults, cfg_.duration_s, rng_.fork());

  // Inter-BS backhaul transport. Owns a forked RNG stream so message-level
  // draws (loss, jitter, reordering) never perturb the radio-leg sequence.
  const bool use_net = cfg_.backhaul.enabled;
  std::optional<net::BackhaulNetwork> netw;
  if (use_net) netw.emplace(cfg_.backhaul, rng_.fork());
  std::uint64_t next_seq = 1;        // transaction ids for all backhaul msgs
  net::SequenceTracker ack_seen;     // at-most-once ack/reject processing
  net::SequenceTracker ctx_seen;     // at-most-once context responses
  // Context-fetch state during RLF re-establishment (use_net only).
  bool ctx_pending = false, ctx_ready = false, ctx_failed = false;
  std::uint64_t ctx_seq = 0;
  int ctx_retries = 0;
  double ctx_deadline_s = 0.0;
  int ctx_target = -1;
  double ctx_failed_camp_s = 0.0;

  // Per-BS control-plane capacity: one station (processing slots + bounded
  // FIFO signaling queue) per cell. Deterministic service times, no RNG.
  const bool use_cap = cfg_.bs_capacity.enabled;
  if (use_cap) validate(cfg_.bs_capacity);
  std::vector<BsStation> stations;
  if (use_cap) {
    stations.assign(env_.cells().size(),
                    BsStation(cfg_.bs_capacity.slots,
                              cfg_.bs_capacity.queue_capacity));
  }
  // Crash-restart state: at most one dead BS at a time; a dead BS stays
  // radio-silent, its signaling is dropped, and its UE contexts are lost
  // (context_lost drives stale-context replies until re-established).
  int crashed_cell = -1;
  std::vector<bool> context_lost(env_.cells().size(), false);

  // Initial attach: strongest cell at the start.
  double pos = 0.0;
  int serving = env_.best_cell(pos, cfg_.min_coverage_rsrp_dbm);
  if (serving < 0) serving = 0;
  manager.on_serving_changed(0.0, static_cast<std::size_t>(serving));

  std::optional<PendingHandover> pending;
  std::optional<Execution> exec;
  // RLF detection state: consecutive out-of-sync ticks arm T310;
  // consecutive in-sync ticks during T310 disarm it.
  int oos_count = 0;
  int is_count = 0;
  double t310_started = -1.0;
  double outage_started = -1.0;      // RLF time (in outage if >= 0)
  double outage_reestablish_s = cfg_.reestablish_s;
  int preferred_target = -1;         // prepared target for T304 fallback
  double last_report_loss_t = -1e9;  // recent retransmit-exhausted feedback
  double last_cmd_loss_t = -1e9;     // recent lost handover command
  int last_cmd_target = -1;          // previous delivered command's target
  double suppress_until = 0.0;       // post-handover decision blanking
  constexpr double kLossMemory_s = 1.5;
  std::deque<std::pair<double, int>> recent_serving;  // (time, cell idx)
  std::vector<double> ho_times;
  bool current_loop_episode = false;
  double throughput_sum_bps = 0.0;
  std::size_t ticks = 0, outage_ticks = 0;
  // Pilot-outage staleness: last fresh delay-Doppler SNR per cell, and
  // when pilots were last fresh.
  std::vector<double> last_dd(env_.cells().size(),
                              std::numeric_limits<double>::quiet_NaN());
  double pilot_fresh_t = 0.0;
  std::array<bool, kNumFaultKinds> fault_was_active{};
  bool degraded_prev = false;

  // Rolling 5 s window of serving SNR for the Fig. 2b analysis.
  std::deque<std::pair<double, double>> snr_window;  // (t, snr)

  const auto log_event = [&](double t, EventKind kind, int srv, int tgt,
                             double snr) {
    if (!cfg_.record_events && !cfg_.observer) return;
    const SignalingEvent e{t, kind, srv, tgt, snr};
    if (cfg_.observer) cfg_.observer->on_event(e);
    if (cfg_.record_events) stats.events.push_back(e);
  };

  // End-of-tick observer snapshot (fired by TickEmit below). Reads only —
  // no RNG draws — so attaching an observer never changes a run's results.
  double cur_snr = std::numeric_limits<double>::quiet_NaN();
  const std::function<void(double)> emit_tick = [&](double t_now) {
    TickView v;
    v.t_s = t_now;
    v.serving = serving;
    v.serving_snr_db = cur_snr;
    v.in_outage = outage_started >= 0.0;
    v.executing = exec.has_value();
    v.t310_running = t310_started >= 0.0;
    v.oos_count = oos_count;
    v.is_count = is_count;
    v.report_pending =
        pending && !pending->report_delivered && !pending->report_lost;
    v.prep_pending = use_net && pending && pending->report_delivered &&
                     !pending->prep_acked && !pending->prep_failed &&
                     !pending->command_lost && !pending->decision_shed;
    v.command_pending = pending &&
                        (use_net ? pending->prep_acked
                                 : pending->report_delivered) &&
                        !pending->command_lost && !pending->decision_shed;
    v.pilot_fault = faults_.active(FaultKind::kPilotOutage, t_now);
    v.blackout = faults_.active(FaultKind::kCoverageBlackout, t_now);
    v.estimate_age_s = v.pilot_fault ? t_now - pilot_fresh_t : 0.0;
    v.degraded = degraded_prev;
    if (use_cap) {
      for (const auto& st : stations)
        v.bs_queue_peak = std::max(v.bs_queue_peak, st.occupancy(t_now));
    }
    v.crashed_cells = crashed_cell >= 0 ? 1 : 0;
    cfg_.observer->on_tick(v);
  };

  const auto record_failure = [&](double t, FailureCause cause) {
    ++stats.failures;
    ++stats.failures_by_cause[cause];
    // Dump the pre-failure SNR window, decimated to ~10 samples.
    const std::size_t stride = std::max<std::size_t>(
        snr_window.size() / 10, 1);
    for (std::size_t i = 0; i < snr_window.size(); i += stride)
      stats.pre_failure_snrs_db.push_back(snr_window[i].second);
    snr_window.clear();
    outage_started = t;
    outage_reestablish_s = cfg_.reestablish_s;
    preferred_target = -1;
    pending.reset();
    oos_count = is_count = 0;
    t310_started = -1.0;
    ctx_pending = ctx_ready = ctx_failed = false;
    ctx_target = -1;
  };

  const auto camp_on = [&](double t, int target) {
    stats.outage_durations_s.push_back(t - outage_started);
    serving = target;
    // Camping (re-)establishes the UE context at this BS.
    context_lost[static_cast<std::size_t>(target)] = false;
    outage_started = -1.0;
    preferred_target = -1;
    ctx_pending = ctx_ready = ctx_failed = false;
    ctx_target = -1;
    outage_reestablish_s = cfg_.reestablish_s;
    last_report_loss_t = last_cmd_loss_t = -1e9;
    manager.on_serving_changed(t, static_cast<std::size_t>(serving));
    log_event(t, EventKind::kReestablished, serving, -1, 0.0);
    recent_serving.push_back({t, serving});
  };

  for (double t = 0.0; t < cfg_.duration_s; t += dt) {
    pos = speed * t;
    ++ticks;
    cur_snr = std::numeric_limits<double>::quiet_NaN();
    TickEmit tick_emit{cfg_.observer ? &emit_tick : nullptr, t};

    // ---- Fault-window transitions (event log / observer only) ----
    if ((cfg_.record_events || cfg_.observer) && faults_.any()) {
      for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const bool act = faults_.active(kind, t);
        if (act != fault_was_active[k]) {
          log_event(t, act ? EventKind::kFaultStart : EventKind::kFaultEnd,
                    serving, static_cast<int>(k),
                    faults_.magnitude(kind, t));
          fault_was_active[k] = act;
        }
      }
    }

    const bool blackout = faults_.active(FaultKind::kCoverageBlackout, t);
    const double blackout_db =
        faults_.magnitude(FaultKind::kCoverageBlackout, t);

    // ---- BS crash-restart window edges ----
    const double crash_mag = faults_.magnitude(FaultKind::kBsCrashRestart, t);
    if (crash_mag > 0.0 && crashed_cell < 0) {
      // Victim: magnitudes below 2 kill the serving BS at window open;
      // 2 + k kills cell index k (lets tests crash a prep target).
      int victim = crash_mag >= 2.0 ? static_cast<int>(crash_mag) - 2
                                    : serving;
      if (victim < 0 || victim >= static_cast<int>(env_.cells().size()))
        victim = serving;
      crashed_cell = victim;
      ++stats.bs_crashes;
      context_lost[static_cast<std::size_t>(victim)] = true;
      // Everything queued inside the BS and on the wire to/from it dies.
      if (use_cap)
        stats.bs_jobs_flushed +=
            stations[static_cast<std::size_t>(victim)].flush();
      if (use_net) netw->drop_in_flight_for_cell(victim);
      log_event(t, EventKind::kBsCrash, serving, victim, crash_mag);
    } else if (crash_mag <= 0.0 && crashed_cell >= 0) {
      // Restart: the BS rejoins stateless — queue already flushed at
      // crash, receive-side dedup gone (SequenceTracker reset), and its
      // prepared UE contexts stay lost until re-established (context_lost
      // drives stale-context replies to fetches).
      log_event(t, EventKind::kBsRestart, serving, crashed_cell, 0.0);
      ack_seen.reset();
      ctx_seen.reset();
      crashed_cell = -1;
    }
    // Attenuation making a crashed cell unconnectable and unmeasurable.
    const auto crash_db = [&](std::size_t idx) {
      return static_cast<int>(idx) == crashed_cell ? kCrashPenaltyDb : 0.0;
    };

    // ---- BS overload window: background load + service inflation ----
    const double overload_u =
        use_cap ? faults_.magnitude(FaultKind::kBsOverload, t) : 0.0;
    const double svc_inflation =
        overload_u > 0.0 ? 1.0 / (1.0 - std::min(overload_u, 0.95)) : 1.0;
    // Lazily saturate a station with synthetic other-UE jobs up to the
    // window's target occupancy, right before a UE job is offered to it.
    // Deterministic: occupancy targets and service times are fixed.
    const auto top_up = [&](std::size_t cell) {
      if (overload_u <= 0.0 || static_cast<int>(cell) == crashed_cell)
        return;
      const double cap =
          static_cast<double>(cfg_.bs_capacity.slots) +
          static_cast<double>(cfg_.bs_capacity.queue_capacity);
      const int target_occ =
          static_cast<int>(std::lround(overload_u * cap));
      auto& st = stations[cell];
      while (st.occupancy(t) < target_occ) {
        if (!st.submit(t, BsJobKind::kBackground,
                       cfg_.bs_capacity.background_service_s))
          break;
      }
    };

    // ---- Backhaul transport: this tick's fault overrides + arrivals ----
    const bool bh_partition =
        use_net && faults_.active(FaultKind::kBackhaulPartition, t);
    const double bh_loss =
        use_net ? faults_.magnitude(FaultKind::kBackhaulLoss, t) : 0.0;
    const double bh_delay =
        use_net ? faults_.magnitude(FaultKind::kBackhaulDelay, t) : 0.0;
    const auto bh_send = [&](const net::BackhaulMessage& m) {
      // A dead BS can neither send nor receive; like partitions, crash
      // drops consume no random draws.
      if (crashed_cell >= 0 && (m.src_cell == crashed_cell ||
                                m.dst_cell == crashed_cell)) {
        ++stats.bs_crash_dropped_msgs;
        return;
      }
      netw->send(t, m, bh_loss, bh_delay, bh_partition);
    };
    // Preparation hit a terminal condition (reject / timeout exhaustion):
    // swing to the decision's fallback target once, then give up. A failed
    // preparation leaves the UE on the dying serving link, so an eventual
    // RLF classifies like a lost command (the network decided, the UE
    // never heard).
    const auto prep_fallback_or_fail = [&](double now) {
      if (pending->fallback_idx >= 0 && !pending->used_fallback &&
          pending->fallback_idx != static_cast<int>(pending->target_idx)) {
        pending->used_fallback = true;
        pending->target_idx =
            static_cast<std::size_t>(pending->fallback_idx);
        pending->prep_retries = 0;
        pending->prep_requested = false;
        pending->prep_due_s = now;
        ++stats.prep_fallbacks;
        log_event(now, EventKind::kPrepFallback, serving,
                  static_cast<int>(pending->target_idx), 0.0);
      } else {
        pending->prep_failed = true;
        ++stats.prep_failures;
        last_cmd_loss_t = now;
        log_event(now, EventKind::kPrepFailed, serving,
                  static_cast<int>(pending->target_idx), 0.0);
      }
    };
    // Builds the admission reply for a HANDOVER REQUEST: accept when the
    // target still covers the UE's position; echo the transaction id.
    const auto admission_reply = [&](const net::BackhaulMessage& m) {
      const auto tgt = static_cast<std::size_t>(m.target_cell);
      const double rsrp =
          env_.mean_rsrp_dbm(tgt, pos) - blackout_db - crash_db(tgt);
      net::BackhaulMessage reply;
      reply.seq = m.seq;
      reply.type = rsrp >= cfg_.min_coverage_rsrp_dbm
                       ? net::MsgType::kHandoverAck
                       : net::MsgType::kHandoverReject;
      reply.src_cell = m.dst_cell;
      reply.dst_cell = m.src_cell;
      reply.target_cell = m.target_cell;
      reply.payload = rsrp;
      return reply;
    };
    if (use_net) {
      for (const auto& m : netw->poll(t)) {
        // Frames addressed to (or claiming to come from) a dead BS are
        // dropped at delivery — defensive: crash open flushed the wire.
        if (crashed_cell >= 0 && (m.dst_cell == crashed_cell ||
                                  m.src_cell == crashed_cell)) {
          ++stats.bs_crash_dropped_msgs;
          continue;
        }
        switch (m.type) {
          case net::MsgType::kHandoverRequest: {
            if (!use_cap) {
              bh_send(admission_reply(m));
              break;
            }
            // Capacity model: admission control first — an over-threshold
            // target refuses outright with a backoff hint (the source FSM
            // pivots to its fallback or waits the hint out). Below the
            // threshold the request takes a processing slot and the
            // accept/reject verdict goes out when the job completes.
            const auto tgt = static_cast<std::size_t>(m.target_cell);
            top_up(tgt);
            auto& st = stations[tgt];
            if (st.load(t) >= cfg_.bs_capacity.admission_load_threshold) {
              net::BackhaulMessage reply;
              reply.seq = m.seq;
              reply.type = net::MsgType::kHandoverRejectBusy;
              reply.src_cell = m.dst_cell;
              reply.dst_cell = m.src_cell;
              reply.target_cell = m.target_cell;
              reply.payload = cfg_.bs_capacity.reject_backoff_hint_s;
              bh_send(reply);
              break;
            }
            ++stats.bs_jobs_submitted;
            if (!st.submit(t, BsJobKind::kPrepAdmission,
                           cfg_.bs_capacity.prep_service_s * svc_inflation,
                           m)) {
              // Queue full under threshold can only happen with extreme
              // configs; the source's prep timer recovers the attempt.
              ++stats.bs_queue_shed;
              log_event(t, EventKind::kBsQueueShed, serving,
                        static_cast<int>(tgt), st.load(t));
            }
            break;
          }
          case net::MsgType::kHandoverAck: {
            const bool first = ack_seen.accept(m.seq);
            if (first && pending && !exec && pending->prep_requested &&
                !pending->prep_acked && !pending->prep_failed &&
                m.seq == pending->prep_seq) {
              pending->prep_acked = true;
              ++stats.prep_acks;
              const double rtt = t - pending->prep_sent_s;
              stats.prep_rtt_sum_s += rtt;
              pending->command_due_s = t + cfg_.retry_spacing_s;
              log_event(t, EventKind::kPrepAck, serving,
                        static_cast<int>(pending->target_idx), rtt);
            }
            break;
          }
          case net::MsgType::kHandoverReject: {
            const bool first = ack_seen.accept(m.seq);
            if (first && pending && !exec && pending->prep_requested &&
                !pending->prep_acked && !pending->prep_failed &&
                m.seq == pending->prep_seq) {
              ++stats.prep_rejects;
              log_event(t, EventKind::kPrepReject, serving,
                        static_cast<int>(pending->target_idx), 0.0);
              prep_fallback_or_fail(t);
            }
            break;
          }
          case net::MsgType::kHandoverRejectBusy: {
            // Admission control said no: the target's signaling queue is
            // over threshold. The source FSM (core/admission.hpp) pivots
            // to the Theorem-2 fallback target if one is still fresh,
            // otherwise waits out the carried backoff hint for a bounded
            // number of re-attempts before failing the preparation.
            const bool first = ack_seen.accept(m.seq);
            if (first && pending && !exec && pending->prep_requested &&
                !pending->prep_acked && !pending->prep_failed &&
                m.seq == pending->prep_seq) {
              ++stats.admission_rejects;
              const double hint = std::max(0.0, m.payload);
              log_event(t, EventKind::kAdmissionReject, serving,
                        static_cast<int>(pending->target_idx), hint);
              core::AdmissionBackoffFsm fsm(
                  cfg_.bs_capacity.admission_max_retries,
                  pending->admission_retries);
              const bool fallback_available =
                  pending->fallback_idx >= 0 && !pending->used_fallback &&
                  pending->fallback_idx !=
                      static_cast<int>(pending->target_idx);
              switch (fsm.decide(fallback_available)) {
                case core::AdmissionAction::kFallback:
                  prep_fallback_or_fail(t);
                  break;
                case core::AdmissionAction::kBackoff:
                  pending->admission_retries = fsm.retries();
                  ++stats.admission_backoff_retries;
                  pending->prep_requested = false;
                  pending->prep_retries = 0;
                  pending->prep_due_s = t + hint;
                  log_event(t, EventKind::kAdmissionRetry, serving,
                            static_cast<int>(pending->target_idx), hint);
                  break;
                case core::AdmissionAction::kFail:
                  prep_fallback_or_fail(t);  // no fallback: prep failed
                  break;
              }
            }
            break;
          }
          case net::MsgType::kContextFetch: {
            // The old serving BS looks the UE context up — through its
            // capacity station when the model is on — and answers with
            // the context, or with a stale indication if it crashed and
            // lost the context since (restart recovery).
            const int holder = m.dst_cell;
            const bool stale =
                holder >= 0 &&
                holder < static_cast<int>(context_lost.size()) &&
                context_lost[static_cast<std::size_t>(holder)];
            if (use_cap && holder >= 0 &&
                holder < static_cast<int>(stations.size())) {
              const auto h = static_cast<std::size_t>(holder);
              top_up(h);
              ++stats.bs_jobs_submitted;
              if (!stations[h].submit(
                      t, BsJobKind::kContextLookup,
                      cfg_.bs_capacity.ctx_service_s * svc_inflation, m)) {
                ++stats.bs_queue_shed;
                log_event(t, EventKind::kBsQueueShed, serving, holder,
                          stations[h].load(t));
              }
              break;  // reply goes out when the lookup job completes
            }
            net::BackhaulMessage reply;
            reply.seq = m.seq;
            reply.type = stale ? net::MsgType::kContextStale
                               : net::MsgType::kContextResponse;
            reply.src_cell = m.dst_cell;
            reply.dst_cell = m.src_cell;
            reply.target_cell = m.target_cell;
            bh_send(reply);
            break;
          }
          case net::MsgType::kContextResponse: {
            if (outage_started >= 0.0 && ctx_pending && !ctx_ready &&
                !ctx_failed && m.seq == ctx_seq &&
                ctx_seen.accept(m.seq)) {
              ctx_ready = true;
            }
            break;
          }
          case net::MsgType::kContextStale: {
            // The context holder restarted and lost the UE context: give
            // up on the fetch and take the degraded context-less
            // re-establishment path (same penalty as fetch exhaustion).
            if (outage_started >= 0.0 && ctx_pending && !ctx_ready &&
                !ctx_failed && m.seq == ctx_seq &&
                ctx_seen.accept(m.seq)) {
              ++stats.stale_context_responses;
              ctx_failed = true;
              ctx_failed_camp_s = t + cfg_.ctx_degraded_penalty_s;
              log_event(t, EventKind::kContextStale, serving, m.src_cell,
                        0.0);
            }
            break;
          }
        }
      }
    }
    // ---- BS job completions: fire the continuation of each serviced
    // signaling job (admission verdicts, context lookups). Decision jobs
    // resolved their timing at submit; background jobs are not UE-visible
    // work. Runs outside the use_net block — decision jobs exist even
    // with the backhaul model off.
    if (use_cap) {
      for (std::size_t si = 0; si < stations.size(); ++si) {
        for (const auto& job : stations[si].take_completed(t)) {
          if (job.kind == BsJobKind::kBackground) continue;
          ++stats.bs_jobs_served;
          const double wait = job.start_s - job.submit_s;
          if (wait > 0.0) ++stats.bs_jobs_queued;
          stats.bs_queue_wait_sum_s += wait;
          log_event(t, EventKind::kBsJobDone, serving,
                    static_cast<int>(si), wait);
          if (job.kind == BsJobKind::kPrepAdmission) {
            bh_send(admission_reply(job.msg));
          } else if (job.kind == BsJobKind::kContextLookup) {
            net::BackhaulMessage reply;
            reply.seq = job.msg.seq;
            reply.type = context_lost[si]
                             ? net::MsgType::kContextStale
                             : net::MsgType::kContextResponse;
            reply.src_cell = job.msg.dst_cell;
            reply.dst_cell = job.msg.src_cell;
            reply.target_cell = job.msg.target_cell;
            bh_send(reply);
          }
        }
      }
    }

    // ---- Outage / re-establishment ----
    if (outage_started >= 0.0) {
      ++outage_ticks;
      if (t - outage_started >= outage_reestablish_s && !blackout) {
        // Camp only on a cell comfortably above Qout (Qin-style margin),
        // otherwise keep searching — reconnecting into a dying cell just
        // repeats the failure.
        const double qin_rsrp = env_.config().noise_floor_dbm +
                                cfg_.qout_snr_db + 3.0;
        if (preferred_target >= 0) {
          // T304 fallback: the prepared target holds the UE context, so
          // re-establishment there skips the full cell search. A crashed
          // target lost that context — and its radio — so skip it.
          const double rsrp =
              env_.mean_rsrp_dbm(static_cast<std::size_t>(preferred_target),
                                 pos) -
              crash_db(static_cast<std::size_t>(preferred_target));
          if (rsrp >= std::max(cfg_.min_coverage_rsrp_dbm, qin_rsrp)) {
            ++stats.t304_fallback_success;
            camp_on(t, preferred_target);
            continue;
          }
          // Prepared target is gone too: full RLF re-establishment.
          preferred_target = -1;
          outage_reestablish_s = cfg_.reestablish_s;
        }
        if (t - outage_started >= outage_reestablish_s) {
          const double floor_rsrp =
              std::max(cfg_.min_coverage_rsrp_dbm, qin_rsrp);
          if (!use_net) {
            const int target = env_.best_cell(pos, floor_rsrp, crashed_cell);
            if (target >= 0) camp_on(t, target);
            // else: still in a hole; keep searching.
          } else if (ctx_failed) {
            // Context fetch exhausted (or came back stale): degraded
            // context-less re-establishment after the extra setup penalty.
            if (t >= ctx_failed_camp_s) {
              const int target =
                  env_.best_cell(pos, floor_rsrp, crashed_cell);
              if (target >= 0) camp_on(t, target);
            }
          } else if (ctx_ready) {
            if (env_.mean_rsrp_dbm(static_cast<std::size_t>(ctx_target),
                                   pos) -
                    crash_db(static_cast<std::size_t>(ctx_target)) >=
                floor_rsrp) {
              camp_on(t, ctx_target);
            } else {
              // The fetched-into cell faded while waiting; restart the
              // fetch toward whatever is best now.
              ctx_pending = ctx_ready = false;
              ctx_target = -1;
            }
          } else if (!ctx_pending) {
            // Re-establishment found a cell, but camping needs the UE
            // context from the old serving BS — fetch it over the
            // backhaul before admitting the UE.
            const int target = env_.best_cell(pos, floor_rsrp, crashed_cell);
            if (target >= 0) {
              ctx_pending = true;
              ctx_target = target;
              ctx_seq = next_seq++;
              ctx_retries = 0;
              ctx_deadline_s = t + cfg_.ctx_fetch_timeout_s;
              net::BackhaulMessage m;
              m.seq = ctx_seq;
              m.type = net::MsgType::kContextFetch;
              m.src_cell = target;
              m.dst_cell = serving;  // old serving BS holds the context
              m.target_cell = target;
              bh_send(m);
            }
          } else if (t >= ctx_deadline_s) {
            if (ctx_retries < cfg_.ctx_fetch_max_retries) {
              // Idempotent retry: same transaction id, so a late response
              // to an earlier copy still completes the fetch (and
              // duplicates are absorbed by ctx_seen).
              ++ctx_retries;
              ctx_deadline_s =
                  t + cfg_.ctx_fetch_timeout_s *
                          static_cast<double>(1 << ctx_retries);
              net::BackhaulMessage m;
              m.seq = ctx_seq;
              m.type = net::MsgType::kContextFetch;
              m.src_cell = ctx_target;
              m.dst_cell = serving;
              m.target_cell = ctx_target;
              bh_send(m);
            } else {
              ctx_failed = true;
              ++stats.context_fetch_failures;
              ctx_failed_camp_s = t + cfg_.ctx_degraded_penalty_s;
              log_event(t, EventKind::kContextFetchFailed, serving,
                        ctx_target, 0.0);
            }
          }
        }
      }
      continue;
    }

    // ---- Radio state ----
    const bool pilot_out = faults_.active(FaultKind::kPilotOutage, t);
    const double pilot_sigma =
        faults_.magnitude(FaultKind::kPilotOutage, t);
    ServingState sv;
    sv.cell_idx = static_cast<std::size_t>(serving);
    sv.id = env_.cells()[sv.cell_idx].id;
    const double sv_atten_db = blackout_db + crash_db(sv.cell_idx);
    sv.rsrp_dbm = env_.instant_rsrp_dbm(sv.cell_idx, pos, rng_) - sv_atten_db;
    sv.dd_snr_db = env_.dd_snr_db(sv.cell_idx, pos, rng_) - sv_atten_db;
    sv.snr_db = env_.snr_db_from_rsrp(sv.rsrp_dbm);
    sv.bandwidth_hz = env_.cells()[sv.cell_idx].bandwidth_hz;
    cur_snr = sv.snr_db;
    if (pilot_out) {
      // Pilots are gone: the delay-Doppler estimate freezes at its last
      // fresh value and accumulates corruption.
      if (!std::isnan(last_dd[sv.cell_idx]))
        sv.dd_snr_db = last_dd[sv.cell_idx] - sv_atten_db;
      sv.dd_snr_db += rng_.gaussian(0.0, pilot_sigma);
    } else {
      last_dd[sv.cell_idx] = sv.dd_snr_db + sv_atten_db;
      pilot_fresh_t = t;
    }
    throughput_sum_bps += common::shannon_capacity_bps(
        sv.bandwidth_hz, common::db_to_lin(sv.snr_db));
    snr_window.push_back({t, sv.snr_db});
    while (!snr_window.empty() && t - snr_window.front().first > 5.0)
      snr_window.pop_front();

    // ---- Handover execution completion (T304 window) ----
    if (exec && t >= exec->started_s + cfg_.ho_interruption_s) {
      const std::size_t target = exec->target_idx;
      const double tgt_rsrp =
          env_.mean_rsrp_dbm(target, pos) - blackout_db - crash_db(target);
      const double tgt_snr = env_.snr_db_from_rsrp(tgt_rsrp);
      if (tgt_snr >= cfg_.min_connect_snr_db) {
        ++stats.successful_handovers;
        const int prev = serving;
        serving = static_cast<int>(target);
        // A completed handover re-establishes the UE context at the target:
        // a restarted BS that lost its prepared contexts is made whole again
        // the moment a UE successfully attaches to it.
        context_lost[target] = false;
        manager.on_serving_changed(t, target);
        oos_count = is_count = 0;
        t310_started = -1.0;
        last_report_loss_t = last_cmd_loss_t = -1e9;
        suppress_until = t + cfg_.post_ho_suppress_s;
        log_event(t, EventKind::kHandoverComplete, prev, serving, sv.snr_db);
        ho_times.push_back(t);
        // Loop bookkeeping: returning to a recently-serving cell.
        bool is_loop = false;
        for (const auto& [ts, idx] : recent_serving) {
          if (t - ts <= cfg_.loop_window_s &&
              idx == static_cast<int>(target)) {
            is_loop = true;
            break;
          }
        }
        recent_serving.push_back({t, serving});
        while (!recent_serving.empty() &&
               t - recent_serving.front().first > cfg_.loop_window_s)
          recent_serving.pop_front();
        if (is_loop) {
          ++stats.loop_handovers;
          const auto& tgt_cell = env_.cells()[target];
          const auto& prev_cell = env_.cells()[static_cast<std::size_t>(prev)];
          const bool conflict =
              pair_conflicts &&
              pair_conflicts(tgt_cell.id.cell, prev_cell.id.cell);
          if (conflict) ++stats.conflict_loop_handovers;
          if (!current_loop_episode) {
            ++stats.loop_episodes;
            if (tgt_cell.id.channel == prev_cell.id.channel)
              ++stats.intra_freq_loop_episodes;
            if (conflict) {
              ++stats.conflict_loop_episodes;
              if (tgt_cell.id.channel == prev_cell.id.channel)
                ++stats.intra_freq_conflict_loops;
            }
            current_loop_episode = true;
          }
        } else {
          current_loop_episode = false;
        }
        exec.reset();
      } else {
        // T304 expiry: the target evaporated during execution. Fall back
        // to re-establishment on the prepared target instead of a silent
        // success or a bare RLF search.
        ++stats.t304_expiries;
        log_event(t, EventKind::kT304Expiry, serving,
                  static_cast<int>(target), tgt_snr);
        record_failure(t, FailureCause::kFeedbackDelayLoss);
        outage_reestablish_s = cfg_.t304_reestablish_s;
        preferred_target = static_cast<int>(exec->prepared_idx);
        exec.reset();
        continue;
      }
    }

    // ---- Radio link failure detection (N310/T310/N311) ----
    if (!exec) {
      if (t310_started >= 0.0) {
        if (sv.snr_db >= cfg_.qout_snr_db + cfg_.qin_margin_db) {
          if (++is_count >= cfg_.n311) {
            // Recovered: N311 consecutive in-sync indications stop T310.
            t310_started = -1.0;
            oos_count = is_count = 0;
          }
        } else {
          is_count = 0;
        }
      } else {
        if (sv.snr_db < cfg_.qout_snr_db) {
          if (++oos_count >= cfg_.n310) {
            t310_started = t;
            is_count = 0;
          }
        } else {
          oos_count = 0;
        }
      }
      if (t310_started >= 0.0 && t - t310_started >= cfg_.t310_s) {
        // Classify the failure (Table 2 taxonomy). Lost-signaling
        // evidence is kept for a short memory window because a failed
        // attempt is usually replaced by a retry before the RLF lands.
        FailureCause cause;
        const int best =
            blackout ? -1
                     : env_.best_cell(pos, cfg_.min_coverage_rsrp_dbm,
                                      crashed_cell);
        if (best < 0) {
          cause = FailureCause::kCoverageHole;
        } else if ((pending && pending->command_lost) ||
                   t - last_cmd_loss_t < kLossMemory_s) {
          cause = FailureCause::kHoCommandLoss;
        } else if (pending && pending->decision_shed) {
          // The serving BS shed the decision job: the network never acted
          // on the delivered report — feedback was effectively lost.
          cause = FailureCause::kFeedbackDelayLoss;
        } else if (pending && pending->report_delivered) {
          cause = FailureCause::kHoCommandLoss;  // command still in flight
        } else if ((pending && (pending->report_lost ||
                                !pending->report_delivered)) ||
                   t - last_report_loss_t < kLossMemory_s) {
          cause = FailureCause::kFeedbackDelayLoss;  // lost or too slow
        } else if (best == serving) {
          // Nothing better exists: a deep fade of the only covering cell
          // is effectively a (soft) coverage hole.
          cause = FailureCause::kCoverageHole;
        } else {
          // No decision was ever made: was the best candidate invisible?
          const auto visible = manager.visible_cells();
          cause = visible.count(static_cast<std::size_t>(best)) == 0
                      ? FailureCause::kMissedCell
                      : FailureCause::kFeedbackDelayLoss;
        }
        log_event(t, EventKind::kRadioLinkFailure, serving, -1, sv.snr_db);
        record_failure(t, cause);
        continue;
      }
    }

    // ---- Pending handover progress ----
    if (pending && !exec) {
      if (!pending->report_delivered && !pending->report_lost &&
          t >= pending->report_due_s) {
        if (deliver(t, sv.snr_db, cfg_.uplink_attempts,
                    manager.waveform())) {
          pending->report_delivered = true;
          // A processing-stall fault spikes the base station's decision
          // time on top of the configured budget.
          const double stall =
              faults_.magnitude(FaultKind::kProcessingStall, t);
          const double proc_s = cfg_.decision_proc_s + stall;
          double ready_s = t + proc_s;
          bool decision_shed = false;
          if (use_cap && !manager.client_driven()) {
            // Network-side decision: the report occupies the serving BS's
            // control plane. Under overload it queues (the decision goes
            // stale) or is shed outright — the degraded-mode asymmetry:
            // REM's client-side prediction (client_driven) never enters
            // this queue.
            const auto si = static_cast<std::size_t>(serving);
            top_up(si);
            ++stats.bs_jobs_submitted;
            const auto job = stations[si].submit(
                t, BsJobKind::kRrcDecision, proc_s * svc_inflation);
            if (job) {
              ready_s = job->done_s;
            } else {
              decision_shed = true;
              ++stats.bs_queue_shed;
              pending->decision_shed = true;
              last_report_loss_t = t;  // network never acted on the report
              log_event(t, EventKind::kBsQueueShed, serving, serving,
                        stations[si].load(t));
            }
          }
          if (!decision_shed) {
            if (use_net) {
              // The BS decides, then must get the target's admission over
              // the backhaul before any command can go out.
              pending->prep_due_s = ready_s;
            } else {
              pending->command_due_s =
                  ready_s + cfg_.retry_spacing_s;  // decision + scheduling
            }
          }
          stats.feedback_delays_s.push_back(t - pending->decided_at_s);
          log_event(t, EventKind::kReportDelivered, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        } else if (pending->report_retries < cfg_.report_max_retries) {
          // Bounded exponential backoff instead of giving up at once.
          ++pending->report_retries;
          ++stats.report_retransmits;
          pending->report_due_s =
              t + cfg_.report_retry_backoff_s *
                      static_cast<double>(1 << (pending->report_retries - 1));
          log_event(t, EventKind::kReportRetransmit, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        } else {
          pending->report_lost = true;  // retransmissions exhausted
          last_report_loss_t = t;
          log_event(t, EventKind::kReportLost, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        }
      }
      // ---- Backhaul preparation (HANDOVER REQUEST -> ACK) ----
      if (use_net && pending->report_delivered && !pending->prep_acked &&
          !pending->prep_failed && !pending->command_lost &&
          !pending->decision_shed) {
        if (!pending->prep_requested) {
          if (t >= pending->prep_due_s) {
            // First send toward the current target (also re-entered after
            // a fallback switch, which resets prep_requested).
            pending->prep_requested = true;
            pending->prep_seq = next_seq++;
            pending->prep_sent_s = t;
            pending->prep_deadline_s = t + cfg_.prep_timeout_s;
            ++stats.prep_requests;
            net::BackhaulMessage m;
            m.seq = pending->prep_seq;
            m.type = net::MsgType::kHandoverRequest;
            m.src_cell = serving;
            m.dst_cell = static_cast<int>(pending->target_idx);
            m.target_cell = static_cast<int>(pending->target_idx);
            bh_send(m);
            log_event(t, EventKind::kPrepRequest, serving,
                      static_cast<int>(pending->target_idx), sv.snr_db);
          }
        } else if (t >= pending->prep_deadline_s) {
          if (pending->prep_retries < cfg_.prep_max_retries) {
            // T-prep expiry: re-send under a fresh transaction id with
            // exponential backoff; a straggling ack to the old id is
            // ignored (prep_seq no longer matches).
            ++pending->prep_retries;
            ++stats.prep_retries;
            pending->prep_seq = next_seq++;
            pending->prep_sent_s = t;
            pending->prep_deadline_s =
                t + cfg_.prep_timeout_s *
                        static_cast<double>(1 << pending->prep_retries);
            net::BackhaulMessage m;
            m.seq = pending->prep_seq;
            m.type = net::MsgType::kHandoverRequest;
            m.src_cell = serving;
            m.dst_cell = static_cast<int>(pending->target_idx);
            m.target_cell = static_cast<int>(pending->target_idx);
            bh_send(m);
            log_event(t, EventKind::kPrepRetry, serving,
                      static_cast<int>(pending->target_idx), sv.snr_db);
          } else {
            prep_fallback_or_fail(t);
          }
        }
      }
      const bool command_ready = use_net ? pending->prep_acked
                                         : pending->report_delivered;
      if (command_ready && !pending->command_lost &&
          !pending->decision_shed && t >= pending->command_due_s) {
        if (deliver(t, sv.snr_db, cfg_.downlink_attempts,
                    manager.waveform())) {
          std::size_t target = pending->target_idx;
          // A duplication fault reorders commands: a stale duplicate of
          // the previous command can arrive (and execute) first.
          const double dup_p =
              faults_.magnitude(FaultKind::kCommandDuplication, t);
          if (dup_p > 0.0 && last_cmd_target >= 0 &&
              last_cmd_target != static_cast<int>(target) &&
              rng_.bernoulli(std::min(1.0, dup_p))) {
            ++stats.duplicate_commands;
            log_event(t, EventKind::kHoCommandDuplicate, serving,
                      last_cmd_target, sv.snr_db);
            target = static_cast<std::size_t>(last_cmd_target);
          }
          log_event(t, EventKind::kHoCommandDelivered, serving,
                    static_cast<int>(target), sv.snr_db);
          ++stats.handovers;
          last_cmd_target = static_cast<int>(pending->target_idx);
          // Execution: detach + random access, completes (or T304-fails)
          // after the interruption window.
          exec = Execution{target, pending->target_idx, t};
          pending.reset();
          oos_count = is_count = 0;
          t310_started = -1.0;
        } else {
          pending->command_lost = true;
          last_cmd_loss_t = t;
          log_event(t, EventKind::kHoCommandLost, serving,
                    static_cast<int>(pending->target_idx), sv.snr_db);
        }
      }
    }

    // ---- Manager policy evaluation ----
    if (!exec && t >= suppress_until &&
        (!pending || pending->report_lost || pending->command_lost ||
         pending->prep_failed || pending->decision_shed)) {
      std::vector<Observation> obs;
      for (std::size_t i = 0; i < env_.cells().size(); ++i) {
        if (i == sv.cell_idx) continue;
        const double mean = env_.mean_rsrp_dbm(i, pos);
        if (mean < cfg_.min_coverage_rsrp_dbm - 10.0) continue;
        Observation o;
        o.cell_idx = i;
        o.id = env_.cells()[i].id;
        const double atten_db = blackout_db + crash_db(i);
        o.rsrp_dbm = env_.instant_rsrp_dbm(i, pos, rng_) - atten_db;
        o.snr_db = env_.snr_db_from_rsrp(o.rsrp_dbm);
        o.dd_snr_db = env_.dd_snr_db(i, pos, rng_) - atten_db;
        if (pilot_out) {
          if (!std::isnan(last_dd[i])) o.dd_snr_db = last_dd[i] - atten_db;
          o.dd_snr_db += rng_.gaussian(0.0, pilot_sigma);
          o.estimate_age_s = t - pilot_fresh_t;
          o.pilot_faulted = true;
        } else {
          last_dd[i] = o.dd_snr_db + atten_db;
        }
        o.bandwidth_hz = env_.cells()[i].bandwidth_hz;
        obs.push_back(o);
      }
      const auto decision = manager.update(t, sv, obs);
      if (decision) {
        log_event(t, EventKind::kMeasurementTriggered, serving,
                  static_cast<int>(decision->target_idx), sv.snr_db);
        PendingHandover ph;
        ph.target_idx = decision->target_idx;
        ph.decided_at_s = t;
        ph.report_due_s = t + decision->feedback_delay_s;
        ph.fallback_idx = decision->fallback_idx;
        pending = ph;
      }
    }

    // ---- Degraded-mode tracking ----
    const bool degraded = manager.degraded_mode();
    if (degraded != degraded_prev) {
      log_event(t, degraded ? EventKind::kDegradedEnter
                            : EventKind::kDegradedExit,
                serving, -1, sv.snr_db);
      if (degraded) ++stats.degraded_enters;
      degraded_prev = degraded;
    }
    if (degraded) stats.degraded_time_s += dt;
  }

  stats.sim_time_s = cfg_.duration_s;
  if (ticks > 0) {
    stats.mean_throughput_bps =
        throughput_sum_bps / static_cast<double>(ticks);
    stats.downtime_fraction =
        static_cast<double>(outage_ticks) / static_cast<double>(ticks);
  }
  if (ho_times.size() >= 2) {
    stats.avg_handover_interval_s =
        (ho_times.back() - ho_times.front()) /
        static_cast<double>(ho_times.size() - 1);
  }
  if (netw) {
    const auto& ts = netw->stats();
    stats.backhaul_sent = ts.sent;
    stats.backhaul_delivered = ts.delivered;
    stats.backhaul_dropped_loss = ts.dropped_loss;
    stats.backhaul_dropped_partition = ts.dropped_partition;
    stats.backhaul_dropped_queue = ts.dropped_queue;
    stats.backhaul_dropped_crash = ts.dropped_crash;
    stats.backhaul_duplicated = ts.duplicated;
    stats.backhaul_reordered = ts.reordered;
    stats.backhaul_latency_sum_s = ts.latency_sum_s;
  }
  if (use_cap) {
    // Jobs still scheduled at run end: conservation's in-flight term
    // (submitted == served + shed + flushed + inflight).
    for (const auto& st : stations)
      stats.bs_jobs_inflight_end += st.unfinished();
  }
  if (cfg_.observer) cfg_.observer->on_run_end(stats);
  return stats;
}

}  // namespace rem::sim
