// Deterministic fleet-statistics merging for Simulator::run_fleet.
//
// A fleet run produces one SimStats per UE (indexed by UE id); the
// aggregate is a pure fold over that vector in UE-id order, so it is
// reproducible run-to-run and thread-count-independent by construction.
// Field semantics:
//   - additive counters (handovers, failures, signaling/backhaul/BS-job
//     counters, degraded time, invariant violations) sum across UEs;
//   - failures_by_cause sums per cause;
//   - global-window counters (bs_crashes) take the max: every UE observes
//     the same crash windows, so summing would multiply-count them;
//   - sim_time_s takes the max (all UEs share the horizon);
//   - mean_throughput_bps and downtime_fraction average over UEs
//     (per-UE means over the same tick count, so the mean of means is the
//     fleet mean);
//   - avg_handover_interval_s averages the per-UE values that are set
//     (UEs with fewer than two handovers report 0 and are excluded);
//   - sample vectors (outage durations, feedback delays, pre-failure
//     SNRs) concatenate in UE order;
//   - events merge into one time-sorted log, UE order breaking ties, via
//     merge_fleet_events.
#pragma once

#include "sim/simulator.hpp"

#include <vector>

namespace rem::sim {

/// Merge per-UE event logs (each already time-sorted) into one log sorted
/// by t_s, with same-timestamp events kept in UE-id order (the merge is
/// stable over the UE-order concatenation). Cross-UE timestamp regression
/// is impossible in the output by construction.
EventLog merge_fleet_events(const std::vector<SimStats>& per_ue);

/// Fold per-UE stats (indexed by UE id) into the fleet aggregate under
/// the field rules above. Throws std::invalid_argument on an empty input.
SimStats merge_fleet_stats(const std::vector<SimStats>& per_ue);

}  // namespace rem::sim
