// TCP stall model over radio outages (Fig. 9).
//
// When the radio link fails, TCP keeps retransmitting with exponential RTO
// backoff; the connection only resumes at the first retransmission attempt
// *after* the link is back, so a radio outage of length L stalls TCP for
// L plus the residual backoff — the amplification the paper shows in
// Fig. 9b (a 2.3 s radio gap turning into a ~9 s TCP stall).
#pragma once

#include <vector>

namespace rem::sim {

struct TcpConfig {
  double base_rto_s = 0.2;    ///< initial RTO (RFC 6298 floor-ish on LTE)
  double max_rto_s = 60.0;
  double rtt_s = 0.05;        ///< healthy-path RTT
};

/// Stall time experienced by a continuously backlogged TCP flow for one
/// radio outage of `outage_s` starting at a random phase within the RTO
/// cycle (`phase01` in [0,1) selects it deterministically).
double tcp_stall_for_outage(double outage_s, const TcpConfig& cfg,
                            double phase01);

/// Total and per-outage stall times for a sequence of outages. `phases`
/// must be the same length as `outages` (use Rng::uniform(0,1) draws).
std::vector<double> tcp_stalls(const std::vector<double>& outages_s,
                               const std::vector<double>& phases01,
                               const TcpConfig& cfg = {});

}  // namespace rem::sim
