#include "sim/tcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace rem::sim {

double tcp_stall_for_outage(double outage_s, const TcpConfig& cfg,
                            double phase01) {
  // The outage begins `phase01 * rtt` into a normal transfer round; the
  // first loss is detected one RTO after the last in-flight data died.
  double t = phase01 * cfg.rtt_s;  // time since outage start of first loss
  double rto = cfg.base_rto_s;
  // Retransmissions fire at t + rto, t + rto + 2 rto, ... Data resumes at
  // the first retransmission that lands after the link is back.
  double fire = t + rto;
  while (fire < outage_s) {
    rto = std::min(rto * 2.0, cfg.max_rto_s);
    fire += rto;
  }
  // Stall = time from outage start until that successful retransmission.
  return fire;
}

std::vector<double> tcp_stalls(const std::vector<double>& outages_s,
                               const std::vector<double>& phases01,
                               const TcpConfig& cfg) {
  if (outages_s.size() != phases01.size())
    throw std::invalid_argument("tcp_stalls: phase count mismatch");
  std::vector<double> out;
  out.reserve(outages_s.size());
  for (std::size_t i = 0; i < outages_s.size(); ++i)
    out.push_back(tcp_stall_for_outage(outages_s[i], cfg, phases01[i]));
  return out;
}

}  // namespace rem::sim
