// Deterministic fault injection for the network simulator (§3's stress
// modes made reproducible): seeded schedules of fault windows — scripted
// or RNG-generated — that the simulator consults every tick to distort
// signaling delivery, measurement pilots, base-station processing, radio
// coverage, and handover-command ordering. A FaultInjector is immutable
// after construction, so identical (config, seed) pairs always replay the
// exact same fault timeline, including under the seed-parallel runner.
#pragma once

#include "common/rng.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace rem::sim {

/// The fault classes of the chaos harness (bench_chaos): five radio-leg
/// classes, three backhaul classes targeting the inter-BS transport, two
/// base-station classes targeting the server side of the control plane
/// (capacity squeeze and crash-restart), and two correlated-regional
/// classes (domain-wide outage and the overload cascade it triggers).
enum class FaultKind {
  kSignalingLoss,      ///< burst signaling loss overriding per-attempt BLER
  kPilotOutage,        ///< measurement pilots absent: stale/corrupt estimates
  kProcessingStall,    ///< base-station decision processing spike
  kCoverageBlackout,   ///< tunnel-style blanket attenuation of every cell
  kCommandDuplication, ///< duplicated/reordered handover commands
  kBackhaulLoss,       ///< extra per-message loss on the inter-BS transport
  kBackhaulDelay,      ///< extra one-way latency on the inter-BS transport
  kBackhaulPartition,  ///< inter-BS link down: every message dropped
  kBsOverload,         ///< BS control-plane capacity squeeze (queueing/shed)
  kBsCrashRestart,     ///< a BS dies for the window, losing queued signaling
                       ///< and prepared UE contexts; restarts stateless
  kRegionOutage,       ///< a whole failure domain of adjacent BSs crashes
                       ///< with staggered onsets; all restart at window end
  kCascadeOverload,    ///< dead BSs dump displaced load onto surviving
                       ///< neighbors: load-proportional background jobs
};

constexpr std::size_t kNumFaultKinds = 12;

/// Stable identifier used in logs/JSON. Throws std::invalid_argument on a
/// value outside the enum (corrupted input), never returns a placeholder.
std::string fault_kind_name(FaultKind k);

/// Inverse of fault_kind_name: resolves a stable wire name back to its
/// FaultKind. Throws std::invalid_argument naming the unknown input so a
/// kind can never ship without a parseable name (round-trip tested).
FaultKind fault_kind_from_name(const std::string& name);

/// One active fault interval. `magnitude` is kind-specific:
///   kSignalingLoss      per-attempt loss probability floor in [0, 1]
///   kPilotOutage        corruption sigma (dB) added to stale estimates
///   kProcessingStall    extra decision processing time (seconds)
///   kCoverageBlackout   extra attenuation on every cell (dB)
///   kCommandDuplication probability a delivered command is a stale
///                       duplicate of the previous one in [0, 1]
///   kBackhaulLoss       extra per-message backhaul loss prob in [0, 1]
///   kBackhaulDelay      extra one-way backhaul latency (seconds)
///   kBackhaulPartition  any value > 0 means the link is down
///   kBsOverload         background utilization of every BS's control
///                       plane in (0, 1]: 1.0 saturates slots + queue so
///                       further signaling is shed; values below 1 queue
///                       signaling behind synthetic load and inflate
///                       service times
///   kBsCrashRestart     values < 2 crash the serving BS at window open;
///                       values >= 2 crash the fixed cell index
///                       floor(magnitude) - 2 (lets tests kill a prep
///                       target deterministically)
///   kRegionOutage       values < 2 crash the failure domain containing
///                       the serving BS at window open; values >= 2 crash
///                       the fixed domain index floor(magnitude) - 2.
///                       Members crash one `region_stagger_s` apart (in
///                       cell-index order) and all restart at window end
///   kCascadeOverload    displaced-load utilization in (0, 1]: while the
///                       window is active, every surviving cell within
///                       `cascade_neighbor_radius` of a crashed cell is
///                       topped up with background jobs to this fraction
///                       of its capacity (requires a crash trigger —
///                       bs_crash_restart or region_outage — in the same
///                       schedule)
struct FaultWindow {
  FaultKind kind = FaultKind::kSignalingLoss;
  double start_s = 0.0;
  double duration_s = 0.0;
  double magnitude = 1.0;

  double end_s() const { return start_s + duration_s; }
  bool contains(double t) const { return t >= start_s && t < end_s(); }
};

/// RNG-driven window generation: windows of one kind arrive with
/// exponential gaps (mean `mean_gap_s`) and uniformly drawn duration and
/// magnitude. Materialized once at FaultInjector construction, so the
/// schedule depends only on (spec, seed, horizon).
struct RandomFaultSpec {
  FaultKind kind = FaultKind::kSignalingLoss;
  double mean_gap_s = 60.0;
  double duration_lo_s = 1.0;
  double duration_hi_s = 5.0;
  double magnitude_lo = 1.0;
  double magnitude_hi = 1.0;
};

struct FaultConfig {
  std::vector<FaultWindow> windows;     ///< scripted schedule
  std::vector<RandomFaultSpec> random;  ///< generated at construction

  /// Correlated-fault geometry: adjacent cells are grouped into
  /// index-contiguous failure domains of `domain_size` cells (cell c lives
  /// in domain c / domain_size). kRegionOutage crashes a whole domain,
  /// one member every `region_stagger_s` (0 = simultaneous); while
  /// kCascadeOverload is active, surviving cells within
  /// `cascade_neighbor_radius` index steps of any crashed cell absorb its
  /// displaced load as background jobs.
  int domain_size = 4;
  double region_stagger_s = 0.5;
  int cascade_neighbor_radius = 2;

  bool empty() const { return windows.empty() && random.empty(); }

  /// True when the schedule can crash more than one BS at a time (a
  /// region outage is scheduled); the invariant checker keys its
  /// at-most-one-crash rule off this.
  bool schedules_region_outage() const {
    for (const auto& w : windows)
      if (w.kind == FaultKind::kRegionOutage) return true;
    for (const auto& s : random)
      if (s.kind == FaultKind::kRegionOutage) return true;
    return false;
  }
};

/// Failure domain of a cell under index-contiguous grouping.
inline int fault_domain_of(int cell, int domain_size) {
  return domain_size > 0 ? cell / domain_size : 0;
}

class FaultInjector {
 public:
  /// No faults: every query returns inactive/zero.
  FaultInjector() = default;

  /// Scripted windows are validated then kept verbatim; random specs are
  /// expanded over [0, horizon_s) with draws from `rng` (deterministic per
  /// seed). Validation rejects-with-context (std::invalid_argument naming
  /// the window) scripted schedules that are silently wrong: negative
  /// start, zero/negative duration, non-positive magnitude, a magnitude
  /// above 1 for probability-valued kinds, or two scripted windows of the
  /// same kind overlapping in time (end is exclusive, so touching windows
  /// are fine). Two region_outage windows may overlap only when they
  /// provably target *different* domains (both magnitudes >= 2, distinct
  /// domain indices); a cascade_overload window without a crash trigger
  /// (bs_crash_restart or region_outage) anywhere in the schedule is
  /// rejected naming the window. Generated windows are exempt from the
  /// overlap rule — the documented "worst wins" contract of magnitude()
  /// covers them.
  FaultInjector(const FaultConfig& cfg, double horizon_s, common::Rng rng);

  bool any() const { return !windows_.empty(); }

  /// Correlated-fault geometry, copied from the config (defaults when
  /// default-constructed).
  int domain_size() const { return domain_size_; }
  double region_stagger_s() const { return region_stagger_s_; }
  int cascade_neighbor_radius() const { return cascade_neighbor_radius_; }

  /// Strongest magnitude among windows of `kind` active at `t`; 0.0 when
  /// none is active (overlapping windows do not stack, the worst wins).
  double magnitude(FaultKind kind, double t) const;

  bool active(FaultKind kind, double t) const {
    return magnitude(kind, t) > 0.0;
  }

  /// Full materialized schedule (scripted + generated), sorted by start.
  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  std::vector<FaultWindow> windows_;
  int domain_size_ = 4;
  double region_stagger_s_ = 0.5;
  int cascade_neighbor_radius_ = 2;
};

}  // namespace rem::sim
