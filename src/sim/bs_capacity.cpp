#include "sim/bs_capacity.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace rem::sim {

namespace {
constexpr double kTimeEps = 1e-9;
}  // namespace

std::string bs_job_kind_name(BsJobKind kind) {
  switch (kind) {
    case BsJobKind::kRrcDecision:
      return "rrc_decision";
    case BsJobKind::kPrepAdmission:
      return "prep_admission";
    case BsJobKind::kContextLookup:
      return "context_lookup";
    case BsJobKind::kBackground:
      return "background";
  }
  return "unknown";
}

void validate(const BsCapacityConfig& cfg) {
  if (!cfg.enabled) return;
  if (cfg.slots < 1) {
    throw std::invalid_argument("BsCapacityConfig.slots must be >= 1, got " +
                                std::to_string(cfg.slots));
  }
  const auto positive = [](double v, const char* name) {
    if (v <= 0.0) {
      throw std::invalid_argument(std::string("BsCapacityConfig.") + name +
                                  " must be > 0, got " + std::to_string(v));
    }
  };
  positive(cfg.prep_service_s, "prep_service_s");
  positive(cfg.ctx_service_s, "ctx_service_s");
  positive(cfg.background_service_s, "background_service_s");
  if (cfg.admission_load_threshold <= 0.0 ||
      cfg.admission_load_threshold > 1.0) {
    throw std::invalid_argument(
        "BsCapacityConfig.admission_load_threshold must be in (0, 1], got " +
        std::to_string(cfg.admission_load_threshold));
  }
  if (cfg.reject_backoff_hint_s < 0.0) {
    throw std::invalid_argument(
        "BsCapacityConfig.reject_backoff_hint_s must be >= 0, got " +
        std::to_string(cfg.reject_backoff_hint_s));
  }
  if (cfg.admission_max_retries < 0) {
    throw std::invalid_argument(
        "BsCapacityConfig.admission_max_retries must be >= 0, got " +
        std::to_string(cfg.admission_max_retries));
  }
}

BsStation::BsStation(int slots, std::size_t queue_capacity)
    : slots_(slots < 1 ? 1 : slots),
      queue_capacity_(queue_capacity),
      slot_free_s_(static_cast<std::size_t>(slots_), 0.0) {}

std::optional<BsJob> BsStation::submit(double t, BsJobKind kind,
                                       double service_s,
                                       const net::BackhaulMessage& msg,
                                       int ue) {
  if (slot_free_s_.empty()) {
    slot_free_s_.assign(static_cast<std::size_t>(slots_), 0.0);
  }
  const auto earliest =
      std::min_element(slot_free_s_.begin(), slot_free_s_.end());
  const double start = std::max(t, *earliest);
  if (start > t + kTimeEps &&
      static_cast<std::size_t>(waiting(t)) >= queue_capacity_) {
    return std::nullopt;  // queue full: shed
  }
  BsJob job;
  job.kind = kind;
  job.submit_s = t;
  job.start_s = start;
  job.done_s = start + service_s;
  job.msg = msg;
  job.ue = ue;
  *earliest = job.done_s;
  jobs_.push_back(job);
  order_.push_back(next_order_++);
  return job;
}

std::vector<BsJob> BsStation::take_completed(double t) {
  std::vector<std::pair<std::size_t, BsJob>> done;
  std::vector<BsJob> kept_jobs;
  std::vector<std::size_t> kept_order;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].done_s <= t + kTimeEps) {
      done.emplace_back(order_[i], jobs_[i]);
    } else {
      kept_jobs.push_back(jobs_[i]);
      kept_order.push_back(order_[i]);
    }
  }
  jobs_ = std::move(kept_jobs);
  order_ = std::move(kept_order);
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) {
              if (a.second.done_s != b.second.done_s) {
                return a.second.done_s < b.second.done_s;
              }
              return a.first < b.first;
            });
  std::vector<BsJob> out;
  out.reserve(done.size());
  for (auto& [ord, job] : done) out.push_back(job);
  return out;
}

int BsStation::occupancy(double t) const {
  int n = 0;
  for (const auto& j : jobs_) {
    if (j.done_s > t + kTimeEps) ++n;
  }
  return n;
}

int BsStation::waiting(double t) const {
  int n = 0;
  for (const auto& j : jobs_) {
    if (j.start_s > t + kTimeEps) ++n;
  }
  return n;
}

double BsStation::load(double t) const {
  const double cap = static_cast<double>(slots_) +
                     static_cast<double>(queue_capacity_);
  return static_cast<double>(occupancy(t)) / cap;
}

int BsStation::unfinished() const {
  int n = 0;
  for (const auto& j : jobs_) {
    if (j.kind != BsJobKind::kBackground) ++n;
  }
  return n;
}

std::vector<BsJob> BsStation::unfinished_jobs() const {
  std::vector<BsJob> out;
  for (const auto& j : jobs_) {
    if (j.kind != BsJobKind::kBackground) out.push_back(j);
  }
  return out;
}

int BsStation::flush() {
  return static_cast<int>(flush_jobs().size());
}

std::vector<BsJob> BsStation::flush_jobs() {
  std::vector<BsJob> lost = unfinished_jobs();
  jobs_.clear();
  order_.clear();
  std::fill(slot_free_s_.begin(), slot_free_s_.end(), 0.0);
  return lost;
}

}  // namespace rem::sim
