// Per-BS control-plane capacity model: a small bank of processing slots
// plus a bounded FIFO signaling queue in front of them. Prep-handshake
// admission, context-fetch lookups, and (network-driven) RRC decisions
// each occupy a slot for a deterministic service time; jobs arriving while
// every slot is busy wait in the queue, and jobs arriving with the queue
// full are shed — an explicit reject the simulator classifies into
// SimStats, never a silent drop.
//
// Determinism: service times are fixed per job kind (scaled by the
// overload inflation factor the simulator derives from the fault window),
// so a job's start and completion times are fully determined at submit
// time. The model draws no randomness and therefore leaves the simulator's
// forked-RNG order untouched — fault-free runs stay bit-identical across
// thread counts and the golden corpus stays replayable.
#pragma once

#include "net/message.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace rem::sim {

/// What a BS processing slot is busy doing. kBackground models load from
/// other (unsimulated) UEs during a kBsOverload window; background jobs
/// consume capacity but are excluded from the UE-visible job statistics.
enum class BsJobKind {
  kRrcDecision,    ///< serving BS runs the network-side handover decision
  kPrepAdmission,  ///< target BS admits (or rejects) a HANDOVER REQUEST
  kContextLookup,  ///< old serving BS services a context fetch
  kBackground,     ///< synthetic other-UE load during overload windows
};

std::string bs_job_kind_name(BsJobKind kind);

/// Knobs for the per-BS capacity model. Defaults keep the uncontended
/// path fast (a couple of ms of service latency per signaling leg) so
/// fault-free behavior is indistinguishable from the infinite-capacity
/// model apart from those small, deterministic processing delays.
struct BsCapacityConfig {
  bool enabled = true;
  /// Concurrent processing slots per BS.
  int slots = 2;
  /// Bounded FIFO signaling queue in front of the slots; a job that would
  /// have to wait while `queue_capacity` jobs are already waiting is shed.
  std::size_t queue_capacity = 8;
  /// Service time for a HANDOVER REQUEST admission check.
  double prep_service_s = 0.002;
  /// Service time for a context-fetch lookup.
  double ctx_service_s = 0.002;
  /// Service time of one synthetic background job (overload windows).
  double background_service_s = 0.020;
  /// Admission control: a target BS whose load fraction
  /// (busy + waiting) / (slots + queue_capacity) is at or above this
  /// threshold rejects HANDOVER REQUEST with a busy indication instead of
  /// queueing it.
  double admission_load_threshold = 0.6;
  /// Backoff hint carried in the busy-reject: the source should wait this
  /// long before re-attempting admission at the same target.
  double reject_backoff_hint_s = 0.08;
  /// How many hint-spaced re-attempts the source FSM makes after busy
  /// rejects (per handover attempt) before declaring preparation failed.
  int admission_max_retries = 8;
};

/// Throws std::invalid_argument naming the offending field when a
/// BsCapacityConfig is unusable (non-positive slots/service times,
/// threshold outside (0, 1], negative hint or retry budget).
void validate(const BsCapacityConfig& cfg);

/// One scheduled unit of BS work. `start_s - submit_s` is the queue wait
/// (zero when a slot was free at submission).
struct BsJob {
  BsJobKind kind = BsJobKind::kBackground;
  double submit_s = 0.0;
  double start_s = 0.0;
  double done_s = 0.0;
  /// The signaling message that spawned the job (admission / context
  /// lookup); unused for decision and background jobs.
  net::BackhaulMessage msg;
  /// Owning UE for statistics attribution in fleet runs; 0 in single-UE
  /// runs, meaningless for background jobs.
  int ue = 0;
};

/// A single base station's processing slots + bounded FIFO queue.
///
/// Because service times are deterministic, submit() resolves the whole
/// schedule immediately: it either returns the job with its start/done
/// times filled in, or std::nullopt when the queue is full (the shed
/// case). Completed jobs are handed back, in completion order, through
/// take_completed() so the simulator can run their continuations (send
/// the admission reply, mark the decision ready, ...).
class BsStation {
 public:
  BsStation() = default;
  BsStation(int slots, std::size_t queue_capacity);

  /// Schedule a job at time `t` with the given service time, attributed
  /// to UE `ue` (fleet statistics routing). Returns the scheduled job, or
  /// std::nullopt when it would have to wait and the queue is already at
  /// capacity (shed).
  std::optional<BsJob> submit(double t, BsJobKind kind, double service_s,
                              const net::BackhaulMessage& msg = {},
                              int ue = 0);

  /// Jobs whose service completed at or before `t`, ordered by completion
  /// time (ties broken by submission order). Each job is returned once.
  std::vector<BsJob> take_completed(double t);

  /// Jobs still scheduled (busy or waiting) at time `t`, background
  /// included — the physical occupancy the queue bound applies to.
  int occupancy(double t) const;

  /// Jobs waiting for a slot (start_s > t).
  int waiting(double t) const;

  /// occupancy / (slots + queue_capacity), the admission-control signal.
  double load(double t) const;

  /// Crash: every scheduled job is lost and all slots reset to idle.
  /// Returns the number of non-background jobs flushed.
  int flush();

  /// Crash variant that also returns the flushed non-background jobs (in
  /// submission order) so a fleet simulation can attribute each loss to
  /// its owning UE. flush() is flush_jobs() minus the job list.
  std::vector<BsJob> flush_jobs();

  /// Non-background jobs not yet returned by take_completed — the
  /// end-of-run in-flight count (SimStats::bs_jobs_inflight_end).
  int unfinished() const;

  /// The unfinished() jobs themselves, in submission order, for per-UE
  /// in-flight attribution at the end of a fleet run.
  std::vector<BsJob> unfinished_jobs() const;

 private:
  int slots_ = 1;
  std::size_t queue_capacity_ = 0;
  std::vector<double> slot_free_s_;
  std::vector<BsJob> jobs_;  ///< scheduled, not yet taken via take_completed
  std::vector<std::size_t> order_;  ///< per-job submission counter (ties)
  std::size_t next_order_ = 0;
};

}  // namespace rem::sim
