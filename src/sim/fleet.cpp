#include "sim/fleet.hpp"

#include <algorithm>
#include <stdexcept>

namespace rem::sim {

EventLog merge_fleet_events(const std::vector<SimStats>& per_ue) {
  EventLog merged;
  std::size_t total = 0;
  for (const auto& s : per_ue) total += s.events.size();
  merged.reserve(total);
  for (const auto& s : per_ue)
    merged.insert(merged.end(), s.events.begin(), s.events.end());
  // Each per-UE log is time-sorted, so a stable sort over the UE-order
  // concatenation is exactly a k-way merge with UE-id tiebreak.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SignalingEvent& a, const SignalingEvent& b) {
                     return a.t_s < b.t_s;
                   });
  return merged;
}

SimStats merge_fleet_stats(const std::vector<SimStats>& per_ue) {
  if (per_ue.empty())
    throw std::invalid_argument("merge_fleet_stats: no per-UE stats");
  SimStats agg;
  double interval_sum = 0.0;
  int interval_n = 0;
  for (const auto& s : per_ue) {
    agg.sim_time_s = std::max(agg.sim_time_s, s.sim_time_s);
    agg.handovers += s.handovers;
    agg.successful_handovers += s.successful_handovers;
    agg.failures += s.failures;
    for (const auto& [cause, n] : s.failures_by_cause)
      agg.failures_by_cause[cause] += n;
    agg.loop_handovers += s.loop_handovers;
    agg.loop_episodes += s.loop_episodes;
    agg.intra_freq_loop_episodes += s.intra_freq_loop_episodes;
    agg.conflict_loop_episodes += s.conflict_loop_episodes;
    agg.conflict_loop_handovers += s.conflict_loop_handovers;
    agg.intra_freq_conflict_loops += s.intra_freq_conflict_loops;
    if (s.avg_handover_interval_s > 0.0) {
      interval_sum += s.avg_handover_interval_s;
      ++interval_n;
    }
    agg.outage_durations_s.insert(agg.outage_durations_s.end(),
                                  s.outage_durations_s.begin(),
                                  s.outage_durations_s.end());
    agg.feedback_delays_s.insert(agg.feedback_delays_s.end(),
                                 s.feedback_delays_s.begin(),
                                 s.feedback_delays_s.end());
    agg.report_retransmits += s.report_retransmits;
    agg.t304_expiries += s.t304_expiries;
    agg.t304_fallback_success += s.t304_fallback_success;
    agg.duplicate_commands += s.duplicate_commands;
    agg.degraded_enters += s.degraded_enters;
    agg.degraded_time_s += s.degraded_time_s;
    agg.prep_requests += s.prep_requests;
    agg.prep_retries += s.prep_retries;
    agg.prep_acks += s.prep_acks;
    agg.prep_rejects += s.prep_rejects;
    agg.prep_fallbacks += s.prep_fallbacks;
    agg.prep_failures += s.prep_failures;
    agg.prep_rtt_sum_s += s.prep_rtt_sum_s;
    agg.context_fetch_failures += s.context_fetch_failures;
    agg.backhaul_sent += s.backhaul_sent;
    agg.backhaul_delivered += s.backhaul_delivered;
    agg.backhaul_dropped_loss += s.backhaul_dropped_loss;
    agg.backhaul_dropped_partition += s.backhaul_dropped_partition;
    agg.backhaul_dropped_queue += s.backhaul_dropped_queue;
    agg.backhaul_dropped_crash += s.backhaul_dropped_crash;
    agg.backhaul_duplicated += s.backhaul_duplicated;
    agg.backhaul_reordered += s.backhaul_reordered;
    agg.backhaul_latency_sum_s += s.backhaul_latency_sum_s;
    agg.bs_jobs_submitted += s.bs_jobs_submitted;
    agg.bs_jobs_served += s.bs_jobs_served;
    agg.bs_jobs_queued += s.bs_jobs_queued;
    agg.bs_queue_shed += s.bs_queue_shed;
    agg.bs_jobs_flushed += s.bs_jobs_flushed;
    agg.bs_jobs_inflight_end += s.bs_jobs_inflight_end;
    agg.bs_queue_wait_sum_s += s.bs_queue_wait_sum_s;
    agg.admission_rejects += s.admission_rejects;
    agg.admission_backoff_retries += s.admission_backoff_retries;
    // Crash windows are global: every UE counts the same windows, so the
    // fleet total is the per-UE count, not the sum.
    agg.bs_crashes = std::max(agg.bs_crashes, s.bs_crashes);
    agg.bs_crash_dropped_msgs += s.bs_crash_dropped_msgs;
    agg.stale_context_responses += s.stale_context_responses;
    // Cascade events are world-global like crashes (every UE counts the
    // same injections); breaker/load-ad counters are genuinely per-UE.
    agg.cascade_jobs_injected =
        std::max(agg.cascade_jobs_injected, s.cascade_jobs_injected);
    agg.cascade_activations =
        std::max(agg.cascade_activations, s.cascade_activations);
    agg.breaker_trips += s.breaker_trips;
    agg.breaker_probes += s.breaker_probes;
    agg.breaker_closes += s.breaker_closes;
    agg.breaker_skips += s.breaker_skips;
    agg.load_ads_received += s.load_ads_received;
    agg.storm_jitter_applied += s.storm_jitter_applied;
    agg.load_ad_age_max_s =
        std::max(agg.load_ad_age_max_s, s.load_ad_age_max_s);
    agg.mean_throughput_bps += s.mean_throughput_bps;
    agg.downtime_fraction += s.downtime_fraction;
    agg.pre_failure_snrs_db.insert(agg.pre_failure_snrs_db.end(),
                                   s.pre_failure_snrs_db.begin(),
                                   s.pre_failure_snrs_db.end());
    agg.invariant_violations += s.invariant_violations;
  }
  const auto n = static_cast<double>(per_ue.size());
  agg.mean_throughput_bps /= n;
  agg.downtime_fraction /= n;
  agg.avg_handover_interval_s =
      interval_n > 0 ? interval_sum / static_cast<double>(interval_n) : 0.0;
  agg.events = merge_fleet_events(per_ue);
  return agg;
}

}  // namespace rem::sim
