// Observation hook for the network simulator: a SimObserver attached via
// SimConfig::observer receives the full signaling event stream (whether or
// not SimConfig::record_events is set), one TickView snapshot per simulated
// tick, and a final mutable look at the SimStats before run() returns.
//
// The hook exists so correctness tooling (rem::testkit::InvariantChecker)
// can machine-check cross-cutting invariants over *every* run without the
// simulator depending on the testkit layer. Observers must not mutate
// simulation state and must not draw randomness; the simulator guarantees
// the hook itself performs no RNG draws, so attaching an observer never
// changes a run's results.
#pragma once

#include "sim/events.hpp"

#include <vector>

namespace rem::sim {

struct SimStats;

/// Per-tick snapshot of the simulator's recovery/handover state machines,
/// emitted at the *end* of each tick (after all transitions for that tick
/// have been applied and their events delivered).
struct TickView {
  double t_s = 0.0;
  int serving = -1;              ///< serving cell index (stale in outage)
  /// Instantaneous serving-link SNR this tick; NaN on outage ticks, where
  /// no radio state is sampled.
  double serving_snr_db = 0.0;
  bool in_outage = false;        ///< between an RLF/T304 failure and camp
  bool executing = false;        ///< handover execution (T304 window) open
  bool t310_running = false;     ///< RLF timer armed
  int oos_count = 0;             ///< consecutive out-of-sync ticks (N310)
  int is_count = 0;              ///< consecutive in-sync ticks (N311)
  bool report_pending = false;   ///< measurement report still in flight
  /// Backhaul preparation in progress: report delivered, HANDOVER REQUEST
  /// sent or about to be, no ack/terminal outcome yet. Always false when
  /// the backhaul transport is disabled.
  bool prep_pending = false;
  bool command_pending = false;  ///< HO command still in flight
  bool pilot_fault = false;      ///< pilot-outage fault active this tick
  bool blackout = false;         ///< coverage-blackout fault active
  /// Age of the delay-Doppler estimates the manager sees this tick (the
  /// same value the Observation rows carry): 0 while pilots are fresh.
  double estimate_age_s = 0.0;
  bool degraded = false;         ///< manager degraded mode as last sampled
  /// Highest per-BS occupancy (busy slots + queued jobs, background
  /// included) across all stations this tick; never exceeds
  /// slots + queue_capacity. Always 0 when the capacity model is off.
  int bs_queue_peak = 0;
  int crashed_cells = 0;         ///< cells currently dead (kBsCrashRestart)
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// Every signaling event, in emission order, independent of
  /// SimConfig::record_events.
  virtual void on_event(const SignalingEvent& /*event*/) {}
  /// Exactly one call per simulated tick, after the tick's transitions.
  virtual void on_tick(const TickView& /*view*/) {}
  /// Called once at the end of run() with the final statistics; observers
  /// may write back summary fields (e.g. SimStats::invariant_violations).
  virtual void on_run_end(SimStats& /*stats*/) {}
};

/// Forwards every hook to multiple child observers, in add() order, so a
/// single SimConfig::observer slot can host several independent observers
/// (e.g. testkit::InvariantChecker plus obs::SpanTracer).
///
/// Child pointers are borrowed, never owned: each child must outlive the
/// simulation run. A nullptr child is ignored. Children must individually
/// satisfy the SimObserver contract (no mutation, no RNG draws); the
/// fanout adds no state of its own, so forwarding order only matters if a
/// child breaks that contract.
class ObserverFanout : public SimObserver {
 public:
  void add(SimObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  void on_event(const SignalingEvent& event) override {
    for (SimObserver* c : children_) c->on_event(event);
  }
  void on_tick(const TickView& view) override {
    for (SimObserver* c : children_) c->on_tick(view);
  }
  void on_run_end(SimStats& stats) override {
    for (SimObserver* c : children_) c->on_run_end(stats);
  }

 private:
  std::vector<SimObserver*> children_;
};

}  // namespace rem::sim
