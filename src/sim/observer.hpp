// Observation hook for the network simulator: a SimObserver attached via
// SimConfig::observer receives the full signaling event stream (whether or
// not SimConfig::record_events is set), one TickView snapshot per simulated
// tick, and a final mutable look at the SimStats before run() returns.
//
// The hook exists so correctness tooling (rem::testkit::InvariantChecker)
// can machine-check cross-cutting invariants over *every* run without the
// simulator depending on the testkit layer. Observers must not mutate
// simulation state and must not draw randomness; the simulator guarantees
// the hook itself performs no RNG draws, so attaching an observer never
// changes a run's results.
#pragma once

#include "sim/events.hpp"

#include <cstddef>
#include <vector>

namespace rem::sim {

struct SimStats;

/// Per-tick snapshot of the simulator's recovery/handover state machines,
/// emitted at the *end* of each tick (after all transitions for that tick
/// have been applied and their events delivered).
struct TickView {
  double t_s = 0.0;
  int serving = -1;              ///< serving cell index (stale in outage)
  /// Instantaneous serving-link SNR this tick; NaN on outage ticks, where
  /// no radio state is sampled.
  double serving_snr_db = 0.0;
  bool in_outage = false;        ///< between an RLF/T304 failure and camp
  bool executing = false;        ///< handover execution (T304 window) open
  bool t310_running = false;     ///< RLF timer armed
  int oos_count = 0;             ///< consecutive out-of-sync ticks (N310)
  int is_count = 0;              ///< consecutive in-sync ticks (N311)
  bool report_pending = false;   ///< measurement report still in flight
  /// Backhaul preparation in progress: report delivered, HANDOVER REQUEST
  /// sent or about to be, no ack/terminal outcome yet. Always false when
  /// the backhaul transport is disabled.
  bool prep_pending = false;
  bool command_pending = false;  ///< HO command still in flight
  bool pilot_fault = false;      ///< pilot-outage fault active this tick
  bool blackout = false;         ///< coverage-blackout fault active
  /// Age of the delay-Doppler estimates the manager sees this tick (the
  /// same value the Observation rows carry): 0 while pilots are fresh.
  double estimate_age_s = 0.0;
  bool degraded = false;         ///< manager degraded mode as last sampled
  /// Highest per-BS occupancy (busy slots + queued jobs, background
  /// included) across all stations this tick; never exceeds
  /// slots + queue_capacity. Always 0 when the capacity model is off.
  int bs_queue_peak = 0;
  int crashed_cells = 0;         ///< cells currently dead (crash-restart
                                 ///< windows and region-outage members)
  /// This UE's per-target circuit breakers currently open (0 when the
  /// breaker is disabled); the invariant checker mirrors it from the
  /// kBreakerTrip/kBreakerProbe/kBreakerClose event stream.
  int breakers_open = 0;
  /// Owning UE (fleet runs); always 0 in single-UE runs.
  int ue = 0;
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// Fleet runs only: every subsequent on_event/on_tick/on_run_end call is
  /// attributed to UE `ue` until the next on_ue. The fleet engine fires it
  /// whenever the attributed UE changes (events and ticks both carry the
  /// same id redundantly in their `ue` fields). Single-UE runs never call
  /// it, so observers written against the legacy protocol keep working
  /// unchanged.
  virtual void on_ue(int /*ue*/) {}
  /// Every signaling event, in emission order, independent of
  /// SimConfig::record_events.
  virtual void on_event(const SignalingEvent& /*event*/) {}
  /// Exactly one call per simulated tick, after the tick's transitions.
  /// Fleet runs emit one TickView per UE per tick, in UE-id order.
  virtual void on_tick(const TickView& /*view*/) {}
  /// Called once at the end of run() with the final statistics; observers
  /// may write back summary fields (e.g. SimStats::invariant_violations).
  /// Fleet runs call it once per UE, with that UE's SimStats, preceded by
  /// on_ue(ue); the aggregate stats are never passed through this hook.
  virtual void on_run_end(SimStats& /*stats*/) {}
};

/// Forwards every hook to multiple child observers, in add() order, so a
/// single SimConfig::observer slot can host several independent observers
/// (e.g. testkit::InvariantChecker plus obs::SpanTracer).
///
/// Child pointers are borrowed, never owned: each child must outlive the
/// simulation run. A nullptr child is ignored. Children must individually
/// satisfy the SimObserver contract (no mutation, no RNG draws); the
/// fanout adds no state of its own, so forwarding order only matters if a
/// child breaks that contract.
class ObserverFanout : public SimObserver {
 public:
  void add(SimObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  void on_ue(int ue) override {
    for (SimObserver* c : children_) c->on_ue(ue);
  }
  void on_event(const SignalingEvent& event) override {
    for (SimObserver* c : children_) c->on_event(event);
  }
  void on_tick(const TickView& view) override {
    for (SimObserver* c : children_) c->on_tick(view);
  }
  void on_run_end(SimStats& stats) override {
    for (SimObserver* c : children_) c->on_run_end(stats);
  }

 private:
  std::vector<SimObserver*> children_;
};

/// Routes a fleet run's interleaved observer stream to one single-UE-style
/// child observer per UE: on_ue(k) selects child k, and every subsequent
/// on_event/on_tick/on_run_end is forwarded only to it. Each child thus
/// sees the legacy single-UE protocol for its own UE — which is how an
/// unmodified InvariantChecker or SpanTracer checks one UE of a fleet.
/// The selecting on_ue(k) is also forwarded to child k, so a child that
/// wants its own id for labeling (SpanTracer stamps `"ue": k` onto trace
/// lines) can take it from there; it only ever receives its own id, and
/// legacy observers ignore the call via the no-op default. Children are
/// borrowed, registered in UE-id order via add(), and must outlive the
/// run; a nullptr child mutes that UE.
class UeObserverDemux : public SimObserver {
 public:
  void add(SimObserver* child) { children_.push_back(child); }

  void on_ue(int ue) override {
    current_ = ue >= 0 && static_cast<std::size_t>(ue) < children_.size()
                   ? children_[static_cast<std::size_t>(ue)]
                   : nullptr;
    if (current_ != nullptr) current_->on_ue(ue);
  }
  void on_event(const SignalingEvent& event) override {
    if (current_ != nullptr) current_->on_event(event);
  }
  void on_tick(const TickView& view) override {
    if (current_ != nullptr) current_->on_tick(view);
  }
  void on_run_end(SimStats& stats) override {
    if (current_ != nullptr) current_->on_run_end(stats);
  }

 private:
  std::vector<SimObserver*> children_;
  SimObserver* current_ = nullptr;
};

}  // namespace rem::sim
