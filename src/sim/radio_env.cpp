#include "sim/radio_env.hpp"

#include "common/units.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace rem::sim {
namespace {

std::vector<double> ar1_grid(std::size_t steps, double sigma, double decorr,
                             double step_m, common::Rng& rng) {
  const double rho = std::exp(-step_m / decorr);
  const double innov = sigma * std::sqrt(1.0 - rho * rho);
  std::vector<double> grid(steps);
  double x = rng.gaussian(0.0, sigma);
  for (std::size_t i = 0; i < steps; ++i) {
    grid[i] = x;
    x = rho * x + rng.gaussian(0.0, innov);
  }
  return grid;
}

}  // namespace

RadioEnv::RadioEnv(std::vector<Cell> cells, PropagationConfig cfg,
                   common::Rng rng, std::vector<HoleSegment> holes)
    : cells_(std::move(cells)), cfg_(cfg), holes_(std::move(holes)) {
  for (const auto& c : cells_)
    track_len_m_ = std::max(track_len_m_, c.site_pos_m + 5000.0);
  const auto steps =
      static_cast<std::size_t>(track_len_m_ / kShadowStep_m) + 2;

  // One shared shadowing process per physical site, plus a small
  // frequency-dependent residual per cell. Co-sited cells thus see nearly
  // identical large-scale dynamics — the physical basis of cross-band
  // estimation (§3.1's shared multipath).
  std::map<int, std::size_t> site_grid_index;
  cell_site_grid_.resize(cells_.size());
  cell_shadow_grids_.resize(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const int site = cells_[i].id.base_station;
    auto [it, inserted] =
        site_grid_index.try_emplace(site, site_shadow_grids_.size());
    if (inserted) {
      site_shadow_grids_.push_back(ar1_grid(steps, cfg_.shadowing_sigma_db,
                                            cfg_.shadowing_decorr_m,
                                            kShadowStep_m, rng));
    }
    cell_site_grid_[i] = it->second;
    cell_shadow_grids_[i] =
        ar1_grid(steps, cfg_.per_cell_shadow_sigma_db,
                 cfg_.per_cell_shadow_decorr_m, kShadowStep_m, rng);
  }
}

double RadioEnv::sample_grid(const std::vector<double>& grid,
                             double track_pos_m) const {
  const double f = std::clamp(track_pos_m / kShadowStep_m, 0.0,
                              static_cast<double>(grid.size() - 1));
  const auto i0 = static_cast<std::size_t>(f);
  const auto i1 = std::min(i0 + 1, grid.size() - 1);
  const double frac = f - static_cast<double>(i0);
  return grid[i0] * (1.0 - frac) + grid[i1] * frac;
}

double RadioEnv::shadowing_db(std::size_t cell_idx,
                              double track_pos_m) const {
  return sample_grid(site_shadow_grids_[cell_site_grid_[cell_idx]],
                     track_pos_m) +
         sample_grid(cell_shadow_grids_[cell_idx], track_pos_m);
}

bool RadioEnv::position_in_hole(double track_pos_m) const {
  for (const auto& h : holes_) {
    if (track_pos_m >= h.start_m && track_pos_m < h.start_m + h.length_m)
      return true;
  }
  return false;
}

double RadioEnv::mean_rsrp_dbm(std::size_t cell_idx,
                               double track_pos_m) const {
  const Cell& c = cells_[cell_idx];
  const double dx = track_pos_m - c.site_pos_m;
  const double d = std::max(
      std::sqrt(dx * dx + c.site_offset_m * c.site_offset_m), 1.0);
  // Log-distance with a mild frequency term (higher carriers lose more).
  double pl = cfg_.ref_loss_db +
              10.0 * cfg_.pathloss_exponent * std::log10(d) +
              20.0 * std::log10(c.carrier_hz / 2.0e9);
  if (position_in_hole(track_pos_m)) pl += cfg_.hole_extra_loss_db;
  return c.tx_power_dbm - pl + shadowing_db(cell_idx, track_pos_m);
}

double RadioEnv::instant_rsrp_dbm(std::size_t cell_idx, double track_pos_m,
                                  common::Rng& rng) const {
  return mean_rsrp_dbm(cell_idx, track_pos_m) +
         rng.gaussian(0.0, cfg_.fading_sigma_db);
}

double RadioEnv::dd_snr_db(std::size_t cell_idx, double track_pos_m,
                           common::Rng& rng) const {
  const double rsrp = mean_rsrp_dbm(cell_idx, track_pos_m) +
                      rng.gaussian(0.0, cfg_.dd_residual_sigma_db);
  return snr_db_from_rsrp(rsrp);
}

double RadioEnv::snr_db_from_rsrp(double rsrp_dbm) const {
  return rsrp_dbm - cfg_.noise_floor_dbm;
}

int RadioEnv::best_cell(double track_pos_m, double min_rsrp_dbm,
                        int exclude_idx) const {
  int best = -1;
  double best_rsrp = min_rsrp_dbm;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (static_cast<int>(i) == exclude_idx) continue;
    const double r = mean_rsrp_dbm(i, track_pos_m);
    if (r > best_rsrp) {
      best_rsrp = r;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int RadioEnv::best_cell(double track_pos_m, double min_rsrp_dbm,
                        const std::vector<char>& excluded) const {
  int best = -1;
  double best_rsrp = min_rsrp_dbm;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (i < excluded.size() && excluded[i]) continue;
    const double r = mean_rsrp_dbm(i, track_pos_m);
    if (r > best_rsrp) {
      best_rsrp = r;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<Cell> make_rail_deployment(const DeploymentConfig& cfg,
                                       common::Rng& rng) {
  std::vector<Cell> cells;
  int next_cell_id = 0;
  int next_site_id = 0;
  double pos = cfg.site_spacing_mean_m / 2.0;
  while (pos < cfg.route_len_m) {
    const int site = next_site_id++;
    const double offset =
        rng.uniform(cfg.site_offset_min_m, cfg.site_offset_max_m);
    // The rail corridor is covered by a dedicated layer on the first
    // channel (intra-frequency A3 dominates handovers, as in the HSR
    // datasets); extra co-located cells use the other carriers. A few
    // sites lack the corridor layer entirely — the cells legacy
    // multi-stage policies tend to miss.
    const std::size_t primary =
        (cfg.channels.size() > 1 && rng.bernoulli(cfg.primary_missing_prob))
            ? 1 + static_cast<std::size_t>(rng.uniform_int(
                      0, static_cast<std::int64_t>(cfg.channels.size()) - 2))
            : 0;

    Cell c;
    c.id = {next_cell_id++, site, cfg.channels[primary].first};
    c.site_pos_m = pos;
    c.site_offset_m = offset;
    c.carrier_hz = cfg.channels[primary].second;
    c.tx_power_dbm = cfg.tx_power_dbm;
    c.bandwidth_hz = primary == 0 ? cfg.primary_bandwidth_hz
                                  : cfg.secondary_bandwidths_hz[
                                        static_cast<std::size_t>(
                                            rng.uniform_int(
                                                0,
                                                static_cast<std::int64_t>(
                                                    cfg.secondary_bandwidths_hz
                                                        .size()) -
                                                    1))];
    cells.push_back(c);

    if (cfg.channels.size() > 1 && primary == 0 &&
        rng.bernoulli(cfg.colocated_second_cell_prob)) {
      std::size_t secondary = primary;
      while (secondary == primary) {
        secondary = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cfg.channels.size()) - 1));
      }
      Cell c2 = c;
      c2.id = {next_cell_id++, site, cfg.channels[secondary].first};
      c2.carrier_hz = cfg.channels[secondary].second;
      c2.bandwidth_hz = cfg.secondary_bandwidths_hz[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(
                                 cfg.secondary_bandwidths_hz.size()) -
                                 1))];
      cells.push_back(c2);
    }
    pos += cfg.site_spacing_mean_m +
           rng.uniform(-cfg.site_spacing_jitter_m, cfg.site_spacing_jitter_m);
  }
  return cells;
}

std::vector<HoleSegment> make_hole_segments(const DeploymentConfig& cfg,
                                            common::Rng& rng) {
  std::vector<HoleSegment> holes;
  const double km = cfg.route_len_m / 1000.0;
  const int count = rng.poisson(cfg.holes_per_km * km);
  for (int i = 0; i < count; ++i) {
    HoleSegment h;
    h.start_m = rng.uniform(0.0, cfg.route_len_m);
    h.length_m = rng.uniform(cfg.hole_len_min_m, cfg.hole_len_max_m);
    holes.push_back(h);
  }
  return holes;
}

}  // namespace rem::sim
